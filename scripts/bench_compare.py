#!/usr/bin/env python3
"""Compare two BENCH_perf.json baselines (schema mmr-perf-v1).

Usage:
    bench_compare.py BEFORE.json AFTER.json [--threshold 0.10]
    bench_compare.py --check FILE.json

Compare mode matches records by `label`, prints a speedup table
(after/before cycles-per-second ratio), and exits 1 if any shared label
regressed by more than the threshold (default 10%).  Two baselines need not
cover the same sections, arbiters, or port counts: only the intersection of
labels is diffed, every skipped label is summarised (grouped by section and
port count) so partial coverage is visible, and the exit status reflects
real regressions only.  Zero shared labels is the one unusable case — each
file's inventory is printed so the mismatch is obvious, and the tool exits 2
(cannot compare, which is different from "regressed").

Check mode validates that FILE.json is a well-formed mmr-perf-v1 baseline
(used by ctest and check.sh --perf after a smoke run) and exits non-zero on
any schema violation.

Only the Python standard library is used.
"""

import argparse
import json
import sys

SCHEMA = "mmr-perf-v1"
RECORD_KEYS = {
    "label": str,
    "kind": str,
    "arbiter": str,
    "ports": int,
    "simulated_cycles": int,
    "wall_seconds": (int, float),
    "cycles_per_second": (int, float),
    "counters": dict,
    "phases": dict,
}
PHASE_KEYS = {
    "seconds": (int, float),
    "calls": int,
    "share": (int, float),
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load {path}: {err}")


def check_schema(doc, path):
    """Returns a list of schema problems (empty = valid)."""
    problems = []

    def bad(msg):
        problems.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        bad("top level is not an object")
        return problems
    if doc.get("schema") != SCHEMA:
        bad(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("mode"), str):
        bad("missing or non-string 'mode'")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        bad("'records' missing, not a list, or empty")
        return problems

    seen = set()
    for i, record in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(record, dict):
            bad(f"{where} is not an object")
            continue
        for key, kind in RECORD_KEYS.items():
            if key not in record:
                bad(f"{where} lacks '{key}'")
            elif not isinstance(record[key], kind) or isinstance(
                record[key], bool
            ):
                bad(f"{where}.{key} has wrong type")
        label = record.get("label")
        if isinstance(label, str):
            if label in seen:
                bad(f"duplicate label {label!r}")
            seen.add(label)
        if isinstance(record.get("wall_seconds"), (int, float)):
            if record["wall_seconds"] < 0:
                bad(f"{where}.wall_seconds is negative")
        for phase, entry in (record.get("phases") or {}).items():
            if not isinstance(entry, dict):
                bad(f"{where}.phases[{phase!r}] is not an object")
                continue
            for key, kind in PHASE_KEYS.items():
                if not isinstance(entry.get(key), kind) or isinstance(
                    entry.get(key), bool
                ):
                    bad(f"{where}.phases[{phase!r}].{key} missing or bad")
    return problems


def inventory(doc):
    """{kind: {"ports": sorted set, "arbiters": sorted set, "count": N}}."""
    kinds = {}
    for record in doc["records"]:
        entry = kinds.setdefault(
            record["kind"], {"ports": set(), "arbiters": set(), "count": 0}
        )
        entry["ports"].add(record["ports"])
        entry["arbiters"].add(record["arbiter"])
        entry["count"] += 1
    return kinds


def describe_inventory(doc, path):
    print(f"  {path} ({len(doc['records'])} records):")
    for kind, entry in sorted(inventory(doc).items()):
        ports = ",".join(str(p) for p in sorted(entry["ports"]))
        arbiters = ",".join(sorted(entry["arbiters"]))
        print(
            f"    {kind}: {entry['count']} records, "
            f"ports [{ports}], arbiters [{arbiters}]"
        )


def summarize_skipped(labels, by_label, source):
    """Groups labels unique to one file by (kind, ports) so a missing
    section or port axis reads as one line, not one line per arbiter."""
    if not labels:
        return
    groups = {}
    for label in labels:
        record = by_label[label]
        groups.setdefault((record["kind"], record["ports"]), []).append(
            record["arbiter"]
        )
    print(f"skipped (only in {source}): {len(labels)} label(s)")
    for (kind, ports), arbiters in sorted(groups.items()):
        names = ",".join(sorted(arbiters))
        print(f"  {kind} p{ports}: {names}")


def compare(before_path, after_path, threshold):
    before = load(before_path)
    after = load(after_path)
    for doc, path in ((before, before_path), (after, after_path)):
        problems = check_schema(doc, path)
        if problems:
            print("\n".join(problems), file=sys.stderr)
            return 2

    before_by_label = {r["label"]: r for r in before["records"]}
    after_by_label = {r["label"]: r for r in after["records"]}
    shared = [l for l in before_by_label if l in after_by_label]
    only_before = [l for l in before_by_label if l not in after_by_label]
    only_after = [l for l in after_by_label if l not in before_by_label]

    if not shared:
        print(
            "no shared labels between the two baselines; inventories:",
            file=sys.stderr,
        )
        describe_inventory(before, before_path)
        describe_inventory(after, after_path)
        return 2

    width = max(len(l) for l in shared)
    print(f"{'label':<{width}}  {'before c/s':>12}  {'after c/s':>12}  "
          f"{'speedup':>8}")
    regressions = []
    for label in sorted(shared):
        b = before_by_label[label]["cycles_per_second"]
        a = after_by_label[label]["cycles_per_second"]
        if b <= 0 or a <= 0:
            print(f"{label:<{width}}  {b:>12.3e}  {a:>12.3e}  {'n/a':>8}")
            continue
        speedup = a / b
        flag = ""
        if speedup < 1.0 - threshold:
            regressions.append((label, speedup))
            flag = "  << REGRESSION"
        print(f"{label:<{width}}  {b:>12.3e}  {a:>12.3e}  "
              f"{speedup:>7.2f}x{flag}")

    summarize_skipped(only_before, before_by_label, before_path)
    summarize_skipped(only_after, after_by_label, after_path)

    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(
            f"\n{len(regressions)} label(s) regressed more than "
            f"{threshold:.0%}; worst: {worst[0]} at {worst[1]:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regressions beyond {threshold:.0%} "
          f"across {len(shared)} shared label(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two mmr-perf-v1 baselines or validate one."
    )
    parser.add_argument("files", nargs="*", help="BEFORE.json AFTER.json")
    parser.add_argument(
        "--check", metavar="FILE", help="validate FILE against the schema"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative cycles/sec drop that counts as a regression "
        "(default 0.10)",
    )
    args = parser.parse_args()

    if args.check:
        if args.files:
            parser.error("--check takes no positional files")
        problems = check_schema(load(args.check), args.check)
        if problems:
            print("\n".join(problems), file=sys.stderr)
            return 1
        doc = load(args.check)
        print(f"{args.check}: valid {SCHEMA} "
              f"({len(doc['records'])} records, mode={doc['mode']})")
        return 0

    if len(args.files) != 2:
        parser.error("compare mode wants exactly two files")
    return compare(args.files[0], args.files[1], args.threshold)


if __name__ == "__main__":
    sys.exit(main())
