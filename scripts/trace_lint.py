#!/usr/bin/env python3
"""Lint mmr-trace-v1 JSONL files (stdlib only).

Checks, per file:
  * header line: schema == "mmr-trace-v1" with the full provenance key set
  * every event line carries exactly the v1 key set
    {cycle,type,node,input,output,vc,conn,level,a,b} with integer values
  * event types are from the known taxonomy
  * cycles are non-decreasing (events are emitted in simulation order)
  * input/output/vc respect the header's ports/vcs bounds
  * the header's `events` count matches the number of event lines
  * for complete stream traces (mode == stream, truncated == 0): per
    (node, connection), crossbar traversals never outnumber VC enqueues —
    a flit cannot cross the switch it was never buffered in — and, for
    qd=cicq traces, crosspoint drains (xp_grant) never outnumber crosspoint
    fills (xp_enqueue), which never outnumber VC enqueues

Usage:
  trace_lint.py [--check] [FILE...]
    --check   run the built-in self-test corpus first (exits non-zero on
              self-test failure); FILEs are linted afterwards as usual

Exit status: 0 clean, 1 lint/self-test errors, 2 usage errors.
"""

import json
import sys

SCHEMA = "mmr-trace-v1"
NO_CONNECTION = 2**32 - 1

HEADER_KEYS = {
    "schema", "ports", "vcs", "levels", "arbiter", "seed", "mode",
    "trigger", "events", "truncated",
}
EVENT_KEYS = {
    "cycle", "type", "node", "input", "output", "vc", "conn", "level",
    "a", "b",
}
EVENT_TYPES = {
    "inject", "police", "shape_release", "vc_enqueue", "candidate",
    "grant", "grant_reason", "deny", "xbar", "credit_return", "deliver",
    "deadline_miss", "fault", "watchdog", "audit_sweep", "admit", "release",
    "pause", "resume", "ecn_mark", "mmu_drop", "xp_enqueue", "xp_grant",
}
# Control-plane events are node-scoped; their port/VC fields are not
# meaningful and are excluded from the bounds checks.
CONTROL_TYPES = {"fault", "watchdog", "audit_sweep"}


def lint_lines(lines, name="<input>"):
    """Returns a list of 'name:line: message' strings (empty = clean)."""
    errors = []

    def err(line_no, message):
        errors.append(f"{name}:{line_no}: {message}")

    rows = [(i + 1, line) for i, line in enumerate(lines) if line.strip()]
    if not rows:
        return [f"{name}:1: empty trace (missing header line)"]

    head_no, head_line = rows[0]
    try:
        header = json.loads(head_line)
    except json.JSONDecodeError as exc:
        return [f"{name}:{head_no}: header is not valid JSON: {exc}"]
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        return [f"{name}:{head_no}: header schema is not '{SCHEMA}'"]
    missing = HEADER_KEYS - header.keys()
    extra = header.keys() - HEADER_KEYS
    if missing:
        err(head_no, f"header is missing keys: {sorted(missing)}")
    if extra:
        err(head_no, f"header has unknown keys: {sorted(extra)}")
    for key in ("ports", "vcs", "levels", "seed", "events", "truncated"):
        if key in header and not isinstance(header[key], int):
            err(head_no, f"header key '{key}' must be an integer")
    if errors:
        return errors

    ports = header["ports"]
    vcs = header["vcs"]
    last_cycle = -1
    enqueues = {}  # (node, conn) -> count
    xbars = {}
    xp_fills = {}
    xp_drains = {}
    event_count = 0

    for line_no, line in rows[1:]:
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            err(line_no, f"event is not valid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            err(line_no, "event line is not a JSON object")
            continue
        event_count += 1
        keys = set(event.keys())
        if keys != EVENT_KEYS:
            err(line_no, f"event keys must be exactly {sorted(EVENT_KEYS)}; "
                         f"missing {sorted(EVENT_KEYS - keys)}, "
                         f"unknown {sorted(keys - EVENT_KEYS)}")
            continue
        bad_value = [k for k in EVENT_KEYS - {"type"}
                     if not isinstance(event[k], int)]
        if bad_value or not isinstance(event["type"], str):
            err(line_no, f"non-integer event fields: {sorted(bad_value)}")
            continue
        etype = event["type"]
        if etype not in EVENT_TYPES:
            err(line_no, f"unknown event type '{etype}'")
            continue
        if event["cycle"] < last_cycle:
            err(line_no, f"cycle regressed: {event['cycle']} after "
                         f"{last_cycle}")
        last_cycle = max(last_cycle, event["cycle"])
        if etype not in CONTROL_TYPES:
            if ports and not (0 <= event["input"] < ports):
                err(line_no, f"input {event['input']} out of range "
                             f"[0, {ports})")
            if ports and not (0 <= event["output"] < ports):
                err(line_no, f"output {event['output']} out of range "
                             f"[0, {ports})")
            if vcs and not (0 <= event["vc"] < vcs):
                err(line_no, f"vc {event['vc']} out of range [0, {vcs})")
        conn = event["conn"]
        if conn != NO_CONNECTION:
            key = (event["node"], conn)
            if etype == "vc_enqueue":
                enqueues[key] = enqueues.get(key, 0) + 1
            elif etype == "xbar":
                xbars[key] = xbars.get(key, 0) + 1
            elif etype == "xp_enqueue":
                xp_fills[key] = xp_fills.get(key, 0) + 1
            elif etype == "xp_grant":
                xp_drains[key] = xp_drains.get(key, 0) + 1

    if event_count != header["events"]:
        err(head_no, f"header claims {header['events']} events but the file "
                     f"holds {event_count}")

    if header["mode"] == "stream" and header["truncated"] == 0:
        for key, crossed in sorted(xbars.items()):
            queued = enqueues.get(key, 0)
            if crossed > queued:
                node, conn = key
                err(head_no, f"node {node} connection {conn}: {crossed} xbar "
                             f"events but only {queued} vc_enqueue events")
        # Crosspoint flow conservation (qd=cicq): a flit reaches a
        # crosspoint from a VOQ and leaves it at most once.
        for key, filled in sorted(xp_fills.items()):
            queued = enqueues.get(key, 0)
            if filled > queued:
                node, conn = key
                err(head_no, f"node {node} connection {conn}: {filled} "
                             f"xp_enqueue events but only {queued} "
                             f"vc_enqueue events")
        for key, drained in sorted(xp_drains.items()):
            filled = xp_fills.get(key, 0)
            if drained > filled:
                node, conn = key
                err(head_no, f"node {node} connection {conn}: {drained} "
                             f"xp_grant events but only {filled} "
                             f"xp_enqueue events")
    return errors


def lint_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [f"{path}:0: cannot read: {exc}"]
    return lint_lines(lines, name=path)


# --- self-test corpus ------------------------------------------------------

def _good_trace():
    header = {"schema": SCHEMA, "ports": 2, "vcs": 4, "levels": 2,
              "arbiter": "coa", "seed": 7, "mode": "stream",
              "trigger": "end", "events": 3, "truncated": 0}

    def event(**kwargs):
        base = {"cycle": 0, "type": "inject", "node": 0, "input": 0,
                "output": 0, "vc": 0, "conn": 5, "level": 0, "a": 0, "b": 0}
        base.update(kwargs)
        return base

    lines = [json.dumps(header),
             json.dumps(event(cycle=1, type="vc_enqueue")),
             json.dumps(event(cycle=2, type="xbar", output=1)),
             json.dumps(event(cycle=2, type="watchdog", conn=NO_CONNECTION,
                              input=999)),
             json.dumps(event(cycle=3, type="ecn_mark", vc=1, a=12, b=40)),
             json.dumps(event(cycle=3, type="pause", conn=NO_CONNECTION,
                              input=1, a=24, b=4)),
             json.dumps(event(cycle=4, type="mmu_drop", vc=2, a=13, b=55)),
             json.dumps(event(cycle=5, type="resume", conn=NO_CONNECTION,
                              input=1, a=12, b=2)),
             json.dumps(event(cycle=6, type="vc_enqueue", conn=8)),
             json.dumps(event(cycle=6, type="xp_enqueue", conn=8, output=1,
                              a=3, b=1)),
             json.dumps(event(cycle=7, type="xp_grant", conn=8, output=1,
                              a=3, b=0)),
             json.dumps(event(cycle=7, type="xbar", conn=8, output=1))]
    header["events"] = len(lines) - 1
    lines[0] = json.dumps(header)
    return lines


def self_test():
    good = _good_trace()
    cases = [("clean trace", good, False)]

    bad = list(good)
    bad[0] = bad[0].replace(SCHEMA, "mmr-trace-v0")
    cases.append(("wrong schema", bad, True))

    bad = list(good)
    bad[1] = json.dumps({**json.loads(bad[1]), "surprise": 1})
    cases.append(("extra event key", bad, True))

    bad = list(good)
    bad[1] = bad[1].replace("vc_enqueue", "teleport")
    cases.append(("unknown type", bad, True))

    bad = list(good)
    bad[2] = json.dumps({**json.loads(bad[2]), "cycle": 0})
    cases.append(("cycle regression", bad, True))

    bad = list(good)
    bad[2] = json.dumps({**json.loads(bad[2]), "vc": 99})
    cases.append(("vc out of bounds", bad, True))

    bad = list(good)
    bad[0] = json.dumps({**json.loads(bad[0]), "events": 99})
    cases.append(("event count mismatch", bad, True))

    bad = list(good)
    # MMU pause/resume target a specific port: unlike the node-scoped
    # control events, their input field must respect the port bounds.
    bad[5] = json.dumps({**json.loads(bad[5]), "input": 999})
    cases.append(("pause input out of bounds", bad, True))

    bad = list(good)
    del bad[1]  # drop the vc_enqueue, keep the xbar
    bad[0] = json.dumps({**json.loads(bad[0]),
                         "events": json.loads(bad[0])["events"] - 1})
    cases.append(("xbar without enqueue", bad, True))

    bad = list(good)
    del bad[-3]  # drop connection 8's xp_enqueue, keep its xp_grant
    bad[0] = json.dumps({**json.loads(bad[0]),
                         "events": json.loads(bad[0])["events"] - 1})
    cases.append(("xp_grant without xp_enqueue", bad, True))

    bad = list(good)
    del bad[-4]  # drop connection 8's vc_enqueue, keep its xp_enqueue
    bad[0] = json.dumps({**json.loads(bad[0]),
                         "events": json.loads(bad[0])["events"] - 1})
    cases.append(("xp_enqueue without vc_enqueue", bad, True))

    bad = list(good)
    bad[-2] = bad[-2].replace("xp_grant", "xp_teleport")
    cases.append(("unknown crosspoint type", bad, True))

    failures = 0
    for label, lines, expect_errors in cases:
        errors = lint_lines(lines, name=label)
        if bool(errors) != expect_errors:
            failures += 1
            print(f"self-test FAILED: {label}: expected "
                  f"{'errors' if expect_errors else 'clean'}, got {errors}",
                  file=sys.stderr)
    if failures == 0:
        print(f"trace_lint self-test ok ({len(cases)} cases)")
    return failures


def main(argv):
    args = list(argv[1:])
    run_check = False
    if args and args[0] == "--check":
        run_check = True
        args = args[1:]
    if not run_check and not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    status = 0
    if run_check and self_test() != 0:
        status = 1
    for path in args:
        errors = lint_file(path)
        if errors:
            status = 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
