#!/usr/bin/env python3
"""Lint mmr-snap-v1 checkpoint files (stdlib only).

Validates the binary container layout written by src/mmr/snapshot/format.cpp
(all integers little-endian):

  magic            "mmr-snap-v1\\n"        12 bytes
  u32 version      1
  u64 config_digest
  u64 cycle
  u32 section_count
  u32 header_crc   crc32 of the 24 bytes version..section_count
  per section:
    u32 name_len, name bytes, u64 data_len, u32 data_crc, data bytes

Checks, per file:
  * magic and version match
  * header CRC matches the version..section_count bytes
  * every section parses without running past end-of-file
  * section names are non-empty printable ASCII and unique within the file
  * every section's payload CRC matches
  * no trailing garbage after the last section

Usage:
  snap_lint.py [--check] [FILE...]
    --check   run the built-in self-test corpus first (exits non-zero on
              self-test failure); FILEs are linted afterwards as usual

Exit status: 0 clean, 1 lint/self-test errors, 2 usage errors.
"""

import struct
import sys
import zlib

MAGIC = b"mmr-snap-v1\n"
VERSION = 1
MAX_NAME_LEN = 4096  # sanity bound; real section names are short identifiers


def lint_bytes(blob, name="<input>"):
    """Returns a list of 'name: message' strings (empty = clean)."""
    errors = []

    def err(message):
        errors.append(f"{name}: {message}")

    if len(blob) < len(MAGIC) + 24 + 4:
        return [f"{name}: truncated: {len(blob)} bytes is smaller than the "
                f"fixed header"]
    if blob[:len(MAGIC)] != MAGIC:
        return [f"{name}: bad magic {blob[:len(MAGIC)]!r} (want {MAGIC!r})"]

    header = blob[len(MAGIC):len(MAGIC) + 24]
    version, config_digest, cycle, section_count = struct.unpack(
        "<IQQI", header)
    (header_crc,) = struct.unpack_from("<I", blob, len(MAGIC) + 24)
    if version != VERSION:
        return [f"{name}: unsupported version {version} (want {VERSION})"]
    if header_crc != zlib.crc32(header):
        return [f"{name}: header CRC mismatch (stored {header_crc:#010x}, "
                f"computed {zlib.crc32(header):#010x})"]

    offset = len(MAGIC) + 24 + 4
    seen = set()
    for index in range(section_count):
        where = f"section {index}/{section_count} at offset {offset}"
        if offset + 4 > len(blob):
            err(f"truncated: {where}: no room for name_len")
            return errors
        (name_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if name_len == 0 or name_len > MAX_NAME_LEN:
            err(f"{where}: implausible name_len {name_len}")
            return errors
        if offset + name_len > len(blob):
            err(f"truncated: {where}: name runs past end of file")
            return errors
        raw_name = blob[offset:offset + name_len]
        offset += name_len
        if not all(0x20 <= byte < 0x7F for byte in raw_name):
            err(f"{where}: section name is not printable ASCII")
            return errors
        section = raw_name.decode("ascii")
        if section in seen:
            err(f"{where}: duplicate section name '{section}'")
        seen.add(section)
        if offset + 12 > len(blob):
            err(f"truncated: section '{section}': no room for data_len/crc")
            return errors
        data_len, data_crc = struct.unpack_from("<QI", blob, offset)
        offset += 12
        if offset + data_len > len(blob):
            err(f"truncated: section '{section}': {data_len}-byte payload "
                f"runs past end of file")
            return errors
        payload = blob[offset:offset + data_len]
        offset += data_len
        if data_crc != zlib.crc32(payload):
            err(f"section '{section}': payload CRC mismatch "
                f"(stored {data_crc:#010x}, "
                f"computed {zlib.crc32(payload):#010x})")

    if offset != len(blob):
        err(f"{len(blob) - offset} trailing bytes after the last section")
    if not errors:
        print(f"{name}: ok (cycle {cycle}, config digest "
              f"{config_digest:#018x}, {section_count} sections)")
    return errors


def lint_file(path):
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    return lint_bytes(blob, name=path)


# --- self-test corpus ------------------------------------------------------

def _encode(config_digest, cycle, sections):
    header = struct.pack("<IQQI", VERSION, config_digest, cycle,
                         len(sections))
    blob = MAGIC + header + struct.pack("<I", zlib.crc32(header))
    for section, payload in sections:
        raw = section.encode("ascii")
        blob += struct.pack("<I", len(raw)) + raw
        blob += struct.pack("<QI", len(payload), zlib.crc32(payload))
        blob += payload
    return blob


def self_test():
    good = _encode(0xC0FFEE, 4200,
                   [("sim", b"\x01\x02\x03\x04"),
                    ("router", bytes(range(256))),
                    ("empty", b"")])
    cases = [("clean snapshot", good, False)]

    cases.append(("bad magic", b"X" + good[1:], True))

    bad = bytearray(good)
    bad[12] = 99  # low byte of the little-endian version word
    cases.append(("bad version", bytes(bad), True))

    bad = bytearray(good)
    bad[20] ^= 0x01  # a cycle byte, covered by the header CRC
    cases.append(("header CRC mismatch", bytes(bad), True))

    bad = bytearray(good)
    bad[-1] ^= 0x80  # last payload byte of the final section
    cases.append(("payload CRC mismatch", bytes(bad), True))

    cases.append(("truncated header", good[:20], True))
    cases.append(("truncated mid-section", good[:-3], True))
    cases.append(("trailing garbage", good + b"\x00", True))

    bad = _encode(1, 1, [("twin", b"a"), ("twin", b"b")])
    cases.append(("duplicate section name", bad, True))

    bad = _encode(1, 1, [("bin\x01ary", b"a")])
    cases.append(("non-printable section name", bad, True))

    failures = 0
    for label, blob, expect_errors in cases:
        errors = lint_bytes(blob, name=label)
        if bool(errors) != expect_errors:
            failures += 1
            print(f"self-test FAILED: {label}: expected "
                  f"{'errors' if expect_errors else 'clean'}, got {errors}",
                  file=sys.stderr)
    if failures == 0:
        print(f"snap_lint self-test ok ({len(cases)} cases)")
    return failures


def main(argv):
    args = list(argv[1:])
    run_check = False
    if args and args[0] == "--check":
        run_check = True
        args = args[1:]
    if not run_check and not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    status = 0
    if run_check and self_test() != 0:
        status = 1
    for path in args:
        errors = lint_file(path)
        if errors:
            status = 1
            for error in errors:
                print(error, file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
