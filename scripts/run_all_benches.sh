#!/usr/bin/env bash
# Runs every bench binary and tees the output into results/.
# Usage: scripts/run_all_benches.sh [build-dir] [quick|full]
set -euo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-quick}"
OUT_DIR="results/${MODE}"
mkdir -p "${OUT_DIR}"

if [[ "${MODE}" == "full" ]]; then
  export MMR_FULL=1
fi

for bench in "${BUILD_DIR}"/bench/*; do
  [[ -f "${bench}" && -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "=== ${name} (${MODE}) ==="
  "${bench}" | tee "${OUT_DIR}/${name}.txt"
  echo
done
echo "outputs in ${OUT_DIR}/"
