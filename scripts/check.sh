#!/usr/bin/env bash
# Full local gate: plain build + tier-1 tests, the tier-2 soaks
# (differential arbiter audit + 200-seed overload-protection soak), then the
# whole suite — mmr_overload included — again under AddressSanitizer +
# UndefinedBehaviorSanitizer (SANITIZE applies tree-wide).
# Usage: scripts/check.sh [jobs]
set -euo pipefail

JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build (warnings as errors) ==="
cmake -B build -S . -DMMR_WERROR=ON
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" -LE tier2

echo
echo "=== tier-2 soaks (arbiter audit + overload protection, 200 seeds each) ==="
ctest --test-dir build --output-on-failure -j "${JOBS}" -L tier2

echo
echo "=== sanitized build (address,undefined) ==="
cmake -B build-asan -S . -DMMR_WERROR=ON -DSANITIZE=address,undefined
cmake --build build-asan -j "${JOBS}"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "all checks passed"
