#!/usr/bin/env bash
# Full local gate: plain build + tier-1 tests, the tier-2 soaks
# (differential arbiter audit + 200-seed overload-protection soak), then the
# whole suite — mmr_overload included — again under AddressSanitizer +
# UndefinedBehaviorSanitizer (SANITIZE applies tree-wide).
# Usage: scripts/check.sh [--perf] [jobs]
#   --perf   additionally run the perf_baseline smoke sweep and validate the
#            emitted BENCH_perf.json schema with scripts/bench_compare.py
set -euo pipefail

RUN_PERF=0
if [[ "${1:-}" == "--perf" ]]; then
  RUN_PERF=1
  shift
fi
JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build (warnings as errors) ==="
cmake -B build -S . -DMMR_WERROR=ON
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" -LE tier2

echo
echo "=== tier-2 soaks (arbiter audit, overload protection, MMU; 200 seeds each) ==="
ctest --test-dir build --output-on-failure -j "${JOBS}" -L tier2

echo
echo "=== MMU stage (incast survival verdict, credit vs flow=shared) ==="
./build/bench/incast_survival warmup=2000 measure=20000

echo
echo "=== CICQ stage (burst instability vs stabilization verdict) ==="
./build/bench/cicq_stability warmup=5000 measure=40000

echo
echo "=== trace stage (lint self-test + smoke trace) ==="
python3 scripts/trace_lint.py --check
./build/bench/trace_overhead warmup=500 measure=3000 \
  out=build/TRACE_smoke.jsonl
python3 scripts/trace_lint.py build/TRACE_smoke.jsonl

echo
echo "=== snapshot stage (lint self-test + resume-equivalence smoke) ==="
python3 scripts/snap_lint.py --check
./build/bench/snapshot_soak seeds=2 keep=build/SNAP_smoke.snap
python3 scripts/snap_lint.py build/SNAP_smoke.snap

echo
echo "=== network-scale stage (sharded engine equivalence + scaling smoke) ==="
./build/bench/network_scale_soak seeds=50 big=1
./build/bench/network_scale mode=smoke out=build/BENCH_network_smoke.json
python3 scripts/bench_compare.py --check build/BENCH_network_smoke.json

if [[ "${RUN_PERF}" == "1" ]]; then
  echo
  echo "=== perf smoke (perf_baseline + schema check) ==="
  ./build/bench/perf_baseline mode=smoke ports=4 arbiters=coa,coa-scan \
    micro_ports=4,32,128 out=build/BENCH_perf_smoke.json
  python3 scripts/bench_compare.py --check build/BENCH_perf_smoke.json
  echo
  echo "=== wide-port arbitration micro (bitset engines, p16..p128) ==="
  ./build/bench/arbiter_micro \
    --benchmark_filter='/(16|32|64|128)$' \
    --benchmark_min_time=0.05
fi

echo
echo "=== sanitized build (address,undefined) ==="
cmake -B build-asan -S . -DMMR_WERROR=ON -DSANITIZE=address,undefined
cmake --build build-asan -j "${JOBS}"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "=== thread-sanitized sharded engine (equivalence soak under TSan) ==="
cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target network_scale_soak
TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/bench/network_scale_soak seeds=5 threads=4

echo
echo "all checks passed"
