file(REMOVE_RECURSE
  "CMakeFiles/test_rounds_admission.dir/test_rounds_admission.cpp.o"
  "CMakeFiles/test_rounds_admission.dir/test_rounds_admission.cpp.o.d"
  "test_rounds_admission"
  "test_rounds_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rounds_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
