# Empty compiler generated dependencies file for test_rounds_admission.
# This may be replaced when dependencies are built.
