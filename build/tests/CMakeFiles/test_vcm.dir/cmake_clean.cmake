file(REMOVE_RECURSE
  "CMakeFiles/test_vcm.dir/test_vcm.cpp.o"
  "CMakeFiles/test_vcm.dir/test_vcm.cpp.o.d"
  "test_vcm"
  "test_vcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
