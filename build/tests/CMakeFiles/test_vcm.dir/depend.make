# Empty dependencies file for test_vcm.
# This may be replaced when dependencies are built.
