# Empty dependencies file for test_vbr.
# This may be replaced when dependencies are built.
