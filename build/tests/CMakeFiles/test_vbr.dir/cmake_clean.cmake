file(REMOVE_RECURSE
  "CMakeFiles/test_vbr.dir/test_vbr.cpp.o"
  "CMakeFiles/test_vbr.dir/test_vbr.cpp.o.d"
  "test_vbr"
  "test_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
