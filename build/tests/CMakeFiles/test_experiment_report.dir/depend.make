# Empty dependencies file for test_experiment_report.
# This may be replaced when dependencies are built.
