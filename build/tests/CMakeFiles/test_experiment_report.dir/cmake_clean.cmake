file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_report.dir/test_experiment_report.cpp.o"
  "CMakeFiles/test_experiment_report.dir/test_experiment_report.cpp.o.d"
  "test_experiment_report"
  "test_experiment_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
