file(REMOVE_RECURSE
  "CMakeFiles/test_qos_behavior.dir/test_qos_behavior.cpp.o"
  "CMakeFiles/test_qos_behavior.dir/test_qos_behavior.cpp.o.d"
  "test_qos_behavior"
  "test_qos_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qos_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
