# Empty dependencies file for test_cbr.
# This may be replaced when dependencies are built.
