file(REMOVE_RECURSE
  "CMakeFiles/test_cbr.dir/test_cbr.cpp.o"
  "CMakeFiles/test_cbr.dir/test_cbr.cpp.o.d"
  "test_cbr"
  "test_cbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
