file(REMOVE_RECURSE
  "CMakeFiles/test_candidate.dir/test_candidate.cpp.o"
  "CMakeFiles/test_candidate.dir/test_candidate.cpp.o.d"
  "test_candidate"
  "test_candidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
