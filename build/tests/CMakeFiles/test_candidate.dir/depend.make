# Empty dependencies file for test_candidate.
# This may be replaced when dependencies are built.
