# Empty compiler generated dependencies file for test_link_scheduler.
# This may be replaced when dependencies are built.
