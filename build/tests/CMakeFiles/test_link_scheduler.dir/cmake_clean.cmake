file(REMOVE_RECURSE
  "CMakeFiles/test_link_scheduler.dir/test_link_scheduler.cpp.o"
  "CMakeFiles/test_link_scheduler.dir/test_link_scheduler.cpp.o.d"
  "test_link_scheduler"
  "test_link_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
