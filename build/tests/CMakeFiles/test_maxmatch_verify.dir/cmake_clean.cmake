file(REMOVE_RECURSE
  "CMakeFiles/test_maxmatch_verify.dir/test_maxmatch_verify.cpp.o"
  "CMakeFiles/test_maxmatch_verify.dir/test_maxmatch_verify.cpp.o.d"
  "test_maxmatch_verify"
  "test_maxmatch_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmatch_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
