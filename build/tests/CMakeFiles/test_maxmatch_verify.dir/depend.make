# Empty dependencies file for test_maxmatch_verify.
# This may be replaced when dependencies are built.
