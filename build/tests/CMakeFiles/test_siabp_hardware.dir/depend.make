# Empty dependencies file for test_siabp_hardware.
# This may be replaced when dependencies are built.
