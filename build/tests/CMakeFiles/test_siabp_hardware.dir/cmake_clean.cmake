file(REMOVE_RECURSE
  "CMakeFiles/test_siabp_hardware.dir/test_siabp_hardware.cpp.o"
  "CMakeFiles/test_siabp_hardware.dir/test_siabp_hardware.cpp.o.d"
  "test_siabp_hardware"
  "test_siabp_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_siabp_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
