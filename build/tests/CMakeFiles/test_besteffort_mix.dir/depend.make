# Empty dependencies file for test_besteffort_mix.
# This may be replaced when dependencies are built.
