
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_besteffort_mix.cpp" "tests/CMakeFiles/test_besteffort_mix.dir/test_besteffort_mix.cpp.o" "gcc" "tests/CMakeFiles/test_besteffort_mix.dir/test_besteffort_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_arbiter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
