file(REMOVE_RECURSE
  "CMakeFiles/test_besteffort_mix.dir/test_besteffort_mix.cpp.o"
  "CMakeFiles/test_besteffort_mix.dir/test_besteffort_mix.cpp.o.d"
  "test_besteffort_mix"
  "test_besteffort_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_besteffort_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
