file(REMOVE_RECURSE
  "CMakeFiles/test_islip_pim.dir/test_islip_pim.cpp.o"
  "CMakeFiles/test_islip_pim.dir/test_islip_pim.cpp.o.d"
  "test_islip_pim"
  "test_islip_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_islip_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
