# Empty dependencies file for test_islip_pim.
# This may be replaced when dependencies are built.
