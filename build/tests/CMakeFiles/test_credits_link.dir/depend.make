# Empty dependencies file for test_credits_link.
# This may be replaced when dependencies are built.
