file(REMOVE_RECURSE
  "CMakeFiles/test_credits_link.dir/test_credits_link.cpp.o"
  "CMakeFiles/test_credits_link.dir/test_credits_link.cpp.o.d"
  "test_credits_link"
  "test_credits_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_credits_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
