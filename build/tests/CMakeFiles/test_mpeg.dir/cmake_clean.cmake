file(REMOVE_RECURSE
  "CMakeFiles/test_mpeg.dir/test_mpeg.cpp.o"
  "CMakeFiles/test_mpeg.dir/test_mpeg.cpp.o.d"
  "test_mpeg"
  "test_mpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
