# Empty compiler generated dependencies file for test_mpeg.
# This may be replaced when dependencies are built.
