# Empty dependencies file for test_arbiters_common.
# This may be replaced when dependencies are built.
