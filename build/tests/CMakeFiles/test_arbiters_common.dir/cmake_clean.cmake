file(REMOVE_RECURSE
  "CMakeFiles/test_arbiters_common.dir/test_arbiters_common.cpp.o"
  "CMakeFiles/test_arbiters_common.dir/test_arbiters_common.cpp.o.d"
  "test_arbiters_common"
  "test_arbiters_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arbiters_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
