file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar_router.dir/test_crossbar_router.cpp.o"
  "CMakeFiles/test_crossbar_router.dir/test_crossbar_router.cpp.o.d"
  "test_crossbar_router"
  "test_crossbar_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
