# Empty dependencies file for test_system_configs.
# This may be replaced when dependencies are built.
