file(REMOVE_RECURSE
  "CMakeFiles/test_system_configs.dir/test_system_configs.cpp.o"
  "CMakeFiles/test_system_configs.dir/test_system_configs.cpp.o.d"
  "test_system_configs"
  "test_system_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
