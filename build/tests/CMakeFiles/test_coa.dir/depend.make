# Empty dependencies file for test_coa.
# This may be replaced when dependencies are built.
