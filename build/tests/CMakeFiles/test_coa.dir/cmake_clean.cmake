file(REMOVE_RECURSE
  "CMakeFiles/test_coa.dir/test_coa.cpp.o"
  "CMakeFiles/test_coa.dir/test_coa.cpp.o.d"
  "test_coa"
  "test_coa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
