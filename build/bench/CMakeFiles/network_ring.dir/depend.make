# Empty dependencies file for network_ring.
# This may be replaced when dependencies are built.
