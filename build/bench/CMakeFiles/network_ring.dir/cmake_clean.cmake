file(REMOVE_RECURSE
  "CMakeFiles/network_ring.dir/network_ring.cpp.o"
  "CMakeFiles/network_ring.dir/network_ring.cpp.o.d"
  "network_ring"
  "network_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
