# Empty compiler generated dependencies file for fig6_trace_profile.
# This may be replaced when dependencies are built.
