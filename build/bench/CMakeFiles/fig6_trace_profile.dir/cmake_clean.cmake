file(REMOVE_RECURSE
  "CMakeFiles/fig6_trace_profile.dir/fig6_trace_profile.cpp.o"
  "CMakeFiles/fig6_trace_profile.dir/fig6_trace_profile.cpp.o.d"
  "fig6_trace_profile"
  "fig6_trace_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_trace_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
