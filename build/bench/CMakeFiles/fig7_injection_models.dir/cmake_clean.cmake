file(REMOVE_RECURSE
  "CMakeFiles/fig7_injection_models.dir/fig7_injection_models.cpp.o"
  "CMakeFiles/fig7_injection_models.dir/fig7_injection_models.cpp.o.d"
  "fig7_injection_models"
  "fig7_injection_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_injection_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
