# Empty compiler generated dependencies file for fig7_injection_models.
# This may be replaced when dependencies are built.
