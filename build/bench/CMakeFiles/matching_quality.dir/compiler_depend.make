# Empty compiler generated dependencies file for matching_quality.
# This may be replaced when dependencies are built.
