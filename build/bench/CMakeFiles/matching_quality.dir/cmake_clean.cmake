file(REMOVE_RECURSE
  "CMakeFiles/matching_quality.dir/matching_quality.cpp.o"
  "CMakeFiles/matching_quality.dir/matching_quality.cpp.o.d"
  "matching_quality"
  "matching_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
