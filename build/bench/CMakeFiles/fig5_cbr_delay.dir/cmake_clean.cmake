file(REMOVE_RECURSE
  "CMakeFiles/fig5_cbr_delay.dir/fig5_cbr_delay.cpp.o"
  "CMakeFiles/fig5_cbr_delay.dir/fig5_cbr_delay.cpp.o.d"
  "fig5_cbr_delay"
  "fig5_cbr_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cbr_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
