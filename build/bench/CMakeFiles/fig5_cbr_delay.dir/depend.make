# Empty dependencies file for fig5_cbr_delay.
# This may be replaced when dependencies are built.
