file(REMOVE_RECURSE
  "CMakeFiles/jitter_vbr.dir/jitter_vbr.cpp.o"
  "CMakeFiles/jitter_vbr.dir/jitter_vbr.cpp.o.d"
  "jitter_vbr"
  "jitter_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
