# Empty dependencies file for jitter_vbr.
# This may be replaced when dependencies are built.
