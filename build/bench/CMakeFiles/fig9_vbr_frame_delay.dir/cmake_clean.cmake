file(REMOVE_RECURSE
  "CMakeFiles/fig9_vbr_frame_delay.dir/fig9_vbr_frame_delay.cpp.o"
  "CMakeFiles/fig9_vbr_frame_delay.dir/fig9_vbr_frame_delay.cpp.o.d"
  "fig9_vbr_frame_delay"
  "fig9_vbr_frame_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vbr_frame_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
