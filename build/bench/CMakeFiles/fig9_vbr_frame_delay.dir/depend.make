# Empty dependencies file for fig9_vbr_frame_delay.
# This may be replaced when dependencies are built.
