# Empty compiler generated dependencies file for arbiter_micro.
# This may be replaced when dependencies are built.
