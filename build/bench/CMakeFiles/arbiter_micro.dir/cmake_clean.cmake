file(REMOVE_RECURSE
  "CMakeFiles/arbiter_micro.dir/arbiter_micro.cpp.o"
  "CMakeFiles/arbiter_micro.dir/arbiter_micro.cpp.o.d"
  "arbiter_micro"
  "arbiter_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
