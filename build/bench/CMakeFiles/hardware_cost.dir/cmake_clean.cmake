file(REMOVE_RECURSE
  "CMakeFiles/hardware_cost.dir/hardware_cost.cpp.o"
  "CMakeFiles/hardware_cost.dir/hardware_cost.cpp.o.d"
  "hardware_cost"
  "hardware_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
