# Empty dependencies file for hardware_cost.
# This may be replaced when dependencies are built.
