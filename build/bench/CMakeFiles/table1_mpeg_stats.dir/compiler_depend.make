# Empty compiler generated dependencies file for table1_mpeg_stats.
# This may be replaced when dependencies are built.
