file(REMOVE_RECURSE
  "CMakeFiles/qos_protection.dir/qos_protection.cpp.o"
  "CMakeFiles/qos_protection.dir/qos_protection.cpp.o.d"
  "qos_protection"
  "qos_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
