# Empty compiler generated dependencies file for cluster_ring.
# This may be replaced when dependencies are built.
