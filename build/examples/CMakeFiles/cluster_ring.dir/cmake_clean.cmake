file(REMOVE_RECURSE
  "CMakeFiles/cluster_ring.dir/cluster_ring.cpp.o"
  "CMakeFiles/cluster_ring.dir/cluster_ring.cpp.o.d"
  "cluster_ring"
  "cluster_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
