# Empty compiler generated dependencies file for arbiter_playground.
# This may be replaced when dependencies are built.
