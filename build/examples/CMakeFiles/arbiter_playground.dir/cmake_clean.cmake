file(REMOVE_RECURSE
  "CMakeFiles/arbiter_playground.dir/arbiter_playground.cpp.o"
  "CMakeFiles/arbiter_playground.dir/arbiter_playground.cpp.o.d"
  "arbiter_playground"
  "arbiter_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
