file(REMOVE_RECURSE
  "CMakeFiles/mmr_core.dir/mmr/core/experiment.cpp.o"
  "CMakeFiles/mmr_core.dir/mmr/core/experiment.cpp.o.d"
  "CMakeFiles/mmr_core.dir/mmr/core/fairness.cpp.o"
  "CMakeFiles/mmr_core.dir/mmr/core/fairness.cpp.o.d"
  "CMakeFiles/mmr_core.dir/mmr/core/metrics.cpp.o"
  "CMakeFiles/mmr_core.dir/mmr/core/metrics.cpp.o.d"
  "CMakeFiles/mmr_core.dir/mmr/core/report.cpp.o"
  "CMakeFiles/mmr_core.dir/mmr/core/report.cpp.o.d"
  "CMakeFiles/mmr_core.dir/mmr/core/simulation.cpp.o"
  "CMakeFiles/mmr_core.dir/mmr/core/simulation.cpp.o.d"
  "libmmr_core.a"
  "libmmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
