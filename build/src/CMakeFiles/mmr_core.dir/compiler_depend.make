# Empty compiler generated dependencies file for mmr_core.
# This may be replaced when dependencies are built.
