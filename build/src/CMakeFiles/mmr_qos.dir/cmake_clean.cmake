file(REMOVE_RECURSE
  "CMakeFiles/mmr_qos.dir/mmr/qos/admission.cpp.o"
  "CMakeFiles/mmr_qos.dir/mmr/qos/admission.cpp.o.d"
  "CMakeFiles/mmr_qos.dir/mmr/qos/connection.cpp.o"
  "CMakeFiles/mmr_qos.dir/mmr/qos/connection.cpp.o.d"
  "CMakeFiles/mmr_qos.dir/mmr/qos/priority.cpp.o"
  "CMakeFiles/mmr_qos.dir/mmr/qos/priority.cpp.o.d"
  "CMakeFiles/mmr_qos.dir/mmr/qos/rounds.cpp.o"
  "CMakeFiles/mmr_qos.dir/mmr/qos/rounds.cpp.o.d"
  "libmmr_qos.a"
  "libmmr_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
