
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmr/qos/admission.cpp" "src/CMakeFiles/mmr_qos.dir/mmr/qos/admission.cpp.o" "gcc" "src/CMakeFiles/mmr_qos.dir/mmr/qos/admission.cpp.o.d"
  "/root/repo/src/mmr/qos/connection.cpp" "src/CMakeFiles/mmr_qos.dir/mmr/qos/connection.cpp.o" "gcc" "src/CMakeFiles/mmr_qos.dir/mmr/qos/connection.cpp.o.d"
  "/root/repo/src/mmr/qos/priority.cpp" "src/CMakeFiles/mmr_qos.dir/mmr/qos/priority.cpp.o" "gcc" "src/CMakeFiles/mmr_qos.dir/mmr/qos/priority.cpp.o.d"
  "/root/repo/src/mmr/qos/rounds.cpp" "src/CMakeFiles/mmr_qos.dir/mmr/qos/rounds.cpp.o" "gcc" "src/CMakeFiles/mmr_qos.dir/mmr/qos/rounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
