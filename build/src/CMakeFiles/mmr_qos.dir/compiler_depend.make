# Empty compiler generated dependencies file for mmr_qos.
# This may be replaced when dependencies are built.
