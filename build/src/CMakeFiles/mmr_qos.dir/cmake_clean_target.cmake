file(REMOVE_RECURSE
  "libmmr_qos.a"
)
