file(REMOVE_RECURSE
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate_order.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate_order.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/factory.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/factory.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/greedy_priority.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/greedy_priority.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/hardware_model.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/hardware_model.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/islip.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/islip.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/matching.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/matching.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/maxmatch.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/maxmatch.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/pim.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/pim.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/verify.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/verify.cpp.o.d"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/wavefront.cpp.o"
  "CMakeFiles/mmr_arbiter.dir/mmr/arbiter/wavefront.cpp.o.d"
  "libmmr_arbiter.a"
  "libmmr_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
