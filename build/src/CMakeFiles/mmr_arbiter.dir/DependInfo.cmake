
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmr/arbiter/candidate.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate.cpp.o.d"
  "/root/repo/src/mmr/arbiter/candidate_order.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate_order.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/candidate_order.cpp.o.d"
  "/root/repo/src/mmr/arbiter/factory.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/factory.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/factory.cpp.o.d"
  "/root/repo/src/mmr/arbiter/greedy_priority.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/greedy_priority.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/greedy_priority.cpp.o.d"
  "/root/repo/src/mmr/arbiter/hardware_model.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/hardware_model.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/hardware_model.cpp.o.d"
  "/root/repo/src/mmr/arbiter/islip.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/islip.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/islip.cpp.o.d"
  "/root/repo/src/mmr/arbiter/matching.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/matching.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/matching.cpp.o.d"
  "/root/repo/src/mmr/arbiter/maxmatch.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/maxmatch.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/maxmatch.cpp.o.d"
  "/root/repo/src/mmr/arbiter/pim.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/pim.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/pim.cpp.o.d"
  "/root/repo/src/mmr/arbiter/verify.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/verify.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/verify.cpp.o.d"
  "/root/repo/src/mmr/arbiter/wavefront.cpp" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/wavefront.cpp.o" "gcc" "src/CMakeFiles/mmr_arbiter.dir/mmr/arbiter/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
