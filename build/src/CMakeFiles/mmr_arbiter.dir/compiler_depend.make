# Empty compiler generated dependencies file for mmr_arbiter.
# This may be replaced when dependencies are built.
