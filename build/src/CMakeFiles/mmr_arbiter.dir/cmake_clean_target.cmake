file(REMOVE_RECURSE
  "libmmr_arbiter.a"
)
