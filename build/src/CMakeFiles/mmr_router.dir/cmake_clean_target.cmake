file(REMOVE_RECURSE
  "libmmr_router.a"
)
