# Empty compiler generated dependencies file for mmr_router.
# This may be replaced when dependencies are built.
