file(REMOVE_RECURSE
  "CMakeFiles/mmr_router.dir/mmr/router/credits.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/credits.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/crossbar.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/crossbar.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/link.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/link.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/link_scheduler.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/link_scheduler.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/nic.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/nic.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/router.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/router.cpp.o.d"
  "CMakeFiles/mmr_router.dir/mmr/router/vcm.cpp.o"
  "CMakeFiles/mmr_router.dir/mmr/router/vcm.cpp.o.d"
  "libmmr_router.a"
  "libmmr_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
