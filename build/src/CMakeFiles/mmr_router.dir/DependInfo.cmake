
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmr/router/credits.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/credits.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/credits.cpp.o.d"
  "/root/repo/src/mmr/router/crossbar.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/crossbar.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/crossbar.cpp.o.d"
  "/root/repo/src/mmr/router/link.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/link.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/link.cpp.o.d"
  "/root/repo/src/mmr/router/link_scheduler.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/link_scheduler.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/link_scheduler.cpp.o.d"
  "/root/repo/src/mmr/router/nic.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/nic.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/nic.cpp.o.d"
  "/root/repo/src/mmr/router/router.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/router.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/router.cpp.o.d"
  "/root/repo/src/mmr/router/vcm.cpp" "src/CMakeFiles/mmr_router.dir/mmr/router/vcm.cpp.o" "gcc" "src/CMakeFiles/mmr_router.dir/mmr/router/vcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_arbiter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
