# Empty dependencies file for mmr_network.
# This may be replaced when dependencies are built.
