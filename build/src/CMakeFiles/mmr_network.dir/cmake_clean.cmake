file(REMOVE_RECURSE
  "CMakeFiles/mmr_network.dir/mmr/network/network.cpp.o"
  "CMakeFiles/mmr_network.dir/mmr/network/network.cpp.o.d"
  "CMakeFiles/mmr_network.dir/mmr/network/routing.cpp.o"
  "CMakeFiles/mmr_network.dir/mmr/network/routing.cpp.o.d"
  "CMakeFiles/mmr_network.dir/mmr/network/topology.cpp.o"
  "CMakeFiles/mmr_network.dir/mmr/network/topology.cpp.o.d"
  "libmmr_network.a"
  "libmmr_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
