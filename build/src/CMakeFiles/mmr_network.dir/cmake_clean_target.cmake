file(REMOVE_RECURSE
  "libmmr_network.a"
)
