
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmr/sim/config.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/config.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/config.cpp.o.d"
  "/root/repo/src/mmr/sim/csv.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/csv.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/csv.cpp.o.d"
  "/root/repo/src/mmr/sim/histogram.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/histogram.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/histogram.cpp.o.d"
  "/root/repo/src/mmr/sim/log.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/log.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/log.cpp.o.d"
  "/root/repo/src/mmr/sim/rng.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/rng.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/rng.cpp.o.d"
  "/root/repo/src/mmr/sim/stats.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/stats.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/stats.cpp.o.d"
  "/root/repo/src/mmr/sim/table.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/table.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/table.cpp.o.d"
  "/root/repo/src/mmr/sim/thread_pool.cpp" "src/CMakeFiles/mmr_sim.dir/mmr/sim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mmr_sim.dir/mmr/sim/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
