file(REMOVE_RECURSE
  "CMakeFiles/mmr_sim.dir/mmr/sim/config.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/config.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/csv.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/csv.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/histogram.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/histogram.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/log.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/log.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/rng.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/rng.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/stats.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/stats.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/table.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/table.cpp.o.d"
  "CMakeFiles/mmr_sim.dir/mmr/sim/thread_pool.cpp.o"
  "CMakeFiles/mmr_sim.dir/mmr/sim/thread_pool.cpp.o.d"
  "libmmr_sim.a"
  "libmmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
