# Empty dependencies file for mmr_traffic.
# This may be replaced when dependencies are built.
