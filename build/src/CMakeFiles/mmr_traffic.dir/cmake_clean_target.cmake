file(REMOVE_RECURSE
  "libmmr_traffic.a"
)
