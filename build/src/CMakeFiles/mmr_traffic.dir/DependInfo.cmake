
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmr/traffic/besteffort.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/besteffort.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/besteffort.cpp.o.d"
  "/root/repo/src/mmr/traffic/cbr.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/cbr.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/cbr.cpp.o.d"
  "/root/repo/src/mmr/traffic/flit.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/flit.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/flit.cpp.o.d"
  "/root/repo/src/mmr/traffic/mix.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/mix.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/mix.cpp.o.d"
  "/root/repo/src/mmr/traffic/mpeg.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/mpeg.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/mpeg.cpp.o.d"
  "/root/repo/src/mmr/traffic/trace_io.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/trace_io.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/trace_io.cpp.o.d"
  "/root/repo/src/mmr/traffic/vbr.cpp" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/vbr.cpp.o" "gcc" "src/CMakeFiles/mmr_traffic.dir/mmr/traffic/vbr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmr_qos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
