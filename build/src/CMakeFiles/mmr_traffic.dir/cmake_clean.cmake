file(REMOVE_RECURSE
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/besteffort.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/besteffort.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/cbr.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/cbr.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/flit.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/flit.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/mix.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/mix.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/mpeg.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/mpeg.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/trace_io.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/trace_io.cpp.o.d"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/vbr.cpp.o"
  "CMakeFiles/mmr_traffic.dir/mmr/traffic/vbr.cpp.o.d"
  "libmmr_traffic.a"
  "libmmr_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmr_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
