#include "mmr/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mmr/sim/rng.hpp"

namespace mmr {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

// The documented convention: variance() is population (m2/n),
// sample_variance() the unbiased estimator (m2/(n-1)).
TEST(StreamingStats, SampleVarianceUsesBesselCorrection) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);                    // m2 / 8
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);      // m2 / 7
  EXPECT_DOUBLE_EQ(s.sample_stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_GT(s.sample_variance(), s.variance());
}

TEST(StreamingStats, SampleVarianceDegenerateCounts) {
  StreamingStats s;
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);  // n = 0
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);  // n = 1: undefined -> 0
  EXPECT_DOUBLE_EQ(s.sample_stddev(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(StreamingStats, NegativeValues) {
  StreamingStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng(21, 0);
  StreamingStats whole;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a;
  StreamingStats b;
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  StreamingStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(JitterTracker, FirstSampleProducesNoDelta) {
  JitterTracker j;
  j.add(10.0);
  EXPECT_EQ(j.count(), 0u);
  EXPECT_DOUBLE_EQ(j.mean_jitter(), 0.0);
  EXPECT_DOUBLE_EQ(j.max_jitter(), 0.0);
}

TEST(JitterTracker, AbsoluteDeltas) {
  JitterTracker j;
  j.add(10.0);
  j.add(13.0);  // +3
  j.add(9.0);   // -4 -> 4
  j.add(9.0);   // 0
  EXPECT_EQ(j.count(), 3u);
  EXPECT_NEAR(j.mean_jitter(), (3.0 + 4.0 + 0.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(j.max_jitter(), 4.0);
}

TEST(JitterTracker, ConstantStreamHasZeroJitter) {
  JitterTracker j;
  for (int i = 0; i < 10; ++i) j.add(42.0);
  EXPECT_DOUBLE_EQ(j.mean_jitter(), 0.0);
  EXPECT_DOUBLE_EQ(j.max_jitter(), 0.0);
}

TEST(JitterTracker, ResetForgetsPrevious) {
  JitterTracker j;
  j.add(1.0);
  j.add(5.0);
  j.reset();
  j.add(100.0);
  EXPECT_EQ(j.count(), 0u);
}

TEST(RatioAccumulator, BasicRatio) {
  RatioAccumulator r;
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
  r.add(3, 4);
  r.add(1, 4);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  EXPECT_EQ(r.numerator(), 4u);
  EXPECT_EQ(r.denominator(), 8u);
}

TEST(RatioAccumulator, ResetClears) {
  RatioAccumulator r;
  r.add(1, 2);
  r.reset();
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
  EXPECT_EQ(r.denominator(), 0u);
}

}  // namespace
}  // namespace mmr
