#include "mmr/network/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace mmr {
namespace {

SimConfig net_config() {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 20'000;
  return config;
}

CbrMixSpec fat_mix(double load) {
  CbrMixSpec spec;
  spec.target_load = load;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {4.0, 1.0};
  return spec;
}

TEST(NetworkWorkload, BuilderReservesContinuousPaths) {
  const SimConfig config = net_config();
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  Rng rng(1, 1);
  const NetworkWorkload workload =
      build_network_cbr_mix(config, ring, fat_mix(0.4), rng);
  EXPECT_GT(workload.connections.size(), 8u);
  workload.check_invariants();  // includes channel continuity
  // VC uniqueness per (router, input link).
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, int> seen;
  for (const NetworkConnection& c : workload.connections) {
    for (const Hop& hop : c.path) {
      const int uses = ++seen[std::make_tuple(hop.router, hop.in_port, hop.vc)];
      EXPECT_EQ(uses, 1);
    }
  }
}

TEST(NetworkWorkload, LoadPlacedPerLocalInputPort) {
  SimConfig config = net_config();
  // Transit links concentrate several ports' connections; give the probe
  // enough VCs that reservation never limits placement in this test.
  config.vcs_per_link = 160;
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  Rng rng(2, 2);
  const NetworkWorkload workload =
      build_network_cbr_mix(config, ring, fat_mix(0.5), rng);
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> bps;
  for (std::size_t i = 0; i < workload.connections.size(); ++i) {
    const Hop& first = workload.connections[i].first_hop();
    bps[{first.router, first.in_port}] += workload.sources[i]->mean_bps();
  }
  EXPECT_EQ(bps.size(), 8u);  // 2 local inputs x 4 routers
  for (const auto& [port, total] : bps) {
    EXPECT_NEAR(total / 2.4e9, 0.5, 0.03);
  }
}

TEST(NetworkSimulation, SingleRouterTopologyMatchesBaseBehaviour) {
  const SimConfig config = net_config();
  const NetworkTopology single = NetworkTopology::single(4);
  Rng rng(3, 3);
  NetworkWorkload workload =
      build_network_cbr_mix(config, single, fat_mix(0.4), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_FALSE(metrics.saturated());
  EXPECT_NEAR(metrics.delivered_load, metrics.generated_load_measured, 0.01);
  EXPECT_DOUBLE_EQ(metrics.delivered_hops.mean(), 1.0);
  EXPECT_LT(metrics.flit_delay_us.mean(), 30 * metrics.flit_cycle_us);
}

TEST(NetworkSimulation, RingDeliversEverythingBelowSaturation) {
  const SimConfig config = net_config();
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  Rng rng(4, 4);
  NetworkWorkload workload =
      build_network_cbr_mix(config, ring, fat_mix(0.3), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_FALSE(metrics.saturated());
  EXPECT_GT(metrics.flits_delivered, 1000u);
  // Multi-hop traffic exists: mean hops in (1, 3].
  EXPECT_GT(metrics.delivered_hops.mean(), 1.0);
  EXPECT_LE(metrics.delivered_hops.max(), 3.0);  // ring-4 diameter
  EXPECT_EQ(metrics.router_utilization.size(), 4u);
  for (const ClassMetrics& cls : metrics.per_class) {
    EXPECT_GT(cls.flits_delivered, 0u) << cls.label;
  }
}

TEST(NetworkSimulation, NoFlitLossAcrossHops) {
  const SimConfig config = net_config();
  const NetworkTopology line = NetworkTopology::line(3, 4);
  Rng rng(5, 5);
  NetworkWorkload workload =
      build_network_cbr_mix(config, line, fat_mix(0.5), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  // Conservation over the whole run: generated (measured window) is an
  // under-count of total, so compare via backlog: everything not delivered
  // is queued somewhere, nothing vanished.
  simulation.check_invariants();
  EXPECT_GT(metrics.flits_delivered, 0u);
  EXPECT_LT(metrics.backlog_flits, 100000u);
}

TEST(NetworkSimulation, DeterministicAcrossRuns) {
  const SimConfig config = net_config();
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(3, 4);
  auto build = [&] {
    Rng rng(6, 6);
    return build_network_cbr_mix(config, ring, fat_mix(0.4), rng);
  };
  MmrNetworkSimulation a(config, build());
  MmrNetworkSimulation b(config, build());
  const NetworkMetrics ma = a.run();
  const NetworkMetrics mb = b.run();
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_DOUBLE_EQ(ma.flit_delay_us.mean(), mb.flit_delay_us.mean());
}

TEST(NetworkSimulation, OverloadSaturatesWithoutLoss) {
  const SimConfig config = net_config();
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(3, 4);
  Rng rng(7, 7);
  NetworkWorkload workload =
      build_network_cbr_mix(config, ring, fat_mix(1.1), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_TRUE(metrics.saturated());
  EXPECT_GT(metrics.backlog_flits, 500u);
  simulation.check_invariants();  // credits and buffers still consistent
}

TEST(NetworkSimulation, CoaOutperformsWfaOnTheRingUnderLoad) {
  SimConfig config = net_config();
  config.measure_cycles = 30'000;
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  auto run_with = [&](const std::string& arbiter) {
    SimConfig c = config;
    c.arbiter = arbiter;
    Rng rng(8, 8);
    NetworkWorkload workload =
        build_network_cbr_mix(c, ring, fat_mix(0.75), rng);
    MmrNetworkSimulation simulation(c, std::move(workload));
    return simulation.run();
  };
  const NetworkMetrics coa = run_with("coa");
  const NetworkMetrics wfa = run_with("wfa");
  // Same workload: COA must deliver at least as much as the QoS-blind WFA.
  EXPECT_GE(coa.flits_delivered + coa.flits_delivered / 20,
            wfa.flits_delivered);
}

TEST(NetworkSimulation, MeshCarriesTrafficThroughInteriorRouters) {
  SimConfig config = net_config();
  config.ports = 5;  // mesh direction span + one host port
  config.vcs_per_link = 96;
  const NetworkTopology mesh = NetworkTopology::mesh(3, 3, 5);
  Rng rng(11, 11);
  NetworkWorkload workload =
      build_network_cbr_mix(config, mesh, fat_mix(0.3), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_FALSE(metrics.saturated());
  EXPECT_GT(metrics.flits_delivered, 1000u);
  // Corner-to-corner traffic exists: max path = 5 routers on a 3x3 mesh.
  EXPECT_GT(metrics.delivered_hops.max(), 3.0);
  EXPECT_LE(metrics.delivered_hops.max(), 5.0);
  // The hostless-capable centre router still switched transit traffic.
  EXPECT_GT(metrics.router_utilization[4], 0.0);
  simulation.check_invariants();
}

TEST(NetworkSimulation, VbrVideoTraversesTheRing) {
  SimConfig config = net_config();
  config.vcs_per_link = 160;
  config.measure_cycles = 45'000;  // ~2.3 frame periods
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(3, 4);
  Rng rng(10, 10);
  VbrMixSpec spec;
  spec.target_load = 0.4;
  spec.trace_gops = 2;
  NetworkWorkload workload =
      build_network_vbr_mix(config, ring, spec, rng);
  ASSERT_GT(workload.connections.size(), 10u);
  for (const NetworkConnection& c : workload.connections) {
    EXPECT_EQ(c.traffic_class, TrafficClass::kVbr);
    EXPECT_GT(c.peak_bandwidth_bps, c.mean_bandwidth_bps);
  }
  MmrNetworkSimulation simulation(config, std::move(workload));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_FALSE(metrics.saturated());
  EXPECT_GT(metrics.frames_completed, 100u);
  EXPECT_GT(metrics.frame_delay_us.mean(), 0.0);
  ASSERT_NE(metrics.find_class("VBR"), nullptr);
  EXPECT_GT(metrics.delivered_hops.mean(), 1.0);
}

TEST(NetworkSimulationDeath, RunTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig config = net_config();
  config.warmup_cycles = 10;
  config.measure_cycles = 10;
  const NetworkTopology single = NetworkTopology::single(4);
  Rng rng(9, 9);
  MmrNetworkSimulation simulation(
      config, build_network_cbr_mix(config, single, fat_mix(0.1), rng));
  (void)simulation.run();
  EXPECT_DEATH((void)simulation.run(), "once");
}

}  // namespace
}  // namespace mmr
