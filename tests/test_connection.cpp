#include "mmr/qos/connection.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

ConnectionDescriptor make(TrafficClass cls, std::uint32_t in,
                          std::uint32_t out, double bps) {
  ConnectionDescriptor c;
  c.traffic_class = cls;
  c.input_link = in;
  c.output_link = out;
  c.mean_bandwidth_bps = bps;
  c.peak_bandwidth_bps = bps;
  return c;
}

TEST(ConnectionTable, AssignsIdsAndVcsInOrder) {
  ConnectionTable table(4);
  const ConnectionId a =
      table.add(make(TrafficClass::kCbr, 0, 1, 1e6), /*vcs_per_link=*/8);
  const ConnectionId b = table.add(make(TrafficClass::kCbr, 0, 2, 1e6), 8);
  const ConnectionId c = table.add(make(TrafficClass::kCbr, 1, 0, 1e6), 8);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(table.get(a).vc, 0u);
  EXPECT_EQ(table.get(b).vc, 1u);  // second VC on link 0
  EXPECT_EQ(table.get(c).vc, 0u);  // first VC on link 1
  EXPECT_EQ(table.size(), 3u);
}

TEST(ConnectionTable, OnInputLinkAndAtVc) {
  ConnectionTable table(2);
  const ConnectionId a = table.add(make(TrafficClass::kVbr, 1, 0, 5e6), 4);
  const ConnectionId b = table.add(make(TrafficClass::kVbr, 1, 1, 5e6), 4);
  EXPECT_TRUE(table.on_input_link(0).empty());
  ASSERT_EQ(table.on_input_link(1).size(), 2u);
  EXPECT_EQ(table.at_vc(1, 0), a);
  EXPECT_EQ(table.at_vc(1, 1), b);
  EXPECT_EQ(table.at_vc(1, 2), kInvalidConnection);
  EXPECT_EQ(table.at_vc(0, 0), kInvalidConnection);
}

TEST(ConnectionTable, QosMeanBpsExcludesBestEffort) {
  ConnectionTable table(2);
  table.add(make(TrafficClass::kCbr, 0, 1, 10e6), 8);
  table.add(make(TrafficClass::kVbr, 0, 1, 20e6), 8);
  table.add(make(TrafficClass::kBestEffort, 0, 1, 100e6), 8);
  EXPECT_DOUBLE_EQ(table.qos_mean_bps_on_input(0), 30e6);
  EXPECT_DOUBLE_EQ(table.qos_mean_bps_on_input(1), 0.0);
}

TEST(ConnectionTable, IsQosFlag) {
  EXPECT_TRUE(make(TrafficClass::kCbr, 0, 0, 1).is_qos());
  EXPECT_TRUE(make(TrafficClass::kVbr, 0, 0, 1).is_qos());
  EXPECT_FALSE(make(TrafficClass::kBestEffort, 0, 0, 1).is_qos());
}

TEST(ConnectionTable, TrafficClassNames) {
  EXPECT_STREQ(to_string(TrafficClass::kCbr), "CBR");
  EXPECT_STREQ(to_string(TrafficClass::kVbr), "VBR");
  EXPECT_STREQ(to_string(TrafficClass::kBestEffort), "BE");
}

TEST(ConnectionTableDeath, RejectsWhenVcsExhausted) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ConnectionTable table(2);
  table.add(make(TrafficClass::kCbr, 0, 1, 1e6), /*vcs_per_link=*/1);
  EXPECT_DEATH(table.add(make(TrafficClass::kCbr, 0, 1, 1e6), 1),
               "virtual channels");
}

TEST(ConnectionTableDeath, RejectsOutOfRangeLinks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ConnectionTable table(2);
  EXPECT_DEATH(table.add(make(TrafficClass::kCbr, 2, 0, 1e6), 4), "input");
}

}  // namespace
}  // namespace mmr
