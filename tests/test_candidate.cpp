#include "mmr/arbiter/candidate.hpp"

#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {
namespace {

TEST(CandidateSet, StartsEmpty) {
  CandidateSet set(4, 4);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.ports(), 4u);
  EXPECT_EQ(set.levels(), 4u);
  for (std::uint32_t input = 0; input < 4; ++input) {
    EXPECT_EQ(set.levels_used(input), 0u);
    for (std::uint32_t level = 0; level < 4; ++level) {
      EXPECT_EQ(set.index_of(input, level), -1);
    }
  }
}

TEST(CandidateSet, AddAndLookup) {
  CandidateSet set(4, 2);
  Candidate c;
  c.input = 2;
  c.output = 3;
  c.level = 0;
  c.vc = 17;
  c.priority = 99;
  set.add(c);
  EXPECT_EQ(set.size(), 1u);
  const std::int32_t idx = set.index_of(2, 0);
  ASSERT_NE(idx, -1);
  const Candidate& got = set.at(static_cast<std::size_t>(idx));
  EXPECT_EQ(got.output, 3);
  EXPECT_EQ(got.vc, 17u);
  EXPECT_EQ(got.priority, 99u);
  EXPECT_EQ(set.levels_used(2), 1u);
  EXPECT_EQ(set.levels_used(0), 0u);
}

TEST(CandidateSet, ClearResets) {
  Rng rng(41, 0);
  CandidateSet set = test::random_candidates(4, 4, 1.0, rng);
  EXPECT_FALSE(set.empty());
  set.clear();
  EXPECT_TRUE(set.empty());
  for (std::uint32_t input = 0; input < 4; ++input) {
    EXPECT_EQ(set.index_of(input, 0), -1);
  }
}

TEST(CandidateSet, InvariantsHoldForRandomSets) {
  Rng rng(42, 0);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.7, rng);
    set.check_invariants();
  }
}

TEST(CandidateSetDeath, RejectsDuplicateSlot) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CandidateSet set(4, 2);
  Candidate c;
  c.input = 1;
  c.output = 0;
  c.level = 0;
  set.add(c);
  EXPECT_DEATH(set.add(c), "duplicate");
}

TEST(CandidateSetDeath, RejectsLevelGap) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CandidateSet set(4, 3);
  Candidate c;
  c.input = 1;
  c.output = 0;
  c.level = 1;  // level 0 missing
  EXPECT_DEATH(set.add(c), "contiguous");
}

TEST(CandidateSetDeath, RejectsOutOfRangePorts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CandidateSet set(4, 2);
  Candidate c;
  c.input = 4;  // out of range
  c.output = 0;
  c.level = 0;
  EXPECT_DEATH(set.add(c), "input");
}

TEST(CandidateSetDeath, CheckInvariantsCatchesIncreasingPriority) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CandidateSet set(2, 2);
  Candidate c;
  c.input = 0;
  c.output = 0;
  c.level = 0;
  c.priority = 5;
  set.add(c);
  c.level = 1;
  c.priority = 50;  // must not exceed the level-0 priority
  set.add(c);
  EXPECT_DEATH(set.check_invariants(), "priorities");
}

TEST(Matching, BasicBookkeeping) {
  Matching m(4);
  EXPECT_EQ(m.size(), 0u);
  m.match(1, 2, 7);
  EXPECT_TRUE(m.input_matched(1));
  EXPECT_TRUE(m.output_matched(2));
  EXPECT_FALSE(m.input_matched(0));
  EXPECT_EQ(m.output_of(1), 2);
  EXPECT_EQ(m.input_of(2), 1);
  EXPECT_EQ(m.candidate_of(1), 7);
  EXPECT_EQ(m.output_of(0), -1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(MatchingDeath, RejectsDoubleMatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Matching m(4);
  m.match(1, 2, 0);
  EXPECT_DEATH(m.match(1, 3, 1), "input matched twice");
  EXPECT_DEATH(m.match(0, 2, 1), "output matched twice");
}

}  // namespace
}  // namespace mmr
