#include "mmr/router/link_scheduler.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

Flit make_flit(ConnectionId connection) {
  Flit flit;
  flit.connection = connection;
  return flit;
}

/// Builds a scheduler for one port with the given per-VC outputs and slot
/// reservations (IATs derived arbitrarily but consistently).
LinkScheduler make_scheduler(std::uint32_t levels,
                             std::vector<std::uint32_t> outputs,
                             std::vector<std::uint32_t> slots,
                             PriorityScheme scheme = PriorityScheme::kSiabp) {
  std::vector<QosParams> qos(outputs.size());
  for (std::size_t vc = 0; vc < outputs.size(); ++vc) {
    qos[vc].slots_per_round = slots[vc];
    qos[vc].iat_router_cycles = 1024.0 / slots[vc];
  }
  return LinkScheduler(/*input_port=*/0, levels, PriorityFunction(scheme),
                       /*phits_per_flit=*/256, std::move(outputs),
                       std::move(qos));
}

TEST(LinkScheduler, EmptyVcmYieldsNoCandidates) {
  LinkScheduler scheduler = make_scheduler(4, {0, 1, 2, 3}, {1, 1, 1, 1});
  VirtualChannelMemory vcm(4, 2);
  CandidateSet set(4, 4);
  scheduler.select(vcm, 100, set);
  EXPECT_TRUE(set.empty());
}

TEST(LinkScheduler, SelectsOccupiedVcsUpToLevels) {
  LinkScheduler scheduler = make_scheduler(2, {0, 1, 2, 3}, {1, 2, 3, 4});
  VirtualChannelMemory vcm(4, 2);
  vcm.push(0, make_flit(0), 0);
  vcm.push(1, make_flit(1), 0);
  vcm.push(2, make_flit(2), 0);
  CandidateSet set(4, 2);
  scheduler.select(vcm, 10, set);
  EXPECT_EQ(set.size(), 2u);  // capped at 2 levels
  set.check_invariants();
}

TEST(LinkScheduler, RanksByBiasedPriority) {
  // Same age for all, so SIABP ranks by slots_per_round.
  LinkScheduler scheduler = make_scheduler(4, {0, 1, 2, 3}, {1, 9, 3, 5});
  VirtualChannelMemory vcm(4, 2);
  for (std::uint32_t vc = 0; vc < 4; ++vc) vcm.push(vc, make_flit(vc), 0);
  CandidateSet set(4, 4);
  scheduler.select(vcm, 16, set);
  ASSERT_EQ(set.size(), 4u);
  // Level 0 = VC 1 (slots 9), then VC 3 (5), VC 2 (3), VC 0 (1).
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 0))).vc, 1u);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 1))).vc, 3u);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 2))).vc, 2u);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 3))).vc, 0u);
}

TEST(LinkScheduler, OlderAgeWinsWhenBiasDiffers) {
  LinkScheduler scheduler = make_scheduler(2, {0, 1}, {2, 2});
  VirtualChannelMemory vcm(2, 2);
  vcm.push(0, make_flit(0), 5);  // younger
  vcm.push(1, make_flit(1), 0);  // older
  // Ages 5 and 10 flit cycles = 1280 / 2560 router cycles: bit_width 11 vs
  // 12, so the older flit carries the higher biased priority.
  CandidateSet set(2, 2);
  scheduler.select(vcm, 10, set);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 0))).vc, 1u);
}

TEST(LinkScheduler, ArrivalBreaksExactPriorityTies) {
  LinkScheduler scheduler = make_scheduler(2, {0, 1}, {2, 2});
  VirtualChannelMemory vcm(2, 2);
  // Ages 2 and 3 flit cycles at now=5: 512 and 768 router cycles, both
  // bit_width 10 -> identical SIABP priority; the older arrival must rank
  // first (deterministic tie-break).
  vcm.push(0, make_flit(0), 3);
  vcm.push(1, make_flit(1), 2);
  CandidateSet set(2, 2);
  scheduler.select(vcm, 5, set);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 0))).vc, 1u);
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 0))).priority,
            set.at(static_cast<std::size_t>(set.index_of(0, 1))).priority);
}

TEST(LinkScheduler, CandidateCarriesRoutingAndPriority) {
  LinkScheduler scheduler = make_scheduler(1, {3, 2}, {4, 4});
  VirtualChannelMemory vcm(2, 2);
  vcm.push(0, make_flit(0), 0);
  CandidateSet set(4, 1);
  scheduler.select(vcm, 4, set);
  ASSERT_EQ(set.size(), 1u);
  const Candidate& c = set.at(0);
  EXPECT_EQ(c.input, 0u);
  EXPECT_EQ(c.output, 3u);  // from output_of_vc
  EXPECT_EQ(c.vc, 0u);
  EXPECT_EQ(c.priority, scheduler.head_priority(vcm, 0, 4));
}

TEST(LinkScheduler, HeadPriorityAgesInRouterCycles) {
  LinkScheduler scheduler = make_scheduler(1, {0}, {3});
  VirtualChannelMemory vcm(1, 2);
  vcm.push(0, make_flit(0), 100);
  // Age 0 flit cycles: priority = initial slots.
  EXPECT_EQ(scheduler.head_priority(vcm, 0, 100), 3u);
  // One flit cycle later: 256 router cycles -> shift = bit_width(256) = 9.
  EXPECT_EQ(scheduler.head_priority(vcm, 0, 101), 3u << 9);
}

TEST(LinkScheduler, IabpSchemeUsesIat) {
  LinkScheduler scheduler =
      make_scheduler(1, {0, 1}, {1, 8}, PriorityScheme::kIabp);
  VirtualChannelMemory vcm(2, 2);
  vcm.push(0, make_flit(0), 0);
  vcm.push(1, make_flit(1), 0);
  CandidateSet set(2, 1);
  scheduler.select(vcm, 8, set);
  // Same age; VC 1 has the shorter IAT (more slots) -> higher IABP ratio.
  EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, 0))).vc, 1u);
}

TEST(LinkScheduler, SelectionIsDeterministic) {
  LinkScheduler scheduler = make_scheduler(4, {0, 1, 2, 3}, {1, 1, 1, 1});
  VirtualChannelMemory vcm(4, 2);
  for (std::uint32_t vc = 0; vc < 4; ++vc) vcm.push(vc, make_flit(vc), vc);
  CandidateSet a(4, 4);
  CandidateSet b(4, 4);
  scheduler.select(vcm, 10, a);
  scheduler.select(vcm, 10, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).vc, b.at(i).vc);
    EXPECT_EQ(a.at(i).priority, b.at(i).priority);
  }
}

TEST(LinkScheduler, ManyVcsSelectTopLOnly) {
  std::vector<std::uint32_t> outputs(64, 0);
  std::vector<std::uint32_t> slots(64);
  for (std::uint32_t vc = 0; vc < 64; ++vc) slots[vc] = vc + 1;
  LinkScheduler scheduler = make_scheduler(4, outputs, slots);
  VirtualChannelMemory vcm(64, 2);
  for (std::uint32_t vc = 0; vc < 64; ++vc) vcm.push(vc, make_flit(vc), 0);
  CandidateSet set(4, 4);
  scheduler.select(vcm, 3, set);
  ASSERT_EQ(set.size(), 4u);
  // Top four slot counts: 64, 63, 62, 61.
  for (std::uint32_t level = 0; level < 4; ++level) {
    EXPECT_EQ(set.at(static_cast<std::size_t>(set.index_of(0, level))).vc,
              63u - level);
  }
}

}  // namespace
}  // namespace mmr
