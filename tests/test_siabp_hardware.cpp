// Bit-exact check of SIABP against a cycle-by-cycle simulation of the
// hardware the paper describes (Section 3.1): a queuing-delay counter that
// increments every router cycle, and a priority register initialised to the
// connection's slots/round that is shifted left "every time a bit in the
// queuing delay counter is set for the first time since it was last reset".
// Our closed form (slots << bit_width(age), saturating) must match this
// register-transfer behaviour at every cycle.

#include <gtest/gtest.h>

#include "mmr/qos/priority.hpp"

namespace mmr {
namespace {

/// Register-transfer-level SIABP: what the synthesized logic would do.
class SiabpRtl {
 public:
  explicit SiabpRtl(std::uint32_t slots_per_round)
      : priority_(slots_per_round) {}

  /// One router-cycle clock edge.
  void tick() {
    const std::uint64_t next = counter_ + 1;
    // A bit is "set for the first time since reset" exactly when the
    // incremented counter has more significant bits than ever before.
    if ((next & ~seen_mask_) != 0) {
      seen_mask_ |= next;
      // Only a *new most-significant* bit doubles the priority (lower bits
      // toggle constantly); the first-time condition tracks the MSB.
      if (next > msb_reached_) {
        priority_ = saturating_double(priority_);
        msb_reached_ = next;
        // Round msb_reached_ up to all-ones below its MSB so lower-bit
        // first-times inside the same power-of-two band don't re-trigger.
        std::uint64_t m = msb_reached_;
        m |= m >> 1;
        m |= m >> 2;
        m |= m >> 4;
        m |= m >> 8;
        m |= m >> 16;
        m |= m >> 32;
        msb_reached_ = m;
      }
    }
    counter_ = next;
  }

  void reset(std::uint32_t slots_per_round) {
    counter_ = 0;
    seen_mask_ = 0;
    msb_reached_ = 0;
    priority_ = slots_per_round;
  }

  [[nodiscard]] std::uint64_t age() const { return counter_; }
  [[nodiscard]] Priority priority() const { return priority_; }

 private:
  static Priority saturating_double(Priority p) {
    const Priority cap = Priority{1} << 48;
    return p >= cap / 2 ? cap : p * 2;
  }

  std::uint64_t counter_ = 0;
  std::uint64_t seen_mask_ = 0;
  std::uint64_t msb_reached_ = 0;
  Priority priority_ = 1;
};

TEST(SiabpHardware, ClosedFormMatchesRtlCycleByCycle) {
  for (std::uint32_t slots : {1u, 3u, 24u, 1000u}) {
    SiabpRtl rtl(slots);
    for (std::uint64_t cycle = 0; cycle < 100'000; ++cycle) {
      ASSERT_EQ(rtl.priority(), siabp_priority(slots, rtl.age()))
          << "slots " << slots << " age " << rtl.age();
      rtl.tick();
    }
  }
}

TEST(SiabpHardware, MatchesAcrossPowerOfTwoBoundaries) {
  SiabpRtl rtl(5);
  // Drive exactly past several 2^k boundaries and compare at each.
  for (std::uint64_t target : {1ull, 2ull, 4ull, 255ull, 256ull, 257ull,
                               (1ull << 20) - 1, 1ull << 20}) {
    rtl.reset(5);
    for (std::uint64_t i = 0; i < target; ++i) rtl.tick();
    EXPECT_EQ(rtl.priority(), siabp_priority(5, target)) << target;
  }
}

TEST(SiabpHardware, ResetRestoresInitialPriority) {
  SiabpRtl rtl(7);
  for (int i = 0; i < 1000; ++i) rtl.tick();
  EXPECT_GT(rtl.priority(), 7u);
  rtl.reset(9);
  EXPECT_EQ(rtl.priority(), 9u);
  EXPECT_EQ(rtl.priority(), siabp_priority(9, 0));
}

TEST(SiabpHardware, DoublingCadenceIsOnePerPowerOfTwo) {
  // Over 2^20 cycles the priority must have doubled exactly 21 times
  // (bits 0..20 each set once): the hardware shifts once per new MSB.
  SiabpRtl rtl(3);
  std::uint64_t doublings = 0;
  Priority previous = rtl.priority();
  for (std::uint64_t i = 0; i < (1ull << 20); ++i) {
    rtl.tick();
    if (rtl.priority() != previous) {
      ++doublings;
      EXPECT_EQ(rtl.priority(), previous * 2);
      previous = rtl.priority();
    }
  }
  EXPECT_EQ(doublings, 21u);
}

}  // namespace
}  // namespace mmr
