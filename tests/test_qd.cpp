// Queue-discipline axis (`qd=`, ISSUE 10 tentpole): spec parsing, the VOQ
// router (per-input virtual output queues under the unchanged SwitchArbiter
// API), and the CICQ router (crosspoint buffers + RR/RR scheduling) — in
// particular Gunther's burst instability: with the base one-credit regime a
// burst serializes on the credit round-trip, and the stabilization protocol
// (`stab:1`) recovers the lost throughput.  Plus the resume and bit-identity
// guarantees: explicit `qd=vc` equals an unset spec hash-for-hash, and all
// three disciplines checkpoint/resume bit-identically.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "mmr/core/simulation.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/router/router.hpp"
#include "mmr/snapshot/manager.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {
namespace {

// --------------------------------------------------------------------------
// QdSpec parsing.

TEST(QdSpec, EmptyAndVcParseToTheDefaultDiscipline) {
  EXPECT_EQ(QdSpec::parse("").discipline, QueueDiscipline::kVc);
  EXPECT_EQ(QdSpec::parse("vc").discipline, QueueDiscipline::kVc);
  EXPECT_EQ(QdSpec::parse("voq").discipline, QueueDiscipline::kVoq);
}

TEST(QdSpec, CicqDefaultsAndOverrides) {
  const QdSpec defaults = QdSpec::parse("cicq");
  EXPECT_EQ(defaults.discipline, QueueDiscipline::kCicq);
  EXPECT_TRUE(defaults.stabilize);
  EXPECT_EQ(defaults.crosspoint_flits, 2u);
  EXPECT_EQ(defaults.burst_threshold, 4u);

  const QdSpec custom = QdSpec::parse("cicq,stab:0,xp:3,thresh:2");
  EXPECT_FALSE(custom.stabilize);
  EXPECT_EQ(custom.crosspoint_flits, 3u);
  EXPECT_EQ(custom.burst_threshold, 2u);
}

TEST(QdSpec, ToStringRoundTrips) {
  EXPECT_STREQ(to_string(QueueDiscipline::kVc), "vc");
  EXPECT_STREQ(to_string(QueueDiscipline::kVoq), "voq");
  EXPECT_STREQ(to_string(QueueDiscipline::kCicq), "cicq");
}

TEST(QdSpec, MalformedSpecsThrowAtParse) {
  // Messages name the spec but carry no "error:" prefix — the example mains
  // prepend it exactly once (the trace=/flow= convention).
  const auto expect_error = [](const std::string& spec) {
    try {
      (void)QdSpec::parse(spec);
      FAIL() << "expected throw for: " << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()).rfind("qd spec", 0), 0u) << e.what();
    }
  };
  expect_error("ciq");                // unknown discipline
  expect_error("cicq,stab");          // missing :value
  expect_error("cicq,stab:yes");      // non-integer value
  expect_error("cicq,depth:3");       // unknown key
  expect_error("vc,stab:1");          // cicq-only key on vc
  expect_error("voq,xp:4");           // cicq-only key on voq
}

TEST(QdSpecDeath, DegenerateCicqGeometryAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)QdSpec::parse("cicq,xp:0"),
               "crosspoint buffer must hold >= 1 flit");
  EXPECT_DEATH((void)QdSpec::parse("cicq,thresh:0"),
               "burst threshold must be >= 1");
}

// --------------------------------------------------------------------------
// Router-level fixtures (mirrors test_crossbar_router.cpp).

class QdRouterTest : public ::testing::Test {
 protected:
  SimConfig config_ = [] {
    SimConfig config;
    config.ports = 4;
    config.vcs_per_link = 8;
    config.arbiter = "coa";
    return config;
  }();

  ConnectionTable table_ = ConnectionTable(4);

  ConnectionId add_connection(std::uint32_t in, std::uint32_t out,
                              double bps = 55e6) {
    ConnectionDescriptor c;
    c.traffic_class = TrafficClass::kCbr;
    c.input_link = in;
    c.output_link = out;
    c.mean_bandwidth_bps = bps;
    c.peak_bandwidth_bps = bps;
    c.slots_per_round = 24;
    return table_.add(c, config_.vcs_per_link);
  }

  Flit make_flit(ConnectionId connection, std::uint64_t seq = 0) {
    Flit flit;
    flit.connection = connection;
    flit.seq = seq;
    flit.generated_at = 0;
    return flit;
  }
};

// --------------------------------------------------------------------------
// qd=voq.

TEST_F(QdRouterTest, VoqSingleFlitTraversesInOneStep) {
  config_.qd_spec = "voq";
  const ConnectionId c = add_connection(0, 2);
  MmrRouter router(config_, table_, Rng(1, 1));
  EXPECT_EQ(router.queue_discipline(), QueueDiscipline::kVoq);
  EXPECT_EQ(router.cicq(), nullptr);
  router.accept(0, table_.get(c).vc, make_flit(c), 0);
  EXPECT_EQ(router.flits_buffered(), 1u);
  EXPECT_EQ(router.vc_occupancy(0, table_.get(c).vc), 1u);
  std::vector<MmrRouter::Departure> departures;
  router.step(0, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].input, 0u);
  EXPECT_EQ(departures[0].output, 2u);
  EXPECT_EQ(departures[0].vc, table_.get(c).vc);
  EXPECT_EQ(router.flits_buffered(), 0u);
  router.check_invariants();
}

TEST_F(QdRouterTest, VoqDisjointFlowsForwardInParallel) {
  config_.qd_spec = "voq";
  std::vector<ConnectionId> ids;
  for (std::uint32_t p = 0; p < 4; ++p)
    ids.push_back(add_connection(p, (p + 1) % 4));
  MmrRouter router(config_, table_, Rng(3, 3));
  for (std::uint32_t p = 0; p < 4; ++p)
    router.accept(p, table_.get(ids[p]).vc, make_flit(ids[p]), 0);
  std::vector<MmrRouter::Departure> departures;
  router.step(0, true, departures);
  EXPECT_EQ(departures.size(), 4u);
  EXPECT_DOUBLE_EQ(router.crossbar().utilization(), 1.0);
}

TEST_F(QdRouterTest, VoqMergesVcsPerOutputInArrivalOrder) {
  // The defining semantic difference from per-VC queueing: two VCs headed
  // for the same output share one VOQ, so only the FIFO head competes — a
  // younger flit pushed first departs before an older (higher-priority) one
  // pushed second.  Under qd=vc both heads would be candidates and COA
  // would pick the older flit.
  config_.qd_spec = "voq";
  const ConnectionId young = add_connection(0, 1);
  const ConnectionId old = add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(4, 4));
  router.accept(0, table_.get(young).vc, make_flit(young), /*now=*/10);
  router.accept(0, table_.get(old).vc, make_flit(old), /*now=*/0);
  std::vector<MmrRouter::Departure> departures;
  router.step(10, true, departures);
  router.step(11, true, departures);
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0].flit.connection, young)
      << "VOQ head order must decide, not priority";
  EXPECT_EQ(departures[1].flit.connection, old);
  router.check_invariants();
}

TEST_F(QdRouterTest, VoqPerVcFifoOrderPreserved) {
  config_.qd_spec = "voq";
  const ConnectionId c = add_connection(1, 3);
  MmrRouter router(config_, table_, Rng(4, 4));
  router.accept(1, table_.get(c).vc, make_flit(c, 0), 0);
  router.accept(1, table_.get(c).vc, make_flit(c, 1), 1);
  std::vector<MmrRouter::Departure> departures;
  router.step(1, true, departures);
  router.step(2, true, departures);
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0].flit.seq, 0u);
  EXPECT_EQ(departures[1].flit.seq, 1u);
}

TEST_F(QdRouterTest, VoqAdmissionBudgetStaysPerVc) {
  // Flits spread across VOQs but the NIC credit loop is per VC: the budget
  // must bind on VC occupancy, not on VOQ occupancy.
  config_.qd_spec = "voq";
  const ConnectionId c = add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(5, 5));
  const std::uint32_t vc = table_.get(c).vc;
  for (std::uint32_t i = 0; i < config_.buffer_flits_per_vc; ++i) {
    ASSERT_TRUE(router.can_accept(0, vc));
    router.accept(0, vc, make_flit(c, i), 0);
  }
  EXPECT_FALSE(router.can_accept(0, vc));
  EXPECT_EQ(router.vc_occupancy(0, vc), config_.buffer_flits_per_vc);
}

TEST_F(QdRouterTest, VcAccessorsRejectWrongDiscipline) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  config_.qd_spec = "voq";
  const ConnectionId c = add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(6, 6));
  EXPECT_DEATH((void)router.drain_vc(0, table_.get(c).vc),
               "drain_vc requires the per-VC discipline");
  EXPECT_DEATH((void)router.vcm(0), "");
}

// --------------------------------------------------------------------------
// qd=cicq.

TEST_F(QdRouterTest, CicqFlitCrossesInTwoSteps) {
  // The crosspoint is a registered buffer: fill on the arrival cycle, drain
  // (and depart) on the next.
  config_.qd_spec = "cicq";
  const ConnectionId c = add_connection(0, 2);
  MmrRouter router(config_, table_, Rng(1, 1));
  ASSERT_NE(router.cicq(), nullptr);
  router.accept(0, table_.get(c).vc, make_flit(c), 0);
  std::vector<MmrRouter::Departure> departures;
  router.step(0, true, departures);
  EXPECT_TRUE(departures.empty());
  EXPECT_EQ(router.cicq()->xp_occupancy(0, 2), 1u);
  EXPECT_EQ(router.vc_occupancy(0, table_.get(c).vc), 1u)
      << "crosspoint residency still counts against the VC";
  router.step(1, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].input, 0u);
  EXPECT_EQ(departures[0].output, 2u);
  EXPECT_EQ(router.flits_buffered(), 0u);
  EXPECT_EQ(router.cicq()->transfers(), 1u);
  router.check_invariants();
}

TEST_F(QdRouterTest, CicqDecouplesOutputsOfOneInput) {
  // A matching-based switch forwards at most one flit per input per cycle;
  // CICQ crosspoints drain independently, so one input can depart on two
  // outputs in the same cycle (this is exactly why the runtime auditor's
  // per-input uniqueness check is scoped to matching disciplines).
  config_.qd_spec = "cicq";
  const ConnectionId a1 = add_connection(0, 1);
  const ConnectionId a2 = add_connection(0, 2);
  const ConnectionId b = add_connection(1, 1);
  const ConnectionId c = add_connection(2, 1);
  MmrRouter router(config_, table_, Rng(2, 2));
  std::vector<MmrRouter::Departure> departures;

  // Cycle 0: inputs 1 and 2 stake out output 1's crosspoints.
  router.accept(1, table_.get(b).vc, make_flit(b), 0);
  router.accept(2, table_.get(c).vc, make_flit(c), 0);
  router.step(0, true, departures);
  // Cycle 1: output 1 drains input 1; input 0 fills its output-1 crosspoint.
  router.accept(0, table_.get(a1).vc, make_flit(a1), 1);
  router.step(1, true, departures);
  // Cycle 2: output 1 drains input 2; input 0 fills its output-2 crosspoint.
  router.accept(0, table_.get(a2).vc, make_flit(a2), 2);
  router.step(2, true, departures);
  ASSERT_EQ(departures.size(), 2u);
  departures.clear();

  // Cycle 3: both of input 0's crosspoints are occupied and both outputs
  // are free — two same-cycle departures from one input.
  router.step(3, true, departures);
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0].input, 0u);
  EXPECT_EQ(departures[1].input, 0u);
  EXPECT_EQ(departures[0].output, 1u);
  EXPECT_EQ(departures[1].output, 2u);
  router.check_invariants();
}

// Drives a single connection with back-to-back arrivals and returns the
// departure count over `cycles`.
std::uint64_t run_hot_flow(const SimConfig& config, ConnectionTable& table,
                           ConnectionId c, Cycle cycles) {
  MmrRouter router(config, table, Rng(7, 7));
  const std::uint32_t vc = table.get(c).vc;
  std::vector<MmrRouter::Departure> departures;
  std::uint64_t seq = 0;
  for (Cycle now = 0; now < cycles; ++now) {
    if (router.can_accept(0, vc)) {
      Flit flit;
      flit.connection = c;
      flit.seq = seq++;
      flit.generated_at = now;
      router.accept(0, vc, flit, now);
    }
    router.step(now, true, departures);
    router.check_invariants();
  }
  return departures.size();
}

TEST_F(QdRouterTest, CicqBurstCollapsesWithoutStabilizationAndRecoversWithIt) {
  // Gunther's instability in miniature: the base regime exposes one credit
  // per crosspoint, so a saturated flow serializes on the credit round-trip
  // and throughput collapses to 1/(1 + RTT) — here 1/2 with the default
  // 1-cycle return latency.  Stabilization unlocks the full crosspoint
  // depth once the VOQ backs up, pipelining the round-trip back to ~100%.
  config_.buffer_flits_per_vc = 8;
  const ConnectionId c = add_connection(0, 1);
  const Cycle cycles = 60;

  config_.qd_spec = "cicq,stab:0,xp:3,thresh:2";
  const std::uint64_t collapsed = run_hot_flow(config_, table_, c, cycles);
  EXPECT_LE(collapsed, cycles / 2 + 1) << "one credit must serialize the flow";
  EXPECT_GE(collapsed, cycles / 2 - 2);

  config_.qd_spec = "cicq,stab:1,xp:3,thresh:2";
  const std::uint64_t stabilized = run_hot_flow(config_, table_, c, cycles);
  EXPECT_GE(stabilized, cycles - 5) << "burst credits must pipeline the RTT";
}

TEST_F(QdRouterTest, CicqCountersAttributeTheCollapse) {
  config_.buffer_flits_per_vc = 8;
  const ConnectionId c = add_connection(0, 1);
  const std::uint32_t vc = table_.get(c).vc;
  const auto drive = [&](MmrRouter& router) {
    std::vector<MmrRouter::Departure> departures;
    std::uint64_t seq = 0;
    for (Cycle now = 0; now < 40; ++now) {
      if (router.can_accept(0, vc)) router.accept(0, vc, make_flit(c, seq++), now);
      router.step(now, true, departures);
    }
  };

  config_.qd_spec = "cicq,stab:0,xp:3,thresh:2";
  MmrRouter unstable(config_, table_, Rng(8, 8));
  drive(unstable);
  EXPECT_GT(unstable.cicq()->credit_stalls(), 0u)
      << "the collapse must be visible as credit stalls";
  EXPECT_EQ(unstable.cicq()->burst_activations(), 0u);

  config_.qd_spec = "cicq,stab:1,xp:3,thresh:2";
  MmrRouter stable(config_, table_, Rng(8, 8));
  drive(stable);
  EXPECT_GE(stable.cicq()->burst_activations(), 1u);
  EXPECT_LT(stable.cicq()->credit_stalls(), unstable.cicq()->credit_stalls());
}

TEST_F(QdRouterTest, CicqStabilizationNeverTripsInvariants) {
  // Property sweep (satellite 4): bursty traffic cycling burst regimes on
  // and off must keep every invariant — credit conservation per crosspoint,
  // VC residency accounting, flit conservation — intact on every cycle.
  config_.buffer_flits_per_vc = 8;
  config_.qd_spec = "cicq,stab:1,xp:3,thresh:2";
  std::vector<ConnectionId> hot, cross;
  for (std::uint32_t in = 0; in < 4; ++in) {
    hot.push_back(add_connection(in, 3));            // everyone bursts at 3
    cross.push_back(add_connection(in, (in + 1) % 4));
  }
  MmrRouter router(config_, table_, Rng(9, 9));
  std::vector<MmrRouter::Departure> departures;
  std::uint64_t seq = 0;
  for (Cycle now = 0; now < 600; ++now) {
    // Deterministic on/off bursts, phase-shifted per input: 12 cycles of
    // back-to-back arrivals to the hot output, then 20 idle; a trickle of
    // cross traffic keeps the RR scan from degenerating.
    for (std::uint32_t in = 0; in < 4; ++in) {
      const Cycle phase = (now + 8 * in) % 32;
      const ConnectionId c = phase < 12 ? hot[in] : cross[in];
      const bool inject = phase < 12 || phase % 4 == 0;
      const std::uint32_t vc = table_.get(c).vc;
      if (inject && router.can_accept(in, vc))
        router.accept(in, vc, make_flit(c, seq++), now);
    }
    departures.clear();
    router.step(now, true, departures);
    router.check_invariants();
  }
  EXPECT_GT(router.cicq()->burst_activations(), 0u);
  EXPECT_GT(router.cicq()->burst_deactivations(), 0u);
  // Drain: once arrivals stop, everything buffered must leave.
  for (Cycle now = 600; now < 700 && router.flits_buffered() > 0; ++now) {
    departures.clear();
    router.step(now, true, departures);
    router.check_invariants();
  }
  EXPECT_EQ(router.flits_buffered(), 0u);
}

// --------------------------------------------------------------------------
// Simulation-level guarantees.

SimConfig qd_sim_config(const std::string& qd) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 500;
  config.measure_cycles = 1'500;
  config.arbiter = "coa";
  config.qd_spec = qd;
  return config;
}

Workload qd_workload(const SimConfig& config) {
  Rng rng(config.seed, 1);
  VbrMixSpec spec;
  spec.target_load = 0.5;
  spec.trace_gops = 2;
  return build_vbr_mix(config, spec, rng);
}

TEST(QdSimulation, ExplicitVcIsBitIdenticalToUnset) {
  // `qd=vc` must not just behave like the default — it must BE the default:
  // same final state hash, same metrics.
  MmrSimulation unset(qd_sim_config(""), qd_workload(qd_sim_config("")));
  const SimulationMetrics unset_metrics = unset.run();
  MmrSimulation explicit_vc(qd_sim_config("vc"),
                            qd_workload(qd_sim_config("vc")));
  const SimulationMetrics vc_metrics = explicit_vc.run();
  EXPECT_EQ(explicit_vc.state_hash(), unset.state_hash());
  EXPECT_EQ(vc_metrics.flits_delivered, unset_metrics.flits_delivered);
  EXPECT_DOUBLE_EQ(vc_metrics.flit_delay_us.mean(),
                   unset_metrics.flit_delay_us.mean());
  EXPECT_EQ(unset_metrics.queue_discipline, "vc");
  EXPECT_EQ(vc_metrics.queue_discipline, "vc");
  EXPECT_FALSE(vc_metrics.cicq.enabled);
}

TEST(QdSimulation, AllDisciplinesRunAndReportTheirDiscipline) {
  for (const char* qd : {"voq", "cicq,stab:1", "cicq,stab:0"}) {
    const SimConfig config = qd_sim_config(qd);
    MmrSimulation sim(config, qd_workload(config));
    const SimulationMetrics metrics = sim.run();
    EXPECT_GT(metrics.flits_delivered, 0u) << qd;
    const std::string want = std::string(qd).rfind("cicq", 0) == 0 ? "cicq"
                                                                   : "voq";
    EXPECT_EQ(metrics.queue_discipline, want) << qd;
    if (want == "cicq") {
      EXPECT_TRUE(metrics.cicq.enabled) << qd;
      EXPECT_GT(metrics.cicq.transfers, 0u) << qd;
    }
  }
}

TEST(QdSimulation, SnapshotResumeBitIdenticalAcrossDisciplines) {
  // The ISSUE 8 resume guarantee extends to the new disciplines: resuming a
  // mid-run checkpoint matches the uninterrupted run hash-for-hash.
  for (const char* qd : {"voq", "cicq,stab:0", "cicq,stab:1,xp:3,thresh:2"}) {
    const std::string tag(qd);
    std::string slug = tag;
    for (char& ch : slug)
      if (ch == ',' || ch == ':') ch = '_';
    const std::string prefix = ::testing::TempDir() + "/mmr_qd_" + slug;

    const SimConfig config = qd_sim_config(qd);

    SimConfig ref_config = config;
    ref_config.snap_spec = "hash_every:500,prefix:" + prefix + "-ref";
    MmrSimulation reference(ref_config, qd_workload(ref_config));
    const SimulationMetrics ref_metrics = reference.run();
    const std::uint64_t ref_hash = reference.state_hash();

    SimConfig ck_config = config;
    ck_config.snap_spec = "every:1000,prefix:" + prefix + "-ck";
    MmrSimulation interrupted(ck_config, qd_workload(ck_config));
    (void)interrupted.run();
    EXPECT_EQ(interrupted.state_hash(), ref_hash) << tag;
    const auto paths = interrupted.snapshot_manager()->checkpoints_written();
    ASSERT_FALSE(paths.empty()) << tag;

    SimConfig resume_config = config;
    resume_config.snap_spec =
        "hash_every:500,prefix:" + prefix + "-re,resume:" + paths[0];
    MmrSimulation resumed(resume_config, qd_workload(resume_config));
    EXPECT_EQ(resumed.now(), 1000u) << tag;
    const SimulationMetrics resumed_metrics = resumed.run();
    EXPECT_EQ(resumed.state_hash(), ref_hash) << tag;
    EXPECT_EQ(resumed_metrics.flits_delivered, ref_metrics.flits_delivered)
        << tag;
    EXPECT_DOUBLE_EQ(resumed_metrics.flit_delay_us.mean(),
                     ref_metrics.flit_delay_us.mean())
        << tag;

    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

TEST(QdSimulation, SnapshotRefusesToResumeUnderADifferentDiscipline) {
  // qd_spec is folded into the config digest: a VOQ checkpoint must never
  // silently resume as a CICQ (or per-VC) run.
  const std::string prefix = ::testing::TempDir() + "/mmr_qd_digest";
  SimConfig ck_config = qd_sim_config("voq");
  ck_config.snap_spec = "every:1000,prefix:" + prefix;
  MmrSimulation interrupted(ck_config, qd_workload(ck_config));
  (void)interrupted.run();
  const auto paths = interrupted.snapshot_manager()->checkpoints_written();
  ASSERT_FALSE(paths.empty());

  SimConfig resume_config = qd_sim_config("cicq");
  resume_config.snap_spec = "resume:" + paths[0];
  EXPECT_THROW(
      {
        MmrSimulation resumed(resume_config, qd_workload(resume_config));
      },
      snapshot::SnapshotError);
  for (const std::string& path : paths) std::remove(path.c_str());
}

}  // namespace
}  // namespace mmr
