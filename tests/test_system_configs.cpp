// Robustness sweep: the engine must stay correct (not merely not-crash)
// across the whole configuration space — port counts, VC counts, buffer
// depths, candidate levels, priority schemes, flit formats.

#include <gtest/gtest.h>

#include "mmr/core/simulation.hpp"

namespace mmr {
namespace {

struct ConfigCase {
  std::uint32_t ports;
  std::uint32_t vcs;
  std::uint32_t buffer_flits;
  std::uint32_t levels;
  PriorityScheme scheme;
  const char* label;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, RunsCleanAndDelivers) {
  const ConfigCase& c = GetParam();
  SimConfig config;
  config.ports = c.ports;
  config.vcs_per_link = c.vcs;
  config.buffer_flits_per_vc = c.buffer_flits;
  config.candidate_levels = c.levels;
  config.priority_scheme = c.scheme;
  config.warmup_cycles = 500;
  config.measure_cycles = 8'000;
  config.validate();

  Rng rng(0xC0FFEE, c.ports * 131 + c.vcs);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  const SimulationMetrics metrics = simulation.run();

  EXPECT_GT(metrics.flits_delivered, 100u);
  EXPECT_NEAR(metrics.delivered_load, metrics.generated_load_measured, 0.02);
  EXPECT_LE(metrics.delivered_load, 1.0 + 1e-9);
  simulation.check_invariants();
}

std::vector<ConfigCase> config_cases() {
  return {
      {2, 8, 1, 1, PriorityScheme::kSiabp, "minimal"},
      {2, 16, 2, 2, PriorityScheme::kIabp, "tiny_iabp"},
      {4, 64, 2, 4, PriorityScheme::kSiabp, "paper_default"},
      {4, 64, 8, 4, PriorityScheme::kSiabp, "deep_buffers"},
      {4, 64, 2, 16, PriorityScheme::kSiabp, "many_levels"},
      {4, 64, 2, 4, PriorityScheme::kFifoAge, "fifo_age"},
      {4, 64, 2, 4, PriorityScheme::kStatic, "static_priority"},
      {8, 32, 2, 4, PriorityScheme::kSiabp, "eight_ports"},
      {16, 16, 2, 4, PriorityScheme::kSiabp, "sixteen_ports"},
      {3, 24, 3, 3, PriorityScheme::kIabp, "odd_everything"},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep, ::testing::ValuesIn(config_cases()),
    [](const ::testing::TestParamInfo<ConfigCase>& param_info) {
      return param_info.param.label;
    });

class FlitFormatSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(FlitFormatSweep, TimeBaseAndEngineAgree) {
  const auto [flit_bits, phit_bits] = GetParam();
  SimConfig config;
  config.flit_bits = flit_bits;
  config.phit_bits = phit_bits;
  config.vcs_per_link = 32;
  config.warmup_cycles = 500;
  config.measure_cycles = 5'000;
  config.validate();

  Rng rng(0xF117, flit_bits);
  CbrMixSpec spec;
  spec.target_load = 0.4;
  spec.classes = {kCbrHigh};
  spec.class_weights = {1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_GT(metrics.flits_delivered, 0u);
  EXPECT_NEAR(metrics.flit_cycle_us,
              flit_bits / config.link_bandwidth_bps * 1e6, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Formats, FlitFormatSweep,
                         ::testing::Values(std::make_pair(1024u, 8u),
                                           std::make_pair(2048u, 16u),
                                           std::make_pair(4096u, 16u),
                                           std::make_pair(8192u, 32u)));

TEST(ConfigSweep, ZeroTrafficRunIsCleanEverywhere) {
  SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 1'000;
  Workload workload(config.ports);  // no connections at all
  MmrSimulation simulation(config, std::move(workload));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_EQ(metrics.flits_generated, 0u);
  EXPECT_EQ(metrics.flits_delivered, 0u);
  EXPECT_DOUBLE_EQ(metrics.crossbar_utilization, 0.0);
  EXPECT_FALSE(metrics.saturated());
}

TEST(ConfigSweep, ZeroLatencyLinksWork) {
  SimConfig config;
  config.link_latency = 0;
  config.credit_latency = 0;
  config.vcs_per_link = 32;
  config.warmup_cycles = 200;
  config.measure_cycles = 5'000;
  Rng rng(0x11, 0);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.classes = {kCbrHigh};
  spec.class_weights = {1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_NEAR(metrics.delivered_load, metrics.generated_load_measured, 0.02);
}

TEST(ConfigSweep, LongLatencyLinksNeedDeeperBuffersForFullThroughput) {
  // With B credits and a round trip of link+credit latency, a VC's ceiling
  // is B flits per round trip — the classic credit-loop bandwidth bound.
  // One saturated connection, B=2, round trip 8+8+2: throughput must be
  // well below line rate yet the run must stay loss-free and consistent.
  SimConfig config;
  config.link_latency = 8;
  config.credit_latency = 8;
  config.vcs_per_link = 4;
  config.buffer_flits_per_vc = 2;
  config.warmup_cycles = 500;
  config.measure_cycles = 10'000;
  Workload workload(config.ports);
  ConnectionDescriptor descriptor;
  descriptor.traffic_class = TrafficClass::kCbr;
  descriptor.input_link = 0;
  descriptor.output_link = 1;
  descriptor.mean_bandwidth_bps = 2.4e9;  // wants the whole link
  descriptor.peak_bandwidth_bps = 2.4e9;
  descriptor.slots_per_round = 1024;
  const ConnectionId id = workload.table.add(descriptor, config.vcs_per_link);
  workload.sources.push_back(
      std::make_unique<CbrSource>(id, 2.4e9, config.time_base()));
  MmrSimulation simulation(config, std::move(workload));
  const SimulationMetrics metrics = simulation.run();
  const double round_trip = 8.0 + 8.0 + 2.0;
  const double ceiling = 2.0 / round_trip;  // B / RTT flits per cycle
  const double per_port_delivered = metrics.delivered_load * 4.0;
  EXPECT_LE(per_port_delivered, ceiling * 1.15);
  EXPECT_GE(per_port_delivered, ceiling * 0.5);
  simulation.check_invariants();
}

}  // namespace
}  // namespace mmr
