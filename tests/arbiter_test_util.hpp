// Shared helpers for arbiter tests.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr::test {

/// Random candidate set: each input contributes a geometric number of
/// contiguous levels; outputs uniform; priorities non-increasing per input.
inline CandidateSet random_candidates(std::uint32_t ports,
                                      std::uint32_t levels, double density,
                                      Rng& rng) {
  CandidateSet set(ports, levels);
  for (std::uint32_t input = 0; input < ports; ++input) {
    Priority prev = ~Priority{0};
    for (std::uint32_t level = 0; level < levels; ++level) {
      if (!rng.chance(density)) break;
      Candidate c;
      c.input = static_cast<std::uint16_t>(input);
      c.output = static_cast<std::uint16_t>(rng.uniform(ports));
      c.level = static_cast<std::uint8_t>(level);
      c.vc = input * levels + level;
      c.priority = std::min<Priority>(prev, 1 + rng.uniform(1u << 20));
      prev = c.priority;
      set.add(c);
    }
  }
  return set;
}

/// Candidate set with exactly one candidate per (input -> output) pair from
/// a permutation.
inline CandidateSet permutation_candidates(std::uint32_t ports,
                                           std::uint32_t shift = 0) {
  CandidateSet set(ports, 1);
  for (std::uint32_t input = 0; input < ports; ++input) {
    Candidate c;
    c.input = static_cast<std::uint16_t>(input);
    c.output = static_cast<std::uint16_t>((input + shift) % ports);
    c.level = 0;
    c.vc = input;
    c.priority = 100;
    set.add(c);
  }
  return set;
}

/// All inputs request the same output at level 0, with distinct priorities
/// priority(input) = base + input.
inline CandidateSet contention_candidates(std::uint32_t ports,
                                          std::uint32_t output,
                                          Priority base = 10) {
  CandidateSet set(ports, 1);
  for (std::uint32_t input = 0; input < ports; ++input) {
    Candidate c;
    c.input = static_cast<std::uint16_t>(input);
    c.output = static_cast<std::uint16_t>(output);
    c.level = 0;
    c.vc = input;
    c.priority = base + input;
    set.add(c);
  }
  return set;
}

}  // namespace mmr::test
