#include "mmr/arbiter/wavefront.hpp"

#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/verify.hpp"

namespace mmr {
namespace {

Candidate make_candidate(std::uint32_t input, std::uint32_t output,
                         std::uint32_t level, Priority priority) {
  Candidate c;
  c.input = static_cast<std::uint16_t>(input);
  c.output = static_cast<std::uint16_t>(output);
  c.level = static_cast<std::uint8_t>(level);
  c.priority = priority;
  return c;
}

TEST(WaveFrontArbiter, FavoursTopLeftCornerConsistently) {
  // Fixed WFA: with inputs 0 and 1 both requesting output 0, the cell
  // closer to the wave origin — (0,0) on diagonal 0 vs (1,0) on diagonal 1
  // — wins every single time.  This positional bias is why the paper's WFA
  // cannot honour priorities.
  WaveFrontArbiter arbiter(4);
  for (int trial = 0; trial < 20; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_EQ(matching.input_of(0), 0);
  }
}

TEST(WaveFrontArbiter, IgnoresPriorities) {
  // Input 3 has a colossal priority but input 0 sits on the earlier
  // diagonal: input 0 still wins output 0.
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 1);
  set.add(make_candidate(0, 0, 0, 1));
  set.add(make_candidate(3, 0, 0, Priority{1} << 40));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.input_of(0), 0);
}

TEST(WaveFrontArbiter, DiagonalCellsGrantInParallel) {
  // Requests on one anti-diagonal do not conflict: all are granted.
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 1);
  for (std::uint32_t input = 0; input < 4; ++input) {
    set.add(make_candidate(input, 3 - input, 0, 10));
  }
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 4u);
}

TEST(WaveFrontArbiter, DeduplicatesSameInputOutputPairsToLowestLevel) {
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 3);
  set.add(make_candidate(2, 1, 0, 100));
  set.add(make_candidate(2, 1, 1, 90));  // same pair, deeper level
  set.add(make_candidate(2, 1, 2, 80));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  // The transmitted candidate is the level-0 one.
  const Candidate& granted =
      set.at(static_cast<std::size_t>(matching.candidate_of(2)));
  EXPECT_EQ(granted.level, 0u);
}

TEST(WrappedWaveFrontArbiter, StartDiagonalRotates) {
  WrappedWaveFrontArbiter arbiter(4);
  EXPECT_EQ(arbiter.next_start_diagonal(), 0u);
  (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_start_diagonal(), 1u);
  for (int i = 0; i < 3; ++i) (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_start_diagonal(), 0u);  // wraps mod ports
}

TEST(WrappedWaveFrontArbiter, RotationSharesContestedOutputFairly) {
  // Under full contention for output 0, the rotating diagonal must hand the
  // grant to every input equally often over a full rotation period.
  WrappedWaveFrontArbiter arbiter(4);
  std::vector<int> wins(4, 0);
  for (int trial = 0; trial < 400; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    ++wins[static_cast<std::size_t>(matching.input_of(0))];
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(WrappedWaveFrontArbiter, MaximalOnDenseRequests) {
  WrappedWaveFrontArbiter arbiter(8);
  Rng rng(0x99, 0);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.9, rng);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_TRUE(is_maximal(set, matching));
    EXPECT_TRUE(check_matching(set, matching).valid);
  }
}

TEST(WaveFrontArbiter, FullRequestMatrixYieldsPerfectMatching) {
  // Every input requests every output (via 4 levels to distinct outputs is
  // not possible; instead use ports=4 with levels=4 covering all outputs).
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 4);
  for (std::uint32_t input = 0; input < 4; ++input) {
    for (std::uint32_t level = 0; level < 4; ++level) {
      set.add(make_candidate(input, (input + level) % 4, level,
                             100 - level));
    }
  }
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 4u);
}

}  // namespace
}  // namespace mmr
