#include "mmr/arbiter/wavefront.hpp"

#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/verify.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {
namespace {

Candidate make_candidate(std::uint32_t input, std::uint32_t output,
                         std::uint32_t level, Priority priority) {
  Candidate c;
  c.input = static_cast<std::uint16_t>(input);
  c.output = static_cast<std::uint16_t>(output);
  c.level = static_cast<std::uint8_t>(level);
  c.priority = priority;
  return c;
}

// ---------------------------------------------------------------------------
// Legacy fixed-corner engine ("wfa-fixed"): the corner bias the paper
// measures, preserved exactly as the pre-rotation "wfa" behaved.

TEST(FixedWaveFront, FavoursTopLeftCornerConsistently) {
  // With inputs 0 and 1 both requesting output 0, the cell closer to the
  // wave origin — (0,0) on diagonal 0 vs (1,0) on diagonal 1 — wins every
  // single time.  This positional bias is why the paper's WFA cannot honour
  // priorities, and (under sustained contention) why it starves high-index
  // inputs.
  WaveFrontScanArbiter arbiter(4, /*rotate=*/false);
  for (int trial = 0; trial < 20; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_EQ(matching.input_of(0), 0);
  }
}

TEST(FixedWaveFront, IgnoresPriorities) {
  // Input 3 has a colossal priority but input 0 sits on the earlier
  // diagonal: input 0 still wins output 0.
  WaveFrontScanArbiter arbiter(4, /*rotate=*/false);
  CandidateSet set(4, 1);
  set.add(make_candidate(0, 0, 0, 1));
  set.add(make_candidate(3, 0, 0, Priority{1} << 40));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.input_of(0), 0);
}

TEST(FixedWaveFront, StarvesHighIndexInputBeyondQosDeadline) {
  // The starvation regression the rotating corner fixes: under a sustained
  // hotspot (every input requesting output 0 every cycle, as when a paused
  // high-index port's backlog keeps re-requesting) the fixed corner serves
  // input 0 forever, so the highest-index input waits past the QoS deadline
  // — bench/incast_survival measured an Xoff pause held open for ~80k
  // cycles this way.
  constexpr std::uint32_t kPorts = 4;
  const auto cycles = static_cast<int>(kQosDeadlineCycles) + 50;
  WaveFrontScanArbiter arbiter(kPorts, /*rotate=*/false);
  int wins_high = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const CandidateSet set = test::contention_candidates(kPorts, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    if (matching.input_of(0) == static_cast<std::int32_t>(kPorts - 1))
      ++wins_high;
  }
  // Input kPorts-1 never gets output 0: its wait exceeds kQosDeadlineCycles.
  EXPECT_EQ(wins_high, 0);
}

// ---------------------------------------------------------------------------
// Default rotating-corner engine ("wfa") and its scan twin ("wfa-scan").

TEST(WaveFrontArbiter, CornerRowRotatesEveryArbitration) {
  WaveFrontArbiter arbiter(4);
  EXPECT_EQ(arbiter.next_corner_row(), 0u);
  (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_corner_row(), 1u);
  for (int i = 0; i < 3; ++i) (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_corner_row(), 0u);  // wraps mod ports
}

TEST(WaveFrontArbiter, BoundsWaitAtContestedOutput) {
  // The starvation fix: with every input requesting output 0 every cycle,
  // each input's wait between consecutive wins is bounded by P arbitrations
  // (the corner visits every row once per P cycles).
  constexpr std::uint32_t kPorts = 4;
  WaveFrontArbiter arbiter(kPorts);
  std::vector<int> last_win(kPorts, -1);
  int max_gap = 0;
  for (int cycle = 0; cycle < 400; ++cycle) {
    const CandidateSet set = test::contention_candidates(kPorts, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    const auto winner =
        static_cast<std::size_t>(matching.input_of(0));
    if (last_win[winner] >= 0)
      max_gap = std::max(max_gap, cycle - last_win[winner]);
    last_win[winner] = cycle;
  }
  for (std::uint32_t in = 0; in < kPorts; ++in)
    EXPECT_GE(last_win[in], 0) << "input " << in << " never won";
  EXPECT_LE(max_gap, static_cast<int>(kPorts));
  EXPECT_LE(static_cast<double>(max_gap), kQosDeadlineCycles);
}

TEST(WaveFrontArbiter, SharesContestedOutputEqually) {
  WaveFrontArbiter arbiter(4);
  std::vector<int> wins(4, 0);
  for (int trial = 0; trial < 400; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    ++wins[static_cast<std::size_t>(matching.input_of(0))];
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(WaveFrontArbiter, DiagonalCellsGrantInParallel) {
  // Requests on one anti-diagonal do not conflict: all are granted.
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 1);
  for (std::uint32_t input = 0; input < 4; ++input) {
    set.add(make_candidate(input, 3 - input, 0, 10));
  }
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 4u);
}

TEST(WaveFrontArbiter, DeduplicatesSameInputOutputPairsToLowestLevel) {
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 3);
  set.add(make_candidate(2, 1, 0, 100));
  set.add(make_candidate(2, 1, 1, 90));  // same pair, deeper level
  set.add(make_candidate(2, 1, 2, 80));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  // The transmitted candidate is the level-0 one.
  const Candidate& granted =
      set.at(static_cast<std::size_t>(matching.candidate_of(2)));
  EXPECT_EQ(granted.level, 0u);
}

TEST(WaveFrontArbiter, FullRequestMatrixYieldsPerfectMatching) {
  WaveFrontArbiter arbiter(4);
  CandidateSet set(4, 4);
  for (std::uint32_t input = 0; input < 4; ++input) {
    for (std::uint32_t level = 0; level < 4; ++level) {
      set.add(make_candidate(input, (input + level) % 4, level,
                             100 - level));
    }
  }
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 4u);
}

TEST(WaveFrontArbiter, BitsetMatchesScanTwinAcrossWidths) {
  // The word-parallel engine must grant exactly as the rotating scan twin,
  // including above 64 ports where request rows span multiple words.
  for (const std::uint32_t ports : {3u, 16u, 64u, 65u, 128u}) {
    WaveFrontArbiter bitset(ports);
    WaveFrontScanArbiter scan(ports, /*rotate=*/true);
    Rng rng(0xF00D, ports);
    for (int trial = 0; trial < 40; ++trial) {
      const CandidateSet set = test::random_candidates(ports, 3, 0.5, rng);
      const Matching a = bitset.arbitrate(set);
      const Matching b = scan.arbitrate(set);
      for (std::uint32_t in = 0; in < ports; ++in) {
        ASSERT_EQ(a.output_of(in), b.output_of(in))
            << "ports=" << ports << " trial=" << trial << " input=" << in;
        ASSERT_EQ(a.candidate_of(in), b.candidate_of(in));
      }
    }
  }
}

TEST(WaveFrontArbiter, MaximalOnDenseRequests) {
  WaveFrontArbiter arbiter(8);
  Rng rng(0x77, 0);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.9, rng);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_TRUE(is_maximal(set, matching));
    EXPECT_TRUE(check_matching(set, matching).valid);
  }
}

// ---------------------------------------------------------------------------
// Wrapped variant (unchanged).

TEST(WrappedWaveFrontArbiter, StartDiagonalRotates) {
  WrappedWaveFrontArbiter arbiter(4);
  EXPECT_EQ(arbiter.next_start_diagonal(), 0u);
  (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_start_diagonal(), 1u);
  for (int i = 0; i < 3; ++i) (void)arbiter.arbitrate(CandidateSet(4, 1));
  EXPECT_EQ(arbiter.next_start_diagonal(), 0u);  // wraps mod ports
}

TEST(WrappedWaveFrontArbiter, RotationSharesContestedOutputFairly) {
  // Under full contention for output 0, the rotating diagonal must hand the
  // grant to every input equally often over a full rotation period.
  WrappedWaveFrontArbiter arbiter(4);
  std::vector<int> wins(4, 0);
  for (int trial = 0; trial < 400; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    ++wins[static_cast<std::size_t>(matching.input_of(0))];
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(WrappedWaveFrontArbiter, MaximalOnDenseRequests) {
  WrappedWaveFrontArbiter arbiter(8);
  Rng rng(0x99, 0);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.9, rng);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_TRUE(is_maximal(set, matching));
    EXPECT_TRUE(check_matching(set, matching).valid);
  }
}

}  // namespace
}  // namespace mmr
