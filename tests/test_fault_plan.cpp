#include "mmr/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mmr/fault/fault_injector.hpp"

namespace mmr {
namespace {

TEST(FaultPlan, DefaultConstructedIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.validate(4);  // an empty plan is always valid
}

TEST(FaultPlan, AnyRateOrWindowMakesItNonEmpty) {
  FaultPlan drops;
  drops.default_rates.drop_probability = 1e-3;
  EXPECT_FALSE(drops.empty());

  FaultPlan outage;
  outage.down_windows.push_back({0, 10, 20});
  EXPECT_FALSE(outage.empty());

  FaultPlan override_only;
  override_only.channel_rates.push_back({2, {0.0, 0.0, 1e-4}});
  EXPECT_FALSE(override_only.empty());

  // Knob changes alone (timeouts, seed) keep the plan a no-op.
  FaultPlan knobs;
  knobs.resync_timeout = 1;
  knobs.seed = 99;
  EXPECT_TRUE(knobs.empty());
}

TEST(FaultPlan, PerChannelOverridesWin) {
  FaultPlan plan;
  plan.default_rates.drop_probability = 0.5;
  plan.channel_rates.push_back({1, {0.0, 0.25, 0.0}});
  EXPECT_DOUBLE_EQ(plan.rates_for(0).drop_probability, 0.5);
  EXPECT_DOUBLE_EQ(plan.rates_for(1).drop_probability, 0.0);
  EXPECT_DOUBLE_EQ(plan.rates_for(1).corrupt_probability, 0.25);
}

TEST(FaultPlan, ParseRoundTripsEveryToken) {
  const FaultPlan plan = FaultPlan::parse(
      "drop:0.001,corrupt:5e-4,credit_loss:0.002,down:0:30000:45000,"
      "down:3:50000:60000,resync_period:512,resync_timeout:2048,"
      "deadline:300,seed:7");
  EXPECT_DOUBLE_EQ(plan.default_rates.drop_probability, 0.001);
  EXPECT_DOUBLE_EQ(plan.default_rates.corrupt_probability, 5e-4);
  EXPECT_DOUBLE_EQ(plan.default_rates.credit_loss_probability, 0.002);
  ASSERT_EQ(plan.down_windows.size(), 2u);
  EXPECT_EQ(plan.down_windows[0].channel, 0u);
  EXPECT_EQ(plan.down_windows[0].down_at, 30000u);
  EXPECT_EQ(plan.down_windows[0].up_at, 45000u);
  EXPECT_EQ(plan.down_windows[1].channel, 3u);
  EXPECT_EQ(plan.resync_period, 512u);
  EXPECT_EQ(plan.resync_timeout, 2048u);
  EXPECT_DOUBLE_EQ(plan.qos_deadline_cycles, 300.0);
  EXPECT_EQ(plan.seed, 7u);
  plan.validate(4);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:2.0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("down:0:10"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("resync_period"), std::invalid_argument);
  // The empty spec parses to the empty plan.
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlanDeath, ValidateCatchesNonsense) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FaultPlan out_of_range;
  out_of_range.down_windows.push_back({9, 10, 20});
  EXPECT_DEATH(out_of_range.validate(4), "unknown channel");

  FaultPlan inverted;
  inverted.down_windows.push_back({0, 20, 10});
  EXPECT_DEATH(inverted.validate(4), "down_at < up_at");

  FaultPlan overlapping;
  overlapping.down_windows.push_back({0, 10, 30});
  overlapping.down_windows.push_back({0, 20, 40});
  EXPECT_DEATH(overlapping.validate(4), "must not overlap");
}

TEST(FaultPlan, RandomWindowsAreValidAndDeterministic) {
  Rng rng_a(123, 0);
  Rng rng_b(123, 0);
  const FaultPlan a =
      FaultPlan::random_windows(6, 10, 1000, 100000, 50, 500, rng_a);
  const FaultPlan b =
      FaultPlan::random_windows(6, 10, 1000, 100000, 50, 500, rng_b);
  a.validate(6);
  ASSERT_EQ(a.down_windows.size(), b.down_windows.size());
  for (std::size_t i = 0; i < a.down_windows.size(); ++i) {
    EXPECT_EQ(a.down_windows[i].channel, b.down_windows[i].channel);
    EXPECT_EQ(a.down_windows[i].down_at, b.down_windows[i].down_at);
    EXPECT_EQ(a.down_windows[i].up_at, b.down_windows[i].up_at);
  }
  for (const LinkDownWindow& w : a.down_windows) {
    EXPECT_GE(w.down_at, 1000u);
    EXPECT_LE(w.up_at, 100000u);
    EXPECT_GE(w.up_at - w.down_at, 50u);
    EXPECT_LE(w.up_at - w.down_at, 500u);
  }
}

TEST(FaultInjector, OutageScheduleTransitions) {
  FaultPlan plan;
  plan.down_windows.push_back({1, 10, 20});
  plan.down_windows.push_back({2, 15, 25});
  FaultInjector injector(plan, 4);
  std::vector<std::uint32_t> went_down;
  std::vector<std::uint32_t> came_up;

  injector.advance_to(9, went_down, came_up);
  EXPECT_TRUE(went_down.empty());
  EXPECT_FALSE(injector.any_down());

  injector.advance_to(10, went_down, came_up);
  ASSERT_EQ(went_down.size(), 1u);
  EXPECT_EQ(went_down[0], 1u);
  EXPECT_TRUE(injector.is_down(1));
  EXPECT_FALSE(injector.is_down(2));
  EXPECT_EQ(injector.down_count(), 1u);

  went_down.clear();
  injector.advance_to(18, went_down, came_up);  // skipping cycles is fine
  ASSERT_EQ(went_down.size(), 1u);
  EXPECT_EQ(went_down[0], 2u);
  EXPECT_EQ(injector.down_count(), 2u);

  went_down.clear();
  injector.advance_to(30, went_down, came_up);
  EXPECT_EQ(came_up.size(), 2u);
  EXPECT_FALSE(injector.any_down());
}

TEST(FaultInjector, DrawsAreDeterministicAndPerChannel) {
  FaultPlan plan;
  plan.default_rates.drop_probability = 0.5;
  plan.seed = 42;
  FaultInjector a(plan, 2);
  FaultInjector b(plan, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.drop_flit(0), b.drop_flit(0));
    EXPECT_EQ(a.drop_flit(1), b.drop_flit(1));
  }
  // Interleaving draws differently on channel 1 must not disturb channel 0.
  FaultInjector c(plan, 2);
  FaultInjector d(plan, 2);
  std::vector<bool> seq_c;
  std::vector<bool> seq_d;
  for (int i = 0; i < 50; ++i) {
    seq_c.push_back(c.drop_flit(0));
    (void)c.drop_flit(1);
  }
  for (int i = 0; i < 50; ++i) seq_d.push_back(d.drop_flit(0));
  EXPECT_EQ(seq_c, seq_d);
}

TEST(FaultInjector, ZeroProbabilityNeverDrawsOrFires) {
  FaultPlan plan;
  plan.down_windows.push_back({0, 10, 20});  // outage only, no stochastic rates
  FaultInjector injector(plan, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.drop_flit(0));
    EXPECT_FALSE(injector.corrupt_flit(0));
    EXPECT_FALSE(injector.lose_credit(0));
  }
}

TEST(FaultInjector, RateSweepRoughlyMatchesProbability) {
  FaultPlan plan;
  plan.default_rates.corrupt_probability = 0.2;
  FaultInjector injector(plan, 1);
  int hits = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (injector.corrupt_flit(0)) ++hits;
  }
  const double rate = static_cast<double>(hits) / draws;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

}  // namespace
}  // namespace mmr
