// Bit-identity proofs for the word-parallel bitset / SoA arbitration
// engines: every (optimised, reference) pair from arbiter_twin_pairs() must
// grant exactly alike — same (input, output) pairing, same candidate index —
// over identical candidate sequences and RNG seeds, across every load
// profile and port widths from tiny through multi-word (>64).  The heavier
// 1000-seed soak lives in bench/audit_soak (tier-2 ctest target
// bench_audit_soak_wide); this suite is the fast tier-1 slice.

#include <gtest/gtest.h>

#include "mmr/arbiter/bitreq.hpp"
#include "mmr/arbiter/factory.hpp"
#include "mmr/audit/harness.hpp"

namespace mmr {
namespace {

TEST(BitsetTwins, RegistryPairsAreRegistered) {
  // Both sides of every twin pair must be constructible registry names so
  // the audit harness (and a replayed CaseSpec) can always build them.
  const auto& names = arbiter_names();
  for (const auto& [fast, ref] : arbiter_twin_pairs()) {
    EXPECT_NE(std::find(names.begin(), names.end(), fast), names.end())
        << fast;
    EXPECT_NE(std::find(names.begin(), names.end(), ref), names.end())
        << ref;
    EXPECT_NE(fast, ref);
  }
}

TEST(BitsetTwins, BitIdenticalAcrossProfilesAndWidths) {
  // Ports straddle the word boundary on purpose: 5 (partial word), 63/64
  // (one word, last bit unused / exactly full), 65 (one bit into word 1),
  // 127/128 (the same boundary again on multi-word rows).
  audit::TwinDiffOptions options;
  options.ports = {2, 5, 8, 16, 32, 63, 64, 65, 127, 128};
  options.seeds = 8;
  options.steps = 20;
  options.levels = 3;
  const audit::TwinDiffReport report = run_twin_diff(options);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.cases, 0u);
}

TEST(BitsetTwins, WfaFixedPreservesLegacyBehaviourNotRotation) {
  // "wfa-fixed" is the pre-rotation arbiter: under full contention for one
  // output it must keep granting input 0 forever — i.e. it must NOT match
  // the rotating "wfa" stream.  (Guards against accidentally registering
  // the rotating engine under the legacy name.)
  const std::uint32_t ports = 4;
  auto fixed = make_arbiter("wfa-fixed", ports, Rng(1, 0));
  auto rotating = make_arbiter("wfa", ports, Rng(1, 0));
  bool diverged = false;
  for (int cycle = 0; cycle < 8; ++cycle) {
    CandidateSet set(ports, 1);
    for (std::uint32_t in = 0; in < ports; ++in) {
      Candidate c;
      c.input = static_cast<std::uint16_t>(in);
      c.output = 0;
      c.level = 0;
      c.priority = 10;
      set.add(c);
    }
    const Matching mf = fixed->arbitrate(set);
    const Matching mr = rotating->arbitrate(set);
    EXPECT_EQ(mf.input_of(0), 0) << "wfa-fixed must stay corner-biased";
    if (mr.input_of(0) != mf.input_of(0)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "rotating wfa never left the corner";
}

TEST(BitRequestMatrix, CyclicFirstBitSearch) {
  std::uint64_t words[2] = {0, 0};
  EXPECT_EQ(bits_first_cyclic(words, 2, 0), -1);
  bits_set(words, 3);
  bits_set(words, 70);
  EXPECT_EQ(bits_first_cyclic(words, 2, 0), 3);
  EXPECT_EQ(bits_first_cyclic(words, 2, 3), 3);
  EXPECT_EQ(bits_first_cyclic(words, 2, 4), 70);   // scan into word 1
  EXPECT_EQ(bits_first_cyclic(words, 2, 71), 3);   // wraps around
  bits_clear(words, 3);
  EXPECT_EQ(bits_first_cyclic(words, 2, 71), 70);  // wraps to own word
}

TEST(BitRequestMatrix, CyclicSearchAtWordBoundaries) {
  // The exact bits a P=63/64/65 port count exercises: the last bit of word
  // 0 and the first bit of word 1.
  std::uint64_t words[2] = {0, 0};
  bits_set(words, 63);
  EXPECT_EQ(bits_first_cyclic(words, 1, 0), 63);   // single-word row
  EXPECT_EQ(bits_first_cyclic(words, 1, 63), 63);  // start on the last bit
  EXPECT_EQ(bits_first_cyclic(words, 2, 0), 63);
  bits_set(words, 64);
  EXPECT_EQ(bits_first_cyclic(words, 2, 64), 64);  // start on word 1's bit 0
  EXPECT_EQ(bits_first_cyclic(words, 2, 65), 63);  // wrap across both words
  bits_clear(words, 63);
  bits_clear(words, 64);
  EXPECT_EQ(bits_first_cyclic(words, 2, 63), -1);
}

TEST(BitRequestMatrix, CollapsesLevelsAndTracksLiveMasks) {
  CandidateSet set(70, 3);  // multi-word width
  const auto add = [&](std::uint32_t in, std::uint32_t out,
                       std::uint32_t level) {
    Candidate c;
    c.input = static_cast<std::uint16_t>(in);
    c.output = static_cast<std::uint16_t>(out);
    c.level = static_cast<std::uint8_t>(level);
    c.priority = 1;
    set.add(c);
  };
  add(2, 69, 0);
  add(67, 5, 0);  // levels must be contiguous per input, so seed level 0
  add(67, 1, 1);
  add(67, 1, 2);  // same pair, deeper level: must collapse to level 1
  BitRequestMatrix matrix;
  matrix.build(set);
  EXPECT_EQ(matrix.ports(), 70u);
  EXPECT_EQ(matrix.words(), 2u);
  EXPECT_TRUE(bits_test(matrix.outputs_of(2), 69));
  EXPECT_TRUE(bits_test(matrix.inputs_of(69), 2));
  EXPECT_TRUE(bits_test(matrix.inputs_of(1), 67));
  EXPECT_TRUE(bits_test(matrix.live_inputs(), 67));
  EXPECT_TRUE(bits_test(matrix.live_outputs(), 69));
  EXPECT_FALSE(bits_test(matrix.live_outputs(), 0));
  EXPECT_EQ(set.at(static_cast<std::size_t>(matrix.cell(67, 1))).level, 1u);

  // Rebuild from a different set: the sparse clear must leave no stale
  // cells or bits behind.
  CandidateSet next(70, 3);
  {
    Candidate c;
    c.input = 5;
    c.output = 6;
    c.level = 0;
    c.priority = 1;
    next.add(c);
  }
  matrix.build(next);
  EXPECT_EQ(matrix.cell(2, 69), -1);
  EXPECT_EQ(matrix.cell(67, 1), -1);
  EXPECT_FALSE(bits_test(matrix.live_inputs(), 67));
  EXPECT_TRUE(bits_test(matrix.outputs_of(5), 6));
  EXPECT_EQ(set.at(0).input, 2);  // original set untouched
}

}  // namespace
}  // namespace mmr
