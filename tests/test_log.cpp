#include "mmr/sim/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mmr {
namespace {

TEST(Logger, SingletonIsStable) {
  Logger& a = Logger::instance();
  Logger& b = Logger::instance();
  EXPECT_EQ(&a, &b);
}

TEST(Logger, LevelGatesEmission) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  // Below-threshold calls must not crash and must be cheap no-ops; the
  // formatting lambda side effects prove the short-circuit.
  log_debug("invisible ", 42);
  log_info("invisible ", 43);
  logger.set_level(LogLevel::kDebug);
  log_debug("visible at debug level");
  logger.set_level(original);
}

TEST(Logger, VariadicFormattingComposes) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  // Mixed argument types compile and run.
  log_error("code=", 7, " ratio=", 0.5, " name=", std::string("x"));
  logger.set_level(original);
}

TEST(Logger, SinkCapturesCompleteLines) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kInfo);
  std::vector<std::string> lines;
  logger.set_sink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  log_info("hello ", 1);
  log_error("bad ", 2);
  log_debug("below threshold");
  logger.set_sink(nullptr);
  logger.set_level(original);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[mmr INFO ] hello 1\n");
  EXPECT_EQ(lines[1], "[mmr ERROR] bad 2\n");
}

// Many threads log concurrently while another thread toggles the level; the
// sink must observe only whole, well-formed lines (no interleaving, no torn
// level reads tripping TSan/UB).
TEST(Logger, ConcurrentWritersNeverInterleave) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kInfo);

  std::vector<std::string> lines;
  logger.set_sink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });

  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load()) {
      logger.set_level(LogLevel::kInfo);
      logger.set_level(LogLevel::kDebug);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        log_error("thread=", t, " msg=", i, " payload=abcdefghijklmnop");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  toggler.join();
  logger.set_sink(nullptr);
  logger.set_level(original);

  // kError is always at or below the toggled threshold, so every message
  // arrives, each as one complete line.
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kMessagesPerThread);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("[mmr ERROR] thread=", 0), 0u) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find(" payload=abcdefghijklmnop\n"), std::string::npos)
        << line;
  }
}

TEST(Logger, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kDebug));
}

}  // namespace
}  // namespace mmr
