#include "mmr/sim/log.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

TEST(Logger, SingletonIsStable) {
  Logger& a = Logger::instance();
  Logger& b = Logger::instance();
  EXPECT_EQ(&a, &b);
}

TEST(Logger, LevelGatesEmission) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  // Below-threshold calls must not crash and must be cheap no-ops; the
  // formatting lambda side effects prove the short-circuit.
  log_debug("invisible ", 42);
  log_info("invisible ", 43);
  logger.set_level(LogLevel::kDebug);
  log_debug("visible at debug level");
  logger.set_level(original);
}

TEST(Logger, VariadicFormattingComposes) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  // Mixed argument types compile and run.
  log_error("code=", 7, " ratio=", 0.5, " name=", std::string("x"));
  logger.set_level(original);
}

TEST(Logger, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kDebug));
}

}  // namespace
}  // namespace mmr
