// QoS behaviour tests: the paper's central claims, asserted at system level
// on hand-built workloads (not random mixes), so each mechanism is isolated.

#include <gtest/gtest.h>

#include "mmr/core/simulation.hpp"

namespace mmr {
namespace {

SimConfig qos_config(const std::string& arbiter) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 16;
  config.arbiter = arbiter;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 30'000;
  return config;
}

/// Adds one CBR connection and its source.
ConnectionId add_cbr(Workload& workload, const SimConfig& config,
                     std::uint32_t in, std::uint32_t out, double bps,
                     double phase = 0.0) {
  ConnectionDescriptor descriptor;
  descriptor.traffic_class = TrafficClass::kCbr;
  descriptor.input_link = in;
  descriptor.output_link = out;
  descriptor.mean_bandwidth_bps = bps;
  descriptor.peak_bandwidth_bps = bps;
  RoundAccounting rounds(config.flit_cycles_per_round(), config.time_base());
  descriptor.slots_per_round = rounds.slots_for_bandwidth(bps);
  descriptor.peak_slots_per_round = descriptor.slots_per_round;
  const ConnectionId id = workload.table.add(descriptor, config.vcs_per_link);
  workload.sources.push_back(
      std::make_unique<CbrSource>(id, bps, config.time_base(), phase));
  return id;
}

/// Delivered flit count per connection after a run.
std::vector<std::uint64_t> delivered_per_connection(MmrSimulation& simulation,
                                                    std::size_t connections) {
  std::vector<std::uint64_t> delivered(connections, 0);
  simulation.set_departure_observer(
      [&delivered](const MmrRouter::Departure& departure, Cycle) {
        ++delivered[departure.flit.connection];
      });
  (void)simulation.run();
  return delivered;
}

TEST(QosBehavior, FixedWfaIsPositionallyUnfairUnderOverload) {
  // Two connections fight for output 0 at 0.9 load each (1.8x overload).
  // The fixed WFA's cell (0,0) lies on an earlier diagonal than (3,0), so
  // input 0 wins whenever it has a flit; input 3 gets only the leftovers.
  // ("wfa-fixed" preserves the legacy fixed-corner engine; the default
  // "wfa" rotates its corner and no longer shows this bias.)
  SimConfig config = qos_config("wfa-fixed");
  Workload workload(config.ports);
  add_cbr(workload, config, 0, 0, 0.9 * 2.4e9, 0.0);
  add_cbr(workload, config, 3, 0, 0.9 * 2.4e9, 0.5);
  MmrSimulation simulation(config, std::move(workload));
  const auto delivered = delivered_per_connection(simulation, 2);
  EXPECT_GT(delivered[0], 4 * delivered[1])
      << "favoured crosspoint should dominate under plain WFA";
}

TEST(QosBehavior, CoaSharesAnOverloadedOutputEvenly) {
  // Same scenario under COA: equal reservations + SIABP aging must split
  // the contested output roughly evenly regardless of port position.
  SimConfig config = qos_config("coa");
  Workload workload(config.ports);
  add_cbr(workload, config, 0, 0, 0.9 * 2.4e9, 0.0);
  add_cbr(workload, config, 3, 0, 0.9 * 2.4e9, 0.5);
  MmrSimulation simulation(config, std::move(workload));
  const auto delivered = delivered_per_connection(simulation, 2);
  const double ratio = static_cast<double>(delivered[0]) /
                       static_cast<double>(delivered[1]);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(QosBehavior, WrappedWfaFairnessIsPerDiagonalNotPerPair) {
  // The rotating start makes every *diagonal* first equally often, which is
  // not the same as pairwise fairness: inputs 0 and 3 contesting output 0
  // sit on diagonals 0 and 3, and diagonal 3 precedes diagonal 0 in three
  // of the four rotations — a structural 1:3 split.  Inputs 0 and 2
  // (antipodal diagonals) split evenly.
  auto split = [](std::uint32_t other_input) {
    SimConfig config = qos_config("wwfa");
    Workload workload(config.ports);
    add_cbr(workload, config, 0, 0, 0.9 * 2.4e9, 0.0);
    add_cbr(workload, config, other_input, 0, 0.9 * 2.4e9, 0.5);
    MmrSimulation simulation(config, std::move(workload));
    const auto delivered = delivered_per_connection(simulation, 2);
    return static_cast<double>(delivered[0]) /
           static_cast<double>(delivered[1]);
  };
  EXPECT_NEAR(split(2), 1.0, 0.15);        // antipodal: even
  EXPECT_NEAR(split(3), 1.0 / 3.0, 0.08);  // adjacent: structural 1:3
}

TEST(QosBehavior, LowBandwidthConnectionIsNotStarvedByHeavyNeighbours) {
  // A 64 Kbps voice connection shares an output with three heavy streams
  // (0.3 link each).  SIABP aging must keep the voice flits flowing: every
  // generated voice flit is delivered within the run.
  SimConfig config = qos_config("coa");
  Workload workload(config.ports);
  const ConnectionId voice = add_cbr(workload, config, 0, 0, 64e3);
  for (std::uint32_t in = 1; in < 4; ++in) {
    add_cbr(workload, config, in, 0, 0.3 * 2.4e9,
            static_cast<double>(in) * 0.25);
  }
  std::uint64_t voice_generated = 0;
  for (Cycle t = config.warmup_cycles; t < config.total_cycles(); ++t) {
    // 64 Kbps => one flit per 37500 cycles.
    if (t % 37500 == 0) ++voice_generated;
  }
  MmrSimulation simulation(config, std::move(workload));
  const auto delivered = delivered_per_connection(simulation, 4);
  EXPECT_GE(delivered[voice] + 1, voice_generated);
}

TEST(QosBehavior, SiabpServesProportionallyMoreThanFifoAgeForHeavyClass) {
  // The point of relating priority to bandwidth: under contention the
  // 55 Mbps connection must see *lower delay* with SIABP than with pure
  // age-ordering, because its priority grows 24x faster.
  auto mean_delay_55m = [](PriorityScheme scheme) {
    SimConfig config = qos_config("coa");
    config.priority_scheme = scheme;
    Rng rng(0xD1, 7);
    CbrMixSpec spec;
    spec.target_load = 0.85;
    spec.destinations = DestinationPolicy::kBalanced;
    MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
    const SimulationMetrics metrics = simulation.run();
    const ClassMetrics* cls = metrics.find_class("CBR 55 Mbps");
    return cls->flit_delay_us.mean();
  };
  EXPECT_LT(mean_delay_55m(PriorityScheme::kSiabp),
            mean_delay_55m(PriorityScheme::kFifoAge));
}

TEST(QosBehavior, ReservationAwareStaticPrioritiesAloneCauseStarvation) {
  // Static priorities (no aging) starve low-bandwidth connections under
  // persistent contention — the reason biasing exists.
  SimConfig config = qos_config("coa");
  config.priority_scheme = PriorityScheme::kStatic;
  Workload workload(config.ports);
  const ConnectionId light = add_cbr(workload, config, 0, 0, 1.54e6);
  add_cbr(workload, config, 1, 0, 2.4e9);  // permanent higher-priority flood
  MmrSimulation simulation(config, std::move(workload));
  const auto delivered = delivered_per_connection(simulation, 2);
  EXPECT_EQ(delivered[light], 0u)
      << "static priorities must lose to the flood — aging is what saves "
         "them (see the SIABP tests)";
}

TEST(QosBehavior, SiabpAgingRescuesTheSameScenario) {
  SimConfig config = qos_config("coa");
  config.priority_scheme = PriorityScheme::kSiabp;
  Workload workload(config.ports);
  const ConnectionId light = add_cbr(workload, config, 0, 0, 1.54e6);
  add_cbr(workload, config, 1, 0, 2.4e9);
  MmrSimulation simulation(config, std::move(workload));
  const auto delivered = delivered_per_connection(simulation, 2);
  EXPECT_GT(delivered[light], 10u);
}

}  // namespace
}  // namespace mmr
