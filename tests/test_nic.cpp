#include "mmr/router/nic.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

Flit make_flit(ConnectionId connection, std::uint64_t seq) {
  Flit flit;
  flit.connection = connection;
  flit.seq = seq;
  return flit;
}

TEST(Nic, EmptyNicSendsNothing) {
  Nic nic(4, 2, 1);
  EXPECT_FALSE(nic.select_and_send(0).has_value());
  EXPECT_EQ(nic.total_queued(), 0u);
  nic.check_invariants();
}

TEST(Nic, SendsDepositedFlitAndConsumesCredit) {
  Nic nic(4, 2, 1);
  nic.deposit(2, make_flit(7, 0));
  const auto transfer = nic.select_and_send(0);
  ASSERT_TRUE(transfer.has_value());
  EXPECT_EQ(transfer->vc, 2u);
  EXPECT_EQ(transfer->flit.connection, 7u);
  EXPECT_EQ(nic.credits().credits(2), 1u);
  EXPECT_EQ(nic.total_sent(), 1u);
  nic.check_invariants();
}

TEST(Nic, OneSendPerCycle) {
  Nic nic(4, 2, 1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(1, make_flit(1, 0));
  EXPECT_TRUE(nic.select_and_send(0).has_value());
  // Second call in the same conceptual cycle would be a second send; the
  // engine calls once per cycle, but the NIC itself allows repeated calls —
  // the link pipeline enforces the one-per-cycle rule.  Here: the next call
  // still finds the other flit.
  EXPECT_TRUE(nic.select_and_send(1).has_value());
  EXPECT_FALSE(nic.select_and_send(2).has_value());
}

TEST(Nic, DemandDrivenRoundRobinSkipsEmptyQueues) {
  Nic nic(8, 4, 1);
  nic.deposit(1, make_flit(1, 0));
  nic.deposit(5, make_flit(5, 0));
  nic.deposit(1, make_flit(1, 1));
  // RR starts at 0: first eligible is VC 1.
  EXPECT_EQ(nic.select_and_send(0)->vc, 1u);
  // Cursor resumes after 1: next eligible is VC 5 (skipping 2,3,4).
  EXPECT_EQ(nic.select_and_send(1)->vc, 5u);
  // Wraps back to VC 1's second flit.
  EXPECT_EQ(nic.select_and_send(2)->vc, 1u);
  EXPECT_FALSE(nic.select_and_send(3).has_value());
}

TEST(Nic, CreditGatingBlocksAndResumes) {
  Nic nic(2, /*credits=*/1, /*latency=*/1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(0, make_flit(0, 1));
  EXPECT_EQ(nic.select_and_send(0)->vc, 0u);
  // VC 0 is out of credits; flit 1 must wait.
  EXPECT_FALSE(nic.select_and_send(1).has_value());
  nic.return_credit(0, 1);  // usable at cycle 2
  EXPECT_FALSE(nic.select_and_send(1).has_value());
  EXPECT_EQ(nic.select_and_send(2)->flit.seq, 1u);
  nic.check_invariants();
}

TEST(Nic, BlockedVcDoesNotStallOthers) {
  Nic nic(3, 1, 1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(0, make_flit(0, 1));
  nic.deposit(2, make_flit(2, 0));
  EXPECT_EQ(nic.select_and_send(0)->vc, 0u);
  // VC 0 blocked on credits; VC 2 is served instead.
  EXPECT_EQ(nic.select_and_send(1)->vc, 2u);
}

TEST(Nic, RoundRobinIsFairUnderSaturation) {
  Nic nic(4, /*credits=*/2, /*latency=*/0);
  for (std::uint32_t vc = 0; vc < 4; ++vc) {
    for (std::uint64_t i = 0; i < 100; ++i) nic.deposit(vc, make_flit(vc, i));
  }
  std::vector<int> served(4, 0);
  for (Cycle now = 0; now < 200; ++now) {
    const auto transfer = nic.select_and_send(now);
    ASSERT_TRUE(transfer.has_value());
    ++served[transfer->vc];
    // The router drains immediately: return the credit right away.
    nic.return_credit(transfer->vc, now);
  }
  for (int s : served) EXPECT_EQ(s, 50);
  nic.check_invariants();
}

TEST(Nic, QueueAccountingMatches) {
  Nic nic(2, 4, 1);
  for (int i = 0; i < 5; ++i) nic.deposit(0, make_flit(0, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(nic.queued(0), 5u);
  EXPECT_EQ(nic.total_queued(), 5u);
  (void)nic.select_and_send(0);
  EXPECT_EQ(nic.queued(0), 4u);
  EXPECT_EQ(nic.total_sent(), 1u);
  nic.check_invariants();
}

TEST(Nic, InfiniteBufferAcceptsLargeBacklog) {
  Nic nic(1, 1, 1);
  for (std::uint64_t i = 0; i < 10000; ++i) nic.deposit(0, make_flit(0, i));
  EXPECT_EQ(nic.queued(0), 10000u);
  nic.check_invariants();
}

}  // namespace
}  // namespace mmr
