#include "mmr/router/nic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mmr/audit/sim_auditor.hpp"
#include "mmr/core/simulation.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {
namespace {

Flit make_flit(ConnectionId connection, std::uint64_t seq) {
  Flit flit;
  flit.connection = connection;
  flit.seq = seq;
  return flit;
}

TEST(Nic, EmptyNicSendsNothing) {
  Nic nic(4, 2, 1);
  EXPECT_FALSE(nic.select_and_send(0).has_value());
  EXPECT_EQ(nic.total_queued(), 0u);
  nic.check_invariants();
}

TEST(Nic, SendsDepositedFlitAndConsumesCredit) {
  Nic nic(4, 2, 1);
  nic.deposit(2, make_flit(7, 0));
  const auto transfer = nic.select_and_send(0);
  ASSERT_TRUE(transfer.has_value());
  EXPECT_EQ(transfer->vc, 2u);
  EXPECT_EQ(transfer->flit.connection, 7u);
  EXPECT_EQ(nic.credits().credits(2), 1u);
  EXPECT_EQ(nic.total_sent(), 1u);
  nic.check_invariants();
}

TEST(Nic, OneSendPerCycle) {
  Nic nic(4, 2, 1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(1, make_flit(1, 0));
  EXPECT_TRUE(nic.select_and_send(0).has_value());
  // Second call in the same conceptual cycle would be a second send; the
  // engine calls once per cycle, but the NIC itself allows repeated calls —
  // the link pipeline enforces the one-per-cycle rule.  Here: the next call
  // still finds the other flit.
  EXPECT_TRUE(nic.select_and_send(1).has_value());
  EXPECT_FALSE(nic.select_and_send(2).has_value());
}

TEST(Nic, DemandDrivenRoundRobinSkipsEmptyQueues) {
  Nic nic(8, 4, 1);
  nic.deposit(1, make_flit(1, 0));
  nic.deposit(5, make_flit(5, 0));
  nic.deposit(1, make_flit(1, 1));
  // RR starts at 0: first eligible is VC 1.
  EXPECT_EQ(nic.select_and_send(0)->vc, 1u);
  // Cursor resumes after 1: next eligible is VC 5 (skipping 2,3,4).
  EXPECT_EQ(nic.select_and_send(1)->vc, 5u);
  // Wraps back to VC 1's second flit.
  EXPECT_EQ(nic.select_and_send(2)->vc, 1u);
  EXPECT_FALSE(nic.select_and_send(3).has_value());
}

TEST(Nic, CreditGatingBlocksAndResumes) {
  Nic nic(2, /*credits=*/1, /*latency=*/1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(0, make_flit(0, 1));
  EXPECT_EQ(nic.select_and_send(0)->vc, 0u);
  // VC 0 is out of credits; flit 1 must wait.
  EXPECT_FALSE(nic.select_and_send(1).has_value());
  nic.return_credit(0, 1);  // usable at cycle 2
  EXPECT_FALSE(nic.select_and_send(1).has_value());
  EXPECT_EQ(nic.select_and_send(2)->flit.seq, 1u);
  nic.check_invariants();
}

TEST(Nic, BlockedVcDoesNotStallOthers) {
  Nic nic(3, 1, 1);
  nic.deposit(0, make_flit(0, 0));
  nic.deposit(0, make_flit(0, 1));
  nic.deposit(2, make_flit(2, 0));
  EXPECT_EQ(nic.select_and_send(0)->vc, 0u);
  // VC 0 blocked on credits; VC 2 is served instead.
  EXPECT_EQ(nic.select_and_send(1)->vc, 2u);
}

TEST(Nic, RoundRobinIsFairUnderSaturation) {
  Nic nic(4, /*credits=*/2, /*latency=*/0);
  for (std::uint32_t vc = 0; vc < 4; ++vc) {
    for (std::uint64_t i = 0; i < 100; ++i) nic.deposit(vc, make_flit(vc, i));
  }
  std::vector<int> served(4, 0);
  for (Cycle now = 0; now < 200; ++now) {
    const auto transfer = nic.select_and_send(now);
    ASSERT_TRUE(transfer.has_value());
    ++served[transfer->vc];
    // The router drains immediately: return the credit right away.
    nic.return_credit(transfer->vc, now);
  }
  for (int s : served) EXPECT_EQ(s, 50);
  nic.check_invariants();
}

TEST(Nic, QueueAccountingMatches) {
  Nic nic(2, 4, 1);
  for (int i = 0; i < 5; ++i) nic.deposit(0, make_flit(0, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(nic.queued(0), 5u);
  EXPECT_EQ(nic.total_queued(), 5u);
  (void)nic.select_and_send(0);
  EXPECT_EQ(nic.queued(0), 4u);
  EXPECT_EQ(nic.total_sent(), 1u);
  nic.check_invariants();
}

TEST(Nic, BestEffortBurstStallsWithoutDropOrReorder) {
  // A best-effort burst against a VC whose router-side FIFO is full must
  // stall at the NIC — nothing dropped, nothing reordered — and drain in
  // order as credits trickle back.
  Nic nic(2, /*credits=*/4, /*latency=*/1);
  for (std::uint64_t i = 0; i < 32; ++i) nic.deposit(1, make_flit(9, i));
  ASSERT_EQ(nic.queued(1), 32u);

  std::vector<std::uint64_t> sent;
  Cycle now = 0;
  for (; now < 4; ++now) {
    const auto transfer = nic.select_and_send(now);
    ASSERT_TRUE(transfer.has_value());
    sent.push_back(transfer->flit.seq);
  }
  // Credits exhausted: the VC stalls.  The queue holds every flit.
  for (; now < 12; ++now) {
    EXPECT_FALSE(nic.select_and_send(now).has_value());
  }
  EXPECT_EQ(nic.queued(1), 28u);
  EXPECT_EQ(nic.total_sent(), 4u);
  nic.check_invariants();

  // The router drains one flit per cycle; sends resume where they left off.
  while (sent.size() < 32) {
    nic.return_credit(1, now);
    ++now;
    const auto transfer = nic.select_and_send(now);
    if (transfer.has_value()) sent.push_back(transfer->flit.seq);
    ASSERT_LT(now, 1000u) << "drain did not resume after credits returned";
  }
  // First resumed flit is seq 4 (no skip), and the whole burst arrived in
  // FIFO order with no gaps.
  ASSERT_EQ(sent.size(), 32u);
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(sent[i], i);
  EXPECT_EQ(nic.queued(1), 0u);
  EXPECT_EQ(nic.total_sent(), 32u);
  nic.check_invariants();
}

TEST(Nic, BackpressureUnderSaturationKeepsPerVcFifo) {
  // Integration: a best-effort workload offered above what the switch can
  // carry forces sustained NIC backpressure.  The SimAuditor (audit=1)
  // sweeps every cycle and aborts on any per-VC FIFO or conservation
  // violation, so a clean run is the assertion; we additionally check that
  // pressure actually built up (backlog) and that nothing was dropped.
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 16;
  config.warmup_cycles = 500;
  config.measure_cycles = 5'000;
  config.audit_every = 1;
  Rng rng(config.seed, 1);
  Workload workload(config.ports);
  BestEffortSpec spec;
  spec.load = 0.95;  // above the per-port capacity the arbiter sustains
  spec.connections_per_link = 3;
  add_best_effort(workload, config, spec, rng);

  MmrSimulation simulation(config, std::move(workload));
  ASSERT_NE(simulation.auditor(), nullptr);
  const SimulationMetrics metrics = simulation.run();
  EXPECT_EQ(simulation.auditor()->cycles_audited(), config.total_cycles());
  EXPECT_GT(metrics.flits_delivered, 0u);
  // Stall, not drop: the undeliverable surplus is still queued (the auditor
  // sweep aborts on any conservation or per-VC FIFO violation).
  EXPECT_GT(metrics.flits_generated, metrics.flits_delivered);
  EXPECT_GT(simulation.backlog(), 0u) << "expected sustained backpressure";
}

TEST(Nic, InfiniteBufferAcceptsLargeBacklog) {
  Nic nic(1, 1, 1);
  for (std::uint64_t i = 0; i < 10000; ++i) nic.deposit(0, make_flit(0, i));
  EXPECT_EQ(nic.queued(0), 10000u);
  nic.check_invariants();
}

}  // namespace
}  // namespace mmr
