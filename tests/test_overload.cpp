// Overload-protection subsystem: spec parsing, the rogue-source wrapper and
// its deterministic selection, the injection policer's token buckets and
// policies, the staged saturation watchdog, and the end-to-end guarantee
// that policing protects compliant traffic from rogue tenants.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mmr/core/simulation.hpp"
#include "mmr/overload/policer.hpp"
#include "mmr/overload/rogue_apply.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/overload/watchdog.hpp"
#include "mmr/traffic/rogue.hpp"

namespace mmr {
namespace {

using overload::InjectionPolicer;
using overload::OverloadPolicy;
using overload::PoliceSpec;
using overload::RogueSpec;
using overload::SaturationWatchdog;
using overload::Verdict;
using overload::WatchdogStage;

// ---------------------------------------------------------------------------
// Spec parsing

TEST(PoliceSpec, ParsesPolicyAndKeys) {
  const PoliceSpec spec =
      PoliceSpec::parse("shape,burst:3,penalty:16,deadline:100,wd_window:256");
  EXPECT_EQ(spec.policy, OverloadPolicy::kShape);
  EXPECT_DOUBLE_EQ(spec.burst_rounds, 3.0);
  EXPECT_EQ(spec.penalty_flits, 16u);
  EXPECT_DOUBLE_EQ(spec.qos_deadline_cycles, 100.0);
  EXPECT_EQ(spec.wd_window, 256u);
}

TEST(PoliceSpec, RejectsMissingPolicyUnknownKeysAndDoublePolicy) {
  EXPECT_THROW((void)PoliceSpec::parse("burst:2"), std::invalid_argument);
  EXPECT_THROW((void)PoliceSpec::parse("drop,bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)PoliceSpec::parse("drop,shape"), std::invalid_argument);
  EXPECT_THROW((void)PoliceSpec::parse(""), std::invalid_argument);
}

TEST(RogueSpec, ParsesAndValidates) {
  const RogueSpec spec = RogueSpec::parse("frac:0.5,scale:4,class:cbr,seed:7");
  EXPECT_DOUBLE_EQ(spec.fraction, 0.5);
  EXPECT_DOUBLE_EQ(spec.scale, 4.0);
  EXPECT_EQ(spec.classes, RogueSpec::Classes::kCbrOnly);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_THROW((void)RogueSpec::parse("frac:0.5,nope:1"),
               std::invalid_argument);
  EXPECT_THROW((void)RogueSpec::parse("class:wifi"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RogueSource wrapper

/// Deterministic inner source: one flit every `iat` cycles, frames of
/// `frame_len` flits.
class PacedSource final : public TrafficSource {
 public:
  PacedSource(ConnectionId connection, Cycle iat, std::uint64_t frame_len)
      : connection_(connection), iat_(iat), frame_len_(frame_len) {}

  [[nodiscard]] ConnectionId connection() const override { return connection_; }
  [[nodiscard]] Cycle next_emission() const override { return next_; }
  void generate(Cycle now, std::vector<Flit>& out) override {
    while (next_ <= now) {
      Flit flit;
      flit.connection = connection_;
      flit.seq = seq_++;
      flit.frame = static_cast<std::uint32_t>(seq_ / frame_len_);
      flit.last_of_frame = (seq_ % frame_len_) == 0;
      flit.generated_at = next_;
      flit.frame_origin = next_;
      out.push_back(flit);
      next_ += iat_;
    }
  }
  [[nodiscard]] double mean_bps() const override { return 1e6; }

 private:
  ConnectionId connection_;
  Cycle iat_;
  std::uint64_t frame_len_;
  Cycle next_ = 0;
  std::uint64_t seq_ = 0;
};

TEST(RogueSource, InflatesByScaleRenumbersAndKeepsFrameClosure) {
  RogueSource rogue(std::make_unique<PacedSource>(3, 4, 5), 2.0);
  std::vector<Flit> out;
  for (Cycle now = 0; now < 100; ++now) {
    if (rogue.next_emission() <= now) rogue.generate(now, out);
  }
  // 25 inner flits at scale 2 -> 50 out.
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(rogue.excess_emitted(), 25u);
  std::uint64_t closers = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i);  // renumbered, strictly increasing
    EXPECT_EQ(out[i].connection, 3u);
    if (out[i].last_of_frame) ++closers;
  }
  // 5 complete inner frames -> frame closure preserved, never duplicated.
  EXPECT_EQ(closers, 5u);
  // The declared rate is unchanged: the source lies to admission, not to us.
  EXPECT_DOUBLE_EQ(rogue.mean_bps(), 1e6);
}

TEST(RogueSource, BurstWindowsRaiseTheFactor) {
  RogueSource rogue(std::make_unique<PacedSource>(0, 1, 4), 2.0,
                    /*burst_scale=*/3.0, /*burst_period=*/100,
                    /*burst_len=*/10, /*phase=*/5);
  EXPECT_DOUBLE_EQ(rogue.factor_at(0), 2.0);   // before phase
  EXPECT_DOUBLE_EQ(rogue.factor_at(5), 6.0);   // in window
  EXPECT_DOUBLE_EQ(rogue.factor_at(14), 6.0);  // last window cycle
  EXPECT_DOUBLE_EQ(rogue.factor_at(15), 2.0);  // after window
  EXPECT_DOUBLE_EQ(rogue.factor_at(105), 6.0);  // next period
}

// ---------------------------------------------------------------------------
// Rogue selection on a real workload

Workload small_cbr_workload(const SimConfig& config, double load) {
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = load;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, spec, rng);
}

SimConfig small_config() {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 20'000;
  return config;
}

TEST(ApplyRogue, SelectionIsDeterministicAndSorted) {
  const SimConfig config = small_config();
  RogueSpec spec;
  spec.fraction = 0.5;
  spec.scale = 2.0;

  Workload a = small_cbr_workload(config, 0.5);
  Workload b = small_cbr_workload(config, 0.5);
  const auto rogues_a = overload::apply_rogue(a, spec);
  const auto rogues_b = overload::apply_rogue(b, spec);
  EXPECT_EQ(rogues_a, rogues_b);
  ASSERT_FALSE(rogues_a.empty());
  EXPECT_TRUE(std::is_sorted(rogues_a.begin(), rogues_a.end()));
  EXPECT_LT(rogues_a.size(), a.connections());
  for (const ConnectionId id : rogues_a) {
    EXPECT_TRUE(a.table.get(id).is_qos());
    EXPECT_NE(dynamic_cast<const RogueSource*>(a.sources[id].get()), nullptr);
  }
}

TEST(ApplyRogue, CountOverridesFractionAndClassFilterHolds) {
  const SimConfig config = small_config();
  Workload workload = small_cbr_workload(config, 0.5);
  RogueSpec spec;
  spec.fraction = 0.0;
  spec.count = 2;
  spec.classes = RogueSpec::Classes::kCbrOnly;
  const auto rogues = overload::apply_rogue(workload, spec);
  ASSERT_EQ(rogues.size(), 2u);
  for (const ConnectionId id : rogues)
    EXPECT_EQ(workload.table.get(id).traffic_class, TrafficClass::kCbr);
}

// ---------------------------------------------------------------------------
// Injection policer

/// One CBR connection (4/32 slots), one VBR (mean 2, peak 8), one BE.
struct PolicerFixture {
  PolicerFixture() : table(4) {
    config.ports = 4;
    config.vcs_per_link = 8;
    config.round_multiple = 4;  // round = 32 flit cycles
    config.concurrency_factor = 3.0;

    ConnectionDescriptor cbr;
    cbr.traffic_class = TrafficClass::kCbr;
    cbr.input_link = 0;
    cbr.output_link = 1;
    cbr.mean_bandwidth_bps = 1e6;
    cbr.peak_bandwidth_bps = 1e6;
    cbr.slots_per_round = 4;
    cbr.peak_slots_per_round = 4;
    cbr_id = table.add(cbr, config.vcs_per_link);

    ConnectionDescriptor vbr;
    vbr.traffic_class = TrafficClass::kVbr;
    vbr.input_link = 1;
    vbr.output_link = 2;
    vbr.mean_bandwidth_bps = 1e6;
    vbr.peak_bandwidth_bps = 4e6;
    vbr.slots_per_round = 2;
    vbr.peak_slots_per_round = 8;
    vbr_id = table.add(vbr, config.vcs_per_link);

    ConnectionDescriptor be;
    be.traffic_class = TrafficClass::kBestEffort;
    be.input_link = 2;
    be.output_link = 3;
    be_id = table.add(be, config.vcs_per_link);
  }

  [[nodiscard]] Flit flit_of(ConnectionId id, std::uint64_t seq,
                             Cycle now) const {
    Flit flit;
    flit.connection = id;
    flit.seq = seq;
    flit.generated_at = now;
    return flit;
  }

  SimConfig config;
  ConnectionTable table;
  ConnectionId cbr_id = 0, vbr_id = 0, be_id = 0;
};

TEST(Policer, CompliantCbrPacingIsNeverPoliced) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kDrop;
  InjectionPolicer policer(fx.table, fx.config, spec);
  // 4 slots per 32-cycle round = one flit every 8 cycles.
  std::uint64_t seq = 0;
  for (Cycle now = 0; now < 4000; now += 8) {
    EXPECT_EQ(policer.police(fx.flit_of(fx.cbr_id, seq++, now), now),
              Verdict::kPass);
  }
  EXPECT_EQ(policer.tally(TrafficClass::kCbr).dropped, 0u);
  EXPECT_EQ(policer.noncompliant_connections(), 0u);
  policer.check_invariants();
}

TEST(Policer, SustainedExcessIsPolicedAtTheContractRate) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kDemote;
  InjectionPolicer policer(fx.table, fx.config, spec);
  // One flit per cycle = 8x the contract (rate 4/32 = 0.125).
  std::uint64_t pass = 0, demoted = 0;
  for (Cycle now = 0; now < 800; ++now) {
    switch (policer.police(fx.flit_of(fx.cbr_id, now, now), now)) {
      case Verdict::kPass: ++pass; break;
      case Verdict::kDemoted: ++demoted; break;
      default: FAIL() << "unexpected verdict";
    }
  }
  // Initial burst credit (depth = 2 rounds x 4 slots = 8) plus refills.
  const double expected_pass = 8.0 + 0.125 * 800.0;
  EXPECT_NEAR(static_cast<double>(pass), expected_pass, 2.0);
  EXPECT_EQ(pass + demoted, 800u);
  EXPECT_EQ(policer.tally(TrafficClass::kCbr).demoted, demoted);
  EXPECT_EQ(policer.noncompliant_connections(), 1u);
  EXPECT_EQ(policer.policed_per_connection()[fx.cbr_id], demoted);
  policer.check_invariants();
}

TEST(Policer, VbrEnvelopeAdmitsDeclaredBursts) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kDrop;
  InjectionPolicer policer(fx.table, fx.config, spec);
  // Depth = 24 rounds x 8 peak slots = 192: a declared-peak burst of one
  // frame's worth of flits passes untouched.
  for (Cycle now = 0; now < 100; ++now) {
    EXPECT_EQ(policer.police(fx.flit_of(fx.vbr_id, now, now), now),
              Verdict::kPass);
  }
  EXPECT_EQ(policer.tally(TrafficClass::kVbr).dropped, 0u);
}

TEST(Policer, ShapeDelaysExcessAndPreservesFifo) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kShape;
  spec.burst_rounds = 0.5;  // depth = max(2, 0.5 x 4) = 2
  spec.penalty_flits = 8;
  InjectionPolicer policer(fx.table, fx.config, spec);

  // Burst of 5 at t=0: 2 pass on burst credit, 3 shaped.
  std::vector<Verdict> verdicts;
  for (std::uint64_t i = 0; i < 5; ++i)
    verdicts.push_back(policer.police(fx.flit_of(fx.cbr_id, i, 0), 0));
  EXPECT_EQ(verdicts[0], Verdict::kPass);
  EXPECT_EQ(verdicts[1], Verdict::kPass);
  EXPECT_EQ(verdicts[2], Verdict::kShaped);
  EXPECT_EQ(verdicts[3], Verdict::kShaped);
  EXPECT_EQ(verdicts[4], Verdict::kShaped);
  EXPECT_EQ(policer.penalty_backlog(), 3u);

  // Nothing is due the same cycle (no tokens accrued at t=0).
  std::vector<Flit> released;
  policer.release_due(0, released);
  EXPECT_TRUE(released.empty());

  // A later arrival must queue BEHIND the shaped flits even once tokens
  // exist again, or release would reorder the connection's stream.
  const Verdict behind = policer.police(fx.flit_of(fx.cbr_id, 5, 40), 40);
  EXPECT_EQ(behind, Verdict::kShaped);

  // Tokens accrue at 0.125/cycle but cap at the bucket depth (2), so the
  // queue drains two flits per refill window, in seq order.
  policer.release_due(40, released);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].seq, 2u);
  EXPECT_EQ(released[1].seq, 3u);

  released.clear();
  policer.release_due(60, released);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].seq, 4u);
  EXPECT_EQ(released[1].seq, 5u);
  EXPECT_EQ(policer.penalty_backlog(), 0u);
  policer.check_invariants();
}

TEST(Policer, ShapeQueueOverflowDrops) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kShape;
  spec.burst_rounds = 0.5;  // depth 2
  spec.penalty_flits = 2;
  InjectionPolicer policer(fx.table, fx.config, spec);
  std::uint64_t dropped = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (policer.police(fx.flit_of(fx.cbr_id, i, 0), 0) == Verdict::kDropped)
      ++dropped;
  }
  // 2 pass, 2 queue, 2 overflow.
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(policer.tally(TrafficClass::kCbr).penalty_overflow, 2u);
  EXPECT_EQ(policer.penalty_backlog(), 2u);
  policer.check_invariants();
}

TEST(Policer, ShedDropsBestEffortOnly) {
  PolicerFixture fx;
  PoliceSpec spec;
  InjectionPolicer policer(fx.table, fx.config, spec);
  EXPECT_EQ(policer.police(fx.flit_of(fx.be_id, 0, 0), 0), Verdict::kPass);
  policer.set_shed_best_effort(true);
  EXPECT_EQ(policer.police(fx.flit_of(fx.be_id, 1, 1), 1), Verdict::kDropped);
  // QoS traffic within contract is untouched by shedding.
  EXPECT_EQ(policer.police(fx.flit_of(fx.cbr_id, 0, 8), 8), Verdict::kPass);
  EXPECT_EQ(policer.tally(TrafficClass::kBestEffort).shed, 1u);
  policer.set_shed_best_effort(false);
  EXPECT_EQ(policer.police(fx.flit_of(fx.be_id, 2, 9), 9), Verdict::kPass);
}

TEST(Policer, ClampForcesDropOnNoncompliantConnections) {
  PolicerFixture fx;
  PoliceSpec spec;
  spec.policy = OverloadPolicy::kDemote;
  InjectionPolicer policer(fx.table, fx.config, spec);
  // Drain the CBR bucket so the connection is marked noncompliant.
  for (std::uint64_t i = 0; i < 10; ++i)
    (void)policer.police(fx.flit_of(fx.cbr_id, i, 0), 0);
  EXPECT_EQ(policer.noncompliant_connections(), 1u);

  policer.set_clamp_noncompliant(true);
  // Demote policy notwithstanding, clamped excess is dropped.
  EXPECT_EQ(policer.police(fx.flit_of(fx.cbr_id, 10, 1), 1),
            Verdict::kDropped);
  // A compliant connection keeps its normal envelope under clamping.
  EXPECT_EQ(policer.police(fx.flit_of(fx.vbr_id, 0, 1), 1), Verdict::kPass);
  policer.check_invariants();
}

// ---------------------------------------------------------------------------
// Saturation watchdog

PoliceSpec fast_watchdog_spec() {
  PoliceSpec spec;
  spec.wd_window = 4;
  spec.wd_alpha = 1.0;  // no smoothing: each window sees the raw sample
  spec.wd_high = 10.0;
  spec.wd_low = 2.0;
  spec.wd_escalate_after = 2;
  spec.wd_recover_after = 2;
  return spec;
}

void run_windows(SaturationWatchdog& wd, InjectionPolicer& policer,
                 Cycle& now, std::uint32_t windows, std::uint64_t backlog) {
  const Cycle end = now + windows * 4;
  for (; now < end; ++now) {
    wd.on_cycle(now, wd.wants_sample(now) ? backlog : 0, policer);
  }
}

TEST(Watchdog, EscalatesThroughStagesAndRecoversWithHysteresis) {
  PolicerFixture fx;
  const PoliceSpec spec = fast_watchdog_spec();
  InjectionPolicer policer(fx.table, fx.config, spec);
  SaturationWatchdog wd(spec, /*ports=*/2);
  Cycle now = 0;

  // Backlog 50/port: two windows over high -> shed stage.
  run_windows(wd, policer, now, 2, 100);
  EXPECT_EQ(wd.stage(), WatchdogStage::kShedBestEffort);
  EXPECT_TRUE(policer.shedding());
  EXPECT_FALSE(policer.clamping());

  run_windows(wd, policer, now, 2, 100);
  EXPECT_EQ(wd.stage(), WatchdogStage::kClampNoncompliant);
  EXPECT_TRUE(policer.clamping());

  run_windows(wd, policer, now, 2, 100);
  EXPECT_EQ(wd.stage(), WatchdogStage::kAlarm);
  EXPECT_EQ(wd.alarms(), 1u);
  EXPECT_EQ(wd.escalations(), 3u);

  // Stuck at the top: further high windows do not escalate past alarm.
  run_windows(wd, policer, now, 4, 100);
  EXPECT_EQ(wd.stage(), WatchdogStage::kAlarm);

  // Backlog in the dead band (between low and high): nothing moves.
  run_windows(wd, policer, now, 8, 10);  // 5/port
  EXPECT_EQ(wd.stage(), WatchdogStage::kAlarm);
  EXPECT_EQ(wd.recoveries(), 0u);

  // Calm backlog: one stage down per 2 calm windows, flags follow.
  run_windows(wd, policer, now, 2, 0);
  EXPECT_EQ(wd.stage(), WatchdogStage::kClampNoncompliant);
  run_windows(wd, policer, now, 2, 0);
  EXPECT_EQ(wd.stage(), WatchdogStage::kShedBestEffort);
  EXPECT_FALSE(policer.clamping());
  EXPECT_TRUE(policer.shedding());
  run_windows(wd, policer, now, 2, 0);
  EXPECT_EQ(wd.stage(), WatchdogStage::kNormal);
  EXPECT_FALSE(policer.shedding());
  EXPECT_EQ(wd.recoveries(), 3u);

  EXPECT_EQ(wd.cycles_in_stage(WatchdogStage::kNormal) +
                wd.cycles_in_stage(WatchdogStage::kShedBestEffort) +
                wd.cycles_in_stage(WatchdogStage::kClampNoncompliant) +
                wd.cycles_in_stage(WatchdogStage::kAlarm),
            now);
}

TEST(Watchdog, DisabledWindowNeverSamples) {
  PolicerFixture fx;
  PoliceSpec spec = fast_watchdog_spec();
  spec.wd_window = 0;
  InjectionPolicer policer(fx.table, fx.config, spec);
  SaturationWatchdog wd(spec, 2);
  for (Cycle now = 0; now < 100; ++now) {
    EXPECT_FALSE(wd.wants_sample(now));
    wd.on_cycle(now, 1'000'000, policer);
  }
  EXPECT_EQ(wd.stage(), WatchdogStage::kNormal);
  EXPECT_EQ(wd.escalations(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: simulation integration

TEST(OverloadSim, DisabledSpecsLeaveMetricsDisabledAndDeterministic) {
  const SimConfig config = small_config();
  MmrSimulation a(config, small_cbr_workload(config, 0.5));
  MmrSimulation b(config, small_cbr_workload(config, 0.5));
  const SimulationMetrics ma = a.run();
  const SimulationMetrics mb = b.run();
  EXPECT_FALSE(ma.overload.enabled);
  EXPECT_EQ(a.policer(), nullptr);
  EXPECT_EQ(a.watchdog(), nullptr);
  EXPECT_TRUE(a.rogue_connections().empty());
  // Bit-identical repeatability of the disabled path.
  EXPECT_EQ(ma.flits_generated, mb.flits_generated);
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_DOUBLE_EQ(ma.flit_delay_us.mean(), mb.flit_delay_us.mean());
}

TEST(OverloadSim, RogueSourcesInflateMeasuredLoad) {
  SimConfig config = small_config();
  MmrSimulation baseline(config, small_cbr_workload(config, 0.4));
  const SimulationMetrics base = baseline.run();

  config.rogue_spec = "frac:0.5,scale:3";
  MmrSimulation rogue_sim(config, small_cbr_workload(config, 0.4));
  EXPECT_FALSE(rogue_sim.rogue_connections().empty());
  const SimulationMetrics rogue = rogue_sim.run();
  EXPECT_TRUE(rogue.overload.enabled);
  EXPECT_EQ(rogue.overload.policy, "off");
  EXPECT_GT(rogue.overload.rogue_connections, 0u);
  // Roughly frac x (scale - 1) extra offered load on top of the declared.
  EXPECT_GT(rogue.generated_load_measured,
            base.generated_load_measured * 1.5);
  // Nominal load reports the *declared* contracts, not the inflated truth.
  EXPECT_DOUBLE_EQ(rogue.generated_load_nominal, base.generated_load_nominal);
}

TEST(OverloadSim, PolicingDropsRogueExcessAndSparesCompliant) {
  SimConfig config = small_config();
  config.rogue_spec = "frac:0.4,scale:4";
  config.police_spec = "drop,wd_window:0";
  config.audit_every = 512;  // per-VC FIFO + credit sweeps stay on
  MmrSimulation sim(config, small_cbr_workload(config, 0.5));
  const SimulationMetrics m = sim.run();

  EXPECT_TRUE(m.overload.enabled);
  EXPECT_EQ(m.overload.policy, "drop");
  const PolicedClassTally& cbr =
      m.overload.policed[static_cast<std::size_t>(TrafficClass::kCbr)];
  EXPECT_GT(cbr.dropped, 0u);
  EXPECT_GT(cbr.conforming, 0u);
  // Compliant CBR pacing never exceeds its contract: every policed action
  // lands on a rogue connection.
  EXPECT_EQ(m.overload.compliant_policed, 0u);
  EXPECT_GT(m.overload.rogue_policed, 0u);
  EXPECT_EQ(m.overload.noncompliant_connections,
            m.overload.rogue_connections);
  // With the excess gone at injection the router itself never congests:
  // compliant traffic keeps its deadlines and nothing piles up.  (Note
  // saturated() is NOT the right probe here — generated load deliberately
  // includes the rogue excess the policer then drops, so its
  // delivered-vs-generated deficit triggers by construction.)
  EXPECT_EQ(m.overload.compliant_violations, 0u);
  EXPECT_LT(m.backlog_flits, 200u);
}

TEST(OverloadSim, ShapePolicyAccountsPenaltyBacklogAndDelay) {
  SimConfig config = small_config();
  config.rogue_spec = "count:2,scale:3";
  config.police_spec = "shape,penalty:32,wd_window:0";
  MmrSimulation sim(config, small_cbr_workload(config, 0.5));
  const SimulationMetrics m = sim.run();
  const PolicedClassTally& cbr =
      m.overload.policed[static_cast<std::size_t>(TrafficClass::kCbr)];
  EXPECT_GT(cbr.shaped, 0u);
  EXPECT_FALSE(m.overload.shape_delay_us.empty());
  EXPECT_GT(m.overload.shape_delay_us.mean(), 0.0);
}

TEST(OverloadSim, WatchdogEngagesUnderRogueSaturation) {
  SimConfig config = small_config();
  // Heavy rogue load, demote policy (keeps the excess in the network so
  // backlog actually builds), twitchy watchdog.
  config.rogue_spec = "frac:0.6,scale:6";
  config.police_spec =
      "demote,wd_window:256,wd_high:8,wd_low:1,wd_escalate:2,wd_recover:64";
  MmrSimulation sim(config, small_cbr_workload(config, 0.7));
  const SimulationMetrics m = sim.run();
  EXPECT_GT(m.overload.watchdog_escalations, 0u);
  EXPECT_GT(m.overload.degraded_fraction(), 0.0);
  const std::uint64_t total =
      m.overload.cycles_in_stage[0] + m.overload.cycles_in_stage[1] +
      m.overload.cycles_in_stage[2] + m.overload.cycles_in_stage[3];
  EXPECT_EQ(total, config.total_cycles());
}

}  // namespace
}  // namespace mmr
