#include "mmr/traffic/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mmr/sim/rng.hpp"
#include "mmr/traffic/vbr.hpp"

namespace mmr {
namespace {

MpegTrace sample_trace() {
  Rng rng(0x7E5, 0);
  return generate_mpeg_trace(mpeg_sequence("Hook"), 2, rng);
}

TEST(TraceIo, CsvRoundTrip) {
  const MpegTrace original = sample_trace();
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const MpegTrace loaded = read_trace_csv(buffer, "Hook");
  EXPECT_EQ(loaded.frame_bits, original.frame_bits);
  EXPECT_EQ(loaded.sequence, "Hook");
  EXPECT_DOUBLE_EQ(loaded.mean_bps(), original.mean_bps());
}

TEST(TraceIo, CsvHeaderIsOptional) {
  std::stringstream with_header("frame,type,bits\n0,I,1000\n1,B,500\n");
  const MpegTrace a = read_trace_csv(with_header, "t");
  EXPECT_EQ(a.frame_bits, (std::vector<std::uint64_t>{1000, 500}));
  std::stringstream without("0,I,1000\n1,B,500\n");
  const MpegTrace b = read_trace_csv(without, "t");
  EXPECT_EQ(b.frame_bits, a.frame_bits);
}

TEST(TraceIo, LinesFormatWithCommentsAndBlanks) {
  std::stringstream in("# archive header\n\n123456\n 78910 \n\n# tail\n42\n");
  const MpegTrace trace = read_trace_lines(in, "archive");
  EXPECT_EQ(trace.frame_bits, (std::vector<std::uint64_t>{123456, 78910, 42}));
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream bad_lines("123\nnot-a-number\n");
  EXPECT_THROW((void)read_trace_lines(bad_lines, "x"), std::invalid_argument);
  std::stringstream bad_csv("0,I,12x4\n");
  EXPECT_THROW((void)read_trace_csv(bad_csv, "x"), std::invalid_argument);
  std::stringstream zero("0\n");
  EXPECT_THROW((void)read_trace_lines(zero, "x"), std::invalid_argument);
  std::stringstream empty("# nothing\n");
  EXPECT_THROW((void)read_trace_lines(empty, "x"), std::invalid_argument);
}

TEST(TraceIo, FileRoundTripWithFormatSniffing) {
  const MpegTrace original = sample_trace();
  const std::string csv_path = ::testing::TempDir() + "/mmr_trace.csv";
  save_trace_csv(csv_path, original);
  const MpegTrace from_csv = load_trace(csv_path, "Hook");
  EXPECT_EQ(from_csv.frame_bits, original.frame_bits);

  const std::string lines_path = ::testing::TempDir() + "/mmr_trace.txt";
  {
    std::ofstream out(lines_path);
    for (std::uint64_t bits : original.frame_bits) out << bits << '\n';
  }
  const MpegTrace from_lines = load_trace(lines_path, "Hook");
  EXPECT_EQ(from_lines.frame_bits, original.frame_bits);
  std::remove(csv_path.c_str());
  std::remove(lines_path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/trace.csv", "x"),
               std::runtime_error);
  EXPECT_THROW(save_trace_csv("/nonexistent/dir/trace.csv", sample_trace()),
               std::runtime_error);
}

TEST(TraceIo, TryLoadReturnsTraceOnSuccess) {
  const MpegTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/mmr_try_load.csv";
  save_trace_csv(path, original);
  std::string diagnostic = "untouched";
  const std::optional<MpegTrace> loaded =
      try_load_trace(path, "Hook", &diagnostic);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->frame_bits, original.frame_bits);
  EXPECT_EQ(diagnostic, "untouched");  // no error, no diagnostic
  std::remove(path.c_str());
}

TEST(TraceIo, TryLoadRecoversFromMissingFile) {
  std::string diagnostic;
  const std::optional<MpegTrace> loaded =
      try_load_trace("/nonexistent/trace.csv", "x", &diagnostic);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_NE(diagnostic.find("/nonexistent/trace.csv"), std::string::npos);
  EXPECT_NE(diagnostic.find("cannot read"), std::string::npos);
}

TEST(TraceIo, TryLoadRecoversFromMalformedAndTruncatedTraces) {
  const std::string path = ::testing::TempDir() + "/mmr_bad_trace.txt";
  {
    std::ofstream out(path);
    out << "123\nnot-a-number\n";  // malformed second record
  }
  std::string diagnostic;
  EXPECT_FALSE(try_load_trace(path, "bad", &diagnostic).has_value());
  EXPECT_NE(diagnostic.find("bad frame size"), std::string::npos);
  EXPECT_NE(diagnostic.find("line 2"), std::string::npos);

  {
    std::ofstream out(path);
    out << "# a trace that was truncated before any frame\n";
  }
  EXPECT_FALSE(try_load_trace(path, "empty", &diagnostic).has_value());
  EXPECT_NE(diagnostic.find("no frames"), std::string::npos);

  // The null-diagnostic form is also fine.
  EXPECT_FALSE(try_load_trace(path, "empty").has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadedTraceDrivesAVbrSource) {
  const MpegTrace original = sample_trace();
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const MpegTrace loaded = read_trace_csv(buffer, "Hook");
  const TimeBase tb(2.4e9, 4096, 16);
  VbrSource source(0, loaded, InjectionModel::kSmoothRate, tb,
                   loaded.peak_bps());
  std::vector<Flit> flits;
  source.generate(50'000, flits);
  EXPECT_FALSE(flits.empty());
}

}  // namespace
}  // namespace mmr
