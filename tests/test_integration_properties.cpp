// System-level property sweeps: the invariants that must hold for EVERY
// arbiter and load — no flit loss, per-connection FIFO delivery, credit
// discipline, utilization consistency — checked with parameterized tests.

#include <gtest/gtest.h>

#include <map>

#include "mmr/core/simulation.hpp"

namespace mmr {
namespace {

class SystemProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {
 protected:
  [[nodiscard]] std::string arbiter() const { return std::get<0>(GetParam()); }
  [[nodiscard]] double load() const { return std::get<1>(GetParam()); }

  SimConfig config() const {
    SimConfig config;
    config.ports = 4;
    config.vcs_per_link = 48;
    config.warmup_cycles = 1'000;
    config.measure_cycles = 15'000;
    config.arbiter = arbiter();
    return config;
  }

  Workload workload(const SimConfig& config) const {
    Rng rng(0xABCDE, 17);  // same workload for every arbiter
    CbrMixSpec spec;
    spec.target_load = load();
    spec.classes = {kCbrHigh, kCbrMedium};
    spec.class_weights = {4.0, 1.0};
    return build_cbr_mix(config, spec, rng);
  }
};

TEST_P(SystemProperty, NoLossFifoDeliveryAndConsistentAccounting) {
  const SimConfig config = this->config();
  MmrSimulation simulation(config, workload(config));

  std::map<ConnectionId, std::uint64_t> next_seq;
  std::uint64_t departures = 0;
  Cycle last_delivery = 0;
  simulation.set_departure_observer(
      [&](const MmrRouter::Departure& departure, Cycle at) {
        const Flit& flit = departure.flit;
        // FIFO per connection, no duplication, no loss.
        ASSERT_EQ(flit.seq, next_seq[flit.connection]);
        next_seq[flit.connection] = flit.seq + 1;
        // Causality.
        ASSERT_GE(at, flit.generated_at);
        ASSERT_GE(at, last_delivery);  // deliveries in cycle order
        last_delivery = at;
        ++departures;
      });

  const SimulationMetrics metrics = simulation.run();

  // Conservation: generated == delivered + backlog (whole run, not only the
  // measurement window).
  std::uint64_t generated_total = 0;
  for (const auto& [connection, count] : next_seq) generated_total += count;
  EXPECT_EQ(departures, simulation.router().flits_departed());
  EXPECT_EQ(simulation.router().flits_accepted() -
                simulation.router().flits_departed(),
            simulation.router().flits_buffered());

  // Utilization == delivered flits / port-cycles (within warmup edge).
  EXPECT_NEAR(metrics.crossbar_utilization, metrics.delivered_load, 0.01);

  // At most one flit per output port per cycle: delivered load <= 1.
  EXPECT_LE(metrics.delivered_load, 1.0 + 1e-9);

  // The engine's own invariants held throughout (checked periodically) and
  // still hold at the end.
  simulation.check_invariants();
}

TEST_P(SystemProperty, QosClassesAllMakeProgressBelowCapacity) {
  if (load() > 0.9) GTEST_SKIP() << "progress not guaranteed past capacity";
  const SimConfig config = this->config();
  MmrSimulation simulation(config, workload(config));
  const SimulationMetrics metrics = simulation.run();
  for (const ClassMetrics& cls : metrics.per_class) {
    EXPECT_GT(cls.flits_delivered, 0u) << cls.label;
  }
}

std::vector<std::tuple<std::string, double>> system_params() {
  std::vector<std::tuple<std::string, double>> params;
  for (const char* arbiter :
       {"coa", "wfa", "wwfa", "islip", "pim", "greedy"}) {
    for (double load : {0.3, 0.7, 1.1}) {
      params.emplace_back(arbiter, load);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllArbitersAndLoads, SystemProperty, ::testing::ValuesIn(system_params()),
    [](const ::testing::TestParamInfo<SystemProperty::ParamType>& param_info) {
      const auto load_pct =
          static_cast<int>(std::get<1>(param_info.param) * 100 + 0.5);
      return std::get<0>(param_info.param) + "_load" + std::to_string(load_pct);
    });

}  // namespace
}  // namespace mmr
