// Perf-probe layer: accumulation, thread-local arming, JSON schema, and —
// the property everything else rests on — that arming probes never perturbs
// simulation results.

#include "mmr/perf/probe.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "mmr/core/simulation.hpp"
#include "mmr/perf/report.hpp"

namespace mmr {
namespace {

using perf::Counter;
using perf::PerfProbe;
using perf::Phase;
using perf::ProbeScope;

TEST(PerfProbe, AccumulatesTimeCallsAndCounters) {
  PerfProbe probe;
  probe.add_time(Phase::kArbitration, 100);
  probe.add_time(Phase::kArbitration, 50);
  probe.add_time(Phase::kCrossbar, 25);
  probe.add_count(Counter::kMatchingAlloc);
  probe.add_count(Counter::kScratchRealloc, 3);
  probe.add_run(1'000, 500);

  EXPECT_EQ(probe.phase_ns(Phase::kArbitration), 150u);
  EXPECT_EQ(probe.phase_calls(Phase::kArbitration), 2u);
  EXPECT_EQ(probe.phase_ns(Phase::kCrossbar), 25u);
  EXPECT_EQ(probe.phase_ns(Phase::kTraffic), 0u);
  EXPECT_EQ(probe.count(Counter::kMatchingAlloc), 1u);
  EXPECT_EQ(probe.count(Counter::kScratchRealloc), 3u);
  EXPECT_EQ(probe.attributed_ns(), 175u);
  EXPECT_EQ(probe.simulated_cycles(), 1'000u);
  EXPECT_DOUBLE_EQ(probe.cycles_per_second(), 1'000.0 / 500e-9);
  EXPECT_DOUBLE_EQ(probe.phase_share(Phase::kArbitration), 150.0 / 500.0);
}

TEST(PerfProbe, MergeAndResetComposeRuns) {
  PerfProbe a;
  a.add_time(Phase::kTraffic, 10);
  a.add_run(100, 40);
  PerfProbe b;
  b.add_time(Phase::kTraffic, 30);
  b.add_count(Counter::kCandidateRealloc);
  b.add_run(200, 60);

  a.merge(b);
  EXPECT_EQ(a.phase_ns(Phase::kTraffic), 40u);
  EXPECT_EQ(a.phase_calls(Phase::kTraffic), 2u);
  EXPECT_EQ(a.count(Counter::kCandidateRealloc), 1u);
  EXPECT_EQ(a.simulated_cycles(), 300u);
  EXPECT_EQ(a.run_wall_ns(), 100u);

  a.reset();
  EXPECT_EQ(a.phase_ns(Phase::kTraffic), 0u);
  EXPECT_EQ(a.attributed_ns(), 0u);
  EXPECT_EQ(a.simulated_cycles(), 0u);
  EXPECT_DOUBLE_EQ(a.cycles_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(a.phase_share(Phase::kTraffic), 0.0);
}

TEST(PerfProbe, ProbeScopeArmsPerThreadAndNests) {
  EXPECT_EQ(perf::current(), nullptr);
  PerfProbe outer;
  {
    ProbeScope arm_outer(&outer);
    EXPECT_EQ(perf::current(), &outer);
    PerfProbe inner;
    {
      ProbeScope arm_inner(&inner);
      EXPECT_EQ(perf::current(), &inner);
      ProbeScope disarm(nullptr);
      EXPECT_EQ(perf::current(), nullptr);
    }
    EXPECT_EQ(perf::current(), &outer);

    // Arming is thread-local: a different thread stays unarmed.
    PerfProbe* seen = &outer;
    std::thread([&seen] { seen = perf::current(); }).join();
    EXPECT_EQ(seen, nullptr);
  }
  EXPECT_EQ(perf::current(), nullptr);
}

TEST(PerfProbe, ScopedTimerChargesArmedProbeOnly) {
  PerfProbe probe;
  {
    ProbeScope arm(&probe);
    MMR_PERF_SCOPE(Phase::kOther);
  }
  MMR_PERF_SCOPE(Phase::kOther);  // unarmed: must be a no-op
  MMR_PERF_COUNT(Counter::kMatchingAlloc, 1);
  if (perf::kCompiledIn) {
    EXPECT_EQ(probe.phase_calls(Phase::kOther), 1u);
  } else {
    EXPECT_EQ(probe.phase_calls(Phase::kOther), 0u);
  }
  EXPECT_EQ(probe.count(Counter::kMatchingAlloc), 0u);
}

TEST(PerfReport, JsonCarriesSchemaRecordsAndPhases) {
  perf::PerfRecord record;
  record.label = "sim-cbr/coa/p4";
  record.kind = "sim-cbr";
  record.arbiter = "coa";
  record.ports = 4;
  record.probe.add_time(Phase::kArbitration, 1'000'000);
  record.probe.add_run(50'000, 2'000'000);
  record.probe.add_count(Counter::kScratchRealloc, 2);

  perf::PerfReportMeta meta;
  meta.mode = "quick";
  meta.threads = 3;
  std::ostringstream out;
  perf::write_perf_json(out, meta, {record});
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema\": \"mmr-perf-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"quick\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"sim-cbr/coa/p4\""), std::string::npos);
  EXPECT_NE(json.find("\"arbiter\": \"coa\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated_cycles\": 50000"), std::string::npos);
  EXPECT_NE(json.find("\"arbitration\""), std::string::npos);
  EXPECT_NE(json.find("\"scratch_realloc\": 2"), std::string::npos);

  const std::string summary = perf::render_phase_summary(record);
  EXPECT_NE(summary.find("arbitration"), std::string::npos);
}

SimConfig golden_config(const std::string& arbiter) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 10'000;
  config.arbiter = arbiter;
  return config;
}

SimulationMetrics run_golden(const std::string& arbiter, PerfProbe* probe) {
  const SimConfig config = golden_config(arbiter);
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.6;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  ProbeScope arm(probe);
  return simulation.run();
}

// The determinism proof: arming a probe must not perturb the simulation in
// any way — golden-seed metrics are bit-identical with probes on and off.
// (The probes-compiled-out case is covered by building with -DMMR_PERF=OFF;
// probes never touch sim state, so it is the same code path as "off" here.)
TEST(PerfProbe, ArmedProbeLeavesMetricsBitIdentical) {
  for (const std::string arbiter : {"coa", "coa-scan", "islip"}) {
    const SimulationMetrics off = run_golden(arbiter, nullptr);
    PerfProbe probe;
    const SimulationMetrics on = run_golden(arbiter, &probe);

    EXPECT_EQ(off.flits_generated, on.flits_generated);
    EXPECT_EQ(off.flits_delivered, on.flits_delivered);
    EXPECT_EQ(off.flit_delay_us.mean(), on.flit_delay_us.mean());
    EXPECT_EQ(off.flit_delay_us.max(), on.flit_delay_us.max());
    EXPECT_EQ(off.delivered_load, on.delivered_load);
    EXPECT_EQ(off.crossbar_utilization, on.crossbar_utilization);

    if (perf::kCompiledIn) {
      // The armed run must actually have measured the hot phases.
      EXPECT_GT(probe.phase_calls(Phase::kArbitration), 0u);
      EXPECT_GT(probe.phase_calls(Phase::kTraffic), 0u);
      EXPECT_GT(probe.attributed_ns(), 0u);
    }
  }
}

// The bucketed coa and the reference coa-scan must deliver identical
// end-to-end simulation metrics, not just identical matchings.
TEST(PerfProbe, BucketedCoaMatchesScanInFullSimulation) {
  const SimulationMetrics bucketed = run_golden("coa", nullptr);
  const SimulationMetrics scan = run_golden("coa-scan", nullptr);
  EXPECT_EQ(bucketed.flits_generated, scan.flits_generated);
  EXPECT_EQ(bucketed.flits_delivered, scan.flits_delivered);
  EXPECT_EQ(bucketed.flit_delay_us.mean(), scan.flit_delay_us.mean());
  EXPECT_EQ(bucketed.delivered_load, scan.delivered_load);
}

}  // namespace
}  // namespace mmr
