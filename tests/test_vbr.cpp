#include "mmr/traffic/vbr.hpp"

#include <gtest/gtest.h>

#include <map>

#include "mmr/sim/config.hpp"

namespace mmr {
namespace {

TimeBase tb() { return TimeBase(2.4e9, 4096, 16); }

MpegTrace small_trace(std::uint32_t gops = 2, std::uint64_t seed = 61) {
  Rng rng(seed, 0);
  return generate_mpeg_trace(mpeg_sequence("Ayersroc"), gops, rng);
}

double period_cycles() { return tb().seconds_to_cycles(kFramePeriodSeconds); }

TEST(VbrSource, FrameFlitCountMatchesTraceBits) {
  const MpegTrace trace = small_trace();
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  for (std::uint32_t f = 0; f < trace.frames(); ++f) {
    const auto expected = static_cast<std::uint32_t>(
        (trace.frame_bits[f] + 4095) / 4096);
    EXPECT_EQ(source.frame_flits(f), std::max(1u, expected)) << f;
  }
}

TEST(VbrSource, SmoothRateSpreadsFlitsAcrossThePeriod) {
  const MpegTrace trace = small_trace();
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  std::vector<Flit> flits;
  source.generate(static_cast<Cycle>(3 * period_cycles()), flits);
  std::map<std::uint32_t, std::vector<Cycle>> by_frame;
  for (const Flit& flit : flits) by_frame[flit.frame].push_back(flit.generated_at);
  for (const auto& [frame, times] : by_frame) {
    if (frame >= 2) continue;  // last frame may be partial at the horizon
    const double boundary = source.frame_boundary(frame);
    // All inside the frame window.
    EXPECT_GE(static_cast<double>(times.front()), boundary - 1);
    EXPECT_LE(static_cast<double>(times.back()), boundary + period_cycles());
    // Roughly even spacing: max gap close to period / n.
    const double expected_gap =
        period_cycles() / static_cast<double>(times.size());
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double gap = static_cast<double>(times[i] - times[i - 1]);
      EXPECT_NEAR(gap, expected_gap, 2.0) << "frame " << frame;
    }
  }
}

TEST(VbrSource, BackToBackBurstsAtPeakRate) {
  const MpegTrace trace = small_trace();
  const double peak = trace.peak_bps();
  VbrSource source(0, trace, InjectionModel::kBackToBack, tb(), peak);
  std::vector<Flit> flits;
  source.generate(static_cast<Cycle>(2 * period_cycles()), flits);
  const double iat_p = 2.4e9 / peak;
  std::uint32_t frame1_count = 0;
  Cycle prev = 0;
  for (const Flit& flit : flits) {
    if (flit.frame != 1) continue;
    if (frame1_count > 0) {
      EXPECT_NEAR(static_cast<double>(flit.generated_at - prev), iat_p, 1.01);
    }
    prev = flit.generated_at;
    ++frame1_count;
  }
  EXPECT_EQ(frame1_count, source.frame_flits(1));
  // The burst ends well before the frame period for a non-maximal frame.
  if (source.frame_flits(1) * iat_p < 0.8 * period_cycles()) {
    EXPECT_LT(static_cast<double>(prev),
              source.frame_boundary(1) + 0.9 * period_cycles());
  }
}

TEST(VbrSource, LastOfFrameMarksExactlyOneFlitPerFrame) {
  const MpegTrace trace = small_trace();
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  std::vector<Flit> flits;
  source.generate(static_cast<Cycle>(5 * period_cycles()), flits);
  std::map<std::uint32_t, std::uint32_t> last_marks;
  std::map<std::uint32_t, std::uint32_t> counts;
  for (const Flit& flit : flits) {
    ++counts[flit.frame];
    if (flit.last_of_frame) ++last_marks[flit.frame];
  }
  for (const auto& [frame, count] : counts) {
    if (count == source.frame_flits(frame)) {
      EXPECT_EQ(last_marks[frame], 1u) << "frame " << frame;
    }
  }
}

TEST(VbrSource, SequenceNumbersAndFrameOriginsAdvance) {
  const MpegTrace trace = small_trace();
  VbrSource source(9, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  std::vector<Flit> flits;
  source.generate(static_cast<Cycle>(2.5 * period_cycles()), flits);
  std::uint64_t seq = 0;
  for (const Flit& flit : flits) {
    EXPECT_EQ(flit.connection, 9u);
    EXPECT_EQ(flit.seq, seq++);
    EXPECT_NEAR(static_cast<double>(flit.frame_origin),
                source.frame_boundary(flit.frame), 1.01);
    EXPECT_GE(flit.generated_at + 1, flit.frame_origin);
  }
}

TEST(VbrSource, TraceRepeatsCyclically) {
  const MpegTrace trace = small_trace(/*gops=*/1);
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  // Frame kGopFrames repeats frame 0's size.
  EXPECT_EQ(source.frame_flits(kGopFrames), source.frame_flits(0));
  EXPECT_EQ(source.frame_flits(kGopFrames + 3), source.frame_flits(3));
}

TEST(VbrSource, StartFrameShiftsTracePosition) {
  const MpegTrace trace = small_trace();
  VbrSource base(0, trace, InjectionModel::kSmoothRate, tb(),
                 trace.peak_bps());
  VbrSource shifted(0, trace, InjectionModel::kSmoothRate, tb(),
                    trace.peak_bps(), 0.0, /*start_frame=*/5);
  EXPECT_EQ(shifted.frame_flits(0), base.frame_flits(5));
  EXPECT_EQ(shifted.frame_flits(1), base.frame_flits(6));
}

TEST(VbrSource, MeanRateMatchesTraceOverLongWindow) {
  const MpegTrace trace = small_trace(/*gops=*/4);
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps());
  std::vector<Flit> flits;
  const double window = 8 * kGopFrames * period_cycles();  // 8 GOP times
  source.generate(static_cast<Cycle>(window), flits);
  const double measured_bps =
      static_cast<double>(flits.size()) * 4096.0 /
      tb().cycles_to_seconds(window);
  // Flit quantisation rounds every frame up, so measured >= trace mean.
  EXPECT_NEAR(measured_bps / trace.mean_bps(), 1.0, 0.06);
}

TEST(VbrSource, PhaseShiftsBoundaries) {
  const MpegTrace trace = small_trace();
  VbrSource source(0, trace, InjectionModel::kSmoothRate, tb(),
                   trace.peak_bps(), /*phase=*/500.0);
  EXPECT_NEAR(source.frame_boundary(0), 500.0, 1e-9);
  EXPECT_NEAR(source.frame_boundary(2), 500.0 + 2 * period_cycles(), 1e-6);
  EXPECT_GE(source.next_emission(), 500u);
}

TEST(VbrSource, InjectionModelNames) {
  EXPECT_STREQ(to_string(InjectionModel::kBackToBack), "BB");
  EXPECT_STREQ(to_string(InjectionModel::kSmoothRate), "SR");
}

TEST(VbrSourceDeath, RejectsPeakBelowTraceRequirement) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const MpegTrace trace = small_trace();
  EXPECT_DEATH(VbrSource(0, trace, InjectionModel::kBackToBack, tb(),
                         trace.peak_bps() * 0.5),
               "largest frame");
}

TEST(VbrSourceDeath, RejectsPhaseBeyondPeriod) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const MpegTrace trace = small_trace();
  EXPECT_DEATH(VbrSource(0, trace, InjectionModel::kSmoothRate, tb(),
                         trace.peak_bps(), 2 * period_cycles()),
               "phase");
}

}  // namespace
}  // namespace mmr
