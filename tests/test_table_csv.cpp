#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "mmr/sim/csv.hpp"
#include "mmr/sim/table.hpp"

namespace mmr {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable table({"a", "long header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide cell value", "x", "y"});
  const std::string out = table.render();
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("wide cell value"), std::string::npos);
  // All lines have equal width.
  std::istringstream in(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_EQ(table.rows(), 2u);
}

TEST(AsciiTable, NumericRowFormatting) {
  AsciiTable table({"x", "y"});
  table.add_row_numeric({1.23456, std::nan("")}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(AsciiTable, NumHelper) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(3.14159, 0), "3");
  EXPECT_EQ(AsciiTable::num(std::nan(""), 2), "-");
}

TEST(AsciiTableDeath, RowWidthMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AsciiTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only one"}), "width");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row({"1", "2"});
  csv.row_numeric({3.5, 4.25});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,4.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, NanBecomesEmptyCell) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row_numeric({std::nan(""), 1.0});
  EXPECT_EQ(out.str(), "a,b\n,1\n");
}

TEST(CsvWriterDeath, RowWidthMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_DEATH(csv.row({"1", "2", "3"}), "width");
}

}  // namespace
}  // namespace mmr
