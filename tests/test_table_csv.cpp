#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mmr/sim/csv.hpp"
#include "mmr/sim/table.hpp"

namespace mmr {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable table({"a", "long header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide cell value", "x", "y"});
  const std::string out = table.render();
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("wide cell value"), std::string::npos);
  // All lines have equal width.
  std::istringstream in(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_EQ(table.rows(), 2u);
}

TEST(AsciiTable, NumericRowFormatting) {
  AsciiTable table({"x", "y"});
  table.add_row_numeric({1.23456, std::nan("")}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(AsciiTable, NumHelper) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(3.14159, 0), "3");
  EXPECT_EQ(AsciiTable::num(std::nan(""), 2), "-");
}

TEST(AsciiTableDeath, RowWidthMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AsciiTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only one"}), "width");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row({"1", "2"});
  csv.row_numeric({3.5, 4.25});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,4.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, NanBecomesEmptyCell) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row_numeric({std::nan(""), 1.0});
  EXPECT_EQ(out.str(), "a,b\n,1\n");
}

TEST(CsvWriterDeath, RowWidthMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_DEATH(csv.row({"1", "2", "3"}), "width");
}

TEST(CsvWriter, FailedStreamThrowsOnRowWithPath) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"}, "results/fig6.csv");
  csv.row({"1", "2"});
  out.setstate(std::ios::badbit);  // e.g. disk full / closed descriptor
  try {
    csv.row({"3", "4"});
    FAIL() << "row() on a failed stream must throw";
  } catch (const std::runtime_error& e) {
    // The error names the destination and how much data made it out.
    EXPECT_NE(std::string(e.what()).find("results/fig6.csv"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("1 data rows"), std::string::npos)
        << e.what();
  }
}

TEST(CsvWriter, FailedStreamThrowsOnFlush) {
  std::ostringstream out;
  CsvWriter csv(out, {"a"});
  csv.row({"1"});
  EXPECT_NO_THROW(csv.flush());
  out.setstate(std::ios::failbit);
  EXPECT_THROW(csv.flush(), std::runtime_error);
}

TEST(CsvWriter, HeaderWriteFailureThrowsFromConstructor) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(CsvWriter(out, {"a", "b"}), std::runtime_error);
}

TEST(CsvWriter, UnwritableFileReportsItsPath) {
  // An ofstream that never opened fails on the very first write.
  std::ofstream closed;  // no file attached -> failbit on any output
  try {
    CsvWriter csv(closed, {"a"}, "/nonexistent/dir/out.csv");
    csv.row({"1"});
    FAIL() << "writes to an unopened ofstream must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/out.csv"),
              std::string::npos)
        << e.what();
  }
}

TEST(CsvWriter, DestructorToleratesFailedStream) {
  // Flush-on-destruction is best effort: destroying a writer whose stream
  // already failed must not throw or abort.
  std::ostringstream out;
  {
    CsvWriter csv(out, {"a"});
    csv.row({"1"});
    out.setstate(std::ios::badbit);
  }
  SUCCEED();
}

}  // namespace
}  // namespace mmr
