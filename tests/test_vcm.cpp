#include "mmr/router/vcm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mmr {
namespace {

Flit make_flit(ConnectionId connection, std::uint64_t seq) {
  Flit flit;
  flit.connection = connection;
  flit.seq = seq;
  return flit;
}

TEST(Vcm, StartsEmpty) {
  VirtualChannelMemory vcm(8, 2);
  EXPECT_EQ(vcm.vcs(), 8u);
  EXPECT_EQ(vcm.capacity_per_vc(), 2u);
  EXPECT_EQ(vcm.total_flits(), 0u);
  EXPECT_TRUE(vcm.occupied_vcs().empty());
  for (std::uint32_t vc = 0; vc < 8; ++vc) {
    EXPECT_TRUE(vcm.empty(vc));
    EXPECT_TRUE(vcm.can_accept(vc));
    EXPECT_EQ(vcm.occupancy(vc), 0u);
  }
  vcm.check_invariants();
}

TEST(Vcm, FifoOrderPerVc) {
  VirtualChannelMemory vcm(4, 4);
  vcm.push(2, make_flit(9, 0), 10);
  vcm.push(2, make_flit(9, 1), 11);
  vcm.push(2, make_flit(9, 2), 12);
  EXPECT_EQ(vcm.head(2).seq, 0u);
  EXPECT_EQ(vcm.pop(2).seq, 0u);
  EXPECT_EQ(vcm.pop(2).seq, 1u);
  EXPECT_EQ(vcm.pop(2).seq, 2u);
  EXPECT_TRUE(vcm.empty(2));
  vcm.check_invariants();
}

TEST(Vcm, HeadArrivalTracksQueueEpoch) {
  VirtualChannelMemory vcm(4, 4);
  vcm.push(1, make_flit(0, 0), 100);
  vcm.push(1, make_flit(0, 1), 120);
  EXPECT_EQ(vcm.head_arrival(1), 100u);
  (void)vcm.pop(1);
  EXPECT_EQ(vcm.head_arrival(1), 120u);
}

TEST(Vcm, CapacityEnforced) {
  VirtualChannelMemory vcm(4, 2);
  vcm.push(0, make_flit(0, 0), 0);
  EXPECT_TRUE(vcm.can_accept(0));
  vcm.push(0, make_flit(0, 1), 1);
  EXPECT_FALSE(vcm.can_accept(0));
  EXPECT_TRUE(vcm.can_accept(1));  // other VCs unaffected
}

TEST(VcmDeath, OverflowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VirtualChannelMemory vcm(2, 1);
  vcm.push(0, make_flit(0, 0), 0);
  EXPECT_DEATH(vcm.push(0, make_flit(0, 1), 1), "credit");
}

TEST(VcmDeath, PopEmptyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VirtualChannelMemory vcm(2, 1);
  EXPECT_DEATH((void)vcm.pop(0), "empty");
}

TEST(Vcm, OccupiedListTracksMembership) {
  VirtualChannelMemory vcm(8, 2);
  vcm.push(3, make_flit(0, 0), 0);
  vcm.push(5, make_flit(1, 0), 0);
  vcm.push(3, make_flit(0, 1), 1);
  auto occupied = vcm.occupied_vcs();
  std::sort(occupied.begin(), occupied.end());
  EXPECT_EQ(occupied, (std::vector<std::uint32_t>{3, 5}));
  (void)vcm.pop(3);
  (void)vcm.pop(3);  // VC 3 now empty
  occupied = vcm.occupied_vcs();
  EXPECT_EQ(occupied, (std::vector<std::uint32_t>{5}));
  vcm.check_invariants();
}

TEST(Vcm, OccupiedListSurvivesInterleavedChurn) {
  VirtualChannelMemory vcm(16, 2);
  // Exercise the swap-remove bookkeeping hard.
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (std::uint32_t vc = 0; vc < 16; vc += 2) {
      if (vcm.can_accept(vc)) vcm.push(vc, make_flit(vc, round), round);
    }
    for (std::uint32_t vc = 0; vc < 16; vc += 3) {
      if (!vcm.empty(vc)) (void)vcm.pop(vc);
    }
    vcm.check_invariants();
  }
}

TEST(Vcm, TotalFlitsAggregates) {
  VirtualChannelMemory vcm(4, 4);
  vcm.push(0, make_flit(0, 0), 0);
  vcm.push(1, make_flit(1, 0), 0);
  vcm.push(1, make_flit(1, 1), 0);
  EXPECT_EQ(vcm.total_flits(), 3u);
  (void)vcm.pop(1);
  EXPECT_EQ(vcm.total_flits(), 2u);
}

TEST(Vcm, BankOccupancySumsToTotal) {
  VirtualChannelMemory vcm(8, 4, /*banks=*/4);
  for (std::uint32_t vc = 0; vc < 8; ++vc) {
    vcm.push(vc, make_flit(vc, 0), 0);
    vcm.push(vc, make_flit(vc, 1), 0);
  }
  std::uint64_t banked = 0;
  for (std::uint32_t used : vcm.bank_occupancy()) banked += used;
  EXPECT_EQ(banked, vcm.total_flits());
  vcm.check_invariants();
}

TEST(Vcm, InterleaveSpreadsAcrossBanks) {
  VirtualChannelMemory vcm(16, 4, /*banks=*/4);
  // Steady pushes rotate (vc + push_count) across banks: no bank starves.
  for (std::uint32_t vc = 0; vc < 16; ++vc) {
    for (std::uint32_t i = 0; i < 4; ++i) vcm.push(vc, make_flit(vc, i), i);
  }
  for (std::uint32_t used : vcm.bank_occupancy()) {
    EXPECT_EQ(used, 16u);  // 64 flits over 4 banks, perfectly even
  }
}

TEST(Vcm, PopReturnsTheStoredFlit) {
  VirtualChannelMemory vcm(2, 2);
  Flit flit = make_flit(42, 7);
  flit.frame = 3;
  flit.last_of_frame = true;
  flit.generated_at = 1234;
  vcm.push(1, flit, 2000);
  const Flit popped = vcm.pop(1);
  EXPECT_EQ(popped.connection, 42u);
  EXPECT_EQ(popped.seq, 7u);
  EXPECT_EQ(popped.frame, 3u);
  EXPECT_TRUE(popped.last_of_frame);
  EXPECT_EQ(popped.generated_at, 1234u);
}

}  // namespace
}  // namespace mmr
