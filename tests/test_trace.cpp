// Trace layer (ISSUE 5 tentpole): spec parsing, stream/flight buffering,
// flight-recorder dump triggers (watchdog alarm, fault activation, assert
// hook, SimAuditor violations), exporter well-formedness and byte
// determinism, and — the property everything else rests on — that arming a
// tracer never perturbs simulation results.

#include "mmr/trace/tracer.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mmr/audit/sim_auditor.hpp"
#include "mmr/core/simulation.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/trace/export.hpp"

namespace mmr {
namespace {

using trace::Event;
using trace::EventType;
using trace::TraceMeta;
using trace::Tracer;
using trace::TraceScope;
using trace::TraceSpec;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TraceMeta tiny_meta() {
  TraceMeta meta;
  meta.ports = 2;
  meta.vcs = 4;
  meta.levels = 2;
  meta.arbiter = "coa";
  meta.seed = 7;
  return meta;
}

TEST(TraceSpec, ParseModesAndKeys) {
  const TraceSpec stream = TraceSpec::parse("stream");
  EXPECT_EQ(stream.mode, TraceSpec::Mode::kStream);
  EXPECT_TRUE(stream.out.empty());

  const TraceSpec full = TraceSpec::parse(
      "stream,out:run.jsonl,chrome:run.json,summary:conns.txt,limit:500");
  EXPECT_EQ(full.out, "run.jsonl");
  EXPECT_EQ(full.chrome, "run.json");
  EXPECT_EQ(full.summary, "conns.txt");
  EXPECT_EQ(full.limit, 500u);

  const TraceSpec flight =
      TraceSpec::parse("flight,ring:64,dump:crash,dumps:2");
  EXPECT_EQ(flight.mode, TraceSpec::Mode::kFlight);
  EXPECT_EQ(flight.ring, 64u);
  EXPECT_EQ(flight.dump_prefix, "crash");
  EXPECT_EQ(flight.max_dumps, 2u);
}

TEST(TraceSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)TraceSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)TraceSpec::parse("out:x.jsonl"), std::invalid_argument);
  EXPECT_THROW((void)TraceSpec::parse("stream,flight"), std::invalid_argument);
  EXPECT_THROW((void)TraceSpec::parse("stream,bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)TraceSpec::parse("flight,ring:abc"),
               std::invalid_argument);
  EXPECT_THROW((void)TraceSpec::parse("stream,noseparator"),
               std::invalid_argument);
}

TEST(TraceScopeTest, ArmsPerThreadAndNests) {
  EXPECT_EQ(trace::current(), nullptr);
  Tracer outer(TraceSpec::parse("stream"), tiny_meta());
  {
    TraceScope arm_outer(&outer);
    EXPECT_EQ(trace::current(), &outer);
    {
      TraceScope disarm(nullptr);
      EXPECT_EQ(trace::current(), nullptr);
    }
    EXPECT_EQ(trace::current(), &outer);
  }
  EXPECT_EQ(trace::current(), nullptr);
}

TEST(TracerStream, BuffersInOrderAndTruncatesAtLimit) {
  Tracer tracer(TraceSpec::parse("stream,limit:3"), tiny_meta());
  for (std::uint64_t i = 0; i < 5; ++i)
    tracer.emit(trace::inject_event(/*now=*/i, /*link=*/0, /*vc=*/1,
                                    /*connection=*/9, /*seq=*/i));
  EXPECT_EQ(tracer.emitted(), 5u);
  EXPECT_EQ(tracer.truncated(), 2u);
  const std::vector<Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cycle, i);
    EXPECT_EQ(events[i].a, i);
    EXPECT_EQ(events[i].type, EventType::kInject);
  }
}

TEST(TracerFlight, RingKeepsTheLastNInOrder) {
  Tracer tracer(TraceSpec::parse("flight,ring:16"), tiny_meta());
  for (std::uint64_t i = 0; i < 50; ++i)
    tracer.emit(trace::vc_enqueue_event(/*now=*/i, /*port=*/0, /*vc=*/0,
                                        /*connection=*/1, /*seq=*/i));
  EXPECT_EQ(tracer.emitted(), 50u);
  const std::vector<Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].cycle, 34u + i);  // the last 16, oldest first
}

TEST(TracerFlight, SnapshotMergesNodesByCycle) {
  Tracer tracer(TraceSpec::parse("flight,ring:16"), tiny_meta());
  for (std::uint64_t cycle = 0; cycle < 6; ++cycle) {
    tracer.set_node(static_cast<std::uint16_t>(cycle % 2));
    tracer.emit(trace::credit_return_event(cycle, /*input=*/0, /*vc=*/0));
  }
  const std::vector<Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cycle, i);
    EXPECT_EQ(events[i].node, i % 2);
  }
}

TEST(TracerFlight, WatchdogAlarmTriggersADump) {
  const std::string prefix = tmp_path("wd-dump");
  Tracer tracer(TraceSpec::parse("flight,ring:16,dump:" + prefix),
                tiny_meta());
  tracer.emit(trace::inject_event(1, 0, 0, 3, 0));
  // Stage transitions below the alarm stage must not dump.
  tracer.emit(trace::watchdog_event(2, /*stage=*/2, /*escalated=*/true, 10));
  EXPECT_EQ(tracer.dumps_written(), 0u);
  tracer.emit(trace::watchdog_event(3, /*stage=*/3, /*escalated=*/true, 99));
  ASSERT_EQ(tracer.dumps_written(), 1u);
  const std::string body = read_file(tracer.dump_paths().front());
  EXPECT_NE(body.find("\"schema\":\"mmr-trace-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"trigger\":\"watchdog-alarm\""), std::string::npos);
  EXPECT_NE(body.find("\"type\":\"watchdog\""), std::string::npos);
}

TEST(TracerFlight, LinkDownTriggersADumpAndTheCapHolds) {
  const std::string prefix = tmp_path("fault-dump");
  Tracer tracer(TraceSpec::parse("flight,ring:16,dumps:1,dump:" + prefix),
                tiny_meta());
  tracer.emit(trace::fault_event(5, trace::FaultKind::kLinkDown, 2));
  ASSERT_EQ(tracer.dumps_written(), 1u);
  EXPECT_NE(read_file(tracer.dump_paths().front())
                .find("\"trigger\":\"fault-down\""),
            std::string::npos);
  // A second trigger is over the dumps:1 cap: recorded, not dumped.
  tracer.emit(trace::fault_event(9, trace::FaultKind::kLinkDown, 3));
  EXPECT_EQ(tracer.dumps_written(), 1u);
  EXPECT_EQ(tracer.emitted(), 2u);
}

TEST(TracerDeathTest, AssertFailureDumpsTheFlightRecorder) {
  const std::string prefix = tmp_path("assert-dump");
  EXPECT_DEATH(
      {
        Tracer tracer(TraceSpec::parse("flight,ring:16,dump:" + prefix),
                      tiny_meta());
        TraceScope arm(&tracer);
        MMR_TRACE_EVENT(trace::inject_event(1, 0, 0, 7, 0));
        MMR_ASSERT_MSG(false, "deliberate failure for the dump test");
      },
      "flight recorder dumped");
  // The dump was written by the death-test child before it aborted.
  const std::string body = read_file(prefix + "-assert-0.jsonl");
  EXPECT_NE(body.find("\"schema\":\"mmr-trace-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"trigger\":\"assert\""), std::string::npos);
}

TEST(TracerDeathTest, SimAuditorViolationDumpsTheFlightRecorder) {
  SimConfig config;
  config.ports = 2;
  config.vcs_per_link = 4;
  config.audit_every = 8;
  const std::string prefix = tmp_path("audit-dump");
  EXPECT_DEATH(
      {
        Tracer tracer(TraceSpec::parse("flight,ring:16,dump:" + prefix),
                      tiny_meta());
        TraceScope arm(&tracer);
        audit::SimAuditor auditor(config);
        ConnectionTable table(config.ports);
        const MmrRouter router(config, table, Rng(1, 1));
        const std::vector<Nic> nics;
        const std::vector<LinkPipeline> links;
        // Two same-cycle departures from one input: a crossbar-conflict
        // invariant the auditor must kill the run over.
        std::vector<MmrRouter::Departure> departures(2);
        departures[0].input = departures[1].input = 0;
        departures[0].output = 0;
        departures[1].output = 1;
        // Distinct nonzero seqs keep the per-VC FIFO invariant quiet so the
        // crossbar-conflict one is what kills the run.
        departures[0].flit.seq = 1;
        departures[1].flit.seq = 2;
        auditor.on_cycle(/*now=*/1, router, nics, links, departures);
      },
      "two departures from one input");
  const std::string body = read_file(prefix + "-assert-0.jsonl");
  EXPECT_NE(body.find("\"trigger\":\"assert\""), std::string::npos);
}

TEST(TraceExport, JsonlCarriesHeaderAndAllIntegerEventFields) {
  Tracer tracer(TraceSpec::parse("stream"), tiny_meta());
  tracer.emit(trace::candidate_event(3, 1, 0, 2, 1, 40));
  tracer.emit(trace::deliver_event(4, 1, 0, 2, 5, 17, 9));
  std::ostringstream out;
  tracer.export_jsonl(out, "end");
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"mmr-trace-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"arbiter\":\"coa\""), std::string::npos);
  EXPECT_NE(text.find("\"events\":2"), std::string::npos);
  EXPECT_NE(text.find("{\"cycle\":3,\"type\":\"candidate\",\"node\":0,"
                      "\"input\":1,\"output\":0,\"vc\":2,\"conn\":" +
                      std::to_string(trace::kNoConnection) +
                      ",\"level\":1,\"a\":40,\"b\":0}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"type\":\"deliver\""), std::string::npos);
}

/// Brace/bracket balance outside of string literals — a cheap well-formedness
/// check that catches truncated or comma-broken JSON without a parser.
bool json_balanced(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(TraceExport, ChromeTraceIsWellFormedWithNamedTracks) {
  std::vector<Event> events;
  events.push_back(trace::vc_enqueue_event(1, 0, 2, 4, 0));
  events.push_back(trace::xbar_event(2, 0, 1, 2, 4, 0));
  events.push_back(trace::watchdog_event(3, 1, true, 5));  // control track
  std::ostringstream out;
  trace::write_chrome(out, tiny_meta(), events);
  const std::string text = out.str();
  EXPECT_TRUE(json_balanced(text)) << text;
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"in0/vc2\""), std::string::npos);
  EXPECT_NE(text.find("\"control\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\",\"dur\":1"), std::string::npos);
}

TEST(TraceExport, ConnectionSummaryCountsLifecycleEvents) {
  std::vector<Event> events;
  events.push_back(trace::inject_event(1, 0, 0, 5, 0));
  events.push_back(trace::inject_event(2, 0, 0, 5, 1));
  events.push_back(trace::deliver_event(3, 0, 1, 0, 5, 0, 2));
  events.push_back(trace::inject_event(3, 1, 1, 6, 0));
  events.push_back(trace::candidate_event(3, 0, 1, 0, 0, 9));  // no conn
  const std::string table = trace::render_connection_summary(events);
  EXPECT_NE(table.find("conn"), std::string::npos);
  EXPECT_NE(table.find("inject"), std::string::npos);
  EXPECT_NE(table.find("deliver"), std::string::npos);
  EXPECT_NE(table.find('5'), std::string::npos);
  EXPECT_NE(table.find('6'), std::string::npos);
}

SimConfig golden_config() {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 10'000;
  config.arbiter = "coa";
  return config;
}

SimulationMetrics run_cbr_golden(Tracer* tracer) {
  const SimConfig config = golden_config();
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.6;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  TraceScope arm(tracer);
  return simulation.run();
}

SimulationMetrics run_vbr_golden(Tracer* tracer) {
  SimConfig config = golden_config();
  config.measure_cycles = 5'000;
  Rng rng(config.seed, 2);
  VbrMixSpec spec;
  spec.target_load = 0.5;
  MmrSimulation simulation(config, build_vbr_mix(config, spec, rng));
  TraceScope arm(tracer);
  return simulation.run();
}

void expect_bit_identical(const SimulationMetrics& off,
                          const SimulationMetrics& on) {
  EXPECT_EQ(off.flits_generated, on.flits_generated);
  EXPECT_EQ(off.flits_delivered, on.flits_delivered);
  EXPECT_EQ(off.flit_delay_us.mean(), on.flit_delay_us.mean());
  EXPECT_EQ(off.flit_delay_us.max(), on.flit_delay_us.max());
  EXPECT_EQ(off.delivered_load, on.delivered_load);
  EXPECT_EQ(off.crossbar_utilization, on.crossbar_utilization);
}

// The determinism proof: arming a tracer must not perturb the simulation in
// any way — golden-seed metrics are bit-identical with tracing on and off.
// (The compiled-out case is covered by building with -DMMR_TRACE=OFF; the
// macros never touch sim state, so it is the same code path as "off" here.)
TEST(TraceDeterminism, TracedCbrRunIsBitIdentical) {
  const SimulationMetrics off = run_cbr_golden(nullptr);
  Tracer tracer(TraceSpec::parse("stream,limit:2000000"), tiny_meta());
  const SimulationMetrics on = run_cbr_golden(&tracer);
  expect_bit_identical(off, on);
  if (trace::kCompiledIn) {
    EXPECT_GT(tracer.emitted(), 0u);
  }
}

TEST(TraceDeterminism, TracedVbrRunIsBitIdentical) {
  const SimulationMetrics off = run_vbr_golden(nullptr);
  Tracer tracer(TraceSpec::parse("flight,ring:1024"), tiny_meta());
  const SimulationMetrics on = run_vbr_golden(&tracer);
  expect_bit_identical(off, on);
  if (trace::kCompiledIn) {
    EXPECT_GT(tracer.emitted(), 0u);
  }
}

/// One tiny 2-port CBR run with every output configured; used by both the
/// byte-determinism and the golden-file tests.
SimulationMetrics run_tiny_traced(const std::string& tag) {
  SimConfig config;
  config.ports = 2;
  config.vcs_per_link = 4;
  config.warmup_cycles = 20;
  config.measure_cycles = 200;
  config.arbiter = "coa";
  config.audit_every = 64;
  config.trace_spec = "stream,out:" + tmp_path(tag + ".jsonl") +
                      ",chrome:" + tmp_path(tag + ".json") +
                      ",summary:" + tmp_path(tag + ".txt");
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.classes = {kCbrHigh};
  spec.class_weights = {1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  return simulation.run();
}

// Satellite (c): identical SimConfig + seed must produce *byte-identical*
// mmr-trace-v1 output (and Chrome / summary renderings) across runs in one
// process — no unordered-container iteration or capacity-dependent ordering
// may leak into the files.
TEST(TraceDeterminism, RepeatedRunsProduceByteIdenticalOutputs) {
  const SimulationMetrics first = run_tiny_traced("det-a");
  const SimulationMetrics second = run_tiny_traced("det-b");
  EXPECT_EQ(first.flits_delivered, second.flits_delivered);
  for (const char* ext : {".jsonl", ".json", ".txt"}) {
    const std::string a = read_file(tmp_path(std::string("det-a") + ext));
    const std::string b = read_file(tmp_path(std::string("det-b") + ext));
    EXPECT_FALSE(a.empty()) << ext;
    EXPECT_EQ(a, b) << "trace output diverged across identical runs: " << ext;
  }
}

// Golden-file pin of the mmr-trace-v1 format for a tiny deterministic run.
// Regenerate deliberately (after a reviewed schema change) with:
//   MMR_REGEN_GOLDEN=1 ./test_trace --gtest_filter='*MatchesGoldenFile*'
TEST(TraceGolden, TinyCbrRunMatchesGoldenFile) {
  if (!trace::kCompiledIn)
    GTEST_SKIP() << "tracing compiled out (-DMMR_TRACE=OFF)";
  (void)run_tiny_traced("golden");
  const std::string produced = read_file(tmp_path("golden.jsonl"));
  ASSERT_FALSE(produced.empty());
  const std::string golden_path =
      std::string(MMR_TEST_DATA_DIR) + "/trace_golden.jsonl";
  if (std::getenv("MMR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << produced;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path;
  EXPECT_EQ(produced, golden)
      << "trace format drifted from " << golden_path
      << " (regenerate with MMR_REGEN_GOLDEN=1 if the change is intended)";
}

}  // namespace
}  // namespace mmr
