// Simulation-level checkpoint/restore (ISSUE 8 tentpole): resume from a
// mid-run checkpoint must be bit-identical to never having stopped — final
// metrics, the mmr-trace-v1 output bytes, and the full StateHash sequence —
// across arbiters x {credit, shared} x {CBR, VBR}.  Plus the crash-recovery
// plumbing: post-mortem checkpoints on MMR_ASSERT death and SIGTERM, the
// config-digest guard, and the periodic checkpoint/hash-log duties.

#include "mmr/core/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mmr/network/network.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/format.hpp"
#include "mmr/snapshot/manager.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {
namespace {

using snapshot::SnapshotError;

SimConfig snap_config(const std::string& arbiter, bool shared) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 1'000;
  config.measure_cycles = 3'000;
  config.arbiter = arbiter;
  config.flow_spec = shared ? "shared" : "";
  return config;
}

Workload make_workload(const SimConfig& config, bool vbr) {
  Rng rng(config.seed, 1);
  if (vbr) {
    VbrMixSpec spec;
    spec.target_load = 0.5;
    spec.trace_gops = 2;
    return build_vbr_mix(config, spec, rng);
  }
  CbrMixSpec spec;
  spec.target_load = 0.6;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, spec, rng);
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expect_same_metrics(const SimulationMetrics& a,
                         const SimulationMetrics& b,
                         const std::string& tag) {
  EXPECT_EQ(a.flits_generated, b.flits_generated) << tag;
  EXPECT_EQ(a.flits_delivered, b.flits_delivered) << tag;
  EXPECT_EQ(a.frames_completed, b.frames_completed) << tag;
  EXPECT_DOUBLE_EQ(a.flit_delay_us.mean(), b.flit_delay_us.mean()) << tag;
  EXPECT_DOUBLE_EQ(a.delivered_load, b.delivered_load) << tag;
  EXPECT_DOUBLE_EQ(a.crossbar_utilization, b.crossbar_utilization) << tag;
}

// The tentpole acceptance sweep: checkpoint at cycle 2000, resume, and the
// resumed run must be indistinguishable from the uninterrupted one — same
// final metrics, same final state hash, and the resumed StateHash sequence
// equals the uninterrupted sequence's suffix.
TEST(SnapshotResume, BitIdenticalAcrossArbitersFlowsAndTrafficKinds) {
  for (const char* arbiter : {"coa", "wfa"}) {
    for (const bool shared : {false, true}) {
      for (const bool vbr : {false, true}) {
        const std::string tag = std::string(arbiter) +
                                (shared ? "/shared" : "/credit") +
                                (vbr ? "/vbr" : "/cbr");
        const std::string prefix =
            ::testing::TempDir() + "/mmr_snap_" + std::string(arbiter) +
            (shared ? "_s" : "_c") + (vbr ? "_v" : "_b");

        SimConfig config = snap_config(arbiter, shared);

        // Uninterrupted reference, hashes recorded every 500 cycles.
        SimConfig ref_config = config;
        ref_config.snap_spec = "hash_every:500,prefix:" + prefix + "-ref";
        MmrSimulation reference(ref_config, make_workload(ref_config, vbr));
        const SimulationMetrics ref_metrics = reference.run();
        const std::uint64_t ref_hash = reference.state_hash();
        const auto& ref_seq = reference.snapshot_manager()->hash_sequence();
        ASSERT_EQ(ref_seq.size(), 8u) << tag;  // 500..4000

        // Checkpointing run: same policy plus a checkpoint every 2000.
        SimConfig ck_config = config;
        ck_config.snap_spec =
            "every:2000,hash_every:500,prefix:" + prefix + "-ck";
        MmrSimulation interrupted(ck_config, make_workload(ck_config, vbr));
        const SimulationMetrics ck_metrics = interrupted.run();
        expect_same_metrics(ref_metrics, ck_metrics, tag + " (checkpointing)");
        EXPECT_EQ(interrupted.state_hash(), ref_hash) << tag;
        const auto paths = interrupted.snapshot_manager()->checkpoints_written();
        ASSERT_EQ(paths.size(), 2u) << tag;  // cycles 2000 and 4000
        EXPECT_NE(paths[0].find("-2000.snap"), std::string::npos);

        // Resume from the mid-run checkpoint.
        SimConfig resume_config = config;
        resume_config.snap_spec =
            "hash_every:500,prefix:" + prefix + "-re,resume:" + paths[0];
        MmrSimulation resumed(resume_config, make_workload(resume_config, vbr));
        EXPECT_EQ(resumed.now(), 2000u) << tag;
        const SimulationMetrics resumed_metrics = resumed.run();

        expect_same_metrics(ref_metrics, resumed_metrics, tag + " (resumed)");
        EXPECT_EQ(resumed.state_hash(), ref_hash) << tag;

        // StateHash sequence: the resumed run's recording equals the
        // uninterrupted run's post-checkpoint suffix (2500..4000).
        const auto& resumed_seq =
            resumed.snapshot_manager()->hash_sequence();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> suffix;
        for (const auto& entry : ref_seq) {
          if (entry.first > 2000) suffix.push_back(entry);
        }
        EXPECT_EQ(resumed_seq, suffix) << tag;

        for (const std::string& path : paths) std::remove(path.c_str());
      }
    }
  }
}

// `snap=` only observes: enabling checkpoints and hashes must not perturb a
// run relative to one with no snapshot machinery constructed at all.
TEST(SnapshotResume, SnapMachineryDoesNotPerturbTheRun) {
  const SimConfig bare_config = snap_config("coa", false);
  MmrSimulation bare(bare_config, make_workload(bare_config, false));
  const SimulationMetrics bare_metrics = bare.run();

  SimConfig snap_cfg = bare_config;
  snap_cfg.snap_spec = "every:1500,hash_every:500,prefix:" +
                       ::testing::TempDir() + "/mmr_snap_perturb";
  MmrSimulation snapped(snap_cfg, make_workload(snap_cfg, false));
  const SimulationMetrics snap_metrics = snapped.run();

  expect_same_metrics(bare_metrics, snap_metrics, "snap on vs off");
  EXPECT_EQ(bare.state_hash(), snapped.state_hash());
  for (const std::string& path :
       snapped.snapshot_manager()->checkpoints_written()) {
    std::remove(path.c_str());
  }
}

// The mmr-trace-v1 output of a resumed run is byte-identical to the
// uninterrupted run's: the tracer's buffers ride in the checkpoint.  Both
// runs share one trace_spec (it enters the config digest — traced events
// are behaviour the digest must pin), so the reference bytes are captured
// before the resumed run rewrites the same output path.
TEST(SnapshotResume, TraceOutputBytesIdenticalAfterResume) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_out = dir + "/mmr_snap_trace.jsonl";
  SimConfig config = snap_config("coa", false);
  config.trace_spec = "stream,out:" + trace_out;

  SimConfig ref_config = config;
  ref_config.snap_spec = "prefix:" + dir + "/mmr_snap_trace,every:2000";
  MmrSimulation reference(ref_config, make_workload(ref_config, false));
  (void)reference.run();
  const auto paths = reference.snapshot_manager()->checkpoints_written();
  ASSERT_EQ(paths.size(), 2u);
  const std::string ref_bytes = read_all(trace_out);
  ASSERT_FALSE(ref_bytes.empty());
  std::remove(trace_out.c_str());

  SimConfig resume_config = config;
  resume_config.snap_spec =
      "prefix:" + dir + "/mmr_snap_trace_re,resume:" + paths[0];
  MmrSimulation resumed(resume_config, make_workload(resume_config, false));
  (void)resumed.run();

  EXPECT_EQ(read_all(trace_out), ref_bytes);
  for (const std::string& path : paths) std::remove(path.c_str());
  std::remove(trace_out.c_str());
}

// Direct save/restore API: the state hash is a per-cycle divergence oracle —
// equal after restore, and equal after every subsequent lockstep cycle.
TEST(SnapshotResume, SaveRestoreRoundTripHashOracle) {
  const std::string path = ::testing::TempDir() + "/mmr_snap_oracle.snap";
  const SimConfig config = snap_config("wfa", false);

  MmrSimulation a(config, make_workload(config, false));
  for (int i = 0; i < 1'500; ++i) a.step_one();
  a.save_checkpoint(path);

  MmrSimulation b(config, make_workload(config, false));
  b.restore_checkpoint(path);
  EXPECT_EQ(b.now(), 1'500u);
  EXPECT_EQ(b.state_hash(), a.state_hash());

  for (int i = 0; i < 200; ++i) {
    a.step_one();
    b.step_one();
    ASSERT_EQ(b.state_hash(), a.state_hash()) << "diverged at cycle " << i;
  }
  std::remove(path.c_str());
}

TEST(SnapshotResume, DigestMismatchIsRejected) {
  const std::string path = ::testing::TempDir() + "/mmr_snap_digest.snap";
  const SimConfig config = snap_config("coa", false);
  MmrSimulation a(config, make_workload(config, false));
  for (int i = 0; i < 100; ++i) a.step_one();
  a.save_checkpoint(path);

  SimConfig other = config;
  other.seed = config.seed + 1;
  other.snap_spec = "resume:" + path;
  EXPECT_THROW(MmrSimulation(other, make_workload(other, false)),
               SnapshotError);
  std::remove(path.c_str());
}

// Crash path: an MMR_ASSERT death with a CrashScope armed writes the
// post-mortem checkpoint before the process dies, and the file decodes.
TEST(SnapshotCrashDeath, AssertWritesPostmortemCheckpoint) {
  const std::string prefix = ::testing::TempDir() + "/mmr_snap_crash";
  const std::string expected = prefix + "-crash-7.snap";
  std::remove(expected.c_str());

  EXPECT_DEATH(
      {
        snapshot::SnapshotManager manager(
            snapshot::SnapSpec::parse("prefix:" + prefix), 42);
        std::uint64_t state = 0xABCD;
        const auto walk = [&state](snapshot::Walker& w) {
          w.section("state");
          snapshot::value(w, state);
        };
        snapshot::CrashScope scope([&] {
          (void)manager.write_checkpoint(7, walk, "crash", true);
        });
        MMR_ASSERT_MSG(false, "deliberate crash-path death");
      },
      "deliberate crash-path death");

  const snapshot::Snapshot snap = snapshot::load_file(expected);
  EXPECT_EQ(snap.cycle, 7u);
  EXPECT_EQ(snap.config_digest, 42u);
  ASSERT_EQ(snap.sections.size(), 1u);
  EXPECT_EQ(snap.sections[0].name, "state");
  std::remove(expected.c_str());
}

// Watchdog-alarm post-mortems: one bundle per alarm-count increase, capped.
TEST(SnapshotCrash, AlarmPostmortemsAreCappedPerRun) {
  const std::string prefix = ::testing::TempDir() + "/mmr_snap_alarm";
  snapshot::SnapshotManager manager(
      snapshot::SnapSpec::parse("prefix:" + prefix), 1);
  std::uint64_t state = 1;
  const auto walk = [&state](snapshot::Walker& w) {
    w.section("state");
    snapshot::value(w, state);
  };
  manager.on_alarm_count(10, walk, 0, "watchdog");  // no alarms yet
  EXPECT_TRUE(manager.checkpoints_written().empty());
  for (std::uint64_t alarms = 1; alarms <= snapshot::kMaxPostmortems + 3;
       ++alarms) {
    manager.on_alarm_count(10 + alarms, walk, alarms, "watchdog");
    manager.on_alarm_count(10 + alarms, walk, alarms, "watchdog");  // no dup
  }
  EXPECT_EQ(manager.checkpoints_written().size(), snapshot::kMaxPostmortems);
  for (const std::string& path : manager.checkpoints_written()) {
    EXPECT_NE(path.find("-watchdog-"), std::string::npos);
    std::remove(path.c_str());
  }
}

// SIGTERM mid-run: the managed loop writes a signal-tagged post-mortem
// checkpoint, throws Interrupted, and the bundle resumes to the same final
// state as a never-interrupted run.
TEST(SnapshotSignals, SigtermWritesPostmortemAndResumeCompletes) {
  const SimConfig config = snap_config("coa", false);
  MmrSimulation reference(config, make_workload(config, false));
  const SimulationMetrics ref_metrics = reference.run();
  const std::uint64_t ref_hash = reference.state_hash();

  SimConfig victim_config = config;
  victim_config.snap_spec =
      "prefix:" + ::testing::TempDir() + "/mmr_snap_sig,crash:1";
  MmrSimulation victim(victim_config, make_workload(victim_config, false));

  std::string checkpoint;
  {
    snapshot::SignalGuard guard;  // keep the raise from killing the test
    ASSERT_EQ(::raise(SIGTERM), 0);
    try {
      (void)victim.run();
      FAIL() << "run() must not complete after SIGTERM";
    } catch (const snapshot::Interrupted& stop) {
      EXPECT_EQ(stop.signal_number(), SIGTERM);
      EXPECT_EQ(snapshot::exit_status_for_signal(stop.signal_number()), 143);
      checkpoint = stop.checkpoint();
    }
  }
  ASSERT_FALSE(checkpoint.empty());
  EXPECT_NE(checkpoint.find("-signal-"), std::string::npos);

  SimConfig resume_config = config;
  resume_config.snap_spec = "resume:" + checkpoint;
  MmrSimulation resumed(resume_config, make_workload(resume_config, false));
  const SimulationMetrics resumed_metrics = resumed.run();
  expect_same_metrics(ref_metrics, resumed_metrics, "post-SIGTERM resume");
  EXPECT_EQ(resumed.state_hash(), ref_hash);
  std::remove(checkpoint.c_str());
}

// Periodic duties: the hash log is written as parseable JSONL and the
// checkpoint files land where the prefix says.
TEST(SnapshotManagerDuties, HashLogAndCheckpointsAreWritten) {
  const std::string dir = ::testing::TempDir();
  SimConfig config = snap_config("coa", false);
  config.snap_spec = "every:2000,hash_every:1000,prefix:" + dir +
                     "/mmr_snap_duties,hash_out:" + dir +
                     "/mmr_snap_hashes.jsonl";
  MmrSimulation simulation(config, make_workload(config, false));
  (void)simulation.run();

  const std::string log = read_all(dir + "/mmr_snap_hashes.jsonl");
  ASSERT_FALSE(log.empty());
  std::istringstream lines(log);
  std::string line;
  std::size_t entries = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"cycle\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"hash\":"), std::string::npos) << line;
    ++entries;
  }
  EXPECT_EQ(entries, 4u);  // 1000, 2000, 3000, 4000

  for (const std::string& path :
       simulation.snapshot_manager()->checkpoints_written()) {
    const snapshot::Snapshot snap = snapshot::load_file(path);
    EXPECT_EQ(snap.config_digest, snapshot::config_digest(config));
    std::remove(path.c_str());
  }
  std::remove((dir + "/mmr_snap_hashes.jsonl").c_str());
}

// The multi-router network simulation carries the same guarantee, including
// under an active fault plan (injector RNG lanes, re-admission tables and
// rewritten routing state all ride in the checkpoint).
TEST(SnapshotNetwork, ResumeBitIdenticalWithFaults) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 1'000;
  config.measure_cycles = 3'000;
  config.fault_spec = "drop:0.005,resync_period:256,resync_timeout:512";

  const auto make_net_workload = [&config]() {
    const NetworkTopology ring = NetworkTopology::bidirectional_ring(3, 4);
    Rng rng(config.seed, 5);
    CbrMixSpec mix;
    mix.target_load = 0.4;
    mix.classes = {kCbrHigh, kCbrMedium};
    mix.class_weights = {3.0, 1.0};
    return build_network_cbr_mix(config, ring, mix, rng);
  };

  SimConfig ref_config = config;
  ref_config.snap_spec = "hash_every:500,prefix:" + ::testing::TempDir() +
                         "/mmr_snap_net_ref";
  MmrNetworkSimulation reference(ref_config, make_net_workload());
  const NetworkMetrics ref_metrics = reference.run();
  const std::uint64_t ref_hash = reference.state_hash();

  SimConfig ck_config = config;
  ck_config.snap_spec = "every:2000,prefix:" + ::testing::TempDir() +
                        "/mmr_snap_net_ck";
  MmrNetworkSimulation interrupted(ck_config, make_net_workload());
  (void)interrupted.run();
  const auto paths = interrupted.snapshot_manager()->checkpoints_written();
  ASSERT_EQ(paths.size(), 2u);

  SimConfig resume_config = config;
  resume_config.snap_spec = "hash_every:500,resume:" + paths[0] +
                            ",prefix:" + ::testing::TempDir() +
                            "/mmr_snap_net_re";
  MmrNetworkSimulation resumed(resume_config, make_net_workload());
  EXPECT_EQ(resumed.now(), 2000u);
  const NetworkMetrics resumed_metrics = resumed.run();

  EXPECT_EQ(resumed_metrics.flits_delivered, ref_metrics.flits_delivered);
  EXPECT_EQ(resumed_metrics.frames_completed, ref_metrics.frames_completed);
  EXPECT_DOUBLE_EQ(resumed_metrics.flit_delay_us.mean(),
                   ref_metrics.flit_delay_us.mean());
  EXPECT_EQ(resumed_metrics.degradation.flits_dropped,
            ref_metrics.degradation.flits_dropped);
  EXPECT_EQ(resumed.state_hash(), ref_hash);

  // The suffix property holds across the network walk too.
  const auto& ref_seq = reference.snapshot_manager()->hash_sequence();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> suffix;
  for (const auto& entry : ref_seq) {
    if (entry.first > 2000) suffix.push_back(entry);
  }
  EXPECT_EQ(resumed.snapshot_manager()->hash_sequence(), suffix);
  for (const std::string& path : paths) std::remove(path.c_str());
}

// Sharded engine (ISSUE 9): a checkpoint written under one `net_threads=`
// setting must resume bit-identically under any other, because the
// execution strategy is excluded from the config digest and the sharded
// engine is bit-identical to the serial one.  Covers torus and fat-tree
// fabrics, with fault injection on the torus leg.
TEST(SnapshotNetwork, ShardedResumeBitIdenticalAcrossThreadCounts) {
  const std::uint32_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  for (const bool torus : {true, false}) {
    SimConfig config;
    config.ports = 5;
    config.vcs_per_link = 32;
    config.warmup_cycles = 500;
    config.measure_cycles = 2'500;
    if (torus) {
      config.fault_spec =
          "drop:0.01,credit_loss:0.005,resync_period:256,resync_timeout:512";
    }

    const auto make_net_workload = [&config, torus]() {
      const NetworkTopology topology =
          torus ? NetworkTopology::torus2d(3, 3, config.ports)
                : NetworkTopology::fat_tree(4, config.ports);
      Rng rng(config.seed, 7);
      CbrMixSpec mix;
      mix.target_load = 0.35;
      mix.classes = {kCbrHigh, kCbrMedium};
      mix.class_weights = {3.0, 1.0};
      return build_network_cbr_mix(config, topology, mix, rng);
    };
    const std::string tag = torus ? "torus" : "fattree";

    // Serial reference: final metrics + state hash.
    SimConfig ref_config = config;
    MmrNetworkSimulation reference(ref_config, make_net_workload());
    const NetworkMetrics ref_metrics = reference.run();
    const std::uint64_t ref_hash = reference.state_hash();

    // Checkpoint under the sharded engine...
    SimConfig ck_config = config;
    ck_config.net_threads = 2;
    ck_config.snap_spec = "every:2000,prefix:" + ::testing::TempDir() +
                          "/mmr_snap_shard_ck_" + tag;
    MmrNetworkSimulation interrupted(ck_config, make_net_workload());
    (void)interrupted.run();
    const auto paths = interrupted.snapshot_manager()->checkpoints_written();
    ASSERT_FALSE(paths.empty());

    // ...and resume under serial, 2-shard and hardware-width engines: every
    // combination must land on the serial reference bit for bit.
    for (const std::uint32_t threads : {0u, 2u, hw}) {
      SimConfig resume_config = config;
      resume_config.net_threads = threads;
      resume_config.snap_spec = "resume:" + paths[0] +
                                ",prefix:" + ::testing::TempDir() +
                                "/mmr_snap_shard_re_" + tag;
      MmrNetworkSimulation resumed(resume_config, make_net_workload());
      EXPECT_EQ(resumed.now(), 2000u);
      const NetworkMetrics resumed_metrics = resumed.run();
      EXPECT_EQ(resumed_metrics.flits_delivered, ref_metrics.flits_delivered)
          << tag << " threads=" << threads;
      EXPECT_EQ(resumed_metrics.flits_generated, ref_metrics.flits_generated);
      EXPECT_EQ(resumed_metrics.flit_delay_us.mean(),
                ref_metrics.flit_delay_us.mean());
      EXPECT_EQ(resumed_metrics.degradation.flits_dropped,
                ref_metrics.degradation.flits_dropped);
      EXPECT_EQ(resumed.state_hash(), ref_hash)
          << tag << " threads=" << threads;
    }
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace mmr
