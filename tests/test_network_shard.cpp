// Serial vs sharded network engine bit-identity (ISSUE 9 tentpole).
//
// `net_threads=` is an execution-strategy knob, not a model parameter: for
// any thread count the sharded engine must reproduce the single-threaded
// run exactly — metrics (including float accumulators, which are order-
// sensitive), the full trace event stream, and the snapshot StateHash
// sequence.  These tests drive both engines over generated torus and
// fat-tree fabrics, with and without fault injection, and compare all
// three.

#include "mmr/network/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {
namespace {

SimConfig shard_config() {
  SimConfig config;
  config.ports = 5;
  config.vcs_per_link = 32;
  config.warmup_cycles = 500;
  config.measure_cycles = 2'500;
  return config;
}

CbrMixSpec light_mix() {
  CbrMixSpec mix;
  mix.target_load = 0.35;
  mix.classes = {kCbrHigh, kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  return mix;
}

enum class Topo { kTorus, kFatTree };

NetworkWorkload make_workload(const SimConfig& config, Topo topo) {
  const NetworkTopology topology =
      topo == Topo::kTorus ? NetworkTopology::torus2d(4, 4, config.ports)
                           : NetworkTopology::fat_tree(4, config.ports);
  Rng rng(config.seed, 7);
  return build_network_cbr_mix(config, topology, light_mix(), rng);
}

struct RunResult {
  NetworkMetrics metrics;
  std::vector<std::uint64_t> hashes;  ///< StateHash every 250 early cycles
  std::vector<trace::Event> events;   ///< empty unless trace= configured
  std::uint64_t final_hash = 0;
};

RunResult run_case(SimConfig config, Topo topo, std::uint32_t net_threads) {
  config.net_threads = net_threads;
  MmrNetworkSimulation sim(config, make_workload(config, topo));
  RunResult result;
  // Hash the state every 250 cycles across the first 1000 by stepping
  // manually; run() then completes the remaining cycles and finalizes.
  while (sim.now() < 1'000) {
    for (int i = 0; i < 250; ++i) sim.step_one();
    result.hashes.push_back(sim.state_hash());
  }
  result.metrics = sim.run();
  result.final_hash = sim.state_hash();
  if (sim.tracer() != nullptr) result.events = sim.tracer()->snapshot();
  return result;
}

void expect_stats_equal(const StreamingStats& a, const StreamingStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  if (!a.empty() && !b.empty()) {
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
  }
}

void expect_bit_identical(const RunResult& serial, const RunResult& sharded) {
  EXPECT_EQ(serial.hashes, sharded.hashes);
  EXPECT_EQ(serial.final_hash, sharded.final_hash);

  const NetworkMetrics& a = serial.metrics;
  const NetworkMetrics& b = sharded.metrics;
  EXPECT_EQ(a.flits_generated, b.flits_generated);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.backlog_flits, b.backlog_flits);
  EXPECT_EQ(a.frames_completed, b.frames_completed);
  expect_stats_equal(a.flit_delay_us, b.flit_delay_us);
  expect_stats_equal(a.delivered_hops, b.delivered_hops);
  expect_stats_equal(a.frame_delay_us, b.frame_delay_us);
  EXPECT_EQ(a.router_utilization, b.router_utilization);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t i = 0; i < a.per_class.size(); ++i) {
    EXPECT_EQ(a.per_class[i].label, b.per_class[i].label);
    EXPECT_EQ(a.per_class[i].flits_generated, b.per_class[i].flits_generated);
    EXPECT_EQ(a.per_class[i].flits_delivered, b.per_class[i].flits_delivered);
    expect_stats_equal(a.per_class[i].flit_delay_us,
                       b.per_class[i].flit_delay_us);
    EXPECT_EQ(a.per_class[i].flit_delay_hist.count(),
              b.per_class[i].flit_delay_hist.count());
  }
  EXPECT_EQ(a.degradation.flits_dropped, b.degradation.flits_dropped);
  EXPECT_EQ(a.degradation.flits_corrupted, b.degradation.flits_corrupted);
  EXPECT_EQ(a.degradation.credits_lost, b.degradation.credits_lost);
  EXPECT_EQ(a.degradation.credits_restored, b.degradation.credits_restored);
  EXPECT_EQ(a.degradation.teardowns, b.degradation.teardowns);

  // Trace bytes: the staged replay must reproduce the serial emission order
  // exactly, event for event.
  ASSERT_EQ(serial.events.size(), sharded.events.size());
  for (std::size_t i = 0; i < serial.events.size(); ++i) {
    ASSERT_EQ(std::memcmp(&serial.events[i], &sharded.events[i],
                          sizeof(trace::Event)),
              0)
        << "first trace divergence at event " << i;
  }
}

TEST(NetworkShard, TorusShardedMatchesSerial) {
  const SimConfig config = shard_config();
  const RunResult serial = run_case(config, Topo::kTorus, 0);
  for (const std::uint32_t threads : {2u, 3u, 4u}) {
    const RunResult sharded = run_case(config, Topo::kTorus, threads);
    expect_bit_identical(serial, sharded);
  }
}

TEST(NetworkShard, FatTreeShardedMatchesSerial) {
  const SimConfig config = shard_config();
  const RunResult serial = run_case(config, Topo::kFatTree, 0);
  const RunResult sharded = run_case(config, Topo::kFatTree, 2);
  expect_bit_identical(serial, sharded);
}

TEST(NetworkShard, FaultInjectedTraceAndMetricsMatchSerial) {
  // Fault draws come from per-channel RNG streams owned by exactly one
  // shard, and trace events from every phase ride the staging replay — this
  // case exercises both under drop/corrupt/credit-loss noise.
  SimConfig config = shard_config();
  config.fault_spec =
      "drop:0.01,corrupt:0.005,credit_loss:0.005,"
      "resync_period:256,resync_timeout:512";
  config.trace_spec = "stream";
  const RunResult serial = run_case(config, Topo::kTorus, 0);
  const RunResult sharded = run_case(config, Topo::kTorus, 2);
  expect_bit_identical(serial, sharded);
}

TEST(NetworkShard, NetThreadsOneRunsTheSerialEngine) {
  // 1 is an alias for the serial engine (not a 1-shard parallel run), so
  // unset and 1 are trivially bit-identical.
  const SimConfig config = shard_config();
  const RunResult unset = run_case(config, Topo::kTorus, 0);
  const RunResult one = run_case(config, Topo::kTorus, 1);
  expect_bit_identical(unset, one);
}

// Satellite: NetworkMetrics per-class merging must not depend on the order
// shard results arrive in — merge_class_shards canonicalises by shard id
// and label before folding.
TEST(NetworkShard, MergeClassShardsIsCompletionOrderIndependent) {
  const auto make_class = [](const std::string& label, std::uint64_t n,
                             double base) {
    ClassMetrics cls;
    cls.label = label;
    cls.flits_generated = n + 3;
    cls.flits_delivered = n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double delay = base + 0.37 * static_cast<double>(i);
      cls.flit_delay_us.add(delay);
      cls.flit_delay_hist.add(delay);
    }
    return cls;
  };
  std::vector<std::pair<std::uint32_t, std::vector<ClassMetrics>>> shards;
  shards.emplace_back(0u, std::vector<ClassMetrics>{
                              make_class("CBR 64 Kbps", 11, 1.0),
                              make_class("VBR", 5, 9.0)});
  shards.emplace_back(1u, std::vector<ClassMetrics>{
                              make_class("VBR", 7, 2.5),
                              make_class("CBR 1.54 Mbps", 9, 0.25)});
  shards.emplace_back(2u, std::vector<ClassMetrics>{
                              make_class("CBR 64 Kbps", 4, 6.0)});

  const std::vector<ClassMetrics> reference = merge_class_shards(shards);
  ASSERT_EQ(reference.size(), 3u);
  EXPECT_EQ(reference[0].label, "CBR 1.54 Mbps");
  EXPECT_EQ(reference[1].label, "CBR 64 Kbps");
  EXPECT_EQ(reference[2].label, "VBR");
  EXPECT_EQ(reference[1].flits_delivered, 15u);
  EXPECT_EQ(reference[1].flit_delay_us.count(), 15u);

  // Every permutation of shard completion order reports byte-identically.
  std::vector<std::size_t> order = {0, 1, 2};
  do {
    std::vector<std::pair<std::uint32_t, std::vector<ClassMetrics>>> permuted;
    for (const std::size_t i : order) permuted.push_back(shards[i]);
    const std::vector<ClassMetrics> merged = merge_class_shards(permuted);
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].label, reference[i].label);
      EXPECT_EQ(merged[i].flits_generated, reference[i].flits_generated);
      EXPECT_EQ(merged[i].flits_delivered, reference[i].flits_delivered);
      EXPECT_EQ(merged[i].flit_delay_us.count(),
                reference[i].flit_delay_us.count());
      EXPECT_EQ(merged[i].flit_delay_us.mean(),
                reference[i].flit_delay_us.mean());
      EXPECT_EQ(merged[i].flit_delay_us.variance(),
                reference[i].flit_delay_us.variance());
      EXPECT_EQ(merged[i].flit_delay_hist.count(),
                reference[i].flit_delay_hist.count());
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace mmr
