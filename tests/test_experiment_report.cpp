#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "mmr/core/experiment.hpp"
#include "mmr/core/report.hpp"

namespace mmr {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.base.ports = 4;
  spec.base.vcs_per_link = 48;
  spec.base.warmup_cycles = 1'000;
  spec.base.measure_cycles = 8'000;
  spec.loads = {0.3, 0.6};
  spec.arbiters = {"coa", "wfa"};
  spec.kind = WorkloadKind::kCbr;
  spec.cbr.classes = {kCbrHigh};
  spec.cbr.class_weights = {1.0};
  spec.threads = 2;
  return spec;
}

TEST(Sweep, PointOrderIsArbiterMajorLoadAscending) {
  const SweepSpec spec = tiny_spec();
  const std::vector<SweepPoint> points = run_sweep(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].arbiter, "coa");
  EXPECT_DOUBLE_EQ(points[0].target_load, 0.3);
  EXPECT_EQ(points[1].arbiter, "coa");
  EXPECT_DOUBLE_EQ(points[1].target_load, 0.6);
  EXPECT_EQ(points[2].arbiter, "wfa");
  EXPECT_EQ(points[3].arbiter, "wfa");
  for (const SweepPoint& point : points) {
    EXPECT_EQ(point.metrics.arbiter, point.arbiter);
    EXPECT_GT(point.metrics.flits_delivered, 0u);
  }
}

TEST(Sweep, SameWorkloadAcrossArbiters) {
  const SweepSpec spec = tiny_spec();
  const Workload a = build_sweep_workload(spec, 0);
  const Workload b = build_sweep_workload(spec, 0);
  ASSERT_EQ(a.connections(), b.connections());
  for (std::size_t i = 0; i < a.connections(); ++i) {
    const auto id = static_cast<ConnectionId>(i);
    EXPECT_EQ(a.table.get(id).output_link, b.table.get(id).output_link);
    EXPECT_EQ(a.table.get(id).mean_bandwidth_bps,
              b.table.get(id).mean_bandwidth_bps);
  }
}

TEST(Sweep, ReplicationsChangeTheWorkload) {
  const SweepSpec spec = tiny_spec();
  const Workload rep0 = build_sweep_workload(spec, 0, 0);
  const Workload rep1 = build_sweep_workload(spec, 0, 1);
  bool any_difference = rep0.connections() != rep1.connections();
  const std::size_t common = std::min(rep0.connections(), rep1.connections());
  for (std::size_t i = 0; i < common && !any_difference; ++i) {
    const auto id = static_cast<ConnectionId>(i);
    any_difference |=
        rep0.table.get(id).output_link != rep1.table.get(id).output_link;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Sweep, ReplicatedPointsMergeRuns) {
  SweepSpec spec = tiny_spec();
  spec.loads = {0.4};
  spec.arbiters = {"coa"};
  spec.replications = 3;
  const std::vector<SweepPoint> points = run_sweep(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].metrics.merged_runs, 3u);
}

TEST(Sweep, ResultsIndependentOfThreadCount) {
  SweepSpec spec = tiny_spec();
  spec.threads = 1;
  const std::vector<SweepPoint> serial = run_sweep(spec);
  spec.threads = 4;
  const std::vector<SweepPoint> parallel = run_sweep(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics.flits_delivered,
              parallel[i].metrics.flits_delivered);
    EXPECT_DOUBLE_EQ(serial[i].metrics.flit_delay_us.mean(),
                     parallel[i].metrics.flit_delay_us.mean());
  }
}

// Bit-identical SweepPoint metrics between a single worker and full
// hardware concurrency, for both workload kinds.  EXPECT_EQ on the doubles
// (not EXPECT_DOUBLE_EQ / near) is deliberate: determinism here means the
// same bits, not approximately the same value.
void expect_thread_count_invariance(SweepSpec spec) {
  spec.threads = 1;
  const std::vector<SweepPoint> serial = run_sweep(spec);
  spec.threads = 0;  // 0 = hardware concurrency
  const std::vector<SweepPoint> parallel = run_sweep(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const SimulationMetrics& a = serial[i].metrics;
    const SimulationMetrics& b = parallel[i].metrics;
    EXPECT_EQ(serial[i].arbiter, parallel[i].arbiter);
    EXPECT_EQ(a.flits_generated, b.flits_generated);
    EXPECT_EQ(a.flits_delivered, b.flits_delivered);
    EXPECT_EQ(a.flit_delay_us.mean(), b.flit_delay_us.mean());
    EXPECT_EQ(a.flit_delay_us.max(), b.flit_delay_us.max());
    EXPECT_EQ(a.delivered_load, b.delivered_load);
    EXPECT_EQ(a.crossbar_utilization, b.crossbar_utilization);
  }
}

TEST(Sweep, CbrMetricsBitIdenticalAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.replications = 2;
  expect_thread_count_invariance(spec);
}

TEST(Sweep, VbrMetricsBitIdenticalAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.kind = WorkloadKind::kVbr;
  spec.replications = 2;
  expect_thread_count_invariance(spec);
}

TEST(Sweep, ValidateRejectsDuplicateLoads) {
  SweepSpec spec = tiny_spec();
  spec.loads = {0.3, 0.6, 0.6, 0.9};
  try {
    (void)run_sweep(spec);
    FAIL() << "duplicate load must throw";
  } catch (const std::invalid_argument& e) {
    // The message must name the offending entry.
    EXPECT_NE(std::string(e.what()).find("loads[2]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicates"), std::string::npos)
        << e.what();
  }
}

TEST(Sweep, ValidateRejectsNonAscendingLoads) {
  SweepSpec spec = tiny_spec();
  spec.loads = {0.6, 0.3};
  try {
    (void)run_sweep(spec);
    FAIL() << "descending loads must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("loads[1]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("ascending"), std::string::npos)
        << e.what();
  }
}

TEST(Sweep, ValidateRejectsOutOfRangeAndEmptyLoads) {
  SweepSpec spec = tiny_spec();
  spec.loads = {};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.loads = {0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.loads = {-0.5};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.loads = {2.5};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.loads = {0.3, 0.6};
  EXPECT_NO_THROW(spec.validate());
}

TEST(SaturationLoad, DetectsFirstSaturatedPoint) {
  std::vector<SweepPoint> points(3);
  for (std::size_t i = 0; i < 3; ++i) {
    points[i].arbiter = "coa";
    points[i].target_load = 0.5 + 0.1 * static_cast<double>(i);
    points[i].metrics.arbiter = "coa";
    points[i].metrics.flit_cycle_us = 1.7;
    points[i].metrics.generated_load_measured = points[i].target_load;
    points[i].metrics.delivered_load = points[i].target_load;
  }
  EXPECT_TRUE(std::isnan(saturation_load(points, "coa")));
  points[2].metrics.delivered_load = 0.5;  // big deficit at load 0.7
  EXPECT_DOUBLE_EQ(saturation_load(points, "coa"), 0.7);
  EXPECT_TRUE(std::isnan(saturation_load(points, "wfa")));
}

TEST(Report, SweepTableShapesRowsByLoadAndColumnsByArbiter) {
  std::vector<SweepPoint> points(4);
  const char* arbiters[] = {"coa", "coa", "wfa", "wfa"};
  const double loads[] = {0.3, 0.6, 0.3, 0.6};
  for (std::size_t i = 0; i < 4; ++i) {
    points[i].arbiter = arbiters[i];
    points[i].target_load = loads[i];
    points[i].metrics.delivered_load = loads[i] - 0.01;
  }
  const AsciiTable table =
      sweep_table(points, delivered_load_pct(), /*precision=*/1);
  const std::string out = table.render();
  EXPECT_NE(out.find("coa"), std::string::npos);
  EXPECT_NE(out.find("wfa"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("59.0"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);  // two loads
}

TEST(Report, MissingPointsRenderAsDash) {
  std::vector<SweepPoint> points(3);
  points[0] = {0.3, "coa", {}};
  points[1] = {0.6, "coa", {}};
  points[2] = {0.3, "wfa", {}};  // wfa @ 0.6 missing
  const AsciiTable table = sweep_table(points, delivered_load_pct());
  EXPECT_NE(table.render().find(" - "), std::string::npos);
}

TEST(Report, CsvContainsOneRowPerPoint) {
  std::vector<SweepPoint> points(2);
  points[0] = {0.3, "coa", {}};
  points[1] = {0.6, "coa", {}};
  std::ostringstream out;
  write_sweep_csv(out, points,
                  {{"delivered_pct", delivered_load_pct()},
                   {"util", crossbar_utilization_pct()}});
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 points
  EXPECT_EQ(out.str().substr(0, 28), "arbiter,target_load,delivere");
}

TEST(Report, ClassDelayExtractorHandlesMissingClass) {
  SimulationMetrics metrics;
  EXPECT_TRUE(std::isnan(class_delay_us("CBR 55 Mbps")(metrics)));
  ClassMetrics cls;
  cls.label = "CBR 55 Mbps";
  cls.flit_delay_us.add(12.0);
  metrics.per_class.push_back(cls);
  EXPECT_DOUBLE_EQ(class_delay_us("CBR 55 Mbps")(metrics), 12.0);
}

TEST(Report, FrameExtractorsHandleEmptyStats) {
  SimulationMetrics metrics;
  EXPECT_TRUE(std::isnan(frame_delay_us()(metrics)));
  EXPECT_TRUE(std::isnan(frame_jitter_us()(metrics)));
  metrics.frame_delay_us.add(100.0);
  metrics.frame_jitter_us.add(4.0);
  EXPECT_DOUBLE_EQ(frame_delay_us()(metrics), 100.0);
  EXPECT_DOUBLE_EQ(frame_jitter_us()(metrics), 4.0);
}

TEST(Report, SaturationSummaryPrints) {
  std::vector<SweepPoint> points(1);
  points[0].arbiter = "coa";
  points[0].target_load = 0.8;
  points[0].metrics.arbiter = "coa";
  points[0].metrics.generated_load_measured = 0.8;
  points[0].metrics.delivered_load = 0.6;
  std::ostringstream out;
  print_saturation_summary(out, points, {"coa", "wfa"});
  EXPECT_NE(out.str().find("coa: 80%"), std::string::npos);
  EXPECT_NE(out.str().find("wfa: not reached"), std::string::npos);
}

}  // namespace
}  // namespace mmr
