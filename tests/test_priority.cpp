#include "mmr/qos/priority.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

TEST(SiabpShift, BitwiseBoundaries) {
  // Shift count = bits of the age counter that have been set: bit_width.
  EXPECT_EQ(siabp_shift(0), 0u);
  EXPECT_EQ(siabp_shift(1), 1u);
  EXPECT_EQ(siabp_shift(2), 2u);
  EXPECT_EQ(siabp_shift(3), 2u);
  EXPECT_EQ(siabp_shift(4), 3u);
  EXPECT_EQ(siabp_shift(7), 3u);
  EXPECT_EQ(siabp_shift(8), 4u);
  EXPECT_EQ(siabp_shift(255), 8u);
  EXPECT_EQ(siabp_shift(256), 9u);
}

TEST(SiabpPriority, InitialValueIsSlotsPerRound) {
  EXPECT_EQ(siabp_priority(5, 0), 5u);
  EXPECT_EQ(siabp_priority(1, 0), 1u);
}

TEST(SiabpPriority, DoublesAtEveryNewBit) {
  EXPECT_EQ(siabp_priority(3, 1), 6u);
  EXPECT_EQ(siabp_priority(3, 2), 12u);
  EXPECT_EQ(siabp_priority(3, 3), 12u);
  EXPECT_EQ(siabp_priority(3, 4), 24u);
}

TEST(SiabpPriority, MonotoneInAgeAndSlots) {
  Priority prev = 0;
  for (std::uint64_t age = 0; age < 100000; age = age * 2 + 1) {
    const Priority p = siabp_priority(7, age);
    EXPECT_GE(p, prev);
    prev = p;
  }
  for (std::uint32_t slots = 1; slots < 100; ++slots) {
    EXPECT_GE(siabp_priority(slots + 1, 42), siabp_priority(slots, 42));
  }
}

TEST(SiabpPriority, HighBandwidthGrowsFasterInAbsoluteTerms) {
  // The paper's rationale: priority grows faster for high-bandwidth
  // connections, giving them more chances to be forwarded sooner.
  const std::uint64_t age = 1 << 10;
  const Priority low = siabp_priority(1, age);
  const Priority high = siabp_priority(24, age);
  EXPECT_EQ(high, 24 * low);
}

TEST(SiabpPriority, SaturatesInsteadOfOverflowing) {
  const Priority cap = siabp_priority(1000, ~std::uint64_t{0});
  EXPECT_EQ(cap, Priority{1} << 48);
  EXPECT_EQ(siabp_priority(1, ~std::uint64_t{0}), Priority{1} << 48);
  // Near the cap but not over.
  EXPECT_LT(siabp_priority(1, (1ull << 40) - 1), Priority{1} << 48);
}

TEST(IabpPriority, RatioOfDelayToIat) {
  // age 100, IAT 50 -> ratio 2.0 -> scaled by 2^16.
  EXPECT_EQ(iabp_priority(50.0, 100), 2u * 65536u);
}

TEST(IabpPriority, AgeZeroFloorsAtOneLikeSiabp) {
  // Regression: iabp_priority used to return ceil(0 * 65536) = 0 for age-0
  // flits, tying freshly injected QoS traffic with priority-0 best-effort
  // in mixed comparisons.  Both biasing schemes now start above zero: SIABP
  // at its reservation (slots_per_round >= 1), IABP at the floor of 1.
  EXPECT_EQ(iabp_priority(100.0, 0), 1u);
  EXPECT_EQ(iabp_priority(1e6, 0), 1u);
  EXPECT_EQ(siabp_priority(5, 0), 5u);
  EXPECT_EQ(siabp_priority(1, 0), 1u);
  // The floor never reorders positive ages (ceil already yields >= 1).
  EXPECT_EQ(iabp_priority(50.0, 100), 2u * 65536u);
  EXPECT_GE(iabp_priority(1000.0, 1), 1u);
}

TEST(IabpPriority, SubUnitRatiosStayOrdered) {
  const Priority p1 = iabp_priority(1000.0, 1);
  const Priority p2 = iabp_priority(1000.0, 2);
  EXPECT_GT(p1, 0u);  // ceil keeps tiny ratios nonzero
  EXPECT_GE(p2, p1);
}

TEST(IabpPriority, Saturates) {
  EXPECT_EQ(iabp_priority(1e-9, ~std::uint64_t{0}), Priority{1} << 48);
}

TEST(IabpPriority, EquivalentToProductFormulation) {
  // queuing_delay / IAT == queuing_delay * bandwidth_requirement (the SIABP
  // derivation); check proportionality across connections.
  const std::uint64_t age = 4096;
  const double iat_fast = 10.0;
  const double iat_slow = 1000.0;
  EXPECT_NEAR(static_cast<double>(iabp_priority(iat_fast, age)) /
                  static_cast<double>(iabp_priority(iat_slow, age)),
              iat_slow / iat_fast, 0.01);
}

TEST(PriorityFunction, DispatchesPerScheme) {
  QosParams qos;
  qos.slots_per_round = 6;
  qos.iat_router_cycles = 128.0;
  const std::uint64_t age = 256;

  EXPECT_EQ(PriorityFunction(PriorityScheme::kSiabp)(qos, age),
            siabp_priority(6, age));
  EXPECT_EQ(PriorityFunction(PriorityScheme::kIabp)(qos, age),
            iabp_priority(128.0, age));
  EXPECT_EQ(PriorityFunction(PriorityScheme::kFifoAge)(qos, age), age);
  EXPECT_EQ(PriorityFunction(PriorityScheme::kStatic)(qos, age), 6u);
}

TEST(PriorityFunction, FifoAgeIgnoresBandwidth) {
  QosParams narrow{1, 1e6};
  QosParams wide{100, 10.0};
  const PriorityFunction fifo(PriorityScheme::kFifoAge);
  EXPECT_EQ(fifo(narrow, 77), fifo(wide, 77));
}

TEST(PriorityFunction, StaticIgnoresAge) {
  QosParams qos{9, 100.0};
  const PriorityFunction fixed(PriorityScheme::kStatic);
  EXPECT_EQ(fixed(qos, 0), fixed(qos, 1 << 20));
}

TEST(PriorityFunction, SiabpApproximatesIabpOrdering) {
  // SIABP exists to replace IABP's divider while preserving the ordering
  // between a high-need aged flit and a low-need fresh one.
  QosParams high{24, 43.0};   // 55 Mbps-ish: many slots, short IAT
  QosParams low{1, 37500.0};  // 64 Kbps-ish
  const PriorityFunction siabp(PriorityScheme::kSiabp);
  const PriorityFunction iabp(PriorityScheme::kIabp);
  // Same age: both schemes must rank the high-bandwidth connection first.
  EXPECT_GT(siabp(high, 512), siabp(low, 512));
  EXPECT_GT(iabp(high, 512), iabp(low, 512));
  // Very old low-bandwidth flit eventually beats a fresh high-bandwidth one
  // in both schemes (starvation freedom).
  EXPECT_GT(siabp(low, 1ull << 30), siabp(high, 1));
  EXPECT_GT(iabp(low, 1ull << 30), iabp(high, 1));
}

TEST(SiabpPriorityDeath, RejectsZeroSlots) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)siabp_priority(0, 1), "slots");
}

}  // namespace
}  // namespace mmr
