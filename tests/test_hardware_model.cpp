#include "mmr/arbiter/hardware_model.hpp"

#include <gtest/gtest.h>

#include "mmr/arbiter/factory.hpp"

namespace mmr {
namespace {

TEST(HwBlocks, ComparatorAndAdderScaleLinearlyInArea) {
  EXPECT_DOUBLE_EQ(hw::comparator(32).gate_equivalents,
                   2 * hw::comparator(16).gate_equivalents);
  EXPECT_DOUBLE_EQ(hw::adder(32).gate_equivalents,
                   2 * hw::adder(16).gate_equivalents);
  // Delay grows logarithmically.
  EXPECT_EQ(hw::comparator(32).critical_path_gates,
            hw::comparator(16).critical_path_gates + 1);
}

TEST(HwBlocks, MaxTreeDepthIsLogarithmic) {
  const HardwareEstimate small = hw::max_tree(4, 16);
  const HardwareEstimate big = hw::max_tree(16, 16);
  EXPECT_DOUBLE_EQ(big.critical_path_gates, 2 * small.critical_path_gates);
  EXPECT_GT(big.gate_equivalents, small.gate_equivalents);
  EXPECT_DOUBLE_EQ(hw::max_tree(1, 16).gate_equivalents, 0.0);
}

TEST(HwBlocks, DividerDwarfsShifter) {
  const HardwareEstimate shifter = hw::barrel_shifter(16);
  const HardwareEstimate divider = hw::array_divider(16);
  EXPECT_GT(divider.gate_equivalents, 5 * shifter.gate_equivalents);
  EXPECT_GT(divider.critical_path_gates, 10 * shifter.critical_path_gates);
}

TEST(PriorityLogic, SiabpBeatsIabpLikeThePaper) {
  // Section 3.1: VHDL synthesis showed ~10x area and ~38x delay reduction
  // replacing the IABP divider with the SIABP shifter.  The structural
  // model should land in that order of magnitude.
  const HardwareEstimate siabp =
      estimate_priority_logic(PriorityScheme::kSiabp, 20, 16);
  const HardwareEstimate iabp =
      estimate_priority_logic(PriorityScheme::kIabp, 20, 16);
  const double area_ratio = iabp.gate_equivalents / siabp.gate_equivalents;
  const double delay_ratio =
      iabp.critical_path_gates / siabp.critical_path_gates;
  EXPECT_GT(area_ratio, 4.0);
  EXPECT_LT(area_ratio, 40.0);
  EXPECT_GT(delay_ratio, 10.0);
  EXPECT_LT(delay_ratio, 100.0);
}

TEST(PriorityLogic, OrderingAcrossSchemes) {
  const auto area = [](PriorityScheme scheme) {
    return estimate_priority_logic(scheme, 20, 16).gate_equivalents;
  };
  EXPECT_LT(area(PriorityScheme::kStatic), area(PriorityScheme::kFifoAge));
  EXPECT_LT(area(PriorityScheme::kFifoAge), area(PriorityScheme::kSiabp));
  EXPECT_LT(area(PriorityScheme::kSiabp), area(PriorityScheme::kIabp));
}

TEST(ArbiterModel, EveryRegisteredArbiterHasAnEstimate) {
  for (const std::string& name : arbiter_names()) {
    const HardwareEstimate estimate = estimate_arbiter(name, 4, 4, 16);
    EXPECT_GT(estimate.gate_equivalents, 0.0) << name;
    EXPECT_GT(estimate.critical_path_gates, 0.0) << name;
  }
  EXPECT_THROW((void)estimate_arbiter("bogus", 4, 4, 16),
               std::invalid_argument);
}

TEST(ArbiterModel, OnlyMaxMatchIsInfeasibleAtLineRate) {
  for (const std::string& name : arbiter_names()) {
    const HardwareEstimate estimate = estimate_arbiter(name, 8, 4, 16);
    EXPECT_EQ(estimate.line_rate_feasible, name != "maxmatch") << name;
  }
}

TEST(ArbiterModel, WfaIsTheAreaBaseline) {
  // The paper picks WFA partly for hardware cost: it must undercut COA and
  // the sorting-based greedy scheme in area at equal ports.
  const double wfa = estimate_arbiter("wfa", 8, 4, 16).gate_equivalents;
  const double coa = estimate_arbiter("coa", 8, 4, 16).gate_equivalents;
  const double greedy = estimate_arbiter("greedy", 8, 4, 16).gate_equivalents;
  EXPECT_LT(wfa, coa);
  EXPECT_LT(wfa, greedy);
}

TEST(ArbiterModel, WrappedWfaIsFasterThanPlain) {
  const HardwareEstimate plain = estimate_arbiter("wfa", 16, 4, 16);
  const HardwareEstimate wrapped = estimate_arbiter("wwfa", 16, 4, 16);
  EXPECT_LT(wrapped.critical_path_gates, plain.critical_path_gates);
}

TEST(ArbiterModel, AreaGrowsWithPorts) {
  for (const char* name : {"coa", "wfa", "islip", "pim", "greedy"}) {
    const double small = estimate_arbiter(name, 4, 4, 16).gate_equivalents;
    const double big = estimate_arbiter(name, 16, 4, 16).gate_equivalents;
    EXPECT_GT(big, small) << name;
  }
}

TEST(ArbiterModel, SingleIterationVariantsAreFaster) {
  EXPECT_LT(estimate_arbiter("islip1", 8, 4, 16).critical_path_gates,
            estimate_arbiter("islip", 8, 4, 16).critical_path_gates);
  EXPECT_LT(estimate_arbiter("pim1", 8, 4, 16).critical_path_gates,
            estimate_arbiter("pim", 8, 4, 16).critical_path_gates);
}

TEST(ArbiterModel, EstimatesCompose) {
  const HardwareEstimate a{10.0, 2.0, true};
  const HardwareEstimate b{5.0, 3.0, false};
  const HardwareEstimate sum = a + b;
  EXPECT_DOUBLE_EQ(sum.gate_equivalents, 15.0);
  EXPECT_DOUBLE_EQ(sum.critical_path_gates, 5.0);
  EXPECT_FALSE(sum.line_rate_feasible);
}

}  // namespace
}  // namespace mmr
