#include <gtest/gtest.h>

#include "mmr/router/credits.hpp"
#include "mmr/router/link.hpp"

namespace mmr {
namespace {

TEST(Credits, StartFull) {
  CreditManager credits(4, 2, 1);
  for (std::uint32_t vc = 0; vc < 4; ++vc) {
    EXPECT_EQ(credits.credits(vc), 2u);
    EXPECT_TRUE(credits.has_credit(vc));
  }
  credits.check_invariants();
}

TEST(Credits, ConsumeDecrements) {
  CreditManager credits(2, 2, 1);
  credits.consume(0);
  EXPECT_EQ(credits.credits(0), 1u);
  credits.consume(0);
  EXPECT_EQ(credits.credits(0), 0u);
  EXPECT_FALSE(credits.has_credit(0));
  EXPECT_EQ(credits.credits(1), 2u);
}

TEST(Credits, ReleaseTakesEffectAfterLatency) {
  CreditManager credits(2, 2, /*latency=*/3);
  credits.consume(0);
  credits.release(0, /*now=*/10);
  EXPECT_EQ(credits.in_flight(), 1u);
  credits.tick(12);  // not yet (ready at 13)
  EXPECT_EQ(credits.credits(0), 1u);
  credits.tick(13);
  EXPECT_EQ(credits.credits(0), 2u);
  EXPECT_EQ(credits.in_flight(), 0u);
}

TEST(Credits, ZeroLatencyReturnsImmediately) {
  CreditManager credits(1, 1, 0);
  credits.consume(0);
  credits.release(0, 5);
  credits.tick(5);
  EXPECT_EQ(credits.credits(0), 1u);
}

TEST(Credits, MultipleReturnsDrainInOrder) {
  CreditManager credits(1, 3, 2);
  credits.consume(0);
  credits.consume(0);
  credits.consume(0);
  credits.release(0, 1);
  credits.release(0, 2);
  credits.release(0, 5);
  credits.tick(4);  // releases at 3 and 4 have landed
  EXPECT_EQ(credits.credits(0), 2u);
  credits.tick(7);
  EXPECT_EQ(credits.credits(0), 3u);
  credits.check_invariants();
}

TEST(CreditsDeath, ConsumeWithoutCreditAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 1, 1);
  credits.consume(0);
  EXPECT_DEATH(credits.consume(0), "without a credit");
}

TEST(CreditsDeath, OverReturnAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 1, 0);
  credits.release(0, 1);  // nothing was consumed
  EXPECT_DEATH(credits.tick(1), "beyond buffer capacity");
}

TEST(LinkPipeline, DeliversAfterLatency) {
  LinkPipeline link(2);
  LinkTransfer transfer;
  transfer.vc = 5;
  transfer.flit.seq = 9;
  link.push(transfer, /*now=*/10);
  std::vector<LinkTransfer> out;
  link.pop_due(11, out);
  EXPECT_TRUE(out.empty());
  link.pop_due(12, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vc, 5u);
  EXPECT_EQ(out[0].flit.seq, 9u);
  EXPECT_EQ(link.carried(), 1u);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(LinkPipeline, PreservesOrder) {
  LinkPipeline link(1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    LinkTransfer transfer;
    transfer.flit.seq = i;
    link.push(transfer, 10 + i);
  }
  std::vector<LinkTransfer> out;
  link.pop_due(100, out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].flit.seq, i);
}

TEST(LinkPipeline, ZeroLatencyDeliversSameCycle) {
  LinkPipeline link(0);
  link.push(LinkTransfer{}, 7);
  std::vector<LinkTransfer> out;
  link.pop_due(7, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(LinkPipelineDeath, OnePushPerCycleEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LinkPipeline link(1);
  link.push(LinkTransfer{}, 4);
  EXPECT_DEATH(link.push(LinkTransfer{}, 4), "one flit per cycle");
}

TEST(LinkPipelineDeath, DoublePushMessageNamesBothCycles) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LinkPipeline link(1);
  link.push(LinkTransfer{}, 42);
  // The contract violation message must say which cycle pushed and which
  // earlier push it collided with.
  EXPECT_DEATH(link.push(LinkTransfer{}, 42),
               "cycle 42 pushed again after a push at cycle 42");
  LinkPipeline rewind(1);
  rewind.push(LinkTransfer{}, 7);
  EXPECT_DEATH(rewind.push(LinkTransfer{}, 3),
               "cycle 3 pushed again after a push at cycle 7");
}

TEST(LinkPipelineDeath, PopDueTimesMustNotDecrease) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LinkPipeline link(1);
  std::vector<LinkTransfer> out;
  link.pop_due(9, out);
  EXPECT_DEATH(link.pop_due(5, out),
               "pop_due times must not decrease: cycle 5 after a pop at "
               "cycle 9");
}

TEST(LinkPipeline, InFlightCountsPending) {
  LinkPipeline link(5);
  link.push(LinkTransfer{}, 0);
  link.push(LinkTransfer{}, 1);
  EXPECT_EQ(link.in_flight(), 2u);
  std::vector<LinkTransfer> out;
  link.pop_due(5, out);
  EXPECT_EQ(link.in_flight(), 1u);
}

TEST(LinkPipeline, DrainByVcRemovesOnlyThatVc) {
  LinkPipeline link(10);
  for (std::uint32_t i = 0; i < 6; ++i) {
    LinkTransfer transfer;
    transfer.vc = i % 2;
    link.push(transfer, i);
  }
  EXPECT_EQ(link.in_flight_on_vc(0), 3u);
  EXPECT_EQ(link.in_flight_on_vc(1), 3u);
  EXPECT_EQ(link.drain_vc(0), 3u);
  EXPECT_EQ(link.in_flight_on_vc(0), 0u);
  EXPECT_EQ(link.in_flight_on_vc(1), 3u);
  EXPECT_EQ(link.drain_all(), 3u);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(Credits, PendingForTracksPerVcReturns) {
  CreditManager credits(2, 3, 4);
  credits.consume(0);
  credits.consume(0);
  credits.consume(1);
  credits.release(0, 1);
  credits.release(1, 1);
  credits.release(0, 2);
  EXPECT_EQ(credits.pending_for(0), 2u);
  EXPECT_EQ(credits.pending_for(1), 1u);
  credits.tick(10);
  EXPECT_EQ(credits.pending_for(0), 0u);
  EXPECT_EQ(credits.pending_for(1), 0u);
}

TEST(Credits, RestoreRecreatesLeakedCredits) {
  CreditManager credits(1, 2, 1);
  credits.consume(0);
  credits.consume(0);  // both flits will be "lost": no release ever arrives
  EXPECT_EQ(credits.credits(0), 0u);
  credits.restore(0, 2);
  EXPECT_EQ(credits.credits(0), 2u);
  credits.check_invariants();
}

TEST(CreditsDeath, RestoreBeyondCapacityAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 2, 1);
  credits.consume(0);
  EXPECT_DEATH(credits.restore(0, 2), "exceed the per-VC credit budget");
}

TEST(CreditsDeath, RestoreWhilePendingCountsInFlightReturns) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A credit still travelling back is part of the budget: restoring it a
  // second time would mint a credit out of thin air once the return lands.
  CreditManager credits(1, 2, 4);
  credits.consume(0);
  credits.consume(0);
  credits.release(0, 1);  // in flight until cycle 5, not yet granted
  EXPECT_EQ(credits.pending_for(0), 1u);
  credits.restore(0, 1);  // the one genuinely lost credit: fine
  EXPECT_DEATH(credits.restore(0, 1), "exceed the per-VC credit budget");
}

TEST(CreditsDeath, ReleaseTimeOrderEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 2, 3);
  credits.consume(0);
  credits.consume(0);
  credits.release(0, 10);
  EXPECT_DEATH(credits.release(0, 5),
               "credit releases must be issued in time order");
}

TEST(Credits, ReclaimParksAvailableCredits) {
  // The CICQ base regime: park all but one credit per crosspoint at
  // construction, hand them back (restore) when a burst is detected.
  CreditManager credits(2, 4, 1);
  credits.reclaim(0, 3);
  EXPECT_EQ(credits.credits(0), 1u);
  EXPECT_EQ(credits.credits(1), 4u);
  credits.check_invariants();
  credits.restore(0, 3);
  EXPECT_EQ(credits.credits(0), 4u);
  credits.check_invariants();
}

TEST(Credits, ReclaimRestoreRoundTripWithInFlightReturns) {
  // Burst deactivation happens only when every credit is home; this pins
  // the interaction the stabilization protocol relies on: a restore while
  // a return is still in flight must respect the full budget, and a
  // reclaim can only take credits that are actually available.
  CreditManager credits(1, 3, 4);
  credits.reclaim(0, 2);  // base regime: one credit exposed
  credits.consume(0);
  credits.release(0, 1);  // in flight until cycle 5
  EXPECT_EQ(credits.credits(0), 0u);
  EXPECT_EQ(credits.pending_for(0), 1u);
  credits.restore(0, 2);  // burst: unlock the parked depth
  EXPECT_EQ(credits.credits(0), 2u);
  credits.check_invariants();
  credits.tick(5);  // the in-flight return lands on top of the unlocked pool
  EXPECT_EQ(credits.credits(0), 3u);
  credits.check_invariants();
  credits.reclaim(0, 2);  // burst drained: park the extra depth again
  EXPECT_EQ(credits.credits(0), 1u);
  credits.check_invariants();
}

TEST(CreditsDeath, RestoreOnTopOfInFlightReturnCannotMint) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 3, 4);
  credits.reclaim(0, 2);
  credits.consume(0);
  credits.release(0, 1);
  // 0 held + 1 pending + 3 restored would exceed the 3-credit budget.
  EXPECT_DEATH(credits.restore(0, 3), "exceed the per-VC credit budget");
}

TEST(CreditsDeath, ReclaimOfUnavailableCreditsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CreditManager credits(1, 2, 1);
  credits.consume(0);
  EXPECT_DEATH(credits.reclaim(0, 2),
               "credits that are not currently available");
}

}  // namespace
}  // namespace mmr
