#include "mmr/core/metrics.hpp"

#include <gtest/gtest.h>

namespace mmr {
namespace {

ConnectionDescriptor descriptor(TrafficClass cls, double bps) {
  ConnectionDescriptor c;
  c.traffic_class = cls;
  c.mean_bandwidth_bps = bps;
  c.peak_bandwidth_bps = bps;
  return c;
}

TEST(ClassLabel, NamesThePaperClasses) {
  EXPECT_EQ(class_label(descriptor(TrafficClass::kCbr, 64e3)),
            "CBR 64 Kbps");
  EXPECT_EQ(class_label(descriptor(TrafficClass::kCbr, 1.54e6)),
            "CBR 1.54 Mbps");
  EXPECT_EQ(class_label(descriptor(TrafficClass::kCbr, 55e6)),
            "CBR 55 Mbps");
  EXPECT_EQ(class_label(descriptor(TrafficClass::kVbr, 12e6)), "VBR");
  EXPECT_EQ(class_label(descriptor(TrafficClass::kBestEffort, 1e6)), "BE");
}

TEST(ClassLabel, FormatsUnknownCbrRates) {
  EXPECT_EQ(class_label(descriptor(TrafficClass::kCbr, 10e6)),
            "CBR 10 Mbps");
}

TEST(SimulationMetrics, FindClass) {
  SimulationMetrics m;
  ClassMetrics cls;
  cls.label = "VBR";
  m.per_class.push_back(cls);
  EXPECT_NE(m.find_class("VBR"), nullptr);
  EXPECT_EQ(m.find_class("BE"), nullptr);
}

TEST(SimulationMetrics, SaturationHeuristics) {
  SimulationMetrics m;
  m.flit_cycle_us = 1.7067;
  m.generated_load_measured = 0.80;
  m.delivered_load = 0.80;
  EXPECT_FALSE(m.saturated());
  m.delivered_load = 0.75;  // measurable deficit
  EXPECT_TRUE(m.saturated());
  m.delivered_load = 0.7999;  // within tolerance
  EXPECT_FALSE(m.saturated());
  // Exploded delays also count as saturation.
  for (int i = 0; i < 10; ++i) m.flit_delay_us.add(10'000.0);
  EXPECT_TRUE(m.saturated());
}

TEST(MergeRuns, SingleRunIsIdentity) {
  SimulationMetrics run;
  run.arbiter = "coa";
  run.delivered_load = 0.5;
  run.flits_delivered = 100;
  const SimulationMetrics merged = merge_runs({run});
  EXPECT_EQ(merged.merged_runs, 1u);
  EXPECT_DOUBLE_EQ(merged.delivered_load, 0.5);
}

TEST(MergeRuns, AveragesRatiosAndPoolsSamples) {
  SimulationMetrics a;
  a.arbiter = "coa";
  a.delivered_load = 0.4;
  a.crossbar_utilization = 0.4;
  a.flits_delivered = 10;
  a.flit_delay_us.add(10.0);
  ClassMetrics cls_a;
  cls_a.label = "VBR";
  cls_a.flits_delivered = 10;
  cls_a.flit_delay_us.add(10.0);
  a.per_class.push_back(cls_a);

  SimulationMetrics b = a;
  b.delivered_load = 0.6;
  b.crossbar_utilization = 0.6;
  b.flit_delay_us.reset();
  b.flit_delay_us.add(30.0);
  b.per_class[0].flit_delay_us.reset();
  b.per_class[0].flit_delay_us.add(30.0);

  const SimulationMetrics merged = merge_runs({a, b});
  EXPECT_EQ(merged.merged_runs, 2u);
  EXPECT_DOUBLE_EQ(merged.delivered_load, 0.5);
  EXPECT_DOUBLE_EQ(merged.crossbar_utilization, 0.5);
  EXPECT_EQ(merged.flits_delivered, 20u);
  EXPECT_DOUBLE_EQ(merged.flit_delay_us.mean(), 20.0);
  ASSERT_EQ(merged.per_class.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.per_class[0].flit_delay_us.mean(), 20.0);
  EXPECT_EQ(merged.per_class[0].flits_delivered, 20u);
}

TEST(MergeRuns, UnionsDistinctClasses) {
  SimulationMetrics a;
  a.arbiter = "wfa";
  ClassMetrics cls_a;
  cls_a.label = "CBR 55 Mbps";
  a.per_class.push_back(cls_a);
  SimulationMetrics b;
  b.arbiter = "wfa";
  ClassMetrics cls_b;
  cls_b.label = "VBR";
  b.per_class.push_back(cls_b);
  const SimulationMetrics merged = merge_runs({a, b});
  EXPECT_EQ(merged.per_class.size(), 2u);
}

TEST(MergeRuns, ThreeWayAverageIsUniform) {
  std::vector<SimulationMetrics> runs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    runs[i].arbiter = "coa";
    runs[i].delivered_load = 0.3 * static_cast<double>(i + 1);
  }
  const SimulationMetrics merged = merge_runs(runs);
  EXPECT_NEAR(merged.delivered_load, 0.6, 1e-12);
  EXPECT_EQ(merged.merged_runs, 3u);
}

TEST(MergeRunsDeath, RejectsMixedArbiters) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimulationMetrics a;
  a.arbiter = "coa";
  SimulationMetrics b;
  b.arbiter = "wfa";
  EXPECT_DEATH((void)merge_runs({a, b}), "same arbiter");
}

}  // namespace
}  // namespace mmr
