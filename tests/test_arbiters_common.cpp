// Properties every switch arbiter must satisfy, checked across the whole
// registry with parameterized tests (TEST_P).

#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/factory.hpp"
#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/verify.hpp"

namespace mmr {
namespace {

class ArbiterProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
 protected:
  [[nodiscard]] std::string name() const { return std::get<0>(GetParam()); }
  [[nodiscard]] std::uint32_t ports() const { return std::get<1>(GetParam()); }
  [[nodiscard]] std::unique_ptr<SwitchArbiter> make() const {
    return make_arbiter(name(), ports(), Rng(0x5EED, 0xCAFE));
  }
};

TEST_P(ArbiterProperty, EmptyCandidateSetYieldsEmptyMatching) {
  auto arbiter = make();
  const CandidateSet set(ports(), 4);
  const Matching matching = arbiter->arbitrate(set);
  EXPECT_EQ(matching.size(), 0u);
  EXPECT_TRUE(check_matching(set, matching).valid);
}

TEST_P(ArbiterProperty, SingleCandidateIsGranted) {
  auto arbiter = make();
  CandidateSet set(ports(), 4);
  Candidate c;
  c.input = static_cast<std::uint16_t>(1 % ports());
  c.output = static_cast<std::uint16_t>(ports() - 1);
  c.level = 0;
  c.priority = 5;
  set.add(c);
  const Matching matching = arbiter->arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_EQ(matching.output_of(c.input),
            static_cast<std::int32_t>(c.output));
  EXPECT_TRUE(check_matching(set, matching).valid);
}

TEST_P(ArbiterProperty, PermutationRequestsAreFullyMatched) {
  auto arbiter = make();
  for (std::uint32_t shift = 0; shift < ports(); ++shift) {
    const CandidateSet set = test::permutation_candidates(ports(), shift);
    const Matching matching = arbiter->arbitrate(set);
    EXPECT_EQ(matching.size(), ports()) << "shift " << shift;
    EXPECT_TRUE(check_matching(set, matching).valid);
  }
}

TEST_P(ArbiterProperty, RandomSetsProduceValidMatchings) {
  auto arbiter = make();
  Rng rng(0x1234, ports());
  for (int trial = 0; trial < 500; ++trial) {
    const CandidateSet set = test::random_candidates(ports(), 4, 0.8, rng);
    const Matching matching = arbiter->arbitrate(set);
    const MatchingCheck check = check_matching(set, matching);
    EXPECT_TRUE(check.valid) << check.problem << " (trial " << trial << ")";
  }
}

TEST_P(ArbiterProperty, NeverExceedsMaximumMatching) {
  auto arbiter = make();
  Rng rng(0x4321, ports());
  MaxMatchArbiter oracle(ports());
  for (int trial = 0; trial < 200; ++trial) {
    const CandidateSet set = test::random_candidates(ports(), 4, 0.8, rng);
    const Matching matching = arbiter->arbitrate(set);
    const Matching best = oracle.arbitrate(set);
    EXPECT_LE(matching.size(), best.size()) << "trial " << trial;
  }
}

TEST_P(ArbiterProperty, FullContentionGrantsExactlyOne) {
  auto arbiter = make();
  const CandidateSet set = test::contention_candidates(ports(), 0);
  const Matching matching = arbiter->arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_TRUE(matching.output_matched(0));
  EXPECT_TRUE(check_matching(set, matching).valid);
}

TEST_P(ArbiterProperty, DeterministicGivenSameConstructionAndInputs) {
  auto a = make();
  auto b = make();
  Rng rng(0x7777, ports());
  for (int trial = 0; trial < 50; ++trial) {
    const CandidateSet set = test::random_candidates(ports(), 4, 0.7, rng);
    const Matching ma = a->arbitrate(set);
    const Matching mb = b->arbitrate(set);
    for (std::uint32_t input = 0; input < ports(); ++input) {
      EXPECT_EQ(ma.output_of(input), mb.output_of(input));
      EXPECT_EQ(ma.candidate_of(input), mb.candidate_of(input));
    }
  }
}

TEST_P(ArbiterProperty, NameMatchesRegistryName) {
  EXPECT_EQ(make()->name(), name());
}

std::vector<std::tuple<std::string, std::uint32_t>> all_params() {
  std::vector<std::tuple<std::string, std::uint32_t>> params;
  for (const std::string& name : arbiter_names()) {
    for (std::uint32_t ports : {2u, 4u, 8u, 16u}) {
      params.emplace_back(name, ports);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllArbiters, ArbiterProperty, ::testing::ValuesIn(all_params()),
    [](const ::testing::TestParamInfo<ArbiterProperty::ParamType>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" +
                         std::to_string(std::get<1>(param_info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';  // gtest names must be identifiers
      }
      return name;
    });

TEST(ArbiterFactory, UnknownNameThrowsWithSuggestions) {
  try {
    (void)make_arbiter("nope", 4, Rng(1, 1));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    EXPECT_NE(what.find("coa"), std::string::npos);
    EXPECT_NE(what.find("wfa"), std::string::npos);
  }
}

TEST(ArbiterFactory, RegistryListsEveryConstructibleArbiter) {
  for (const std::string& name : arbiter_names()) {
    EXPECT_NE(make_arbiter(name, 4, Rng(1, 2)), nullptr) << name;
  }
}

// Maximality: these arbiters leave no grantable request ungranted by
// construction (a defining property the paper leans on for WFA; COA also
// keeps matching until no request has both endpoints free).  iSLIP/PIM are
// only probabilistically maximal at their default iteration counts, so they
// are excluded.
class MaximalArbiter : public ::testing::TestWithParam<std::string> {};

TEST_P(MaximalArbiter, ProducesMaximalMatchings) {
  auto arbiter = make_arbiter(GetParam(), 8, Rng(0xFEED, 1));
  Rng rng(0x8888, 8);
  for (int trial = 0; trial < 300; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.8, rng);
    const Matching matching = arbiter->arbitrate(set);
    EXPECT_TRUE(is_maximal(set, matching)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(MaximalByConstruction, MaximalArbiter,
                         ::testing::Values("coa", "coa-np", "wfa", "wfa-scan",
                                           "wfa-fixed", "wwfa", "greedy",
                                           "maxmatch"));

}  // namespace
}  // namespace mmr
