#include "mmr/network/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmr {
namespace {

SimConfig net_config() {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 160;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 20'000;
  return config;
}

CbrMixSpec fat_mix(double load) {
  CbrMixSpec spec;
  spec.target_load = load;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {4.0, 1.0};
  return spec;
}

NetworkWorkload ring_workload(const SimConfig& config, std::uint32_t routers,
                              double load, std::uint64_t seed) {
  const NetworkTopology ring =
      NetworkTopology::bidirectional_ring(routers, config.ports);
  Rng rng(seed, seed);
  return build_network_cbr_mix(config, ring, fat_mix(load), rng);
}

TEST(FaultNetwork, EmptyPlanIsBitIdenticalToNoPlan) {
  const SimConfig config = net_config();
  auto run = [&](bool install_empty_plan) {
    MmrNetworkSimulation simulation(config, ring_workload(config, 4, 0.4, 21));
    if (install_empty_plan) simulation.set_fault_plan(FaultPlan{});
    return simulation.run();
  };
  const NetworkMetrics base = run(false);
  const NetworkMetrics with_plan = run(true);
  EXPECT_FALSE(base.degradation.enabled);
  EXPECT_FALSE(with_plan.degradation.enabled);
  EXPECT_EQ(base.flits_generated, with_plan.flits_generated);
  EXPECT_EQ(base.flits_delivered, with_plan.flits_delivered);
  EXPECT_EQ(base.backlog_flits, with_plan.backlog_flits);
  EXPECT_DOUBLE_EQ(base.flit_delay_us.mean(), with_plan.flit_delay_us.mean());
  EXPECT_DOUBLE_EQ(base.flit_delay_us.max(), with_plan.flit_delay_us.max());
  ASSERT_EQ(base.per_class.size(), with_plan.per_class.size());
  for (std::size_t i = 0; i < base.per_class.size(); ++i) {
    EXPECT_EQ(base.per_class[i].flits_delivered,
              with_plan.per_class[i].flits_delivered);
    EXPECT_DOUBLE_EQ(base.per_class[i].flit_delay_us.mean(),
                     with_plan.per_class[i].flit_delay_us.mean());
  }
  EXPECT_EQ(with_plan.degradation.flits_dropped, 0u);
  EXPECT_EQ(with_plan.degradation.teardowns, 0u);
}

TEST(FaultNetwork, FaultSpecConfigKeyInstallsThePlan) {
  SimConfig config = net_config();
  config.fault_spec = "drop:0.01,resync_period:256,resync_timeout:512";
  MmrNetworkSimulation simulation(config, ring_workload(config, 3, 0.3, 22));
  const NetworkMetrics metrics = simulation.run();
  EXPECT_TRUE(metrics.degradation.enabled);
  EXPECT_GT(metrics.degradation.flits_dropped, 0u);
}

TEST(FaultNetwork, DropPlanLeaksCreditsAndWatchdogRestoresThem) {
  const SimConfig config = net_config();
  MmrNetworkSimulation simulation(config, ring_workload(config, 4, 0.4, 23));
  FaultPlan plan;
  plan.default_rates.drop_probability = 0.01;
  plan.resync_period = 256;
  plan.resync_timeout = 512;
  simulation.set_fault_plan(plan);
  const NetworkMetrics metrics = simulation.run();
  simulation.check_invariants();

  const DegradationMetrics& deg = metrics.degradation;
  EXPECT_TRUE(deg.enabled);
  EXPECT_GT(deg.flits_dropped, 0u);
  // Every dropped flit leaked one consumed credit; the watchdog must have
  // healed them (up to leaks younger than the timeout at run end).
  EXPECT_GT(deg.credits_restored, 0u);
  EXPECT_GT(deg.resync_events, 0u);
  EXPECT_LE(deg.credits_restored, deg.flits_dropped);
  EXPECT_FALSE(deg.recovery_latency_us.empty());
  // Losses show up as imperfect survival, not as a stall: traffic flowed.
  EXPECT_GT(metrics.flits_delivered, 1000u);
  EXPECT_LT(metrics.flits_delivered, metrics.flits_generated);
  bool some_class_lost_flits = false;
  for (const ClassMetrics& cls : metrics.per_class) {
    const double survival = survival_rate(cls);
    EXPECT_LE(survival, 1.0);
    if (survival < 1.0) some_class_lost_flits = true;
  }
  EXPECT_TRUE(some_class_lost_flits);
}

TEST(FaultNetwork, CorruptAndCreditLossAreCountedSeparately) {
  const SimConfig config = net_config();
  MmrNetworkSimulation simulation(config, ring_workload(config, 3, 0.4, 24));
  FaultPlan plan;
  plan.default_rates.corrupt_probability = 0.005;
  plan.default_rates.credit_loss_probability = 0.005;
  plan.resync_period = 256;
  plan.resync_timeout = 512;
  simulation.set_fault_plan(plan);
  const NetworkMetrics metrics = simulation.run();
  simulation.check_invariants();
  EXPECT_GT(metrics.degradation.flits_corrupted, 0u);
  EXPECT_GT(metrics.degradation.credits_lost, 0u);
  EXPECT_EQ(metrics.degradation.flits_dropped, 0u);
  EXPECT_GT(metrics.degradation.credits_restored, 0u);
  EXPECT_GT(metrics.flits_delivered, 1000u);
}

TEST(FaultNetwork, NonZeroPlanIsDeterministicForAFixedSeed) {
  const SimConfig config = net_config();
  auto run = [&] {
    MmrNetworkSimulation simulation(config,
                                    ring_workload(config, 4, 0.4, 25));
    FaultPlan plan;
    plan.default_rates.drop_probability = 0.005;
    plan.default_rates.credit_loss_probability = 0.002;
    plan.resync_period = 256;
    plan.resync_timeout = 512;
    plan.seed = 99;
    simulation.set_fault_plan(plan);
    return simulation.run();
  };
  const NetworkMetrics a = run();
  const NetworkMetrics b = run();
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.degradation.flits_dropped, b.degradation.flits_dropped);
  EXPECT_EQ(a.degradation.credits_lost, b.degradation.credits_lost);
  EXPECT_EQ(a.degradation.credits_restored, b.degradation.credits_restored);
  EXPECT_DOUBLE_EQ(a.flit_delay_us.mean(), b.flit_delay_us.mean());
}

TEST(FaultNetwork, RingRoutesAroundAnOutage) {
  const SimConfig config = net_config();
  MmrNetworkSimulation simulation(config, ring_workload(config, 4, 0.3, 26));

  // Cut one directed ring channel mid-run; the ring's other direction
  // provides the next shortest path, so connections survive by rerouting.
  std::int32_t victim = -1;
  for (std::uint32_t port = 0; port < config.ports && victim == -1; ++port) {
    victim = simulation.channel_at(0, port);
  }
  ASSERT_NE(victim, -1);
  FaultPlan plan;
  plan.down_windows.push_back(
      {static_cast<std::uint32_t>(victim), 8'000, 14'000});
  simulation.set_fault_plan(plan);

  const NetworkMetrics metrics = simulation.run();
  simulation.check_invariants();
  const DegradationMetrics& deg = metrics.degradation;
  EXPECT_GT(deg.teardowns, 0u);
  EXPECT_EQ(deg.reroutes, deg.teardowns);  // the ring always has a detour
  EXPECT_EQ(deg.connections_lost, 0u);
  EXPECT_GT(deg.flits_flushed, 0u);  // teardown flushed in-transit flits
  // Deliveries happened both during and outside the outage window, and the
  // two tallies partition the delivered count.
  EXPECT_GT(deg.delivered_during_fault, 0u);
  EXPECT_GT(deg.delivered_outside_fault, 0u);
  EXPECT_EQ(deg.delivered_during_fault + deg.delivered_outside_fault,
            metrics.flits_delivered);
  EXPECT_GT(metrics.flits_delivered, 1000u);
}

TEST(FaultNetwork, LineCutDropsGracefullyAndReadmitsWhenTheLinkReturns) {
  SimConfig config = net_config();
  const NetworkTopology line = NetworkTopology::line(2, config.ports);
  Rng rng(27, 27);
  NetworkWorkload workload =
      build_network_cbr_mix(config, line, fat_mix(0.3), rng);
  MmrNetworkSimulation simulation(config, std::move(workload));

  // Cut every channel leaving router 0 (on a 2-router line they all reach
  // router 1): traffic 0 -> 1 has no detour and must be dropped gracefully,
  // then re-admitted when the window ends.
  FaultPlan plan;
  for (std::uint32_t port = 0; port < config.ports; ++port) {
    const std::int32_t channel = simulation.channel_at(0, port);
    if (channel != -1) {
      plan.down_windows.push_back(
          {static_cast<std::uint32_t>(channel), 6'000, 12'000});
    }
  }
  ASSERT_FALSE(plan.down_windows.empty());
  simulation.set_fault_plan(plan);

  const NetworkMetrics metrics = simulation.run();
  simulation.check_invariants();
  const DegradationMetrics& deg = metrics.degradation;
  EXPECT_GT(deg.teardowns, 0u);
  EXPECT_EQ(deg.reroutes, 0u);  // a cut line has no alternative path
  EXPECT_GT(deg.readmissions, 0u);
  EXPECT_EQ(deg.readmissions, deg.teardowns);
  EXPECT_EQ(deg.connections_lost, 0u);
  // Disconnected sources kept producing into the void...
  EXPECT_GT(deg.source_flits_discarded, 0u);
  // ...and each outage contributed a recovery-latency sample covering the
  // whole window (6000 cycles minimum).
  ASSERT_FALSE(deg.recovery_latency_us.empty());
  const TimeBase tb = config.time_base();
  EXPECT_GE(deg.recovery_latency_us.max(), tb.cycles_to_us(6'000.0) * 0.99);
  // Traffic flowed again after re-admission.
  EXPECT_GT(metrics.flits_delivered, 1000u);
}

TEST(FaultNetwork, QosViolationsAreWorseDuringHeavyFaults) {
  const SimConfig config = net_config();
  MmrNetworkSimulation simulation(config, ring_workload(config, 4, 0.5, 28));
  std::int32_t victim = -1;
  for (std::uint32_t port = 0; port < config.ports && victim == -1; ++port) {
    victim = simulation.channel_at(1, port);
  }
  ASSERT_NE(victim, -1);
  FaultPlan plan;
  plan.down_windows.push_back(
      {static_cast<std::uint32_t>(victim), 6'000, 16'000});
  plan.qos_deadline_cycles = 100.0;
  simulation.set_fault_plan(plan);
  const NetworkMetrics metrics = simulation.run();
  const DegradationMetrics& deg = metrics.degradation;
  ASSERT_GT(deg.delivered_during_fault, 0u);
  ASSERT_GT(deg.delivered_outside_fault, 0u);
  // Rerouted connections take longer detours and queues back up behind the
  // outage: the violation rate during the fault window must not be better
  // than in calm conditions.
  EXPECT_GE(deg.violation_rate_during_fault(),
            deg.violation_rate_outside_fault());
}

TEST(FaultNetworkDeath, PlanInstallAfterRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig config = net_config();
  config.warmup_cycles = 10;
  config.measure_cycles = 10;
  MmrNetworkSimulation simulation(config, ring_workload(config, 3, 0.1, 29));
  (void)simulation.run();
  EXPECT_DEATH(simulation.set_fault_plan(FaultPlan{}), "before the first");
}

}  // namespace
}  // namespace mmr
