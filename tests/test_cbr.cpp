#include "mmr/traffic/cbr.hpp"

#include <gtest/gtest.h>

#include "mmr/sim/config.hpp"

namespace mmr {
namespace {

TimeBase tb() { return TimeBase(2.4e9, 4096, 16); }

TEST(CbrSource, IatMatchesBandwidth) {
  const CbrSource source(0, 55e6, tb());
  EXPECT_NEAR(source.iat_cycles(), 2.4e9 / 55e6, 1e-9);
  EXPECT_DOUBLE_EQ(source.mean_bps(), 55e6);
}

TEST(CbrSource, EmitsAtConfiguredRate) {
  CbrSource source(3, 55e6, tb());
  std::vector<Flit> flits;
  const Cycle window = 100'000;
  source.generate(window, flits);
  const double expected = static_cast<double>(window) / source.iat_cycles();
  EXPECT_NEAR(static_cast<double>(flits.size()), expected, 2.0);
}

TEST(CbrSource, LowRateEmitsSparsely) {
  CbrSource source(1, 64e3, tb());
  std::vector<Flit> flits;
  source.generate(100'000, flits);
  // 64 Kbps -> one flit every 37500 cycles.
  EXPECT_NEAR(static_cast<double>(flits.size()), 100000.0 / 37500.0, 2.0);
}

TEST(CbrSource, FlitFieldsAreCoherent) {
  CbrSource source(7, 1.54e6, tb());
  std::vector<Flit> flits;
  source.generate(50'000, flits);
  ASSERT_FALSE(flits.empty());
  std::uint64_t seq = 0;
  Cycle prev = 0;
  for (const Flit& flit : flits) {
    EXPECT_EQ(flit.connection, 7u);
    EXPECT_EQ(flit.seq, seq++);
    EXPECT_TRUE(flit.last_of_frame);
    EXPECT_EQ(flit.generated_at, flit.frame_origin);
    EXPECT_GE(flit.generated_at, prev);
    prev = flit.generated_at;
  }
}

TEST(CbrSource, EmissionTimesAreEvenlySpaced) {
  CbrSource source(0, 55e6, tb());
  std::vector<Flit> flits;
  source.generate(20'000, flits);
  ASSERT_GE(flits.size(), 3u);
  const double iat = source.iat_cycles();
  for (std::size_t i = 1; i < flits.size(); ++i) {
    const double gap = static_cast<double>(flits[i].generated_at) -
                       static_cast<double>(flits[i - 1].generated_at);
    EXPECT_NEAR(gap, iat, 1.01);  // ceil() quantisation
  }
}

TEST(CbrSource, PhaseDelaysFirstEmission) {
  CbrSource shifted(0, 55e6, tb(), /*phase=*/100.0);
  EXPECT_EQ(shifted.next_emission(), 100u);
  std::vector<Flit> flits;
  shifted.generate(99, flits);
  EXPECT_TRUE(flits.empty());
  shifted.generate(100, flits);
  EXPECT_EQ(flits.size(), 1u);
}

TEST(CbrSource, GenerateIsIdempotentForSameCycle) {
  CbrSource source(0, 55e6, tb());
  std::vector<Flit> flits;
  source.generate(1000, flits);
  const std::size_t count = flits.size();
  source.generate(1000, flits);  // nothing new due
  EXPECT_EQ(flits.size(), count);
}

TEST(CbrSource, NextEmissionAdvancesPastGenerate) {
  CbrSource source(0, 1.54e6, tb());
  std::vector<Flit> flits;
  source.generate(10'000, flits);
  EXPECT_GT(source.next_emission(), 10'000u);
}

TEST(CbrSource, PaperClassConstants) {
  EXPECT_DOUBLE_EQ(kCbrLow.bps, 64e3);
  EXPECT_DOUBLE_EQ(kCbrMedium.bps, 1.54e6);
  EXPECT_DOUBLE_EQ(kCbrHigh.bps, 55e6);
}

TEST(CbrSourceDeath, RejectsExcessiveRate) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CbrSource(0, 3e9, tb()), "exceed");
}

}  // namespace
}  // namespace mmr
