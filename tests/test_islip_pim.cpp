#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/islip.hpp"
#include "mmr/arbiter/pim.hpp"
#include "mmr/arbiter/verify.hpp"

namespace mmr {
namespace {

TEST(Islip, DefaultIterationsAreLogarithmic) {
  EXPECT_EQ(IslipArbiter(4).iterations(), 4u);   // bit_width(4)=3, +1
  EXPECT_EQ(IslipArbiter(16).iterations(), 6u);  // bit_width(16)=5, +1
  EXPECT_EQ(IslipArbiter(8, 2).iterations(), 2u);
}

TEST(Islip, PointerDesynchronisationUnderFullContention) {
  // Classic iSLIP property: under persistent identical requests the
  // pointers desynchronise and the contested output round-robins across
  // inputs — no input is served twice before the others are served once
  // (after the first rotation).
  IslipArbiter arbiter(4);
  std::vector<int> wins(4, 0);
  for (int trial = 0; trial < 400; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    ++wins[static_cast<std::size_t>(matching.input_of(0))];
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(Islip, SingleIterationStillValid) {
  IslipArbiter arbiter(8, 1);
  Rng rng(0x51, 0);
  for (int trial = 0; trial < 200; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.8, rng);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_TRUE(check_matching(set, matching).valid);
  }
}

TEST(Islip, MoreIterationsNeverShrinkTheMatching) {
  Rng rng(0x52, 0);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.8, rng);
    IslipArbiter one(8, 1);
    IslipArbiter many(8, 8);
    EXPECT_LE(one.arbitrate(set).size(), many.arbitrate(set).size());
  }
}

TEST(Islip, PermutationGrantedInOneIteration) {
  IslipArbiter arbiter(8, 1);
  const CandidateSet set = test::permutation_candidates(8, 3);
  EXPECT_EQ(arbiter.arbitrate(set).size(), 8u);
}

TEST(Pim, DefaultIterationsAreLogarithmic) {
  EXPECT_EQ(PimArbiter(4, Rng(1, 1)).iterations(), 4u);
  EXPECT_EQ(PimArbiter(8, Rng(1, 1), 3).iterations(), 3u);
}

TEST(Pim, GrantsAreRandomisedAcrossInputs) {
  PimArbiter arbiter(4, Rng(0x99, 7));
  std::vector<int> wins(4, 0);
  for (int trial = 0; trial < 1000; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 10);
    const Matching matching = arbiter.arbitrate(set);
    ASSERT_TRUE(matching.output_matched(0));
    ++wins[static_cast<std::size_t>(matching.input_of(0))];
  }
  for (int w : wins) {
    EXPECT_GT(w, 150);  // ~250 expected; far from starvation
    EXPECT_LT(w, 350);
  }
}

TEST(Pim, ConvergesNearMaximalWithIterations) {
  // With log+1 iterations PIM should almost always reach a maximal match on
  // dense requests (statistical bound, not exact).
  PimArbiter arbiter(8, Rng(0x77, 7));
  Rng rng(0x53, 0);
  int maximal = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.9, rng);
    const Matching matching = arbiter.arbitrate(set);
    EXPECT_TRUE(check_matching(set, matching).valid);
    if (is_maximal(set, matching)) ++maximal;
  }
  EXPECT_GT(maximal, kTrials * 8 / 10);
}

TEST(Pim, SingleIterationWeakerThanConverged) {
  Rng rng(0x54, 0);
  PimArbiter one(8, Rng(0xA, 1), 1);
  PimArbiter many(8, Rng(0xB, 2), 6);
  std::uint64_t size_one = 0;
  std::uint64_t size_many = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.9, rng);
    size_one += one.arbitrate(set).size();
    size_many += many.arbitrate(set).size();
  }
  EXPECT_LT(size_one, size_many);
}

}  // namespace
}  // namespace mmr
