#include "mmr/sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace mmr {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(42, 1);
  Rng b(42, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1, 0);
  Rng b(2, 0);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(0xABCD, 0);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(1, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(3, 3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsApproximatelyUniform) {
  Rng rng(5, 5);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(6, 6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t x = rng.uniform_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(7, 7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRealMeanNearHalf) {
  Rng rng(8, 8);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(10, 10);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11, 11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(12, 12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13, 13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LognormalMeanAndCvMatch) {
  Rng rng(14, 14);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.lognormal_mean_cv(10.0, 0.5);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.2);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.05);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(15, 15);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(7.5, 0.0), 7.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(16, 16);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(weights.size(), 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kSamples, 0.6, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17, 17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(18, 18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<std::size_t>(i)] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 20);
}

TEST(Rng, ForkIsIndependentOfDrawPosition) {
  Rng a(99, 4);
  Rng b(99, 4);
  (void)b.next();  // advance b only
  Rng child_a = a.fork(1);
  Rng child_b = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a.next(), child_b.next());
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng parent(99, 4);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_NE(splitmix64(state2), first);  // second draw differs
}

// Regression for the sweep's original per-point seed derivation
// (seed ^ 0x9E37*(a+1) ^ 0xC2B2*b), where distinct (a, b) pairs could
// collide and every derived seed stayed within a few low bits of the base.
// mix_seed must give pairwise-distinct, decorrelated seeds over a realistic
// sweep grid.
TEST(Rng, MixSeedIsPairwiseDistinctOverSweepGrids) {
  std::set<std::uint64_t> seen;
  std::size_t pairs = 0;
  for (const std::uint64_t base : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (std::uint64_t arbiter = 0; arbiter < 12; ++arbiter) {
      for (std::uint64_t replication = 0; replication < 32; ++replication) {
        seen.insert(mix_seed(base, arbiter, replication));
        ++pairs;
      }
    }
  }
  EXPECT_EQ(seen.size(), pairs);
}

TEST(Rng, MixSeedDecorrelatesNearbyInputs) {
  // Adjacent grid points must differ in roughly half their bits, not just
  // the low ones the old XOR-of-small-multiples scheme touched.
  const std::uint64_t a = mix_seed(42, 0, 0);
  for (const std::uint64_t other :
       {mix_seed(42, 0, 1), mix_seed(42, 1, 0), mix_seed(43, 0, 0)}) {
    const int flipped = std::popcount(a ^ other);
    EXPECT_GE(flipped, 16);
    EXPECT_LE(flipped, 48);
  }
  // Argument order matters: (a, b) and (b, a) are different points.
  EXPECT_NE(mix_seed(42, 1, 2), mix_seed(42, 2, 1));
}

}  // namespace
}  // namespace mmr
