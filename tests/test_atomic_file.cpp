#include "mmr/sim/atomic_file.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "mmr/sim/csv.hpp"

namespace mmr {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(AtomicFile, CommitPublishesFullContent) {
  const std::string path = ::testing::TempDir() + "/mmr_atomic_commit.txt";
  std::remove(path.c_str());
  {
    AtomicFileWriter writer(path);
    EXPECT_FALSE(exists(path)) << "destination must not appear before commit";
    writer.stream() << "line one\nline two\n";
    writer.commit();
  }
  EXPECT_EQ(read_all(path), "line one\nline two\n");
  std::remove(path.c_str());
}

TEST(AtomicFile, AbandonedWriterLeavesPreviousFileUntouched) {
  const std::string path = ::testing::TempDir() + "/mmr_atomic_abandon.txt";
  {
    std::ofstream out(path);
    out << "previous generation\n";
  }
  std::string temp_path;
  {
    AtomicFileWriter writer(path);
    temp_path = writer.temp_path();
    writer.stream() << "half a replacement";
    // no commit(): destructor must discard
  }
  EXPECT_EQ(read_all(path), "previous generation\n");
  EXPECT_FALSE(exists(temp_path)) << "discarded temp file must be removed";
  std::remove(path.c_str());
}

TEST(AtomicFile, BodyExceptionDiscardsAndRethrows) {
  const std::string path = ::testing::TempDir() + "/mmr_atomic_throw.txt";
  {
    std::ofstream out(path);
    out << "previous generation\n";
  }
  EXPECT_THROW(write_file_atomic(path,
                                 [](std::ostream& out) {
                                   out << "torn";
                                   throw std::runtime_error("disk on fire");
                                 }),
               std::runtime_error);
  EXPECT_EQ(read_all(path), "previous generation\n");
  std::remove(path.c_str());
}

// The regression the subsystem exists for: a process killed mid-write (here
// a forked child that _exit()s between rows, as SIGKILL or a crash would)
// must never leave a torn file at the destination — the previous file
// survives byte-for-byte.
TEST(AtomicFile, ProcessDeathMidWriteNeverTearsDestination) {
  const std::string path = ::testing::TempDir() + "/mmr_atomic_kill.csv";
  {
    std::ofstream out(path);
    out << "cycle,value\n0,42\n";
  }

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: start replacing the file, then die without committing.  _exit
    // skips every destructor, exactly like an external SIGKILL.
    CsvWriter csv(path, {"cycle", "value"});
    csv.row({"1", "partial"});
    csv.flush();
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));

  EXPECT_EQ(read_all(path), "cycle,value\n0,42\n")
      << "a mid-write death must leave the previous file untouched";
  std::remove(path.c_str());
}

TEST(CsvWriterOwning, PublishesOnlyOnClose) {
  const std::string path = ::testing::TempDir() + "/mmr_owned.csv";
  std::remove(path.c_str());
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    EXPECT_FALSE(exists(path));
    csv.close();
    EXPECT_EQ(csv.rows_written(), 1u);
  }
  EXPECT_EQ(read_all(path), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvWriterOwning, DestructionWithoutCloseDiscards) {
  const std::string path = ::testing::TempDir() + "/mmr_owned_discard.csv";
  std::remove(path.c_str());
  {
    CsvWriter csv(path, {"a"});
    csv.row({"1"});
  }
  EXPECT_FALSE(exists(path));
}

TEST(CsvWriterOwning, StreamModeStillWorks) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  csv.row_numeric({1.5, 2.0});
  csv.close();  // no-op beyond flush in stream mode
  EXPECT_EQ(out.str(), "x,y\n1.5,2\n");
}

}  // namespace
}  // namespace mmr
