#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/greedy_priority.hpp"
#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/verify.hpp"

namespace mmr {
namespace {

TEST(MaxMatch, PermutationIsPerfect) {
  std::vector<std::vector<std::uint32_t>> adj = {{1}, {2}, {3}, {0}};
  EXPECT_EQ(MaxMatchArbiter::max_matching_size(4, adj), 4u);
}

TEST(MaxMatch, StarGraphMatchesOne) {
  // Every input requests only output 0.
  std::vector<std::vector<std::uint32_t>> adj = {{0}, {0}, {0}, {0}};
  EXPECT_EQ(MaxMatchArbiter::max_matching_size(4, adj), 1u);
}

TEST(MaxMatch, KnownAugmentingPathCase) {
  // Greedy would match 0-0 and get stuck; the maximum matching is 2 via
  // the augmenting path 1-0, 0-1.
  std::vector<std::vector<std::uint32_t>> adj = {{0, 1}, {0}, {}, {}};
  EXPECT_EQ(MaxMatchArbiter::max_matching_size(4, adj), 2u);
}

TEST(MaxMatch, EmptyGraphMatchesZero) {
  std::vector<std::vector<std::uint32_t>> adj(4);
  EXPECT_EQ(MaxMatchArbiter::max_matching_size(4, adj), 0u);
}

TEST(MaxMatch, CompleteBipartiteIsPerfect) {
  std::vector<std::vector<std::uint32_t>> adj(8);
  for (auto& row : adj) {
    for (std::uint32_t out = 0; out < 8; ++out) row.push_back(out);
  }
  EXPECT_EQ(MaxMatchArbiter::max_matching_size(8, adj), 8u);
}

TEST(MaxMatch, AtLeastAsLargeAsGreedyOnRandomGraphs) {
  Rng rng(0x61, 0);
  MaxMatchArbiter oracle(8);
  GreedyPriorityArbiter greedy(8, Rng(0x62, 1));
  for (int trial = 0; trial < 300; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.6, rng);
    EXPECT_GE(oracle.arbitrate(set).size(), greedy.arbitrate(set).size());
  }
}

TEST(MaxMatch, ArbitrateIsConsistentWithStaticOracle) {
  Rng rng(0x63, 0);
  MaxMatchArbiter oracle(8);
  for (int trial = 0; trial < 100; ++trial) {
    const CandidateSet set = test::random_candidates(8, 4, 0.7, rng);
    // Rebuild the dedup adjacency the arbiter sees.
    std::vector<std::vector<std::uint32_t>> adj(8);
    std::vector<std::vector<bool>> seen(8, std::vector<bool>(8, false));
    for (const Candidate& c : set.all()) {
      if (!seen[c.input][c.output]) {
        seen[c.input][c.output] = true;
        adj[c.input].push_back(c.output);
      }
    }
    EXPECT_EQ(oracle.arbitrate(set).size(),
              MaxMatchArbiter::max_matching_size(8, adj));
  }
}

TEST(Verify, AcceptsValidMatching) {
  const CandidateSet set = test::permutation_candidates(4);
  Matching matching(4);
  matching.match(0, 0, 0);
  matching.match(1, 1, 1);
  const MatchingCheck check = check_matching(set, matching);
  EXPECT_TRUE(check.valid);
  EXPECT_TRUE(check.problem.empty());
}

TEST(Verify, RejectsWrongCandidateReference) {
  const CandidateSet set = test::permutation_candidates(4, 1);
  Matching matching(4);
  // Candidate 0 is (0 -> 1); claim it was (0 -> 2).
  matching.match(0, 2, 0);
  const MatchingCheck check = check_matching(set, matching);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.problem.find("candidate"), std::string::npos);
}

TEST(Verify, RejectsOutOfRangeCandidateIndex) {
  const CandidateSet set = test::permutation_candidates(4);
  Matching matching(4);
  matching.match(0, 0, 99);
  EXPECT_FALSE(check_matching(set, matching).valid);
}

TEST(Verify, RejectsPortCountMismatch) {
  const CandidateSet set = test::permutation_candidates(4);
  const Matching matching(8);
  EXPECT_FALSE(check_matching(set, matching).valid);
}

TEST(Verify, MaximalityDetection) {
  const CandidateSet set = test::permutation_candidates(4);
  Matching empty(4);
  EXPECT_FALSE(is_maximal(set, empty));
  Matching full(4);
  for (std::uint32_t input = 0; input < 4; ++input) {
    full.match(input, input, static_cast<std::int32_t>(input));
  }
  EXPECT_TRUE(is_maximal(set, full));
  // A matching blocking every request without granting it all is maximal.
  const CandidateSet star = test::contention_candidates(4, 0);
  Matching one(4);
  one.match(2, 0, 2);
  EXPECT_TRUE(is_maximal(star, one));
}

}  // namespace
}  // namespace mmr
