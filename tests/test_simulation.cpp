// End-to-end tests of the full NIC + link + router pipeline.

#include "mmr/core/simulation.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mmr {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 20'000;
  return config;
}

Workload cbr_workload(const SimConfig& config, double load,
                      std::uint64_t stream = 1) {
  Rng rng(config.seed, stream);
  CbrMixSpec spec;
  spec.target_load = load;
  // Few, fat classes so the small VC budget suffices.
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, spec, rng);
}

TEST(Simulation, LowLoadDeliversEverythingWithSmallDelay) {
  const SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 0.3));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_NEAR(metrics.delivered_load, metrics.generated_load_measured, 0.01);
  EXPECT_FALSE(metrics.saturated());
  EXPECT_GT(metrics.flits_delivered, 1000u);
  // Delay should be a handful of flit cycles at 30% load.
  EXPECT_LT(metrics.flit_delay_us.mean(), 20 * metrics.flit_cycle_us);
  EXPECT_LT(metrics.backlog_flits, 50u);
}

TEST(Simulation, FlitConservation) {
  const SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 0.6));
  std::uint64_t observed_departures = 0;
  simulation.set_departure_observer(
      [&observed_departures](const MmrRouter::Departure&, Cycle) {
        ++observed_departures;
      });
  const SimulationMetrics metrics = simulation.run();
  // Everything generated is delivered or still queued somewhere.
  const std::uint64_t accepted = simulation.router().flits_accepted();
  const std::uint64_t departed = simulation.router().flits_departed();
  EXPECT_EQ(accepted - departed, simulation.router().flits_buffered());
  EXPECT_EQ(observed_departures, departed);
  EXPECT_GE(observed_departures, metrics.flits_delivered);
}

TEST(Simulation, PerConnectionDeliveryIsFifoAndLossless) {
  const SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 0.7));
  std::map<ConnectionId, std::uint64_t> next_seq;
  simulation.set_departure_observer(
      [&next_seq](const MmrRouter::Departure& departure, Cycle) {
        const Flit& flit = departure.flit;
        EXPECT_EQ(flit.seq, next_seq[flit.connection])
            << "connection " << flit.connection;
        next_seq[flit.connection] = flit.seq + 1;
      });
  (void)simulation.run();
  EXPECT_FALSE(next_seq.empty());
}

TEST(Simulation, DepartureRoutesMatchConnectionTable) {
  const SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 0.5));
  const ConnectionTable& table = simulation.table();
  simulation.set_departure_observer(
      [&table](const MmrRouter::Departure& departure, Cycle) {
        const ConnectionDescriptor& c = table.get(departure.flit.connection);
        EXPECT_EQ(departure.input, c.input_link);
        EXPECT_EQ(departure.output, c.output_link);
        EXPECT_EQ(departure.vc, c.vc);
      });
  (void)simulation.run();
}

TEST(Simulation, DeterministicAcrossRuns) {
  const SimConfig config = small_config();
  MmrSimulation a(config, cbr_workload(config, 0.6));
  MmrSimulation b(config, cbr_workload(config, 0.6));
  const SimulationMetrics ma = a.run();
  const SimulationMetrics mb = b.run();
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_DOUBLE_EQ(ma.flit_delay_us.mean(), mb.flit_delay_us.mean());
  EXPECT_DOUBLE_EQ(ma.crossbar_utilization, mb.crossbar_utilization);
}

TEST(Simulation, OverloadSaturatesAndBacklogGrows) {
  SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 1.2));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_TRUE(metrics.saturated());
  EXPECT_LT(metrics.delivered_load, 1.01);
  // ~0.2 load excess x 4 ports x measure cycles of backlog.
  EXPECT_GT(metrics.backlog_flits, 1000u);
}

TEST(Simulation, WarmupExcludedFromStatistics) {
  SimConfig config = small_config();
  config.warmup_cycles = 10'000;
  config.measure_cycles = 10'000;
  MmrSimulation simulation(config, cbr_workload(config, 0.4));
  const SimulationMetrics metrics = simulation.run();
  // Measured generation window is measure_cycles: generated load near 0.4,
  // not inflated by warmup traffic.
  EXPECT_NEAR(metrics.generated_load_measured, 0.4, 0.05);
  const double port_cycles = 4.0 * 10'000.0;
  EXPECT_NEAR(static_cast<double>(metrics.flits_generated) / port_cycles,
              metrics.generated_load_measured, 1e-9);
}

TEST(Simulation, VbrRunProducesFrameMetrics) {
  SimConfig config = small_config();
  config.measure_cycles = 60'000;  // ~3 frame periods
  Rng rng(config.seed, 9);
  VbrMixSpec spec;
  spec.target_load = 0.4;
  spec.trace_gops = 2;
  MmrSimulation simulation(config, build_vbr_mix(config, spec, rng));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_GT(metrics.frames_completed, 50u);
  EXPECT_GT(metrics.frame_delay_us.mean(), 0.0);
  EXPECT_FALSE(metrics.frame_jitter_us.empty());
  ASSERT_NE(metrics.find_class("VBR"), nullptr);
  EXPECT_GT(metrics.find_class("VBR")->flits_delivered, 0u);
}

TEST(Simulation, BestEffortCoexistsWithQos) {
  SimConfig config = small_config();
  Rng rng(config.seed, 11);
  CbrMixSpec cbr_spec;
  cbr_spec.target_load = 0.5;
  cbr_spec.classes = {kCbrHigh};
  cbr_spec.class_weights = {1.0};
  Workload workload = build_cbr_mix(config, cbr_spec, rng);
  BestEffortSpec be;
  be.load = 0.2;
  be.connections_per_link = 2;
  add_best_effort(workload, config, be, rng);
  MmrSimulation simulation(config, std::move(workload));
  const SimulationMetrics metrics = simulation.run();
  const ClassMetrics* be_metrics = metrics.find_class("BE");
  const ClassMetrics* cbr_metrics = metrics.find_class("CBR 55 Mbps");
  ASSERT_NE(be_metrics, nullptr);
  ASSERT_NE(cbr_metrics, nullptr);
  EXPECT_GT(be_metrics->flits_delivered, 0u);
  EXPECT_GT(cbr_metrics->flits_delivered, 0u);
  // QoS traffic must not be noticeably hurt at 70% total load.
  EXPECT_LT(cbr_metrics->flit_delay_us.mean(), 50 * metrics.flit_cycle_us);
}

TEST(Simulation, StepOneAdvancesClock) {
  const SimConfig config = small_config();
  MmrSimulation simulation(config, cbr_workload(config, 0.2));
  EXPECT_EQ(simulation.now(), 0u);
  simulation.step_one();
  simulation.step_one();
  EXPECT_EQ(simulation.now(), 2u);
  simulation.check_invariants();
}

TEST(SimulationDeath, RunTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig config = small_config();
  config.warmup_cycles = 10;
  config.measure_cycles = 10;
  MmrSimulation simulation(config, cbr_workload(config, 0.1));
  (void)simulation.run();
  EXPECT_DEATH((void)simulation.run(), "once");
}

}  // namespace
}  // namespace mmr
