// Behavioural tests of the Candidate-Order Arbiter against the paper's
// Section 4 description: port ordering by level then conflict count, and
// priority-based arbitration within an output.

#include "mmr/arbiter/candidate_order.hpp"

#include <gtest/gtest.h>

#include "arbiter_test_util.hpp"
#include "mmr/arbiter/verify.hpp"
#include "mmr/audit/generator.hpp"

namespace mmr {
namespace {

Candidate make_candidate(std::uint32_t input, std::uint32_t output,
                         std::uint32_t level, Priority priority,
                         std::uint32_t vc = 0) {
  Candidate c;
  c.input = static_cast<std::uint16_t>(input);
  c.output = static_cast<std::uint16_t>(output);
  c.level = static_cast<std::uint8_t>(level);
  c.priority = priority;
  c.vc = vc;
  return c;
}

TEST(CandidateOrderArbiter, HighestPriorityWinsOutputContention) {
  CandidateOrderArbiter arbiter(4, Rng(1, 1));
  // All four inputs want output 2; input 3 has the top priority.
  const CandidateSet set = test::contention_candidates(4, 2, /*base=*/10);
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_EQ(matching.input_of(2), 3);
}

TEST(CandidateOrderArbiter, PriorityWinsRegardlessOfCandidateLevel) {
  // Input 0 offers (out 1, prio 100, level 0); input 1 offers level-0 to a
  // different output plus a level-1 request to out 1 with higher priority?
  // Levels are non-increasing per input, so craft: input 1 level-0 prio 500
  // to out 0, level-1 prio 400 to out 1.  Output 1's pending requests are
  // prio 100 (input 0) and prio 400 (input 1): the level-1 request wins the
  // arbitration phase because arbitration uses priority.
  CandidateOrderArbiter arbiter(4, Rng(2, 2));
  CandidateSet set(4, 2);
  set.add(make_candidate(0, 1, 0, 100));
  set.add(make_candidate(1, 0, 0, 500));
  set.add(make_candidate(1, 1, 1, 400));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_TRUE(check_matching(set, matching).valid);
  // Output ordering: out 0 has one level-0 conflict, out 1 has one level-0
  // conflict; out 1's level-0 is processed too.  Whatever the order, input 1
  // can only take one output, and input 0 must get the other:
  EXPECT_EQ(matching.size(), 2u);
  EXPECT_TRUE(matching.input_matched(0));
  EXPECT_TRUE(matching.input_matched(1));
}

TEST(CandidateOrderArbiter, OrdersOutputsByConflictCount) {
  // Paper: "ports with the most conflicts should be matched last since those
  // ports have the most opportunities to be matched".  At level 0, output 0
  // has one request (input 0) and output 1 has two (inputs 1, 2); input 0
  // also holds a high-priority level-1 request to output 1.  Matching the
  // low-conflict output 0 first gives it its only requester (input 0), and
  // output 1 still matches input 1 afterwards: a 2-matching.  The reverse
  // order would hand output 1 to input 0 (priority 90 beats 80) and strand
  // output 0 entirely.
  CandidateOrderArbiter arbiter(3, Rng(3, 3));
  CandidateSet set(3, 2);
  set.add(make_candidate(0, 0, 0, 100));
  set.add(make_candidate(0, 1, 1, 90));
  set.add(make_candidate(1, 1, 0, 80));
  set.add(make_candidate(2, 1, 0, 70));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 2u);
  EXPECT_EQ(matching.input_of(0), 0);  // low-conflict output matched first
  EXPECT_EQ(matching.input_of(1), 1);  // then the contested one by priority
}

TEST(CandidateOrderArbiter, LevelOneOutputsProcessedBeforeDeeperLevels) {
  // Output 2 only appears at level 1; output 0 appears at level 0.  The
  // level-0 output must be selected first: input 0's level-0 request (out 0)
  // is granted even though its level-1 request (out 2) has equal priority.
  CandidateOrderArbiter arbiter(4, Rng(4, 4));
  CandidateSet set(4, 2);
  set.add(make_candidate(0, 0, 0, 50));
  set.add(make_candidate(0, 2, 1, 50));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_EQ(matching.output_of(0), 0);
}

TEST(CandidateOrderArbiter, SecondLevelCandidateUsedWhenFirstLoses) {
  // Inputs 0 and 1 both have level-0 requests to output 0; input 0 has the
  // higher priority.  Input 1's level-1 candidate targets output 1 and must
  // be granted after it loses output 0.
  CandidateOrderArbiter arbiter(2, Rng(5, 5));
  CandidateSet set(2, 2);
  set.add(make_candidate(0, 0, 0, 100));
  set.add(make_candidate(1, 0, 0, 50));
  set.add(make_candidate(1, 1, 1, 40));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 2u);
  EXPECT_EQ(matching.output_of(0), 0);
  EXPECT_EQ(matching.output_of(1), 1);
}

TEST(CandidateOrderArbiter, RandomTieBreaksAreNotConstant) {
  // Two equal-priority requesters: over many arbitrations both must win
  // sometimes (ties broken randomly, not positionally).
  CandidateOrderArbiter arbiter(2, Rng(6, 6));
  int wins0 = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    const CandidateSet set = test::contention_candidates(2, 0, /*base=*/7);
    // contention_candidates gives distinct priorities; rebuild with equal.
    CandidateSet equal(2, 1);
    Candidate c0 = set.at(0);
    Candidate c1 = set.at(1);
    c0.priority = c1.priority = 7;
    equal.add(c0);
    equal.add(c1);
    const Matching matching = arbiter.arbitrate(equal);
    if (matching.input_of(0) == 0) ++wins0;
  }
  EXPECT_GT(wins0, kTrials / 10);
  EXPECT_LT(wins0, kTrials * 9 / 10);
}

TEST(CandidateOrderArbiter, NoPriorityVariantIgnoresPriorities) {
  // coa-np keeps the port ordering but picks winners randomly: over many
  // trials the colossal-priority input must NOT always win.
  CandidateOrderArbiter arbiter(4, Rng(8, 8), /*use_priority=*/false);
  int wins_high = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    const CandidateSet set = test::contention_candidates(4, 0, 1000);
    const Matching matching = arbiter.arbitrate(set);
    if (matching.input_of(0) == 3) ++wins_high;  // input 3 = top priority
  }
  EXPECT_GT(wins_high, kTrials / 10);
  EXPECT_LT(wins_high, kTrials / 2);
  EXPECT_STREQ(arbiter.name(), "coa-np");
}

TEST(CandidateOrderArbiter, NoPriorityVariantKeepsConflictOrdering) {
  // Same scenario as OrdersOutputsByConflictCount: the ordering decision is
  // priority-independent, so coa-np must still find the 2-matching.
  CandidateOrderArbiter arbiter(3, Rng(9, 9), /*use_priority=*/false);
  CandidateSet set(3, 2);
  set.add(make_candidate(0, 0, 0, 100));
  set.add(make_candidate(0, 1, 1, 90));
  set.add(make_candidate(1, 1, 0, 80));
  set.add(make_candidate(2, 1, 0, 70));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_EQ(matching.size(), 2u);
  EXPECT_EQ(matching.input_of(0), 0);
}

TEST(CandidateOrderArbiter, MatchesPaperExampleShape) {
  // A 4x4 scenario exercising the full selection-matrix walk: every output
  // requested, mixed levels; result must be a perfect conflict-free match.
  CandidateOrderArbiter arbiter(4, Rng(7, 7));
  CandidateSet set(4, 2);
  set.add(make_candidate(0, 1, 0, 90));
  set.add(make_candidate(0, 2, 1, 80));
  set.add(make_candidate(1, 1, 0, 70));
  set.add(make_candidate(1, 3, 1, 60));
  set.add(make_candidate(2, 0, 0, 50));
  set.add(make_candidate(2, 1, 1, 40));
  set.add(make_candidate(3, 2, 0, 95));
  set.add(make_candidate(3, 0, 1, 30));
  const Matching matching = arbiter.arbitrate(set);
  EXPECT_TRUE(check_matching(set, matching).valid);
  EXPECT_EQ(matching.size(), 4u);
  // Output 1 contested by inputs 0 (90) and 1 (70) at level 0: 0 wins.
  EXPECT_EQ(matching.input_of(1), 0);
  // Output 2's level-0 requester is input 3.
  EXPECT_EQ(matching.input_of(2), 3);
  // Remaining: input 1 -> 3 (level 1), input 2 -> 0 (level 0).
  EXPECT_EQ(matching.input_of(3), 1);
  EXPECT_EQ(matching.input_of(0), 2);
}

// The bucketed COA is a pure reimplementation of the reference scan-loop
// COA ("coa-scan"): both must consume the identical RNG draw sequence and
// therefore produce bit-identical matchings, candidate index included, on
// every candidate set.  This is what lets the optimized arbiter replace the
// original without perturbing golden-seed simulation metrics.
TEST(CandidateOrderArbiter, BucketedMatchesReferenceScanExactly) {
  for (const bool use_priority : {true, false}) {
    for (const audit::LoadProfile profile : audit::all_profiles()) {
      for (std::uint32_t ports : {2u, 4u, 8u, 16u}) {
        const std::uint64_t seed = 0xC0A0 + ports;
        CandidateOrderArbiter bucketed(ports, Rng(seed, 7), use_priority);
        CandidateOrderScanArbiter scan(ports, Rng(seed, 7), use_priority);
        audit::GeneratorOptions opt;
        opt.ports = ports;
        opt.levels = 2;
        opt.profile = profile;
        Rng gen(0x5EED + ports, static_cast<std::uint64_t>(profile));
        Matching a(ports);
        Matching b(ports);
        for (int step = 0; step < 50; ++step) {
          CandidateSet set(ports, opt.levels);
          for (const Candidate& c : audit::generate_step(gen, opt)) {
            set.add(c);
          }
          bucketed.arbitrate_into(set, a);
          scan.arbitrate_into(set, b);
          ASSERT_EQ(a.size(), b.size());
          for (std::uint32_t input = 0; input < ports; ++input) {
            ASSERT_EQ(a.output_of(input), b.output_of(input))
                << "profile=" << audit::profile_name(profile)
                << " ports=" << ports << " step=" << step;
            ASSERT_EQ(a.candidate_of(input), b.candidate_of(input));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace mmr
