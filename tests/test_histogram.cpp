#include "mmr/sim/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mmr/sim/rng.hpp"

namespace mmr {
namespace {

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_seen(), 100.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
  // The quantile lands in the containing bucket, clamped to the extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
}

TEST(LogHistogram, QuantilesAreMonotone) {
  LogHistogram h;
  Rng rng(31, 0);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(50.0));
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(LogHistogram, QuantileAccuracyWithinBucketError) {
  // Against exact order statistics of the same data.
  LogHistogram h(1.0, 1.05);
  Rng rng(32, 0);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.exponential(200.0));
  for (double x : data) h.add(x);
  std::sort(data.begin(), data.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = data[static_cast<std::size_t>(
        q * (static_cast<double>(data.size()) - 1))];
    // Geometric buckets with growth 1.05 bound relative error ~5%.
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.06) << "q=" << q;
  }
}

TEST(LogHistogram, ValuesBelowFloorLandInBucketZero) {
  LogHistogram h(1.0, 1.5);
  h.add(0.0);
  h.add(0.5);
  h.add(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a(1.0, 1.1);
  LogHistogram b(1.0, 1.1);
  LogHistogram whole(1.0, 1.1);
  Rng rng(33, 0);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(10.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.max_seen(), whole.max_seen());
  EXPECT_DOUBLE_EQ(a.min_seen(), whole.min_seen());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
  }
}

TEST(LogHistogram, MergeEmptyIsNoop) {
  LogHistogram a;
  LogHistogram b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.max_seen(), 5.0);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(10.0);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, AsciiRendersSomething) {
  LogHistogram h;
  EXPECT_NE(h.ascii().find("empty"), std::string::npos);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_LE(std::count(art.begin(), art.end(), '\n'), 11);
}

// Regression: the bucket index used to grow without bound with the sampled
// value; a single huge outlier (or inf) could allocate gigabytes.  Buckets
// are now capped and outliers share one overflow bucket.
TEST(LogHistogram, OutliersLandInTheOverflowBucket) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/8);
  h.add(4.0);
  EXPECT_EQ(h.overflow_count(), 0u);
  // Bucket cap 8 with growth 2 covers up to 2^6; everything beyond shares
  // the overflow bucket regardless of magnitude.
  h.add(1e18);
  h.add(1e300);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max_seen(), 1e300);
}

TEST(LogHistogram, OverflowQuantileIsBoundedByMaxSeen) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/4);
  for (int i = 0; i < 10; ++i) h.add(1e12);
  EXPECT_EQ(h.overflow_count(), 10u);
  // The overflow bucket has no geometric midpoint; quantiles report the
  // largest observed sample instead of an invented bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e12);
  EXPECT_DOUBLE_EQ(h.p99(), 1e12);
}

TEST(LogHistogram, QuantilesStayCorrectBelowTheCap) {
  // Same data, capped and effectively-uncapped histograms: quantiles of
  // in-range samples must agree exactly.
  LogHistogram capped(1.0, 1.5, /*max_buckets=*/64);
  LogHistogram wide(1.0, 1.5, /*max_buckets=*/4096);
  Rng rng(7, 0);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform_real(1.0, 1000.0);
    capped.add(x);
    wide.add(x);
  }
  EXPECT_EQ(capped.overflow_count(), 0u);
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(capped.quantile(q), wide.quantile(q)) << q;
}

TEST(LogHistogram, AsciiIncludesOverflowRow) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/6);
  h.add(2.0);
  h.add(1e9);  // overflow
  const std::string art = h.ascii();
  EXPECT_FALSE(art.empty());
  // The overflow row's upper edge is the max seen, not a bucket boundary,
  // so the largest sample must appear as a rendered edge.
  EXPECT_NE(art.find("1000000000.00"), std::string::npos) << art;
}

TEST(LogHistogram, MergePreservesOverflowCounts) {
  LogHistogram a(1.0, 2.0, /*max_buckets=*/6);
  LogHistogram b(1.0, 2.0, /*max_buckets=*/6);
  a.add(1e9);
  b.add(2e9);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.overflow_count(), 2u);
  EXPECT_DOUBLE_EQ(a.max_seen(), 2e9);
}

// Regression: quantile(0) / quantile(1) used to return the geometric
// midpoint of the extreme sample's bucket — a value no sample ever took,
// disagreeing with min_seen() / max_seen() by up to the bucket's relative
// width.  The extreme order statistics are known exactly.
TEST(LogHistogram, QuantileZeroIsExactMin) {
  LogHistogram h(1.0, 1.05);
  h.add(2.0);
  h.add(3.0);
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
}

TEST(LogHistogram, QuantileOneIsExactMax) {
  LogHistogram h(1.0, 1.05);
  h.add(1.0);
  h.add(7.0);
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(LogHistogram, SingleSampleQuantilesAreThatSample) {
  LogHistogram h(1.0, 1.05);
  h.add(123.456);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 123.456) << q;
}

TEST(LogHistogram, AllInOverflowQuantileExtremesAreExact) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/4);
  h.add(1e12);
  h.add(5e12);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e12);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5e12);
}

// Regression: the ascii() bucket-0 row used to render `[0.00, min) ` like a
// regular half-open bucket, but bucket 0 *includes* samples equal to the
// resolution floor; and the overflow row rendered max_ as a half-open upper
// edge, implying no sample reached it.
TEST(LogHistogram, AsciiBucketZeroRowHasClosedUpperEdge) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/8);
  h.add(0.5);  // at/below the floor: bucket 0
  h.add(1.0);  // exactly the floor: also bucket 0
  const std::string art = h.ascii();
  EXPECT_NE(art.find("      1.00] "), std::string::npos) << art;
  EXPECT_EQ(art.find("      1.00) "), std::string::npos) << art;
}

TEST(LogHistogram, AsciiOverflowRowIsOpenEndedWithObservedMax) {
  LogHistogram h(1.0, 2.0, /*max_buckets=*/6);
  h.add(2.0);
  h.add(1e9);  // overflow
  const std::string art = h.ascii();
  EXPECT_NE(art.find("+inf) "), std::string::npos) << art;
  EXPECT_NE(art.find("(max 1000000000.00)"), std::string::npos) << art;
}

TEST(LogHistogram, P50P95P99Helpers) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_LT(h.p50(), h.p95());
  EXPECT_LT(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max_seen() * 1.05);
}

}  // namespace
}  // namespace mmr
