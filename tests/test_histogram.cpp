#include "mmr/sim/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mmr/sim/rng.hpp"

namespace mmr {
namespace {

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_seen(), 100.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
  // The quantile lands in the containing bucket, clamped to the extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
}

TEST(LogHistogram, QuantilesAreMonotone) {
  LogHistogram h;
  Rng rng(31, 0);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(50.0));
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(LogHistogram, QuantileAccuracyWithinBucketError) {
  // Against exact order statistics of the same data.
  LogHistogram h(1.0, 1.05);
  Rng rng(32, 0);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.exponential(200.0));
  for (double x : data) h.add(x);
  std::sort(data.begin(), data.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = data[static_cast<std::size_t>(
        q * (static_cast<double>(data.size()) - 1))];
    // Geometric buckets with growth 1.05 bound relative error ~5%.
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.06) << "q=" << q;
  }
}

TEST(LogHistogram, ValuesBelowFloorLandInBucketZero) {
  LogHistogram h(1.0, 1.5);
  h.add(0.0);
  h.add(0.5);
  h.add(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a(1.0, 1.1);
  LogHistogram b(1.0, 1.1);
  LogHistogram whole(1.0, 1.1);
  Rng rng(33, 0);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(10.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.max_seen(), whole.max_seen());
  EXPECT_DOUBLE_EQ(a.min_seen(), whole.min_seen());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
  }
}

TEST(LogHistogram, MergeEmptyIsNoop) {
  LogHistogram a;
  LogHistogram b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.max_seen(), 5.0);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(10.0);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, AsciiRendersSomething) {
  LogHistogram h;
  EXPECT_NE(h.ascii().find("empty"), std::string::npos);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_LE(std::count(art.begin(), art.end(), '\n'), 11);
}

TEST(LogHistogram, P50P95P99Helpers) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_LT(h.p50(), h.p95());
  EXPECT_LT(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max_seen() * 1.05);
}

}  // namespace
}  // namespace mmr
