#include "mmr/traffic/mpeg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mmr {
namespace {

TEST(Gop, PatternIsIBBPBBPBBPBBPBB) {
  ASSERT_EQ(kGopFrames, 15u);
  const char* expected = "IBBPBBPBBPBBPBB";
  for (std::uint32_t i = 0; i < kGopFrames; ++i) {
    EXPECT_EQ(to_string(kGopPattern[i])[0], expected[i]) << i;
  }
}

TEST(SequenceLibrary, HasTheSevenTable1Sequences) {
  const auto& library = mpeg_sequence_library();
  ASSERT_EQ(library.size(), 7u);
  for (const char* name :
       {"Ayersroc", "Hook", "Martin", "Flower Garden", "Mobile Calendar",
        "Table Tennis", "Football"}) {
    EXPECT_NO_THROW((void)mpeg_sequence(name)) << name;
  }
  EXPECT_THROW((void)mpeg_sequence("Akiyo"), std::invalid_argument);
}

TEST(SequenceLibrary, FrameSizeOrderingIPB) {
  for (const MpegSequenceParams& params : mpeg_sequence_library()) {
    EXPECT_GT(params.mean_bits_i, params.mean_bits_p) << params.name;
    EXPECT_GT(params.mean_bits_p, params.mean_bits_b) << params.name;
  }
}

TEST(SequenceLibrary, MeanRatesAreHighQualityMpeg2) {
  for (const MpegSequenceParams& params : mpeg_sequence_library()) {
    EXPECT_GT(params.mean_bps(), 5e6) << params.name;
    EXPECT_LT(params.mean_bps(), 30e6) << params.name;
  }
}

TEST(SequenceLibrary, MeanBpsMatchesGopMix) {
  const MpegSequenceParams& seq = mpeg_sequence("Ayersroc");
  const double gop_bits =
      seq.mean_bits_i + 4 * seq.mean_bits_p + 10 * seq.mean_bits_b;
  EXPECT_NEAR(seq.mean_bps(), gop_bits / (15 * kFramePeriodSeconds), 1.0);
}

TEST(Trace, HasRequestedLength) {
  Rng rng(51, 0);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence("Hook"), 6, rng);
  EXPECT_EQ(trace.frames(), 6 * kGopFrames);
  EXPECT_EQ(trace.gops(), 6u);
  EXPECT_EQ(trace.sequence, "Hook");
}

TEST(Trace, StatisticsAreOrdered) {
  Rng rng(52, 0);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence("Football"), 10, rng);
  EXPECT_LT(trace.min_frame_bits(), trace.max_frame_bits());
  EXPECT_GE(trace.mean_frame_bits(),
            static_cast<double>(trace.min_frame_bits()));
  EXPECT_LE(trace.mean_frame_bits(),
            static_cast<double>(trace.max_frame_bits()));
  EXPECT_GT(trace.peak_bps(), trace.mean_bps());
}

TEST(Trace, MeanRateNearModelMean) {
  Rng rng(53, 0);
  const MpegSequenceParams& seq = mpeg_sequence("Flower Garden");
  const MpegTrace trace = generate_mpeg_trace(seq, 50, rng);
  EXPECT_NEAR(trace.mean_bps() / seq.mean_bps(), 1.0, 0.05);
}

TEST(Trace, FrameSizesAreClampedToTypeMeanMultiples) {
  Rng rng(54, 0);
  const MpegSequenceParams& seq = mpeg_sequence("Table Tennis");
  const MpegTrace trace = generate_mpeg_trace(seq, 30, rng);
  for (std::uint32_t f = 0; f < trace.frames(); ++f) {
    const double mean = seq.mean_bits(trace.frame_type(f));
    EXPECT_GE(static_cast<double>(trace.frame_bits[f]), 0.25 * mean - 1);
    EXPECT_LE(static_cast<double>(trace.frame_bits[f]), 4.0 * mean + 1);
  }
}

TEST(Trace, IFramesAreLargestOnAverage) {
  Rng rng(55, 0);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence("Martin"), 20, rng);
  double sum_i = 0.0;
  double sum_b = 0.0;
  std::uint32_t n_i = 0;
  std::uint32_t n_b = 0;
  for (std::uint32_t f = 0; f < trace.frames(); ++f) {
    if (trace.frame_type(f) == FrameType::kI) {
      sum_i += static_cast<double>(trace.frame_bits[f]);
      ++n_i;
    } else if (trace.frame_type(f) == FrameType::kB) {
      sum_b += static_cast<double>(trace.frame_bits[f]);
      ++n_b;
    }
  }
  EXPECT_GT(sum_i / n_i, 2.0 * sum_b / n_b);
}

TEST(Trace, DeterministicGivenRngState) {
  Rng rng_a(56, 0);
  Rng rng_b(56, 0);
  const MpegTrace a = generate_mpeg_trace(mpeg_sequence("Hook"), 5, rng_a);
  const MpegTrace b = generate_mpeg_trace(mpeg_sequence("Hook"), 5, rng_b);
  EXPECT_EQ(a.frame_bits, b.frame_bits);
}

TEST(Trace, DifferentRngStreamsDiffer) {
  Rng rng_a(56, 1);
  Rng rng_b(56, 2);
  const MpegTrace a = generate_mpeg_trace(mpeg_sequence("Hook"), 5, rng_a);
  const MpegTrace b = generate_mpeg_trace(mpeg_sequence("Hook"), 5, rng_b);
  EXPECT_NE(a.frame_bits, b.frame_bits);
}

TEST(Trace, PeakBpsDefinition) {
  Rng rng(57, 0);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence("Ayersroc"), 4, rng);
  EXPECT_NEAR(trace.peak_bps(),
              static_cast<double>(trace.max_frame_bits()) /
                  kFramePeriodSeconds,
              1e-6);
}

TEST(FrameType, ToStringCoversAll) {
  EXPECT_STREQ(to_string(FrameType::kI), "I");
  EXPECT_STREQ(to_string(FrameType::kP), "P");
  EXPECT_STREQ(to_string(FrameType::kB), "B");
}

}  // namespace
}  // namespace mmr
