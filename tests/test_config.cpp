#include "mmr/sim/config.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace mmr {
namespace {

TEST(TimeBase, PaperConstants) {
  const TimeBase tb(2.4e9, 4096, 16);
  EXPECT_EQ(tb.phits_per_flit(), 256u);
  EXPECT_NEAR(tb.flit_cycle_us(), 1.70667, 1e-4);
  EXPECT_NEAR(tb.router_cycle_seconds(), 16.0 / 2.4e9, 1e-18);
}

TEST(TimeBase, RoundTripConversions) {
  const TimeBase tb(2.4e9, 4096, 16);
  const double cycles = 12345.0;
  EXPECT_NEAR(tb.seconds_to_cycles(tb.cycles_to_seconds(cycles)), cycles,
              1e-6);
  EXPECT_NEAR(tb.cycles_to_us(1.0), tb.flit_cycle_us(), 1e-12);
}

TEST(TimeBase, LoadFraction) {
  const TimeBase tb(2.4e9, 4096, 16);
  EXPECT_NEAR(tb.load_fraction(2.4e9), 1.0, 1e-12);
  EXPECT_NEAR(tb.load_fraction(55e6), 55.0 / 2400.0, 1e-12);
  EXPECT_NEAR(tb.flits_per_second(4096.0), 1.0, 1e-12);
}

TEST(SimConfig, DefaultsAreValid) {
  SimConfig config;
  config.validate();  // aborts on violation
  EXPECT_EQ(config.flit_cycles_per_round(), 4u * 256u);
  EXPECT_EQ(config.total_cycles(), config.warmup_cycles + config.measure_cycles);
}

TEST(SimConfig, OverridesApply) {
  SimConfig config;
  const auto applied = apply_overrides(
      config, {"ports=8", "vcs=64", "arbiter=wfa", "priority=iabp",
               "link_bps=1.2e9", "buffer_flits=4", "levels=2", "seed=77",
               "warmup=100", "measure=200", "round_multiple=8",
               "concurrency_factor=2.5", "flit_bits=2048", "phit_bits=8",
               "link_latency=2", "credit_latency=3"});
  EXPECT_EQ(applied.size(), 16u);
  EXPECT_EQ(config.ports, 8u);
  EXPECT_EQ(config.vcs_per_link, 64u);
  EXPECT_EQ(config.arbiter, "wfa");
  EXPECT_EQ(config.priority_scheme, PriorityScheme::kIabp);
  EXPECT_DOUBLE_EQ(config.link_bandwidth_bps, 1.2e9);
  EXPECT_EQ(config.buffer_flits_per_vc, 4u);
  EXPECT_EQ(config.candidate_levels, 2u);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.warmup_cycles, 100u);
  EXPECT_EQ(config.measure_cycles, 200u);
  EXPECT_EQ(config.round_multiple, 8u);
  EXPECT_DOUBLE_EQ(config.concurrency_factor, 2.5);
  EXPECT_EQ(config.flit_bits, 2048u);
  EXPECT_EQ(config.phit_bits, 8u);
  EXPECT_EQ(config.link_latency, 2u);
  EXPECT_EQ(config.credit_latency, 3u);
  config.validate();
}

TEST(SimConfig, UnknownKeyThrowsListingValidKeys) {
  SimConfig config;
  try {
    apply_overrides(config, {"bogus=1"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("arbiter"), std::string::npos);
  }
}

TEST(SimConfig, MalformedOverrideThrows) {
  SimConfig config;
  EXPECT_THROW(apply_overrides(config, {"ports"}), std::invalid_argument);
  EXPECT_THROW(apply_overrides(config, {"ports=abc"}), std::invalid_argument);
  EXPECT_THROW(apply_overrides(config, {"link_bps=xyz"}),
               std::invalid_argument);
}

// Regression: "link_bps=nan", "link_bps=inf" and negative rates used to
// parse cleanly and only blow up (or silently poison time conversions)
// deep inside a run.  They are rejected at parse time now.
TEST(SimConfig, RejectsNonFiniteAndNonPositiveRates) {
  SimConfig config;
  for (const char* bad :
       {"link_bps=nan", "link_bps=inf", "link_bps=-inf", "link_bps=-1e9",
        "link_bps=0"}) {
    EXPECT_THROW(apply_overrides(config, {bad}), std::invalid_argument)
        << bad;
  }
  for (const char* bad :
       {"concurrency_factor=nan", "concurrency_factor=inf",
        "concurrency_factor=0.5", "concurrency_factor=-2"}) {
    EXPECT_THROW(apply_overrides(config, {bad}), std::invalid_argument)
        << bad;
  }
  // The rejected overrides left the config untouched and valid.
  config.validate();
}

TEST(SimConfigDeath, ValidateRejectsNonFiniteFields) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig config;
  config.link_bandwidth_bps = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(config.validate(), "finite");
  config = SimConfig{};
  config.concurrency_factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(config.validate(), "finite");
}

TEST(SimConfig, AuditOverrideEnablesTheAuditor) {
  SimConfig config;
  EXPECT_EQ(config.audit_every, 0u);
  const auto applied = apply_overrides(config, {"audit=256"});
  EXPECT_EQ(applied, std::vector<std::string>{"audit"});
  EXPECT_EQ(config.audit_every, 256u);
  config.validate();
}

TEST(SimConfig, NetThreadsOverrideParses) {
  SimConfig config;
  EXPECT_EQ(config.net_threads, 0u);  // unset: serial engine
  apply_overrides(config, {"net_threads=4"});
  EXPECT_EQ(config.net_threads, 4u);
  apply_overrides(config, {"net_threads=0"});
  EXPECT_EQ(config.net_threads, 0u);
  apply_overrides(config, {"net_threads=hw"});
  EXPECT_GE(config.net_threads, 1u);  // resolved at parse time
  config.validate();

  try {
    apply_overrides(config, {"net_threads=5000"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("out of range"),
              std::string::npos);
  }
  EXPECT_THROW(apply_overrides(config, {"net_threads=abc"}),
               std::invalid_argument);

  // The unknown-key listing advertises the knob.
  try {
    apply_overrides(config, {"bogus=1"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("net_threads"),
              std::string::npos);
  }
}

// Satellite: flow=shared used to survive parsing and kill multi-router
// runs with an assert deep inside MmrNetworkSimulation's constructor.
// validate_network() now rejects the combination up front, naming both
// conflicting keys.
TEST(SimConfig, ValidateNetworkRejectsSharedFlow) {
  SimConfig config;
  config.validate_network();  // default flow control is fine
  config.flow_spec = "shared";
  try {
    config.validate_network();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_EQ(what.rfind("error:", 0), 0u) << what;
    EXPECT_NE(what.find("flow=shared"), std::string::npos) << what;
    EXPECT_NE(what.find("net"), std::string::npos) << what;
  }
}

TEST(SimConfig, PrioritySchemeRoundTrips) {
  for (PriorityScheme scheme :
       {PriorityScheme::kSiabp, PriorityScheme::kIabp,
        PriorityScheme::kFifoAge, PriorityScheme::kStatic}) {
    EXPECT_EQ(priority_scheme_from_string(to_string(scheme)), scheme);
  }
  EXPECT_THROW((void)priority_scheme_from_string("nope"), std::invalid_argument);
}

TEST(SimConfigDeath, ValidateRejectsNonsense) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig config;
  config.ports = 1;
  EXPECT_DEATH(config.validate(), "ports");
  config = SimConfig{};
  config.flit_bits = 100;  // not a multiple of phit_bits
  EXPECT_DEATH(config.validate(), "phit");
  config = SimConfig{};
  config.candidate_levels = 0;
  EXPECT_DEATH(config.validate(), "level");
  config = SimConfig{};
  config.candidate_levels = config.vcs_per_link + 1;
  EXPECT_DEATH(config.validate(), "levels");
  config = SimConfig{};
  config.concurrency_factor = 0.5;
  EXPECT_DEATH(config.validate(), "concurrency");
  config = SimConfig{};
  config.measure_cycles = 0;
  EXPECT_DEATH(config.validate(), "measure");
}

}  // namespace
}  // namespace mmr
