#include <gtest/gtest.h>

#include "mmr/router/crossbar.hpp"
#include "mmr/router/router.hpp"

namespace mmr {
namespace {

TEST(Crossbar, TracksConfigurationAndUtilization) {
  Crossbar crossbar(4);
  EXPECT_EQ(crossbar.input_of(0), -1);
  Matching matching(4);
  matching.match(1, 0, 0);
  matching.match(2, 3, 1);
  crossbar.apply(matching, /*measure=*/true);
  EXPECT_EQ(crossbar.input_of(0), 1);
  EXPECT_EQ(crossbar.input_of(3), 2);
  EXPECT_EQ(crossbar.input_of(1), -1);
  EXPECT_DOUBLE_EQ(crossbar.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(crossbar.mean_matching_size(), 2.0);
  EXPECT_EQ(crossbar.flits_switched(), 2u);
}

TEST(Crossbar, WarmupCyclesExcludedFromStats) {
  Crossbar crossbar(4);
  Matching full(4);
  for (std::uint32_t p = 0; p < 4; ++p) full.match(p, p, static_cast<std::int32_t>(p));
  crossbar.apply(full, /*measure=*/false);
  EXPECT_DOUBLE_EQ(crossbar.utilization(), 0.0);
  crossbar.apply(full, /*measure=*/true);
  EXPECT_DOUBLE_EQ(crossbar.utilization(), 1.0);
}

TEST(Crossbar, ReconfigurationCounting) {
  Crossbar crossbar(2);
  Matching a(2);
  a.match(0, 0, 0);
  a.match(1, 1, 1);
  crossbar.apply(a, true);  // 2 outputs changed from -1
  crossbar.apply(a, true);  // identical: 0 changes
  Matching b(2);
  b.match(1, 0, 0);
  b.match(0, 1, 1);
  crossbar.apply(b, true);  // both outputs changed
  EXPECT_DOUBLE_EQ(crossbar.mean_reconfigurations(), (2.0 + 0.0 + 2.0) / 3.0);
}

class RouterTest : public ::testing::Test {
 protected:
  SimConfig config_ = [] {
    SimConfig config;
    config.ports = 4;
    config.vcs_per_link = 8;
    config.arbiter = "coa";
    return config;
  }();

  ConnectionTable table_ = ConnectionTable(4);

  ConnectionId add_connection(std::uint32_t in, std::uint32_t out,
                              double bps = 55e6) {
    ConnectionDescriptor c;
    c.traffic_class = TrafficClass::kCbr;
    c.input_link = in;
    c.output_link = out;
    c.mean_bandwidth_bps = bps;
    c.peak_bandwidth_bps = bps;
    c.slots_per_round = 24;
    return table_.add(c, config_.vcs_per_link);
  }

  Flit make_flit(ConnectionId connection, std::uint64_t seq = 0) {
    Flit flit;
    flit.connection = connection;
    flit.seq = seq;
    flit.generated_at = 0;
    return flit;
  }
};

TEST_F(RouterTest, SingleFlitTraversesInOneStep) {
  const ConnectionId c = add_connection(0, 2);
  MmrRouter router(config_, table_, Rng(1, 1));
  router.accept(0, table_.get(c).vc, make_flit(c), 0);
  EXPECT_EQ(router.flits_buffered(), 1u);
  std::vector<MmrRouter::Departure> departures;
  router.step(0, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].input, 0u);
  EXPECT_EQ(departures[0].output, 2u);
  EXPECT_EQ(departures[0].flit.connection, c);
  EXPECT_EQ(router.flits_buffered(), 0u);
  router.check_invariants();
}

TEST_F(RouterTest, OutputContentionResolvedByPriorityUnderCoa) {
  // Two inputs, same output; connection B has waited longer.
  const ConnectionId a = add_connection(0, 1);
  const ConnectionId b = add_connection(2, 1);
  MmrRouter router(config_, table_, Rng(2, 2));
  router.accept(0, table_.get(a).vc, make_flit(a), /*now=*/10);
  router.accept(2, table_.get(b).vc, make_flit(b), /*now=*/0);
  std::vector<MmrRouter::Departure> departures;
  router.step(10, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].flit.connection, b) << "older flit must win";
  // Next cycle the loser goes through.
  departures.clear();
  router.step(11, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].flit.connection, a);
}

TEST_F(RouterTest, DisjointFlowsForwardInParallel) {
  std::vector<ConnectionId> ids;
  for (std::uint32_t p = 0; p < 4; ++p) ids.push_back(add_connection(p, (p + 1) % 4));
  MmrRouter router(config_, table_, Rng(3, 3));
  for (std::uint32_t p = 0; p < 4; ++p) {
    router.accept(p, table_.get(ids[p]).vc, make_flit(ids[p]), 0);
  }
  std::vector<MmrRouter::Departure> departures;
  router.step(0, true, departures);
  EXPECT_EQ(departures.size(), 4u);
  EXPECT_DOUBLE_EQ(router.crossbar().utilization(), 1.0);
}

TEST_F(RouterTest, PerVcFifoOrderPreserved) {
  const ConnectionId c = add_connection(1, 3);
  MmrRouter router(config_, table_, Rng(4, 4));
  router.accept(1, table_.get(c).vc, make_flit(c, 0), 0);
  router.accept(1, table_.get(c).vc, make_flit(c, 1), 1);
  std::vector<MmrRouter::Departure> departures;
  router.step(1, true, departures);
  router.step(2, true, departures);
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0].flit.seq, 0u);
  EXPECT_EQ(departures[1].flit.seq, 1u);
}

TEST_F(RouterTest, CanAcceptReflectsBufferSpace) {
  const ConnectionId c = add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(5, 5));
  const std::uint32_t vc = table_.get(c).vc;
  for (std::uint32_t i = 0; i < config_.buffer_flits_per_vc; ++i) {
    ASSERT_TRUE(router.can_accept(0, vc));
    router.accept(0, vc, make_flit(c, i), 0);
  }
  EXPECT_FALSE(router.can_accept(0, vc));
}

TEST_F(RouterTest, StepWithNoTrafficIsClean) {
  add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(6, 6));
  std::vector<MmrRouter::Departure> departures;
  for (Cycle now = 0; now < 10; ++now) router.step(now, true, departures);
  EXPECT_TRUE(departures.empty());
  EXPECT_DOUBLE_EQ(router.crossbar().utilization(), 0.0);
  router.check_invariants();
}

TEST_F(RouterTest, WfaVariantIgnoresPriorities) {
  config_.arbiter = "wfa";
  const ConnectionId a = add_connection(0, 1);  // earlier diagonal
  const ConnectionId b = add_connection(3, 1);
  MmrRouter router(config_, table_, Rng(7, 7));
  // b is far older (higher priority) but input 0 sits closer to the wave
  // origin for output 1... (cell (0,1) on diagonal 1, cell (3,1) on
  // diagonal 4): input 0 wins despite the lower priority.
  router.accept(0, table_.get(a).vc, make_flit(a), 1000);
  router.accept(3, table_.get(b).vc, make_flit(b), 0);
  std::vector<MmrRouter::Departure> departures;
  router.step(1000, true, departures);
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].flit.connection, a);
}

TEST_F(RouterTest, ArbiterNameExposed) {
  add_connection(0, 1);
  MmrRouter router(config_, table_, Rng(8, 8));
  EXPECT_STREQ(router.arbiter().name(), "coa");
}

}  // namespace
}  // namespace mmr
