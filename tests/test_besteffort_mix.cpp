#include <gtest/gtest.h>

#include <map>

#include "mmr/sim/config.hpp"
#include "mmr/traffic/besteffort.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {
namespace {

TimeBase tb() { return TimeBase(2.4e9, 4096, 16); }

TEST(BestEffortSource, LongRunRateMatchesMean) {
  BestEffortSource source(0, 100e6, 8.0, tb(), Rng(71, 0));
  std::vector<Flit> flits;
  const Cycle window = 500'000;
  source.generate(window, flits);
  const double measured_bps = static_cast<double>(flits.size()) * 4096.0 /
                              tb().cycles_to_seconds(window);
  EXPECT_NEAR(measured_bps / 100e6, 1.0, 0.1);
}

TEST(BestEffortSource, MessageLengthsAreGeometricWithMean) {
  BestEffortSource source(0, 50e6, 6.0, tb(), Rng(72, 0));
  std::vector<Flit> flits;
  source.generate(2'000'000, flits);
  std::map<std::uint32_t, std::uint32_t> lengths;
  for (const Flit& flit : flits) ++lengths[flit.frame];
  ASSERT_GT(lengths.size(), 100u);
  double sum = 0.0;
  for (const auto& [message, length] : lengths) {
    EXPECT_GE(length, 1u);
    sum += length;
  }
  EXPECT_NEAR(sum / static_cast<double>(lengths.size()), 6.0, 0.5);
}

TEST(BestEffortSource, MessagesShareArrivalTimestamp) {
  BestEffortSource source(0, 50e6, 8.0, tb(), Rng(73, 0));
  std::vector<Flit> flits;
  source.generate(500'000, flits);
  std::uint32_t last_marks = 0;
  for (std::size_t i = 1; i < flits.size(); ++i) {
    if (flits[i].frame == flits[i - 1].frame) {
      EXPECT_EQ(flits[i].generated_at, flits[i - 1].generated_at);
    }
    if (flits[i].last_of_frame) ++last_marks;
  }
  EXPECT_GT(last_marks, 0u);
}

TEST(CbrMix, HitsTargetLoadPerLink) {
  SimConfig config;
  Rng rng(74, 0);
  CbrMixSpec spec;
  spec.target_load = 0.7;
  const Workload workload = build_cbr_mix(config, spec, rng);
  for (std::uint32_t link = 0; link < config.ports; ++link) {
    const double load =
        workload.generated_load_on_input(link, config.time_base());
    EXPECT_GT(load, 0.67) << link;
    EXPECT_LE(load, 0.7 + 1e-9) << link;
  }
  EXPECT_NEAR(workload.generated_load(config.time_base()), 0.7, 0.03);
}

TEST(CbrMix, ContainsAllThreeClasses) {
  SimConfig config;
  Rng rng(75, 0);
  CbrMixSpec spec;
  spec.target_load = 0.6;
  const Workload workload = build_cbr_mix(config, spec, rng);
  std::map<double, int> by_rate;
  for (const ConnectionDescriptor& c : workload.table.all()) {
    EXPECT_EQ(c.traffic_class, TrafficClass::kCbr);
    ++by_rate[c.mean_bandwidth_bps];
  }
  EXPECT_GT(by_rate[64e3], 0);
  EXPECT_GT(by_rate[1.54e6], 0);
  EXPECT_GT(by_rate[55e6], 0);
}

TEST(CbrMix, SlotsAreFilledEvenWithoutAdmission) {
  SimConfig config;
  Rng rng(76, 0);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.enforce_admission = false;
  const Workload workload = build_cbr_mix(config, spec, rng);
  for (const ConnectionDescriptor& c : workload.table.all()) {
    EXPECT_GE(c.slots_per_round, 1u);
  }
}

TEST(CbrMix, DeterministicForSameRngStream) {
  SimConfig config;
  CbrMixSpec spec;
  spec.target_load = 0.55;
  Rng rng_a(77, 3);
  Rng rng_b(77, 3);
  const Workload a = build_cbr_mix(config, spec, rng_a);
  const Workload b = build_cbr_mix(config, spec, rng_b);
  ASSERT_EQ(a.connections(), b.connections());
  for (std::size_t i = 0; i < a.connections(); ++i) {
    EXPECT_EQ(a.table.get(static_cast<ConnectionId>(i)).output_link,
              b.table.get(static_cast<ConnectionId>(i)).output_link);
    EXPECT_EQ(a.table.get(static_cast<ConnectionId>(i)).mean_bandwidth_bps,
              b.table.get(static_cast<ConnectionId>(i)).mean_bandwidth_bps);
  }
}

TEST(CbrMix, LowerLoadIsPrefixOfHigherLoad) {
  // Common-random-numbers property the sweeps rely on.
  SimConfig config;
  CbrMixSpec low_spec;
  low_spec.target_load = 0.4;
  CbrMixSpec high_spec;
  high_spec.target_load = 0.8;
  Rng rng_a(78, 5);
  Rng rng_b(78, 5);
  const Workload low = build_cbr_mix(config, low_spec, rng_a);
  const Workload high = build_cbr_mix(config, high_spec, rng_b);
  ASSERT_GT(high.connections(), low.connections());
  for (std::uint32_t link = 0; link < config.ports; ++link) {
    const auto& low_ids = low.table.on_input_link(link);
    const auto& high_ids = high.table.on_input_link(link);
    ASSERT_GE(high_ids.size(), low_ids.size());
    // Destinations come from aligned draws for the whole shared prefix;
    // classes match until the low build's remaining budget forces it to
    // fall back to smaller classes (a suffix-only effect).
    bool class_diverged = false;
    for (std::size_t i = 0; i < low_ids.size(); ++i) {
      const ConnectionDescriptor& a = low.table.get(low_ids[i]);
      const ConnectionDescriptor& b = high.table.get(high_ids[i]);
      EXPECT_EQ(a.output_link, b.output_link) << "link " << link << " #" << i;
      if (a.mean_bandwidth_bps != b.mean_bandwidth_bps) {
        class_diverged = true;
        // Once diverged, the low build can only pick classes no larger
        // than the high build's draw (budget-constrained fallback).
        EXPECT_LE(a.mean_bandwidth_bps, b.mean_bandwidth_bps);
      } else {
        EXPECT_FALSE(class_diverged && a.mean_bandwidth_bps == kCbrHigh.bps)
            << "full-rate connection after the fallback region began";
      }
    }
  }
}

TEST(CbrMix, BalancedDestinationsEqualiseOutputLoads) {
  SimConfig config;
  Rng rng(79, 0);
  CbrMixSpec spec;
  spec.target_load = 0.8;
  spec.destinations = DestinationPolicy::kBalanced;
  const Workload workload = build_cbr_mix(config, spec, rng);
  std::vector<double> out_bps(config.ports, 0.0);
  for (const ConnectionDescriptor& c : workload.table.all()) {
    out_bps[c.output_link] += c.mean_bandwidth_bps;
  }
  const double total = 0.8 * 4 * 2.4e9;
  for (double bps : out_bps) {
    EXPECT_NEAR(bps / (total / 4), 1.0, 0.05);
  }
}

TEST(CbrMix, AdmissionEnforcementKeepsBudgets) {
  SimConfig config;
  Rng rng(80, 0);
  CbrMixSpec spec;
  spec.target_load = 1.0;  // admission must keep every link within a round
  spec.enforce_admission = true;
  const Workload workload = build_cbr_mix(config, spec, rng);
  std::vector<std::uint64_t> out_slots(config.ports, 0);
  for (const ConnectionDescriptor& c : workload.table.all()) {
    out_slots[c.output_link] += c.slots_per_round;
  }
  for (std::uint64_t slots : out_slots) {
    EXPECT_LE(slots, config.flit_cycles_per_round());
  }
}

TEST(VbrMix, HitsTargetLoadApproximately) {
  SimConfig config;
  Rng rng(81, 0);
  VbrMixSpec spec;
  spec.target_load = 0.6;
  spec.trace_gops = 2;
  const Workload workload = build_vbr_mix(config, spec, rng);
  EXPECT_NEAR(workload.generated_load(config.time_base()), 0.6, 0.05);
  for (const ConnectionDescriptor& c : workload.table.all()) {
    EXPECT_EQ(c.traffic_class, TrafficClass::kVbr);
    EXPECT_GT(c.peak_bandwidth_bps, c.mean_bandwidth_bps);
  }
}

TEST(VbrMix, TracesAreIndependentPerConnection) {
  SimConfig config;
  Rng rng(82, 0);
  VbrMixSpec spec;
  spec.target_load = 0.3;
  spec.trace_gops = 2;
  const Workload workload = build_vbr_mix(config, spec, rng);
  ASSERT_GE(workload.connections(), 2u);
  const auto* a = dynamic_cast<const VbrSource*>(workload.sources[0].get());
  const auto* b = dynamic_cast<const VbrSource*>(workload.sources[1].get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->trace().frame_bits, b->trace().frame_bits);
}

TEST(AddBestEffort, AppendsConnectionsOnEveryLink) {
  SimConfig config;
  Rng rng(83, 0);
  CbrMixSpec cbr_spec;
  cbr_spec.target_load = 0.3;
  Workload workload = build_cbr_mix(config, cbr_spec, rng);
  const std::size_t before = workload.connections();
  BestEffortSpec be;
  be.load = 0.2;
  be.connections_per_link = 3;
  add_best_effort(workload, config, be, rng);
  EXPECT_EQ(workload.connections(), before + 3 * config.ports);
  std::uint32_t be_count = 0;
  for (const ConnectionDescriptor& c : workload.table.all()) {
    if (c.traffic_class == TrafficClass::kBestEffort) {
      ++be_count;
      EXPECT_EQ(c.slots_per_round, 0u);
    }
  }
  EXPECT_EQ(be_count, 3 * config.ports);
}

TEST(Workload, CheckInvariantsPassesOnBuiltWorkloads) {
  SimConfig config;
  Rng rng(84, 0);
  CbrMixSpec spec;
  spec.target_load = 0.4;
  const Workload workload = build_cbr_mix(config, spec, rng);
  workload.check_invariants();
  SUCCEED();
}

}  // namespace
}  // namespace mmr
