#include <gtest/gtest.h>

#include "mmr/qos/admission.hpp"
#include "mmr/qos/rounds.hpp"
#include "mmr/sim/config.hpp"

namespace mmr {
namespace {

TimeBase paper_time_base() { return TimeBase(2.4e9, 4096, 16); }

TEST(RoundAccounting, SlotsRoundUpAndFloorAtOne) {
  const RoundAccounting rounds(1024, paper_time_base());
  // 64 Kbps is a 2.7e-5 fraction: far below one slot, still reserves 1.
  EXPECT_EQ(rounds.slots_for_bandwidth(64e3), 1u);
  // 55 Mbps over 2.4 Gbps = 2.29% of 1024 slots = 23.5 -> 24.
  EXPECT_EQ(rounds.slots_for_bandwidth(55e6), 24u);
  EXPECT_EQ(rounds.slots_for_bandwidth(0.0), 0u);
  // Full link needs the whole round.
  EXPECT_EQ(rounds.slots_for_bandwidth(2.4e9), 1024u);
}

TEST(RoundAccounting, SlotsNeverExceedTheRound) {
  // Regression: slots_for_bandwidth used to return ceil(fraction * round)
  // with no upper clamp, so an over-the-link request produced more slots
  // than a round holds and flowed into admission as a plausible-looking
  // reservation.  The round is the ceiling; the explicit oversubscribed()
  // check is how the admission boundary distinguishes full from over-full.
  const RoundAccounting rounds(1024, paper_time_base());
  EXPECT_EQ(rounds.slots_for_bandwidth(2.4e9), 1024u);
  EXPECT_EQ(rounds.slots_for_bandwidth(2 * 2.4e9), 1024u);
  EXPECT_EQ(rounds.slots_for_bandwidth(100 * 2.4e9), 1024u);
  EXPECT_FALSE(rounds.oversubscribed(2.4e9));
  EXPECT_FALSE(rounds.oversubscribed(55e6));
  EXPECT_FALSE(rounds.oversubscribed(0.0));
  EXPECT_TRUE(rounds.oversubscribed(2.4e9 * 1.001));
  EXPECT_TRUE(rounds.oversubscribed(2 * 2.4e9));
}

TEST(RoundAccounting, BandwidthForSlotsInvertsWithinRounding) {
  const RoundAccounting rounds(1024, paper_time_base());
  for (double bps : {1e6, 10e6, 55e6, 100e6}) {
    const std::uint32_t slots = rounds.slots_for_bandwidth(bps);
    EXPECT_GE(rounds.bandwidth_for_slots(slots), bps);  // reservation covers
    EXPECT_LE(rounds.bandwidth_for_slots(slots - 1), bps + 2.4e9 / 1024);
  }
}

TEST(RoundAccounting, RoundDuration) {
  const RoundAccounting rounds(1024, paper_time_base());
  EXPECT_NEAR(rounds.round_seconds(), 1024 * 4096 / 2.4e9, 1e-12);
}

TEST(RoundAccounting, IatInRouterCycles) {
  const RoundAccounting rounds(1024, paper_time_base());
  // 55 Mbps: a flit every 4096/55e6 seconds; router cycle = 16/2.4e9.
  EXPECT_NEAR(rounds.iat_router_cycles(55e6),
              (4096.0 / 55e6) / (16.0 / 2.4e9), 1e-6);
  // The link itself: one flit per 256 router cycles.
  EXPECT_NEAR(rounds.iat_router_cycles(2.4e9), 256.0, 1e-9);
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionController make(double concurrency = 3.0) {
    return AdmissionController(4, RoundAccounting(1024, paper_time_base()),
                               concurrency);
  }

  ConnectionDescriptor cbr(std::uint32_t in, std::uint32_t out, double bps) {
    ConnectionDescriptor c;
    c.traffic_class = TrafficClass::kCbr;
    c.input_link = in;
    c.output_link = out;
    c.mean_bandwidth_bps = bps;
    c.peak_bandwidth_bps = bps;
    return c;
  }

  ConnectionDescriptor vbr(std::uint32_t in, std::uint32_t out, double mean,
                           double peak) {
    ConnectionDescriptor c;
    c.traffic_class = TrafficClass::kVbr;
    c.input_link = in;
    c.output_link = out;
    c.mean_bandwidth_bps = mean;
    c.peak_bandwidth_bps = peak;
    return c;
  }
};

TEST_F(AdmissionTest, CbrAdmittedFillsSlots) {
  AdmissionController cac = make();
  ConnectionDescriptor c = cbr(0, 1, 55e6);
  EXPECT_TRUE(cac.try_admit(c));
  EXPECT_EQ(c.slots_per_round, 24u);
  EXPECT_EQ(c.peak_slots_per_round, 24u);
  EXPECT_EQ(cac.input_mean_slots(0), 24u);
  EXPECT_EQ(cac.output_mean_slots(1), 24u);
  EXPECT_EQ(cac.input_mean_slots(1), 0u);
}

TEST_F(AdmissionTest, CbrRejectedWhenRoundFull) {
  AdmissionController cac = make();
  // 42 connections x 24 slots = 1008; the 43rd (24 more) would exceed 1024.
  for (int i = 0; i < 42; ++i) {
    ConnectionDescriptor c = cbr(0, static_cast<std::uint32_t>(i % 4), 55e6);
    ASSERT_TRUE(cac.try_admit(c)) << i;
  }
  ConnectionDescriptor last = cbr(0, 0, 55e6);
  EXPECT_FALSE(cac.try_admit(last));
  // Descriptor untouched on rejection.
  EXPECT_EQ(last.slots_per_round, 0u);
  // A small connection still fits in the remaining 16 slots.
  ConnectionDescriptor small = cbr(0, 0, 1.54e6);
  EXPECT_TRUE(cac.try_admit(small));
}

TEST_F(AdmissionTest, OversubscribedRequestRejectedOutright) {
  // Regression: an over-the-link mean used to convert to a clamped (or,
  // before the clamp, oversized) slot count that fit an empty budget, so a
  // physically impossible reservation was admitted as full-rate.  The
  // admission boundary now rejects any mean beyond the link itself.
  AdmissionController cac = make();
  ConnectionDescriptor over = cbr(0, 1, 2 * 2.4e9);
  over.slots_per_round = 0xdead;
  EXPECT_FALSE(cac.try_admit(over));
  EXPECT_EQ(over.slots_per_round, 0xdeadu);  // descriptor untouched
  EXPECT_EQ(cac.input_mean_slots(0), 0u);
  EXPECT_EQ(cac.outstanding_reservations(), 0u);
  // The full link itself is still admittable: exactly one round of slots.
  ConnectionDescriptor full = cbr(0, 1, 2.4e9);
  EXPECT_TRUE(cac.try_admit(full));
  EXPECT_EQ(full.slots_per_round, 1024u);
}

TEST_F(AdmissionTest, OutputLinkBudgetAlsoEnforced) {
  AdmissionController cac = make();
  // Saturate output 2 from different inputs.
  for (int i = 0; i < 42; ++i) {
    ConnectionDescriptor c = cbr(static_cast<std::uint32_t>(i % 4), 2, 55e6);
    ASSERT_TRUE(cac.try_admit(c));
  }
  ConnectionDescriptor more = cbr(3, 2, 55e6);
  EXPECT_FALSE(cac.try_admit(more));
  // Same input, different output: fine.
  ConnectionDescriptor other = cbr(3, 1, 55e6);
  EXPECT_TRUE(cac.try_admit(other));
}

TEST_F(AdmissionTest, VbrUsesMeanForRuleAAndPeakForRuleB) {
  AdmissionController cac = make(/*concurrency=*/2.0);
  // mean 100 Mbps (43 slots), peak 600 Mbps (256 slots).
  for (int i = 0; i < 8; ++i) {
    ConnectionDescriptor c = vbr(0, static_cast<std::uint32_t>(i % 4), 100e6,
                                 600e6);
    ASSERT_TRUE(cac.try_admit(c)) << i;
  }
  // Mean: 8*43 = 344 <= 1024 OK; peak: 8*256 = 2048 == 2.0*1024 cap.
  ConnectionDescriptor ninth = vbr(0, 0, 100e6, 600e6);
  EXPECT_FALSE(cac.try_admit(ninth)) << "peak rule must reject";
}

TEST_F(AdmissionTest, VbrMeanRuleRejectsIndependentlyOfPeak) {
  AdmissionController cac = make(/*concurrency=*/3.0);
  // mean 200 Mbps = 86 slots, peak barely above mean (90 slots): the mean
  // rule trips first — 11 fit (946 slots), the 12th would need 1032 > 1024
  // while the peak budget (3 x 1024) is nowhere near full.
  for (int i = 0; i < 11; ++i) {
    ConnectionDescriptor c =
        vbr(0, static_cast<std::uint32_t>(i % 4), 200e6, 210e6);
    ASSERT_TRUE(cac.try_admit(c)) << i;
  }
  ConnectionDescriptor twelfth = vbr(0, 0, 200e6, 210e6);
  EXPECT_FALSE(cac.try_admit(twelfth)) << "mean rule must reject";
}

TEST_F(AdmissionTest, ConcurrencyFactorLoosensPeakRule) {
  AdmissionController strict = make(1.0);
  AdmissionController loose = make(4.0);
  for (int i = 0; i < 4; ++i) {
    ConnectionDescriptor c = vbr(0, 0, 50e6, 2.4e9 / 4.0);
    // Each peak = 256 slots; strict cap 1024 -> 4 fit; loose cap 4096.
    ASSERT_TRUE(strict.try_admit(c)) << i;
    ASSERT_TRUE(loose.try_admit(c)) << i;
  }
  ConnectionDescriptor extra = vbr(0, 0, 50e6, 2.4e9 / 4.0);
  EXPECT_FALSE(strict.try_admit(extra));
  EXPECT_TRUE(loose.try_admit(extra));
}

TEST_F(AdmissionTest, BestEffortBypassesReservation) {
  AdmissionController cac = make();
  ConnectionDescriptor be;
  be.traffic_class = TrafficClass::kBestEffort;
  be.input_link = 0;
  be.output_link = 0;
  be.mean_bandwidth_bps = 1e9;
  be.peak_bandwidth_bps = 2.4e9;
  EXPECT_TRUE(cac.try_admit(be));
  EXPECT_EQ(be.slots_per_round, 0u);
  EXPECT_EQ(cac.input_mean_slots(0), 0u);
}

TEST_F(AdmissionTest, ReleaseRestoresBudgets) {
  AdmissionController cac = make();
  ConnectionDescriptor c = cbr(1, 2, 55e6);
  ASSERT_TRUE(cac.try_admit(c));
  EXPECT_EQ(cac.input_mean_slots(1), 24u);
  cac.release(c);
  EXPECT_EQ(cac.input_mean_slots(1), 0u);
  EXPECT_EQ(cac.output_mean_slots(2), 0u);
  EXPECT_EQ(cac.input_peak_slots(1), 0u);
}

TEST_F(AdmissionTest, ReleaseReadmitCyclesReturnToBaselineExactly) {
  // Fault recovery tears connections down and re-admits them elsewhere, so
  // repeated release / try_admit cycles must never drift the budgets.
  AdmissionController cac = make();
  ConnectionDescriptor keeper = vbr(0, 3, 100e6, 600e6);
  ASSERT_TRUE(cac.try_admit(keeper));
  const std::uint32_t base_in_mean = cac.input_mean_slots(0);
  const std::uint32_t base_in_peak = cac.input_peak_slots(0);
  const std::uint32_t base_out_mean = cac.output_mean_slots(3);

  for (int cycle = 0; cycle < 100; ++cycle) {
    ConnectionDescriptor cbr_conn = cbr(0, 1, 55e6);
    ConnectionDescriptor vbr_conn = vbr(0, 3, 100e6, 600e6);
    ASSERT_TRUE(cac.try_admit(cbr_conn));
    ASSERT_TRUE(cac.try_admit(vbr_conn));
    cac.release(vbr_conn);
    cac.release(cbr_conn);
    ASSERT_EQ(cac.input_mean_slots(0), base_in_mean) << cycle;
    ASSERT_EQ(cac.input_peak_slots(0), base_in_peak) << cycle;
    ASSERT_EQ(cac.output_mean_slots(1), 0u) << cycle;
    ASSERT_EQ(cac.output_mean_slots(3), base_out_mean) << cycle;
  }

  // After the churn, a link that was repeatedly filled still has its full
  // capacity: the round can be packed to the brim exactly once more.
  for (int i = 0; i < 42; ++i) {
    ConnectionDescriptor c = cbr(1, static_cast<std::uint32_t>(i % 4), 55e6);
    ASSERT_TRUE(cac.try_admit(c)) << i;
  }
  ConnectionDescriptor overflow = cbr(1, 0, 55e6);
  EXPECT_FALSE(cac.try_admit(overflow));
}

TEST_F(AdmissionTest, RejectedAdmissionLeavesBudgetsAndDescriptorUntouched) {
  // try_admit checks the input link first; if the *output* link rejects, the
  // input-link budget must not have been partially committed, and the
  // descriptor's slot fields must stay exactly as the caller left them.
  AdmissionController cac = make();
  // Fill output link 2 to the brim: 42 x 24 slots = 1008 of 1024.
  for (int i = 0; i < 42; ++i) {
    ConnectionDescriptor filler = cbr(static_cast<std::uint32_t>(i % 4), 2,
                                      55e6);
    ASSERT_TRUE(cac.try_admit(filler)) << i;
  }
  const std::uint32_t in_mean = cac.input_mean_slots(3);
  const std::uint32_t in_peak = cac.input_peak_slots(3);
  const std::uint64_t outstanding = cac.outstanding_reservations();

  ConnectionDescriptor rejected = cbr(3, 2, 55e6);
  rejected.slots_per_round = 0xdead;
  rejected.peak_slots_per_round = 0xbeef;
  EXPECT_FALSE(cac.try_admit(rejected));
  // Input-link budget untouched, descriptor untouched, ledger untouched.
  EXPECT_EQ(cac.input_mean_slots(3), in_mean);
  EXPECT_EQ(cac.input_peak_slots(3), in_peak);
  EXPECT_EQ(rejected.slots_per_round, 0xdeadu);
  EXPECT_EQ(rejected.peak_slots_per_round, 0xbeefu);
  EXPECT_EQ(cac.outstanding_reservations(), outstanding);
  // The link still has room for one small connection: a partial commit
  // would have eaten it.
  ConnectionDescriptor small = cbr(3, 2, 1e6);
  EXPECT_TRUE(cac.try_admit(small));
}

TEST_F(AdmissionTest, OutstandingReservationsTracksAdmitRelease) {
  AdmissionController cac = make();
  EXPECT_EQ(cac.outstanding_reservations(), 0u);
  ConnectionDescriptor a = cbr(0, 1, 55e6);
  ConnectionDescriptor b = vbr(1, 2, 100e6, 600e6);
  ASSERT_TRUE(cac.try_admit(a));
  ASSERT_TRUE(cac.try_admit(b));
  EXPECT_EQ(cac.outstanding_reservations(), 2u);

  // Best effort reserves nothing and never enters the ledger.
  ConnectionDescriptor be;
  be.traffic_class = TrafficClass::kBestEffort;
  be.input_link = 0;
  be.output_link = 1;
  ASSERT_TRUE(cac.try_admit(be));
  EXPECT_EQ(cac.outstanding_reservations(), 2u);
  cac.release(be);  // no-op, not an error
  EXPECT_EQ(cac.outstanding_reservations(), 2u);

  cac.release(a);
  EXPECT_EQ(cac.outstanding_reservations(), 1u);
  cac.release(b);
  EXPECT_EQ(cac.outstanding_reservations(), 0u);
}

using AdmissionDeathTest = AdmissionTest;

TEST_F(AdmissionDeathTest, ReleaseOfNeverAdmittedDescriptorAborts) {
  AdmissionController cac = make();
  ConnectionDescriptor ghost = cbr(0, 1, 55e6);
  ghost.slots_per_round = 24;
  ghost.peak_slots_per_round = 24;
  EXPECT_DEATH(cac.release(ghost), "never admitted");
}

TEST_F(AdmissionDeathTest, DoubleReleaseAborts) {
  AdmissionController cac = make();
  ConnectionDescriptor c = cbr(0, 1, 55e6);
  ASSERT_TRUE(cac.try_admit(c));
  cac.release(c);
  EXPECT_DEATH(cac.release(c), "already released");
}

TEST_F(AdmissionTest, MaxMeanUtilizationTracksBusiestLink) {
  AdmissionController cac = make();
  EXPECT_DOUBLE_EQ(cac.max_mean_utilization(), 0.0);
  ConnectionDescriptor c = cbr(0, 1, 1.2e9);  // half the link: 512 slots
  ASSERT_TRUE(cac.try_admit(c));
  EXPECT_NEAR(cac.max_mean_utilization(), 0.5, 1e-9);
}

}  // namespace
}  // namespace mmr
