// The audit subsystem: differential harness property suite (every arbiter,
// >= 1000 cases each), spec round-trip, shrinker minimality, violation
// detection on deliberately bad matchings, rotation-fairness windows, and
// the simulation-level auditor (audit= override).

#include <gtest/gtest.h>

#include "mmr/arbiter/factory.hpp"
#include "mmr/audit/generator.hpp"
#include "mmr/audit/harness.hpp"
#include "mmr/audit/invariants.hpp"
#include "mmr/audit/shrink.hpp"
#include "mmr/audit/spec.hpp"
#include "mmr/audit/sim_auditor.hpp"
#include "mmr/core/simulation.hpp"

namespace mmr::audit {
namespace {

TEST(AuditSpec, TextRoundTrip) {
  GeneratorOptions gen;
  gen.ports = 6;
  gen.levels = 3;
  gen.profile = LoadProfile::kDuplicate;
  const CaseSpec spec = generate_case("islip", 77, 9, gen);
  ASSERT_GT(spec.total_candidates(), 0u);

  const CaseSpec parsed = parse_case(to_text(spec));
  EXPECT_EQ(parsed.arbiter, spec.arbiter);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.ports, spec.ports);
  EXPECT_EQ(parsed.levels, spec.levels);
  ASSERT_EQ(parsed.steps.size(), spec.steps.size());
  for (std::size_t s = 0; s < spec.steps.size(); ++s) {
    ASSERT_EQ(parsed.steps[s].size(), spec.steps[s].size());
    for (std::size_t c = 0; c < spec.steps[s].size(); ++c) {
      EXPECT_EQ(parsed.steps[s][c].input, spec.steps[s][c].input);
      EXPECT_EQ(parsed.steps[s][c].output, spec.steps[s][c].output);
      EXPECT_EQ(parsed.steps[s][c].level, spec.steps[s][c].level);
      EXPECT_EQ(parsed.steps[s][c].vc, spec.steps[s][c].vc);
      EXPECT_EQ(parsed.steps[s][c].priority, spec.steps[s][c].priority);
    }
  }
}

TEST(AuditSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_case("arbiter coa\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_case("bogus 1\nend\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_case("c 0 1 0 0 5\nend\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_case("ports 0\nend\n"), std::invalid_argument);
}

TEST(AuditGenerator, ProfilesProduceLegalNormalizedSteps) {
  for (const LoadProfile profile : all_profiles()) {
    GeneratorOptions gen;
    gen.ports = 8;
    gen.levels = 4;
    gen.profile = profile;
    const CaseSpec spec = generate_case("coa", 5, 6, gen);
    ASSERT_GT(spec.total_candidates(), 0u) << profile_name(profile);
    for (std::size_t s = 0; s < spec.steps.size(); ++s) {
      // add() aborts on level gaps or priority inversions, so building the
      // set at all proves the generator honours the CandidateSet contract.
      const CandidateSet set = spec.set_for_step(s);
      set.check_invariants();
    }
  }
}

TEST(AuditGenerator, DeterministicForFixedSeed) {
  GeneratorOptions gen;
  const CaseSpec a = generate_case("wfa", 123, 8, gen);
  const CaseSpec b = generate_case("wfa", 123, 8, gen);
  EXPECT_EQ(to_text(a), to_text(b));
  const CaseSpec c = generate_case("wfa", 124, 8, gen);
  EXPECT_NE(to_text(a), to_text(c));
}

// The tentpole property: every registered arbiter honours its documented
// traits on >= 1000 random cases (4 profiles x 250 seeds each).
TEST(AuditHarness, EveryArbiterCleanOverThousandCases) {
  AuditOptions options;
  options.seeds = 250;
  options.steps = 10;
  const AuditReport report = run_audit(options);
  EXPECT_EQ(report.cases,
            arbiter_names().size() * all_profiles().size() * 250u);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(AuditHarness, CleanAtLargerGeometry) {
  AuditOptions options;
  options.seeds = 50;
  options.ports = 8;
  options.levels = 4;
  const AuditReport report = run_audit(options);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(AuditHarness, RunCaseIsDeterministic) {
  GeneratorOptions gen;
  const CaseSpec spec = generate_case("pim", 99, 12, gen);
  EXPECT_TRUE(run_case(spec).empty());
  EXPECT_TRUE(run_case(spec).empty());
}

TEST(AuditInvariants, DetectsMaximalityViolation) {
  CandidateSet set(2, 1);
  set.add({.input = 0, .output = 1, .level = 0, .vc = 0, .priority = 5});
  const Matching empty(2);  // leaves the 0 -> 1 request with both ends free
  const std::vector<Violation> violations =
      check_step(set, empty, arbiter_traits("wfa"), 0, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "maximality");
}

TEST(AuditInvariants, DetectsExactMaximumShortfall) {
  // Requests 0->0, 0->1, 1->0: maximum matching is 2, greedy-on-0->0 is 1.
  CandidateSet set(2, 2);
  set.add({.input = 0, .output = 0, .level = 0, .vc = 0, .priority = 9});
  set.add({.input = 0, .output = 1, .level = 1, .vc = 1, .priority = 8});
  set.add({.input = 1, .output = 0, .level = 0, .vc = 0, .priority = 9});
  EXPECT_EQ(oracle_max_matching(set), 2u);
  Matching one(2);
  one.match(0, 0, 0);
  const std::vector<Violation> violations =
      check_step(set, one, arbiter_traits("maxmatch"), 0, 3);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, "exact-maximum");
  EXPECT_EQ(violations[0].step, 3u);
}

TEST(AuditInvariants, DetectsPriorityOrderViolation) {
  // Output 0 granted to the priority-3 candidate while input 0's priority-9
  // rival goes entirely unmatched.
  CandidateSet set(2, 1);
  set.add({.input = 0, .output = 0, .level = 0, .vc = 0, .priority = 9});
  set.add({.input = 1, .output = 0, .level = 0, .vc = 0, .priority = 3});
  Matching bad(2);
  bad.match(1, 0, 1);
  ArbiterTraits traits;  // isolate the priority check from maximality
  traits.priority_ordered = true;
  const std::vector<Violation> violations = check_step(set, bad, traits, 0, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "priority-order");
}

TEST(AuditInvariants, DetectsIterationBoundViolation) {
  // Two independent requests; a 1-match non-maximal result breaks the
  // "maximal or >= iterations matches" bound at iterations = 2.
  CandidateSet set(2, 1);
  set.add({.input = 0, .output = 0, .level = 0, .vc = 0, .priority = 1});
  set.add({.input = 1, .output = 1, .level = 0, .vc = 0, .priority = 1});
  Matching one(2);
  one.match(0, 0, 0);
  ArbiterTraits traits;
  traits.iteration_bounded = true;
  const std::vector<Violation> violations = check_step(set, one, traits, 2, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "iteration-bound");
}

TEST(AuditInvariants, RotationFairArbitersPassTheWindowCheck) {
  for (const std::string& name : arbiter_names()) {
    if (!arbiter_traits(name).rotation_fair) continue;
    for (const std::uint32_t ports : {4u, 5u, 8u}) {
      const auto arbiter = make_arbiter(name, ports, Rng(1, 0));
      const std::vector<Violation> violations =
          check_rotation_fairness(*arbiter, ports);
      EXPECT_TRUE(violations.empty())
          << name << " at " << ports << " ports: " << violations[0].detail;
    }
  }
}

TEST(AuditInvariants, FixedCornerWavefrontIsNotRotationFair) {
  // The legacy fixed-corner WFA repeats the same corner-biased perfect
  // matching every cycle — the check must see starvation, which is why
  // wfa-fixed does not claim the rotation_fair trait.  (The default "wfa"
  // rotates its corner and passes the window check above.)
  const auto arbiter = make_arbiter("wfa-fixed", 4, Rng(1, 0));
  EXPECT_FALSE(check_rotation_fairness(*arbiter, 4).empty());
}

TEST(AuditShrink, ShrinksToOneMinimalSpec) {
  GeneratorOptions gen;
  gen.ports = 8;
  gen.levels = 3;
  CaseSpec spec = generate_case("coa", 31, 16, gen);
  // Synthetic failure: "some step holds a candidate requesting output 2".
  const FailurePredicate wants_output_2 = [](const CaseSpec& trial) {
    for (const std::vector<Candidate>& step : trial.steps)
      for (const Candidate& c : step)
        if (c.output == 2) return true;
    return false;
  };
  ASSERT_TRUE(wants_output_2(spec));
  const ShrinkResult result = shrink_case(spec, wants_output_2);
  EXPECT_TRUE(wants_output_2(result.spec));
  EXPECT_GT(result.trials, 0u);
  // 1-minimal here means exactly one step with exactly one candidate.
  ASSERT_EQ(result.spec.steps.size(), 1u);
  ASSERT_EQ(result.spec.steps[0].size(), 1u);
  EXPECT_EQ(result.spec.steps[0][0].output, 2);
  EXPECT_EQ(result.spec.steps[0][0].level, 0);  // normalize() relabelled
}

TEST(AuditShrink, PreservesRealViolationsFromABrokenChecker) {
  // Audit a correct arbiter against a deliberately wrong expectation (wfa
  // claiming exact_maximum) to exercise the full failure path: detection,
  // shrinking, and a replayable dumped spec.
  GeneratorOptions gen;
  gen.ports = 6;
  gen.levels = 2;
  ArbiterTraits wrong;
  wrong.exact_maximum = true;

  const auto fails_wrong_traits = [&wrong](const CaseSpec& trial) {
    const auto arbiter = make_arbiter(trial.arbiter, trial.ports,
                                      Rng(trial.seed, 0));
    for (std::size_t s = 0; s < trial.steps.size(); ++s) {
      const CandidateSet set = trial.set_for_step(s);
      const Matching m = arbiter->arbitrate(set);
      if (!check_step(set, m, wrong, 0, s).empty()) return true;
    }
    return false;
  };

  CaseSpec failing;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 200 && !found; ++seed) {
    failing = generate_case("wfa", seed, 8, gen);
    found = fails_wrong_traits(failing);
  }
  ASSERT_TRUE(found) << "wfa matched the Hopcroft-Karp maximum on every try";

  const ShrinkResult result = shrink_case(failing, fails_wrong_traits);
  EXPECT_TRUE(fails_wrong_traits(result.spec));
  EXPECT_LE(result.spec.total_candidates(), failing.total_candidates());
  // The spec round-trips, so the shrunk case replays from its text dump.
  const CaseSpec replayed = parse_case(to_text(result.spec));
  EXPECT_TRUE(fails_wrong_traits(replayed));
}

TEST(AuditReportTest, SummaryCountsAndDumpsFailures) {
  AuditOptions options;
  options.seeds = 3;
  const AuditReport clean = run_audit(options);
  EXPECT_TRUE(clean.clean());
  EXPECT_NE(clean.summary().find("0 failure(s)"), std::string::npos);
}

TEST(SimAuditorTest, AttachesViaConfigAndStaysClean) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 1'000;
  config.measure_cycles = 10'000;
  const std::vector<std::string> applied =
      apply_overrides(config, {"audit=1"});
  ASSERT_EQ(applied, std::vector<std::string>{"audit"});
  EXPECT_EQ(config.audit_every, 1u);
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.7;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  ASSERT_NE(simulation.auditor(), nullptr);
  const SimulationMetrics metrics = simulation.run();
  EXPECT_GT(metrics.flits_delivered, 0u);
  EXPECT_EQ(simulation.auditor()->cycles_audited(), config.total_cycles());
  EXPECT_EQ(simulation.auditor()->sweeps(), config.total_cycles());
}

TEST(SimAuditorTest, SweepPeriodRespectsAuditEvery) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 500;
  config.measure_cycles = 4'500;
  config.audit_every = 64;
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.classes = {kCbrMedium};
  spec.class_weights = {1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  (void)simulation.run();
  ASSERT_NE(simulation.auditor(), nullptr);
  EXPECT_EQ(simulation.auditor()->cycles_audited(), config.total_cycles());
  EXPECT_EQ(simulation.auditor()->sweeps(),
            (config.total_cycles() + 63) / 64);
}

TEST(SimAuditorTest, OffByDefault) {
  SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 10;
  config.measure_cycles = 100;
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.3;
  spec.classes = {kCbrMedium};
  spec.class_weights = {1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  EXPECT_EQ(simulation.auditor(), nullptr);
}

}  // namespace
}  // namespace mmr::audit
