#include "mmr/core/fairness.hpp"

#include <gtest/gtest.h>

#include "mmr/core/simulation.hpp"
#include "mmr/qos/rounds.hpp"

namespace mmr {
namespace {

TEST(JainIndex, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({7.0}), 1.0);
}

TEST(JainIndex, TotalStarvationIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 5.0}), 0.5);
}

TEST(JainIndex, KnownIntermediateValue) {
  // shares (1, 3): (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8.
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 3.0}), 0.8);
}

TEST(JainIndex, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 0.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 20.0, 30.0};
  EXPECT_NEAR(jain_fairness_index(a), jain_fairness_index(b), 1e-12);
}

TEST(NormalizedShares, DividesAndSkipsIdleConnections) {
  const std::vector<double> shares =
      normalized_shares({50, 0, 30}, {100, 0, 30});
  ASSERT_EQ(shares.size(), 2u);  // the idle middle connection is skipped
  EXPECT_DOUBLE_EQ(shares[0], 0.5);
  EXPECT_DOUBLE_EQ(shares[1], 1.0);
}

// --- system level ---------------------------------------------------------

ConnectionId add_cbr(Workload& workload, const SimConfig& config,
                     std::uint32_t in, std::uint32_t out, double bps,
                     double phase = 0.0) {
  ConnectionDescriptor descriptor;
  descriptor.traffic_class = TrafficClass::kCbr;
  descriptor.input_link = in;
  descriptor.output_link = out;
  descriptor.mean_bandwidth_bps = bps;
  descriptor.peak_bandwidth_bps = bps;
  RoundAccounting rounds(config.flit_cycles_per_round(), config.time_base());
  descriptor.slots_per_round = rounds.slots_for_bandwidth(bps);
  const ConnectionId id = workload.table.add(descriptor, config.vcs_per_link);
  workload.sources.push_back(
      std::make_unique<CbrSource>(id, bps, config.time_base(), phase));
  return id;
}

SimConfig fairness_config(const std::string& arbiter) {
  SimConfig config;
  config.vcs_per_link = 16;
  config.arbiter = arbiter;
  config.warmup_cycles = 2'000;
  config.measure_cycles = 25'000;
  return config;
}

TEST(FairnessMetric, NearOneBelowSaturation) {
  SimConfig config = fairness_config("coa");
  Rng rng(0xFA1, 0);
  CbrMixSpec spec;
  spec.target_load = 0.5;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  MmrSimulation simulation(config, build_cbr_mix(config, spec, rng));
  const SimulationMetrics metrics = simulation.run();
  EXPECT_GT(metrics.fairness_index, 0.95);
  EXPECT_EQ(metrics.generated_per_connection.size(),
            metrics.delivered_per_connection.size());
}

TEST(FairnessMetric, FixedWfaLessFairThanCoaUnderContention) {
  // The positional-starvation scenario: inputs 0 and 3 overload output 0.
  // Only the legacy fixed-corner engine ("wfa-fixed") shows the bias; the
  // default "wfa" rotates its corner and shares the hotspot like COA does.
  auto fairness = [](const char* arbiter) {
    SimConfig config = fairness_config(arbiter);
    Workload workload(config.ports);
    add_cbr(workload, config, 0, 0, 0.9 * 2.4e9, 0.0);
    add_cbr(workload, config, 3, 0, 0.9 * 2.4e9, 0.5);
    MmrSimulation simulation(config, std::move(workload));
    return simulation.run().fairness_index;
  };
  const double coa = fairness("coa");
  const double wfa_fixed = fairness("wfa-fixed");
  const double wfa = fairness("wfa");
  EXPECT_GT(coa, 0.98);
  EXPECT_LT(wfa_fixed, coa - 0.05);
  EXPECT_GT(wfa, wfa_fixed + 0.04);  // rotation recovers most of the gap
}

TEST(FairnessMetric, MergeKeepsPooledIndexDropsVectors) {
  SimulationMetrics a;
  a.arbiter = "coa";
  a.fairness_index = 0.9;
  a.generated_per_connection = {10};
  SimulationMetrics b = a;
  b.fairness_index = 0.7;
  const SimulationMetrics merged = merge_runs({a, b});
  EXPECT_NEAR(merged.fairness_index, 0.8, 1e-12);
  EXPECT_TRUE(merged.generated_per_connection.empty());
}

}  // namespace
}  // namespace mmr
