// The mmr-snap-v1 container and the walker layer underneath the
// checkpoint/restore subsystem: encode/decode round trips, corruption
// rejection (magic, version, CRCs, truncation), save/load/hash walk
// consistency, SnapSpec parsing, the SimConfig digest — and the RNG-lane
// round trips every resume-equivalence claim rests on: a restored stream
// must reproduce the next 10k draws of the original exactly, mid-sequence,
// for the raw generator and for the components that own one (traffic
// source, PIM arbiter, MMU ECN-mark lane).

#include "mmr/snapshot/format.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "mmr/arbiter/pim.hpp"
#include "mmr/mmu/mmu.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/traffic/besteffort.hpp"

#include "arbiter_test_util.hpp"

namespace mmr {
namespace {

using snapshot::HashWalker;
using snapshot::LoadWalker;
using snapshot::SaveWalker;
using snapshot::SnapSpec;
using snapshot::Snapshot;
using snapshot::SnapshotError;

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.config_digest = 0xDEADBEEFCAFEF00Dull;
  snap.cycle = 123456;
  snap.sections.push_back({"alpha", {1, 2, 3, 4, 5}});
  snap.sections.push_back({"beta", {}});
  snap.sections.push_back({"gamma", std::vector<std::uint8_t>(1000, 0x5A)});
  return snap;
}

// ---------------------------------------------------------------------------
// Container format

TEST(SnapFormat, EncodeDecodeRoundTrip) {
  const Snapshot original = sample_snapshot();
  const std::vector<std::uint8_t> bytes = snapshot::encode(original);
  const Snapshot decoded = snapshot::decode(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.config_digest, original.config_digest);
  EXPECT_EQ(decoded.cycle, original.cycle);
  ASSERT_EQ(decoded.sections.size(), original.sections.size());
  for (std::size_t i = 0; i < decoded.sections.size(); ++i) {
    EXPECT_EQ(decoded.sections[i].name, original.sections[i].name);
    EXPECT_EQ(decoded.sections[i].data, original.sections[i].data);
  }
}

TEST(SnapFormat, RejectsBadMagicVersionAndTruncation) {
  std::vector<std::uint8_t> bytes = snapshot::encode(sample_snapshot());
  auto corrupted = bytes;
  corrupted[0] ^= 0xFF;  // magic
  EXPECT_THROW((void)snapshot::decode(corrupted.data(), corrupted.size()),
               SnapshotError);
  corrupted = bytes;
  corrupted[12] ^= 0xFF;  // version (header CRC also breaks; either throws)
  EXPECT_THROW((void)snapshot::decode(corrupted.data(), corrupted.size()),
               SnapshotError);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{11},
                                std::size_t{20}, bytes.size() - 1}) {
    EXPECT_THROW((void)snapshot::decode(bytes.data(), cut), SnapshotError)
        << "truncated at " << cut;
  }
}

TEST(SnapFormat, RejectsFlippedSectionByte) {
  const std::vector<std::uint8_t> bytes = snapshot::encode(sample_snapshot());
  // Flip one byte inside the last section's payload: its CRC must catch it.
  auto corrupted = bytes;
  corrupted[corrupted.size() - 1] ^= 0x01;
  EXPECT_THROW((void)snapshot::decode(corrupted.data(), corrupted.size()),
               SnapshotError);
}

TEST(SnapFormat, FileRoundTripAndTornFileRejection) {
  const std::string path = ::testing::TempDir() + "/mmr_fmt_roundtrip.snap";
  const Snapshot original = sample_snapshot();
  snapshot::save_file(path, original);
  const Snapshot loaded = snapshot::load_file(path);
  EXPECT_EQ(loaded.cycle, original.cycle);
  ASSERT_EQ(loaded.sections.size(), original.sections.size());
  EXPECT_EQ(loaded.sections[2].data, original.sections[2].data);
  std::remove(path.c_str());
  EXPECT_THROW((void)snapshot::load_file(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Walkers

struct Composite {
  std::uint64_t a = 0;
  double b = 0.0;
  bool c = false;
  std::string name;
  std::vector<std::uint32_t> pod;

  void snap(snapshot::Walker& w) {
    w.section("composite");
    snapshot::value(w, a);
    snapshot::value(w, b);
    snapshot::value(w, c);
    snapshot::walk_string(w, name);
    snapshot::walk_vector_pod(w, pod);
  }
};

TEST(SnapWalker, SaveLoadRoundTripAndHashAgreement) {
  Composite original{42, 2.5, true, "hot-output", {7, 8, 9}};
  Snapshot snap;
  SaveWalker save(snap);
  original.snap(save);
  ASSERT_EQ(snap.sections.size(), 1u);
  EXPECT_EQ(snap.sections[0].name, "composite");

  Composite restored;
  LoadWalker load(snap);
  restored.snap(load);
  load.finish();
  EXPECT_EQ(restored.a, original.a);
  EXPECT_DOUBLE_EQ(restored.b, original.b);
  EXPECT_EQ(restored.c, original.c);
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.pod, original.pod);

  // Hash walk == serialization walk: equal states hash equal, and one
  // changed byte changes the fingerprint.
  HashWalker ha;
  original.snap(ha);
  HashWalker hb;
  restored.snap(hb);
  EXPECT_EQ(ha.digest(), hb.digest());
  restored.pod[1] ^= 1;
  HashWalker hc;
  restored.snap(hc);
  EXPECT_NE(hc.digest(), ha.digest());
}

TEST(SnapWalker, LoadRefusesShapeMismatch) {
  Composite original{1, 1.0, false, "x", {1}};
  Snapshot snap;
  SaveWalker save(snap);
  original.snap(save);

  // A walk that reads past the section's bytes must throw, not truncate.
  Composite reader;
  LoadWalker load(snap);
  reader.snap(load);
  std::uint8_t extra = 0;
  EXPECT_THROW(snapshot::value(load, extra), SnapshotError);

  // A walk that leaves bytes unread must be caught by finish().
  struct Partial {
    std::uint64_t a = 0;
    void snap(snapshot::Walker& w) {
      w.section("composite");
      snapshot::value(w, a);
    }
  } partial;
  LoadWalker short_load(snap);
  partial.snap(short_load);
  EXPECT_THROW(short_load.finish(), SnapshotError);
}

// ---------------------------------------------------------------------------
// SnapSpec + config digest

TEST(SnapSpecParse, DefaultsAndFullGrammar) {
  const SnapSpec defaults = SnapSpec::parse("every:100");
  EXPECT_EQ(defaults.every, 100u);
  EXPECT_EQ(defaults.hash_every, 0u);
  EXPECT_EQ(defaults.prefix, "mmr-snap");
  EXPECT_TRUE(defaults.on_crash);

  const SnapSpec full = SnapSpec::parse(
      "every:5000,hash_every:250,prefix:ckpt/run1,hash_out:hashes.jsonl,"
      "resume:old.snap,crash:0");
  EXPECT_EQ(full.every, 5000u);
  EXPECT_EQ(full.hash_every, 250u);
  EXPECT_EQ(full.prefix, "ckpt/run1");
  EXPECT_EQ(full.hash_out, "hashes.jsonl");
  EXPECT_EQ(full.resume, "old.snap");
  EXPECT_FALSE(full.on_crash);
}

TEST(SnapSpecParse, RejectsBadInput) {
  EXPECT_THROW((void)SnapSpec::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)SnapSpec::parse("every"), std::invalid_argument);
  EXPECT_THROW((void)SnapSpec::parse("every:abc"), std::invalid_argument);
  EXPECT_THROW((void)SnapSpec::parse("crash:2"), std::invalid_argument);
}

TEST(SnapConfigDigest, PinsBehaviourShapingFieldsOnly) {
  SimConfig a;
  SimConfig b;
  EXPECT_EQ(snapshot::config_digest(a), snapshot::config_digest(b));

  b.seed = a.seed + 1;
  EXPECT_NE(snapshot::config_digest(a), snapshot::config_digest(b));
  b = a;
  b.arbiter = "wfa";
  EXPECT_NE(snapshot::config_digest(a), snapshot::config_digest(b));
  b = a;
  b.flow_spec = "shared";
  EXPECT_NE(snapshot::config_digest(a), snapshot::config_digest(b));

  // The snap policy itself must NOT enter the digest: a run may be resumed
  // under different checkpoint cadence or none at all.
  b = a;
  b.snap_spec = "every:1000,prefix:elsewhere";
  EXPECT_EQ(snapshot::config_digest(a), snapshot::config_digest(b));
}

// ---------------------------------------------------------------------------
// RNG lanes: restored streams reproduce the next 10k draws exactly

constexpr int kDraws = 10'000;

TEST(SnapRngLane, RawStreamMidSequence) {
  Rng original(0xFEED, 42);
  Rng twin(0xFEED, 42);
  for (int i = 0; i < 5'000; ++i) {
    (void)original.next();
    (void)twin.next();
  }

  Snapshot snap;
  SaveWalker save(snap);
  save.section("rng");
  original.snap(save);

  Rng restored(1, 1);  // deliberately different seed; load must overwrite
  LoadWalker load(snap);
  load.section("rng");
  restored.snap(load);
  load.finish();

  for (int i = 0; i < kDraws; ++i) {
    ASSERT_EQ(restored.next(), twin.next()) << "draw " << i;
  }
}

TEST(SnapRngLane, TrafficSourceMidSequence) {
  const TimeBase tb(2.4e9, 4096, 16);
  BestEffortSource original(3, 2.0e8, 8.0, tb, Rng(0xBE, 3));
  BestEffortSource twin(3, 2.0e8, 8.0, tb, Rng(0xBE, 3));
  std::vector<Flit> flits;
  for (Cycle now = 0; now < 5'000; ++now) {
    original.generate(now, flits);
    flits.clear();
    twin.generate(now, flits);
    flits.clear();
  }

  Snapshot snap;
  SaveWalker save(snap);
  save.section("source");
  original.snap(save);
  BestEffortSource restored(3, 2.0e8, 8.0, tb, Rng(9, 9));
  LoadWalker load(snap);
  load.section("source");
  restored.snap(load);
  load.finish();

  std::vector<Flit> expect_flits;
  for (Cycle now = 5'000; now < 15'000; ++now) {
    ASSERT_EQ(restored.next_emission(), twin.next_emission()) << now;
    expect_flits.clear();
    flits.clear();
    twin.generate(now, expect_flits);
    restored.generate(now, flits);
    ASSERT_EQ(flits.size(), expect_flits.size()) << "cycle " << now;
    for (std::size_t i = 0; i < flits.size(); ++i) {
      EXPECT_EQ(flits[i].seq, expect_flits[i].seq);
      EXPECT_EQ(flits[i].generated_at, expect_flits[i].generated_at);
    }
  }
}

TEST(SnapRngLane, PimArbiterMidSequence) {
  constexpr std::uint32_t kPorts = 8;
  PimArbiter original(kPorts, Rng(0xA5, 7));
  PimArbiter twin(kPorts, Rng(0xA5, 7));
  Rng gen(0x600D, 0);
  for (int step = 0; step < 2'000; ++step) {
    const CandidateSet set = test::random_candidates(kPorts, 2, 0.6, gen);
    (void)original.arbitrate(set);
    (void)twin.arbitrate(set);
  }

  Snapshot snap;
  SaveWalker save(snap);
  save.section("pim");
  original.snap(save);
  PimArbiter restored(kPorts, Rng(1, 1));
  LoadWalker load(snap);
  load.section("pim");
  restored.snap(load);
  load.finish();

  // 2k arbitrations x several reservoir draws each >= 10k RNG draws.
  for (int step = 0; step < 2'000; ++step) {
    const CandidateSet set = test::random_candidates(kPorts, 2, 0.6, gen);
    const Matching expect = twin.arbitrate(set);
    const Matching got = restored.arbitrate(set);
    ASSERT_EQ(got.size(), expect.size()) << "step " << step;
    for (std::uint32_t input = 0; input < kPorts; ++input) {
      ASSERT_EQ(got.output_of(input), expect.output_of(input))
          << "step " << step << " input " << input;
    }
  }
}

TEST(SnapRngLane, MmuEcnMarkMidSequence) {
  SimConfig config;
  config.ports = 2;
  config.vcs_per_link = 64;
  const mmu::MmuSpec spec =
      mmu::MmuSpec::parse("shared,pool:4096,xoff:4000,xon:3900,kmin:2,"
                          "kmax:4096,pmax:0.5");
  mmu::SharedBufferMmu original(spec, config);
  mmu::SharedBufferMmu twin(spec, config);

  // Park the shared pool inside the (kmin, kmax) marking band, then hold it
  // there: every further admit draws from the mark lane.
  const auto prefill = [](mmu::SharedBufferMmu& mmu) {
    for (int i = 0; i < 64; ++i)
      (void)mmu.admit(0, TrafficClass::kCbr, 0);
  };
  const auto burn = [](mmu::SharedBufferMmu& mmu, Cycle from, Cycle to) {
    std::vector<bool> marks;
    for (Cycle now = from; now < to; ++now) {
      marks.push_back(mmu.admit(0, TrafficClass::kCbr, now).marked);
      (void)mmu.release(0, TrafficClass::kCbr, now);
    }
    return marks;
  };
  prefill(original);
  prefill(twin);
  const std::vector<bool> before_original = burn(original, 1, 5'000);
  ASSERT_EQ(before_original, burn(twin, 1, 5'000));
  ASSERT_NE(std::count(before_original.begin(), before_original.end(), true),
            0)
      << "the marking band was never entered; the lane drew nothing";

  Snapshot snap;
  SaveWalker save(snap);
  save.section("mmu");
  original.snap(save);
  mmu::SharedBufferMmu restored(spec, config);
  LoadWalker load(snap);
  load.section("mmu");
  restored.snap(load);
  load.finish();

  EXPECT_EQ(burn(restored, 5'000, 15'000), burn(twin, 5'000, 15'000));
}

}  // namespace
}  // namespace mmr
