#include <gtest/gtest.h>

#include "mmr/network/routing.hpp"
#include "mmr/network/topology.hpp"

namespace mmr {
namespace {

TEST(Topology, SingleRouterIsAllLocal) {
  const NetworkTopology topology = NetworkTopology::single(4);
  EXPECT_EQ(topology.routers(), 1u);
  EXPECT_EQ(topology.channels(), 0u);
  EXPECT_EQ(topology.local_input_ports(0).size(), 4u);
  EXPECT_EQ(topology.local_output_ports(0).size(), 4u);
}

TEST(Topology, ConnectWiresBothDirections) {
  NetworkTopology topology(2, 4);
  topology.connect({0, 2}, {1, 3});
  ASSERT_TRUE(topology.downstream(0, 2).has_value());
  EXPECT_EQ(*topology.downstream(0, 2), (PortEndpoint{1, 3}));
  ASSERT_TRUE(topology.upstream(1, 3).has_value());
  EXPECT_EQ(*topology.upstream(1, 3), (PortEndpoint{0, 2}));
  EXPECT_FALSE(topology.output_is_local(0, 2));
  EXPECT_FALSE(topology.input_is_local(1, 3));
  // Other directions stay local.
  EXPECT_TRUE(topology.input_is_local(0, 2));
  EXPECT_TRUE(topology.output_is_local(1, 3));
  EXPECT_EQ(topology.channels(), 1u);
}

TEST(TopologyDeath, RejectsDoubleConnection) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  NetworkTopology topology(3, 4);
  topology.connect({0, 0}, {1, 0});
  EXPECT_DEATH(topology.connect({0, 0}, {2, 0}), "already connected");
  EXPECT_DEATH(topology.connect({2, 0}, {1, 0}), "already connected");
}

TEST(TopologyDeath, RejectsSelfLoop) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  NetworkTopology topology(2, 4);
  EXPECT_DEATH(topology.connect({0, 0}, {0, 1}), "Self-loops|self-loops");
}

TEST(Topology, BidirectionalRingShape) {
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  EXPECT_EQ(ring.channels(), 8u);  // 2 per adjacent pair
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(ring.local_input_ports(r).size(), 2u);
    EXPECT_EQ(ring.local_output_ports(r).size(), 2u);
    EXPECT_EQ(*ring.downstream(r, 0), (PortEndpoint{(r + 1) % 4, 0}));
    EXPECT_EQ(*ring.downstream(r, 1), (PortEndpoint{(r + 3) % 4, 1}));
  }
}

TEST(Topology, LineShape) {
  const NetworkTopology line = NetworkTopology::line(3, 4);
  EXPECT_EQ(line.channels(), 4u);
  EXPECT_EQ(line.local_input_ports(0).size(), 3u);  // end router: 1 used
  EXPECT_EQ(line.local_input_ports(1).size(), 2u);  // middle: 2 used
  EXPECT_FALSE(line.downstream(2, 0).has_value());  // no wrap-around
}

TEST(Topology, MeshShape) {
  const NetworkTopology mesh = NetworkTopology::mesh(3, 3, 5);
  EXPECT_EQ(mesh.routers(), 9u);
  // 12 undirected edges, 2 directed channels each.
  EXPECT_EQ(mesh.channels(), 24u);
  // Corner (0,0): degree 2 -> 3 local ports of 5.
  EXPECT_EQ(mesh.local_input_ports(0).size(), 3u);
  // Centre (1,1) = router 4: degree 4 -> 1 local port.
  EXPECT_EQ(mesh.local_input_ports(4).size(), 1u);
  // East link from router 0 goes to router 1's west port.
  EXPECT_EQ(*mesh.downstream(0, 0), (PortEndpoint{1, 1}));
  // Router 0 has no west/north neighbours: those ports stay local.
  EXPECT_TRUE(mesh.output_is_local(0, 1));
  EXPECT_TRUE(mesh.output_is_local(0, 2));
}

TEST(Topology, MeshRequiresLocalPortHeadroom) {
  // Factories validate and throw (ISSUE 9 satellite): degenerate parameters
  // are caught at construction with the offending dimension in the message.
  // 3x3 has interior degree 4: 4 ports leave the centre router hostless.
  EXPECT_THROW((void)NetworkTopology::mesh(3, 3, 4), std::invalid_argument);
  try {
    (void)NetworkTopology::mesh(3, 3, 4);
    FAIL() << "mesh(3,3,4) must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("local port"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3x3"), std::string::npos);
  }
  // 2x2 uses direction indices up to S=3 (degree 2): 4 ports suffice and
  // each router keeps two local ports.
  const NetworkTopology small = NetworkTopology::mesh(2, 2, 4);
  EXPECT_EQ(small.channels(), 8u);
  EXPECT_EQ(small.local_input_ports(0).size(), 2u);
  try {
    (void)NetworkTopology::mesh(2, 2, 3);
    FAIL() << "mesh(2,2,3) must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("direction span"), std::string::npos);
  }
}

TEST(Topology, FactoriesRejectDegenerateParameters) {
  // Every factory names the offending dimension in its message.
  try {
    (void)NetworkTopology::mesh(0, 3, 5);
    FAIL() << "mesh(0,3,5) must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("width=0"), std::string::npos);
  }
  EXPECT_THROW((void)NetworkTopology::mesh(3, 0, 5), std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::mesh(1, 1, 5), std::invalid_argument);
  try {
    (void)NetworkTopology::bidirectional_ring(1, 4);
    FAIL() << "1-router ring must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("routers=1"), std::string::npos);
  }
  EXPECT_THROW((void)NetworkTopology::bidirectional_ring(0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::bidirectional_ring(4, 2),
               std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::line(1, 4), std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::line(4, 2), std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::torus2d(1, 4, 5),
               std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::torus2d(4, 1, 5),
               std::invalid_argument);
  try {
    (void)NetworkTopology::torus2d(4, 4, 4);
    FAIL() << "torus2d with 4 ports must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ports_per_router=4"),
              std::string::npos);
  }
  EXPECT_THROW((void)NetworkTopology::fat_tree(3, 4), std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::fat_tree(0, 4), std::invalid_argument);
  EXPECT_THROW((void)NetworkTopology::fat_tree(4, 3), std::invalid_argument);
}

TEST(Topology, Torus2dWrapsEveryDimension) {
  const NetworkTopology torus = NetworkTopology::torus2d(4, 3, 5);
  EXPECT_EQ(torus.routers(), 12u);
  // Every router has degree 4: 2 channels per bidirectional link, 2 links
  // owned per router (east, south) => 4 directed channels per router.
  EXPECT_EQ(torus.channels(), 4u * 12u);
  for (std::uint32_t r = 0; r < torus.routers(); ++r) {
    EXPECT_EQ(torus.local_input_ports(r).size(), 1u) << "router " << r;
  }
  // Wraparound: router 3 (x=3,y=0) goes east to router 0; router 8 (y=2)
  // goes south to router 0.
  EXPECT_EQ(*torus.downstream(3, 0), (PortEndpoint{0, 1}));
  EXPECT_EQ(*torus.downstream(8, 3), (PortEndpoint{0, 2}));
}

TEST(Topology, FatTreeStructure) {
  const std::uint32_t k = 4;
  const NetworkTopology tree = NetworkTopology::fat_tree(k, k);
  // (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) = 5k^2/4.
  EXPECT_EQ(tree.routers(), 5 * k * k / 4);
  // Each tier (edge-agg, agg-core) has k * (k/2) * (k/2) bidirectional
  // links; two tiers, two directed channels per link.
  EXPECT_EQ(tree.channels(), 4 * (k / 2) * (k / 2) * k);
  const std::uint32_t first_edge = NetworkTopology::fat_tree_first_edge(k);
  EXPECT_EQ(first_edge, 12u);
  for (std::uint32_t r = 0; r < first_edge; ++r) {
    EXPECT_TRUE(tree.local_input_ports(r).empty()) << "router " << r;
  }
  for (std::uint32_t r = first_edge; r < tree.routers(); ++r) {
    // Edge switches keep k/2 host ports when ports_per_router == k.
    EXPECT_EQ(tree.local_input_ports(r).size(), k / 2) << "router " << r;
  }
  // Paths between hosts in different pods climb to a core and back down.
  const std::vector<Hop> path =
      compute_path(tree, first_edge, 2, tree.routers() - 1, 2);
  EXPECT_EQ(path.size(), 5u);  // edge, agg, core, agg, edge
}

TEST(Routing, MeshPathsAreManhattanShortest) {
  const NetworkTopology mesh = NetworkTopology::mesh(4, 4, 5);
  // Corner to corner: 3 + 3 hops of links = 7 routers traversed.
  EXPECT_EQ(path_length(mesh, 0, 15), 7u);
  EXPECT_EQ(path_length(mesh, 0, 3), 4u);
  EXPECT_EQ(path_length(mesh, 5, 5), 1u);
  // Path is channel-continuous.
  const std::vector<Hop> path = compute_path(mesh, 0, 4, 15, 4);
  ASSERT_EQ(path.size(), 7u);
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    const auto down = mesh.downstream(path[h].router, path[h].out_port);
    ASSERT_TRUE(down.has_value());
    EXPECT_EQ(down->router, path[h + 1].router);
  }
}

TEST(Routing, SameRouterPathIsOneHop) {
  const NetworkTopology topology = NetworkTopology::single(4);
  const std::vector<Hop> path = compute_path(topology, 0, 1, 0, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].router, 0u);
  EXPECT_EQ(path[0].in_port, 1u);
  EXPECT_EQ(path[0].out_port, 3u);
}

TEST(Routing, NeighbourPathInRing) {
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  // Local ports in the ring are 2 and 3.
  const std::vector<Hop> path = compute_path(ring, 0, 2, 1, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].router, 0u);
  EXPECT_EQ(path[0].in_port, 2u);
  EXPECT_EQ(path[0].out_port, 0u);  // clockwise channel
  EXPECT_EQ(path[1].router, 1u);
  EXPECT_EQ(path[1].in_port, 0u);
  EXPECT_EQ(path[1].out_port, 3u);
}

TEST(Routing, RingUsesShortestDirection) {
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(6, 4);
  // 0 -> 5 is one hop counter-clockwise, five hops clockwise.
  const std::vector<Hop> path = compute_path(ring, 0, 2, 5, 2);
  EXPECT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].out_port, 1u);  // counter-clockwise channel
  EXPECT_EQ(path_length(ring, 0, 5), 2u);
  EXPECT_EQ(path_length(ring, 0, 3), 4u);  // diameter direction
}

TEST(Routing, LinePathTraversesAllIntermediates) {
  const NetworkTopology line = NetworkTopology::line(4, 4);
  const std::vector<Hop> path = compute_path(line, 0, 2, 3, 2);
  ASSERT_EQ(path.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(path[i].router, i);
  }
  // Interior hops use the rightward channels (out 0 / in 0).
  for (std::uint32_t i = 0; i + 1 < 4; ++i) EXPECT_EQ(path[i].out_port, 0u);
  for (std::uint32_t i = 1; i < 4; ++i) EXPECT_EQ(path[i].in_port, 0u);
}

TEST(Routing, PathEndpointsAreLocalEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(4, 4);
  // Port 0 is a channel port, not local.
  EXPECT_DEATH((void)compute_path(ring, 0, 0, 1, 2), "local");
  EXPECT_DEATH((void)compute_path(ring, 0, 2, 1, 0), "local");
}

TEST(Routing, ChannelContinuityHoldsOnEveryPairInRing) {
  const NetworkTopology ring = NetworkTopology::bidirectional_ring(5, 4);
  for (std::uint32_t src = 0; src < 5; ++src) {
    for (std::uint32_t dst = 0; dst < 5; ++dst) {
      const std::vector<Hop> path = compute_path(ring, src, 2, dst, 3);
      EXPECT_EQ(path.front().router, src);
      EXPECT_EQ(path.back().router, dst);
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const auto down = ring.downstream(path[h].router, path[h].out_port);
        ASSERT_TRUE(down.has_value());
        EXPECT_EQ(down->router, path[h + 1].router);
        EXPECT_EQ(down->port, path[h + 1].in_port);
      }
    }
  }
}

}  // namespace
}  // namespace mmr
