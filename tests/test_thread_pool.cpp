#include "mmr/sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mmr {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { counter.fetch_add(1); });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::parallel_for(kN, 4, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool::parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingleThreadIsSequentialAndComplete) {
  std::vector<std::size_t> order;
  ThreadPool::parallel_for(20, 1, [&order](std::size_t i) {
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64);
    ThreadPool::parallel_for(64, threads, [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, MoreItemsThanThreads) {
  std::atomic<int> counter{0};
  ThreadPool::parallel_for(257, 3, [&counter](std::size_t) {
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 257);
}

}  // namespace
}  // namespace mmr
