#include "mmr/sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmr {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { counter.fetch_add(1); });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::parallel_for(kN, 4, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool::parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingleThreadIsSequentialAndComplete) {
  std::vector<std::size_t> order;
  ThreadPool::parallel_for(20, 1, [&order](std::size_t i) {
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64);
    ThreadPool::parallel_for(64, threads, [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, MoreItemsThanThreads) {
  std::atomic<int> counter{0};
  ThreadPool::parallel_for(257, 3, [&counter](std::size_t) {
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 257);
}

// Regression: a throwing task used to skip the in-flight decrement, leaving
// wait_idle() blocked forever (and the escaping exception terminated the
// worker).  Now the exception is captured and rethrown from wait_idle.
TEST(ThreadPool, ThrowingTaskIsRethrownFromWaitIdleWithoutDeadlock) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  try {
    pool.wait_idle();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task failed");
  }
}

TEST(ThreadPool, PoolStaysUsableAfterATaskThrows) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed: later batches run and wait cleanly.
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, OnlyFirstOfManyExceptionsIsRethrown) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // all other exceptions were swallowed, none linger
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  std::atomic<int> ran{0};
  try {
    ThreadPool::parallel_for(100, 4, [&ran](std::size_t i) {
      ran.fetch_add(1);
      if (i == 13) throw std::runtime_error("lane failed");
    });
    FAIL() << "expected the lane's exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "lane failed");
  }
  // Every lane observed the failure flag and stopped; no index ran twice.
  EXPECT_LE(ran.load(), 100);
}

}  // namespace
}  // namespace mmr
