// Shared-buffer MMU (`flow=shared`): spec parsing and geometry resolution,
// the reserved -> shared (dynamic threshold) -> headroom admission order,
// Xon/Xoff hysteresis, ECN marking extremes, the EcnReactor's cut/recovery
// dynamics, source throttling, and the end-to-end properties the regime
// guarantees — bit-identity when it is off, and zero lossless-class drops
// under incast when it is on (headroom absorbs the pause latency).

#include "mmr/mmu/mmu.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mmr/core/simulation.hpp"
#include "mmr/fault/fault_plan.hpp"
#include "mmr/network/network.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/traffic/rogue.hpp"

namespace mmr {
namespace {

using mmu::AdmitPool;
using mmu::AdmitResult;
using mmu::EcnReactor;
using mmu::FlowMode;
using mmu::MmuSpec;
using mmu::ReleaseResult;
using mmu::SharedBufferMmu;

SimConfig mmu_config(std::uint32_t ports = 2) {
  SimConfig config;
  config.ports = ports;
  config.vcs_per_link = 64;
  config.warmup_cycles = 500;
  config.measure_cycles = 4'000;
  return config;
}

// ---------------------------------------------------------------------------
// Spec parsing and resolution

TEST(MmuSpecParse, ParsesModesAndKeys) {
  EXPECT_EQ(MmuSpec::parse("credit").mode, FlowMode::kCredit);
  const MmuSpec s = MmuSpec::parse(
      "shared,pool:128,reserved:3,headroom:6,alpha:2.0,alpha_be:0.5,"
      "xoff:16,xon:8,ecn:0,kmin:10,kmax:20,pmax:0.25,ecn_cut:0.75,"
      "ecn_floor:0.2,ecn_recover:512,ecn_step:0.1,sample:32");
  EXPECT_EQ(s.mode, FlowMode::kShared);
  EXPECT_EQ(s.pool_flits, 128u);
  EXPECT_EQ(s.reserved_per_class, 3u);
  EXPECT_EQ(s.headroom_flits, 6u);
  EXPECT_DOUBLE_EQ(s.alpha, 2.0);
  EXPECT_DOUBLE_EQ(s.alpha_be, 0.5);
  EXPECT_EQ(s.xoff_flits, 16u);
  EXPECT_EQ(s.xon_flits, 8u);
  EXPECT_FALSE(s.ecn);
  EXPECT_EQ(s.ecn_kmin, 10u);
  EXPECT_EQ(s.ecn_kmax, 20u);
  EXPECT_DOUBLE_EQ(s.ecn_pmax, 0.25);
  EXPECT_DOUBLE_EQ(s.ecn_cut, 0.75);
  EXPECT_DOUBLE_EQ(s.ecn_floor, 0.2);
  EXPECT_EQ(s.ecn_recover, 512u);
  EXPECT_DOUBLE_EQ(s.ecn_step, 0.1);
  EXPECT_EQ(s.sample_every, 32u);
}

TEST(MmuSpecParse, RejectsBadModeKeysAndCreditPoolKeys) {
  EXPECT_THROW((void)MmuSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)MmuSpec::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)MmuSpec::parse("shared,nope:1"), std::invalid_argument);
  EXPECT_THROW((void)MmuSpec::parse("shared,pool"), std::invalid_argument);
  EXPECT_THROW((void)MmuSpec::parse("shared,pool:abc"), std::invalid_argument);
  // Pool/pause geometry is meaningless without the shared regime.
  EXPECT_THROW((void)MmuSpec::parse("credit,pool:64"), std::invalid_argument);
}

TEST(MmuSpecResolve, DerivesDocumentedDefaults) {
  SimConfig config = mmu_config(4);
  config.credit_latency = 1;
  config.link_latency = 1;
  const MmuSpec r = MmuSpec::parse("shared").resolve(config);
  EXPECT_EQ(r.pool_flits, 48u * 4u);
  EXPECT_EQ(r.headroom_flits, 1u + 1u + 2u);
  EXPECT_EQ(r.xoff_flits, 24u);  // max(8, pool / 2P)
  EXPECT_EQ(r.xon_flits, 12u);
  EXPECT_EQ(r.ecn_kmin, 192u / 8u);
  EXPECT_EQ(r.ecn_kmax, 192u / 2u);
  // One VC may occupy a whole port's admission allowance.
  EXPECT_EQ(r.vc_slots(), 3u * r.reserved_per_class + 192u + r.headroom_flits);
}

TEST(MmuSpecDeath, ValidateRejectsBrokenHysteresisAndEcnBands) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const SimConfig config = mmu_config();
  EXPECT_DEATH((void)MmuSpec::parse("shared,xoff:4,xon:4").resolve(config),
               "hysteresis");
  EXPECT_DEATH((void)MmuSpec::parse("shared,kmin:20,kmax:10").resolve(config),
               "kmin < kmax");
  EXPECT_DEATH((void)MmuSpec::parse("shared,alpha:-1").resolve(config),
               "alphas must be positive");
}

// ---------------------------------------------------------------------------
// Admission order and dynamic threshold

TEST(MmuAdmit, ReservedThenSharedThenHeadroomThenDrop) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:8,reserved:1,headroom:4,xoff:100,xon:50,"
                     "ecn:0"),
      config);

  // alpha = 1: shared admission holds while used < pool - used, i.e. for
  // the first 4 of 8 pool slots when one (port, class) is the sole taker.
  std::vector<AdmitPool> pools;
  for (Cycle now = 0; now < 10; ++now) {
    pools.push_back(mmu.admit(0, TrafficClass::kCbr, now).pool);
  }
  const std::vector<AdmitPool> expected = {
      AdmitPool::kReserved, AdmitPool::kShared,   AdmitPool::kShared,
      AdmitPool::kShared,   AdmitPool::kShared,   AdmitPool::kHeadroom,
      AdmitPool::kHeadroom, AdmitPool::kHeadroom, AdmitPool::kHeadroom,
      AdmitPool::kDropped};
  EXPECT_EQ(pools, expected);
  EXPECT_EQ(mmu.admitted_reserved(), 1u);
  EXPECT_EQ(mmu.admitted_shared(), 4u);
  EXPECT_EQ(mmu.admitted_headroom(), 4u);
  EXPECT_EQ(mmu.drops_lossless(), 1u);
  EXPECT_EQ(mmu.occupancy(), 9u);
  EXPECT_EQ(mmu.headroom_highwater(), 4u);
  mmu.check_invariants();
}

TEST(MmuAdmit, BestEffortUsesLossyAlphaAndNeverTouchesHeadroom) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:8,reserved:1,headroom:4,alpha_be:0.25,"
                     "xoff:100,xon:50,ecn:0"),
      config);
  // Reserved first, then alpha_be = 0.25 admits two shared slots
  // (0 < 0.25*8, 1 < 0.25*7) and rejects the third (2 >= 0.25*6); best
  // effort is lossy, so the overflow is dropped instead of spilling into
  // the pause-absorption headroom.
  EXPECT_EQ(mmu.admit(0, TrafficClass::kBestEffort, 0).pool,
            AdmitPool::kReserved);
  EXPECT_EQ(mmu.admit(0, TrafficClass::kBestEffort, 1).pool,
            AdmitPool::kShared);
  EXPECT_EQ(mmu.admit(0, TrafficClass::kBestEffort, 2).pool,
            AdmitPool::kShared);
  EXPECT_EQ(mmu.admit(0, TrafficClass::kBestEffort, 3).pool,
            AdmitPool::kDropped);
  EXPECT_EQ(mmu.drops_lossy(), 1u);
  EXPECT_EQ(mmu.drops_lossless(), 0u);
  EXPECT_EQ(mmu.headroom_used(0), 0u);
  mmu.check_invariants();
}

TEST(MmuAdmit, DynamicThresholdLoosensAsThePoolDrains) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:8,reserved:0,headroom:4,xoff:100,xon:50,"
                     "ecn:0"),
      config);
  // Fill port 0 to its DT limit (4 of 8), then release two: the remaining
  // free pool shrinks but port 0's own usage shrank faster, so it may admit
  // again — the self-tuning the alpha rule buys.
  for (Cycle now = 0; now < 4; ++now) {
    EXPECT_EQ(mmu.admit(0, TrafficClass::kCbr, now).pool, AdmitPool::kShared);
  }
  EXPECT_NE(mmu.admit(0, TrafficClass::kCbr, 4).pool, AdmitPool::kShared);
  (void)mmu.release(0, TrafficClass::kCbr, 10);
  (void)mmu.release(0, TrafficClass::kCbr, 11);
  EXPECT_EQ(mmu.admit(0, TrafficClass::kCbr, 12).pool, AdmitPool::kShared);
  mmu.check_invariants();
}

TEST(MmuRelease, ReturnsChargesSharedFirstAndBalancesToZero) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:8,reserved:1,headroom:4,xoff:100,xon:50,"
                     "ecn:0"),
      config);
  for (Cycle now = 0; now < 9; ++now) {
    (void)mmu.admit(0, TrafficClass::kCbr, now);
  }
  EXPECT_EQ(mmu.occupancy(), 9u);
  // Releases drain shared, then reserved, then headroom (see the header
  // proof); after all nine the books are empty again.
  for (Cycle now = 100; now < 109; ++now) {
    (void)mmu.release(0, TrafficClass::kCbr, now);
    mmu.check_invariants();
  }
  EXPECT_EQ(mmu.occupancy(), 0u);
  EXPECT_EQ(mmu.shared_used(), 0u);
  EXPECT_EQ(mmu.headroom_used(0), 0u);
  EXPECT_EQ(mmu.port_usage(0), 0u);
}

TEST(MmuDeath, ReleaseWithoutAdmitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(MmuSpec::parse("shared"), config);
  EXPECT_DEATH((void)mmu.release(0, TrafficClass::kCbr, 0),
               "without a matching admit");
}

// ---------------------------------------------------------------------------
// Xon/Xoff hysteresis

TEST(MmuPause, XoffFiresOnceAndXonClosesThePause) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:64,reserved:0,headroom:4,xoff:6,xon:2,"
                     "ecn:0"),
      config);

  bool fired = false;
  for (Cycle now = 0; now < 6; ++now) {
    const AdmitResult r = mmu.admit(0, TrafficClass::kCbr, now);
    if (now < 5) {
      EXPECT_FALSE(r.fire_xoff) << "cycle " << now;
    } else {
      fired = r.fire_xoff;  // usage reached xoff = 6
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(mmu.pause_wanted(0));
  EXPECT_FALSE(mmu.pause_wanted(1));
  EXPECT_EQ(mmu.pause_events(), 1u);

  // Above Xoff while already paused: no re-fire.
  EXPECT_FALSE(mmu.admit(0, TrafficClass::kCbr, 6).fire_xoff);
  EXPECT_EQ(mmu.pause_events(), 1u);
  EXPECT_EQ(mmu.longest_open_pause(20), 20u - 5u);

  // Drain towards Xon = 2: usage 7 -> 3 keeps the pause, reaching 2 ends it
  // and reports the closed duration.
  ReleaseResult released;
  for (Cycle now = 30; mmu.port_usage(0) > 2; ++now) {
    released = mmu.release(0, TrafficClass::kCbr, now);
  }
  EXPECT_TRUE(released.fire_xon);
  EXPECT_EQ(released.paused_cycles, mmu.pause_cycles_max(100));
  EXPECT_FALSE(mmu.pause_wanted(0));
  EXPECT_EQ(mmu.resume_events(), 1u);
  EXPECT_EQ(mmu.longest_open_pause(100), 0u);
  mmu.check_invariants();
}

// ---------------------------------------------------------------------------
// ECN marking extremes

TEST(MmuEcn, NeverMarksBelowKminAlwaysAtOrAboveKmax) {
  const SimConfig config = mmu_config(2);
  SharedBufferMmu mmu(
      MmuSpec::parse("shared,pool:64,reserved:0,headroom:4,xoff:60,xon:30,"
                     "ecn:1,kmin:4,kmax:8,pmax:0.5"),
      config);
  // Shared occupancy 1..4 (<= kmin): the mark probability is exactly zero.
  for (Cycle now = 0; now < 4; ++now) {
    EXPECT_FALSE(mmu.admit(0, TrafficClass::kCbr, now).marked);
  }
  // Push occupancy past kmax; every further shared admission must mark.
  while (mmu.shared_used() < 8) {
    (void)mmu.admit(0, TrafficClass::kCbr, 10);
  }
  for (Cycle now = 20; now < 28; ++now) {
    const AdmitResult r = mmu.admit(1, TrafficClass::kCbr, now);
    ASSERT_EQ(r.pool, AdmitPool::kShared);
    EXPECT_TRUE(r.marked);
  }
  EXPECT_GE(mmu.ecn_marked(), 8u);
  EXPECT_GE(mmu.ecn_eligible(), 16u);
}

// ---------------------------------------------------------------------------
// EcnReactor: multiplicative cut, floor, additive recovery

TEST(EcnReactorTest, CutFloorAndRecoveryDynamics) {
  const SimConfig config = mmu_config(2);
  const MmuSpec spec =
      MmuSpec::parse("shared,ecn_cut:0.5,ecn_floor:0.125,ecn_recover:1024,"
                     "ecn_step:0.05")
          .resolve(config);
  EcnReactor reactor(2, spec);
  EXPECT_DOUBLE_EQ(reactor.factor(0), 1.0);

  EXPECT_TRUE(reactor.on_mark(0));
  EXPECT_DOUBLE_EQ(reactor.factor(0), 0.5);
  EXPECT_TRUE(reactor.on_mark(0));
  EXPECT_TRUE(reactor.on_mark(0));
  EXPECT_DOUBLE_EQ(reactor.factor(0), 0.125);  // clamped at the floor
  EXPECT_FALSE(reactor.on_mark(0));            // already at the floor
  EXPECT_EQ(reactor.cuts(), 3u);
  EXPECT_DOUBLE_EQ(reactor.factor(1), 1.0);  // untouched connection

  std::vector<ConnectionId> changed;
  reactor.on_cycle(0, changed);     // cycle 0 is skipped (determinism)
  reactor.on_cycle(1023, changed);  // off-window
  EXPECT_TRUE(changed.empty());
  reactor.on_cycle(1024, changed);
  ASSERT_EQ(changed.size(), 1u);  // only the throttled connection recovers
  EXPECT_EQ(changed[0], 0u);
  EXPECT_DOUBLE_EQ(reactor.factor(0), 0.175);

  // Recovery saturates at 1.0 and then stops reporting changes.
  for (Cycle w = 2; w < 40; ++w) reactor.on_cycle(w * 1024, changed);
  EXPECT_DOUBLE_EQ(reactor.factor(0), 1.0);
  changed.clear();
  reactor.on_cycle(41 * 1024, changed);
  EXPECT_TRUE(changed.empty());
}

// ---------------------------------------------------------------------------
// Source throttling

TEST(Throttle, CbrSourceStretchesItsInterArrivalTime) {
  const SimConfig config = mmu_config(2);
  CbrSource source(0, 55e6, config.time_base(), 0.0);
  std::vector<Flit> out;
  source.generate(0, out);
  const Cycle gap_full = source.next_emission();
  ASSERT_GT(gap_full, 0u);

  source.throttle(0.5);
  source.generate(gap_full, out);
  const double gap_halved =
      static_cast<double>(source.next_emission() - gap_full);
  EXPECT_NEAR(gap_halved, 2.0 * static_cast<double>(gap_full), 2.0);
}

TEST(Throttle, RogueSourceIgnoresEcnThrottle) {
  const SimConfig config = mmu_config(2);
  RogueSource rogue(std::make_unique<CbrSource>(0, 55e6, config.time_base()),
                    /*scale=*/2.0);
  RogueSource control(std::make_unique<CbrSource>(0, 55e6, config.time_base()),
                      /*scale=*/2.0);
  rogue.throttle(0.25);  // a rogue endpoint ignores congestion marks
  std::vector<Flit> throttled;
  std::vector<Flit> unthrottled;
  for (Cycle now = 0; now < 2'000; ++now) {
    rogue.generate(now, throttled);
    control.generate(now, unthrottled);
  }
  EXPECT_EQ(throttled.size(), unthrottled.size());
}

// ---------------------------------------------------------------------------
// End-to-end: bit-identity when off, lossless survival when on

Workload cbr_workload(const SimConfig& config, double load) {
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = load;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, spec, rng);
}

Workload incast_workload(const SimConfig& config, double hot_load) {
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = hot_load;
  spec.classes = {kCbrHigh};
  spec.class_weights = {1.0};
  spec.hot_output = 0;  // every connection converges on output 0
  return build_cbr_mix(config, spec, rng);
}

void expect_identical(const SimulationMetrics& a, const SimulationMetrics& b) {
  EXPECT_EQ(a.flits_generated, b.flits_generated);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.flit_delay_us.count(), b.flit_delay_us.count());
  EXPECT_EQ(a.flit_delay_us.mean(), b.flit_delay_us.mean());
  EXPECT_EQ(a.flit_delay_us.max(), b.flit_delay_us.max());
  EXPECT_EQ(a.delivered_load, b.delivered_load);
  EXPECT_EQ(a.crossbar_utilization, b.crossbar_utilization);
}

TEST(MmuRegression, FlowUnsetAndFlowCreditAreBitIdenticalOnCbr) {
  SimConfig config = mmu_config(4);
  config.flow_spec = "";
  MmrSimulation unset(config, cbr_workload(config, 0.6));
  const SimulationMetrics a = unset.run();
  EXPECT_FALSE(a.mmu.enabled);

  config.flow_spec = "credit";
  MmrSimulation credit(config, cbr_workload(config, 0.6));
  const SimulationMetrics b = credit.run();
  EXPECT_FALSE(b.mmu.enabled);
  expect_identical(a, b);
}

TEST(MmuRegression, FlowUnsetAndFlowCreditAreBitIdenticalOnVbr) {
  SimConfig config = mmu_config(4);
  const auto vbr_workload = [](const SimConfig& c) {
    Rng rng(c.seed, 2);
    VbrMixSpec spec;
    spec.target_load = 0.6;
    return build_vbr_mix(c, spec, rng);
  };
  config.flow_spec = "";
  MmrSimulation unset(config, vbr_workload(config));
  const SimulationMetrics a = unset.run();

  config.flow_spec = "credit";
  MmrSimulation credit(config, vbr_workload(config));
  const SimulationMetrics b = credit.run();
  expect_identical(a, b);
}

TEST(MmuSimulation, SharedRegimeBalancesAdmissionsAgainstTheRouter) {
  SimConfig config = mmu_config(4);
  config.flow_spec = "shared";
  config.audit_every = 128;  // periodic MMU-aware auditor sweeps ride along
  MmrSimulation simulation(config, incast_workload(config, 1.8 / 4));
  const SimulationMetrics m = simulation.run();
  simulation.check_invariants();

  ASSERT_TRUE(m.mmu.enabled);
  // Every router-accepted flit was charged to exactly one pool.
  EXPECT_EQ(m.mmu.admitted_reserved + m.mmu.admitted_shared +
                m.mmu.admitted_headroom,
            simulation.router().flits_accepted());
  // The 1.8x incast backs up into the input buffers: pauses must fire, the
  // lossless guarantee must hold, and shared-pool pressure must mark.
  EXPECT_GT(m.mmu.pause_events, 0u);
  EXPECT_EQ(m.mmu.drops_lossless, 0u);
  EXPECT_GT(m.mmu.ecn_eligible, 0u);
  EXPECT_GT(m.mmu.ecn_marked, 0u);
  EXPECT_GE(m.mmu.pause_events, m.mmu.resume_events);
  EXPECT_GE(m.mmu.pause_cycles_total, m.mmu.pause_cycles_max);
}

// The property the headroom sizing must deliver: across pause-propagation
// latencies and port counts, an incast plus a rogue source never drops a
// lossless-class flit — the Xoff frame arrives late, but headroom absorbs
// exactly the flits committed during the window.
TEST(MmuProperty, HeadroomAbsorbsThePauseLatencyAcrossTheGrid) {
  for (const Cycle credit_latency : {1u, 3u, 7u}) {
    for (const std::uint32_t ports : {2u, 4u, 8u}) {
      SimConfig config = mmu_config(ports);
      config.credit_latency = credit_latency;
      config.flow_spec = "shared";
      config.rogue_spec = "count:1,scale:4";
      MmrSimulation simulation(config,
                               incast_workload(config, 1.8 / ports));
      const SimulationMetrics m = simulation.run();
      simulation.check_invariants();

      ASSERT_TRUE(m.mmu.enabled);
      EXPECT_EQ(m.mmu.drops_lossless, 0u)
          << "lossless drop at credit_latency=" << credit_latency
          << " ports=" << ports;
      EXPECT_GT(m.mmu.pause_events, 0u)
          << "incast never paused at credit_latency=" << credit_latency
          << " ports=" << ports;
    }
  }
}

TEST(MmuSimulation, WatchdogEscalatesOnOverlongPause) {
  SimConfig config = mmu_config(4);
  config.flow_spec = "shared";
  config.police_spec = "demote,wd_pause_limit:32";
  config.rogue_spec = "count:1,scale:6";
  MmrSimulation simulation(config, incast_workload(config, 2.4 / 4));
  const SimulationMetrics m = simulation.run();
  ASSERT_TRUE(m.mmu.enabled);
  EXPECT_GT(m.mmu.pause_cycles_max, 32u);
  EXPECT_GT(m.overload.watchdog_pause_alarms, 0u);
  EXPECT_GT(m.overload.watchdog_alarms, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: the QoS deadline default is one constant everywhere

TEST(DeadlineUnification, EveryLayerSharesTheSingleConstant) {
  EXPECT_DOUBLE_EQ(overload::PoliceSpec{}.qos_deadline_cycles,
                   kQosDeadlineCycles);
  EXPECT_DOUBLE_EQ(FaultPlan{}.qos_deadline_cycles, kQosDeadlineCycles);

  // The single-router and network saturation heuristics agree on the same
  // default threshold: a delay mean just below the deadline is healthy,
  // just above is saturated (delivery deficit held at zero).
  SimulationMetrics sim;
  sim.flit_cycle_us = 1.0;
  sim.delivered_load = 1.0;
  sim.generated_load_measured = 1.0;
  NetworkMetrics net;
  net.flit_cycle_us = 1.0;
  net.flits_generated = 100;
  net.flits_delivered = 100;
  sim.flit_delay_us.add(kQosDeadlineCycles - 1.0);
  net.flit_delay_us.add(kQosDeadlineCycles - 1.0);
  EXPECT_FALSE(sim.saturated());
  EXPECT_FALSE(net.saturated());
  sim.flit_delay_us.add(kQosDeadlineCycles + 3.0);
  net.flit_delay_us.add(kQosDeadlineCycles + 3.0);
  EXPECT_TRUE(sim.saturated());
  EXPECT_TRUE(net.saturated());
}

// The network layer runs credit flow control only; a shared-flow config is
// rejected at SimConfig::validate_network() time with a parse-style error
// naming the conflicting keys (ISSUE 9 satellite: this was an MMR_ASSERT
// death in the MmrNetworkSimulation constructor).
TEST(Mmu, NetworkRejectsSharedFlow) {
  SimConfig config = mmu_config(4);
  config.flow_spec = "shared";
  EXPECT_THROW(config.validate_network(), std::invalid_argument);
  try {
    config.validate_network();
    FAIL() << "validate_network must reject flow=shared";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("error:", 0), 0u) << what;
    EXPECT_NE(what.find("flow=shared"), std::string::npos) << what;
  }
  const NetworkTopology single = NetworkTopology::single(4);
  Rng rng(1, 1);
  NetworkWorkload workload =
      build_network_cbr_mix(config, single, CbrMixSpec{}, rng);
  EXPECT_THROW(MmrNetworkSimulation(config, std::move(workload)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmr
