#include "mmr/core/experiment.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/sim/thread_pool.hpp"

namespace mmr {

void SweepSpec::validate() const {
  if (loads.empty()) throw std::invalid_argument("sweep has no loads");
  if (arbiters.empty()) throw std::invalid_argument("sweep has no arbiters");
  if (base.ports < 2 || base.ports > kMaxPorts) {
    std::ostringstream msg;
    msg << "sweep ports = " << base.ports
        << " out of range: arbiters represent 2.." << kMaxPorts
        << " ports in a sweep (kMaxPorts, mmr/sim/config.hpp)";
    throw std::invalid_argument(msg.str());
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double load = loads[i];
    if (!(load > 0.0) || !(load <= 2.0) || !std::isfinite(load)) {
      std::ostringstream msg;
      msg << "sweep loads[" << i << "] = " << load
          << " is outside (0, 2]; loads are offered-load fractions";
      throw std::invalid_argument(msg.str());
    }
    if (i > 0 && load <= loads[i - 1]) {
      std::ostringstream msg;
      msg << "sweep loads must be strictly ascending; loads[" << i
          << "] = " << load << (load == loads[i - 1] ? " duplicates" : " <= ")
          << " loads[" << i - 1 << "] = " << loads[i - 1];
      throw std::invalid_argument(msg.str());
    }
  }
  base.validate();
}

Workload build_sweep_workload(const SweepSpec& spec, std::size_t load_index,
                              std::uint32_t replication) {
  MMR_ASSERT(load_index < spec.loads.size());
  // The workload stream depends on the *replication* only: every arbiter at
  // a point sees the same connections, traces and phases, and a higher load
  // extends a lower load's workload (common random numbers; the mix
  // builders fork per-link child streams to keep the prefixes aligned).
  (void)load_index;
  Rng rng(spec.base.seed, 0x100 + 0x10000ull * (replication + 1ull));
  switch (spec.kind) {
    case WorkloadKind::kCbr: {
      CbrMixSpec mix = spec.cbr;
      mix.target_load = spec.loads[load_index];
      return build_cbr_mix(spec.base, mix, rng);
    }
    case WorkloadKind::kVbr: {
      VbrMixSpec mix = spec.vbr;
      mix.target_load = spec.loads[load_index];
      return build_vbr_mix(spec.base, mix, rng);
    }
  }
  MMR_ASSERT_MSG(false, "unreachable workload kind");
  return Workload(spec.base.ports);
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  spec.validate();

  const std::uint32_t reps = std::max<std::uint32_t>(1, spec.replications);
  const std::size_t grid = spec.loads.size() * spec.arbiters.size();
  std::vector<SimulationMetrics> runs(grid * reps);

  // One config per (arbiter, replication), hoisted out of the parallel loop:
  // points at different loads reuse it by const reference instead of copying
  // SimConfig (several strings) once per simulation.  The simulation seed
  // depends on the arbiter so that stochastic arbiters (coa tie-breaks, pim)
  // are independently seeded per point; mix_seed's full-finalizer chain keeps
  // nearby (arbiter, replication) pairs decorrelated.
  std::vector<SimConfig> configs;
  configs.reserve(spec.arbiters.size() * reps);
  for (std::size_t arbiter_index = 0; arbiter_index < spec.arbiters.size();
       ++arbiter_index) {
    for (std::uint32_t replication = 0; replication < reps; ++replication) {
      SimConfig config = spec.base;
      config.arbiter = spec.arbiters[arbiter_index];
      config.seed = mix_seed(spec.base.seed, arbiter_index, replication);
      configs.push_back(std::move(config));
    }
  }

  ThreadPool::parallel_for(grid * reps, spec.threads, [&](std::size_t index) {
    const std::size_t cell = index / reps;
    const auto replication = static_cast<std::uint32_t>(index % reps);
    const std::size_t arbiter_index = cell / spec.loads.size();
    const std::size_t load_index = cell % spec.loads.size();
    const SimConfig& config = configs[arbiter_index * reps + replication];

    MmrSimulation simulation(
        config, build_sweep_workload(spec, load_index, replication));
    runs[index] = simulation.run();
    log_info("sweep run done: ", config.arbiter, " @ ",
             spec.loads[load_index] * 100.0, "% rep ", replication,
             " (delivered ", runs[index].delivered_load * 100.0, "%)");
  });

  std::vector<SweepPoint> points(grid);
  for (std::size_t cell = 0; cell < grid; ++cell) {
    const std::size_t arbiter_index = cell / spec.loads.size();
    const std::size_t load_index = cell % spec.loads.size();
    std::vector<SimulationMetrics> cell_runs(
        runs.begin() + static_cast<std::ptrdiff_t>(cell * reps),
        runs.begin() + static_cast<std::ptrdiff_t>((cell + 1) * reps));
    points[cell].target_load = spec.loads[load_index];
    points[cell].arbiter = spec.arbiters[arbiter_index];
    points[cell].metrics = merge_runs(cell_runs);
  }
  return points;
}

double saturation_load(const std::vector<SweepPoint>& points,
                       const std::string& arbiter) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const SweepPoint& point : points) {
    if (point.arbiter != arbiter) continue;
    if (!point.metrics.saturated()) continue;
    if (std::isnan(best) || point.target_load < best) {
      best = point.target_load;
    }
  }
  return best;
}

}  // namespace mmr
