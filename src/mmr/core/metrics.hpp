// Measurement: exactly the quantities the paper's evaluation reports.
//  * Average flit delay since generation, per CBR bandwidth class (Fig. 5).
//  * Average crossbar utilization (Fig. 8).
//  * Average frame delay since generation — the delay of the last flit of
//    each video frame, measured from the frame boundary (Fig. 9).
//  * Frame jitter — delay variation between adjacent frames of one
//    connection (Section 5.2).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mmr/qos/connection.hpp"
#include "mmr/router/router.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/sim/histogram.hpp"
#include "mmr/sim/stats.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

/// Statistics for one traffic class (e.g. "CBR 64 Kbps", "VBR", "BE").
struct ClassMetrics {
  std::string label;
  std::uint64_t flits_generated = 0;  ///< within the measurement window
  std::uint64_t flits_delivered = 0;
  StreamingStats flit_delay_us;
  LogHistogram flit_delay_hist{0.1, 1.15};

  /// Checkpoint walk: the accumulators only (label and histogram shape are
  /// construction-time constants).
  void snap(snapshot::Walker& w);

  /// Folds another accumulator for the same class label into this one.
  /// StreamingStats::merge rounds differently under reordering, so callers
  /// that need byte-identical reports must fold in a fixed order — see
  /// merge_class_shards.
  void merge_from(const ClassMetrics& other);
};

/// Merges per-shard per-class metrics into one report, independent of the
/// order the shards completed in: inputs are first sorted by shard id, and
/// classes are folded in sorted label order, so net_threads=N reporting is
/// byte-identical to net_threads=1 regardless of scheduling.  The result is
/// sorted by label; labels missing from a shard are simply skipped.
[[nodiscard]] std::vector<ClassMetrics> merge_class_shards(
    std::vector<std::pair<std::uint32_t, std::vector<ClassMetrics>>> shards);

/// Graceful-degradation accounting produced by fault-injection runs (see
/// mmr/fault/).  All-zero when no fault plan is active.
struct DegradationMetrics {
  bool enabled = false;  ///< a fault plan was installed

  // Flit losses, by cause.
  std::uint64_t flits_dropped = 0;    ///< vanished on a faulty link
  std::uint64_t flits_corrupted = 0;  ///< failed CRC at the receiving router
  std::uint64_t flits_flushed = 0;    ///< discarded by connection teardown
  std::uint64_t source_flits_discarded = 0;  ///< generated while disconnected

  // Credit-loop damage and repair.
  std::uint64_t credits_lost = 0;      ///< credit-return messages lost
  std::uint64_t credits_restored = 0;  ///< re-created by the resync watchdog
  std::uint64_t resync_events = 0;     ///< watchdog interventions

  // Connection lifecycle under faults.
  std::uint64_t teardowns = 0;     ///< connections torn off a failed link
  std::uint64_t reroutes = 0;      ///< immediately re-admitted elsewhere
  std::uint64_t readmissions = 0;  ///< re-admitted after an outage
  std::uint64_t connections_lost = 0;  ///< still disconnected at run end

  /// Time from damage to repair: credit-leak age at restoration and
  /// connection outage duration at re-admission.
  StreamingStats recovery_latency_us;
  LogHistogram recovery_latency_hist{0.1, 1.3};

  // QoS impact: deliveries and deadline violations, split by whether any
  // link was inside a down window at delivery time.
  std::uint64_t delivered_during_fault = 0;
  std::uint64_t delivered_outside_fault = 0;
  std::uint64_t qos_violations_during_fault = 0;
  std::uint64_t qos_violations_outside_fault = 0;

  [[nodiscard]] double violation_rate_during_fault() const;
  [[nodiscard]] double violation_rate_outside_fault() const;

  /// Checkpoint walk (fault-injection runs accumulate these live).
  void snap(snapshot::Walker& w);
};

/// Delivered fraction of generated flits for a class (1.0 when nothing was
/// generated): the per-class survival rate fault benches report.
[[nodiscard]] double survival_rate(const ClassMetrics& cls);

/// Injection-policing tallies for one traffic class (mirrors
/// overload::ClassTally; duplicated here so core/metrics stays free of the
/// overload layer's headers).
struct PolicedClassTally {
  std::uint64_t conforming = 0;
  std::uint64_t dropped = 0;
  std::uint64_t demoted = 0;
  std::uint64_t shaped = 0;
  std::uint64_t penalty_overflow = 0;
  std::uint64_t shed = 0;
};

/// Overload-protection accounting produced by runs with `police=` and/or
/// `rogue=` set (see mmr/overload/).  All-zero / disabled otherwise.
struct OverloadMetrics {
  bool enabled = false;      ///< policer and/or rogue sources were active
  std::string policy;        ///< "drop" | "shape" | "demote" | "off"
  std::uint32_t rogue_connections = 0;
  std::uint32_t noncompliant_connections = 0;  ///< ever exceeded contract

  /// Policer verdicts, indexed by TrafficClass (CBR, VBR, BE).
  PolicedClassTally policed[3];

  /// Extra injection delay imposed on shaped flits (shape policy only).
  StreamingStats shape_delay_us;

  // Saturation-watchdog ladder.
  std::uint64_t watchdog_escalations = 0;
  std::uint64_t watchdog_recoveries = 0;
  std::uint64_t watchdog_alarms = 0;
  std::uint64_t watchdog_pause_alarms = 0;  ///< stuck-Xoff escalations
  /// Cycles spent per stage: normal, shed-BE, clamp, alarm.
  std::uint64_t cycles_in_stage[4] = {0, 0, 0, 0};

  // QoS deliveries and deadline violations within the measurement window,
  // split by whether the connection's source was rogue.
  std::uint64_t compliant_delivered = 0;
  std::uint64_t compliant_violations = 0;
  std::uint64_t rogue_delivered = 0;
  std::uint64_t rogue_violations = 0;
  // Policed actions (drops + demotions + overflow), same split.
  std::uint64_t compliant_policed = 0;
  std::uint64_t rogue_policed = 0;

  [[nodiscard]] double compliant_violation_rate() const;
  [[nodiscard]] double rogue_violation_rate() const;
  /// Fraction of the run spent above kNormal (0 when nothing ran).
  [[nodiscard]] double degraded_fraction() const;
};

/// Shared-buffer MMU accounting produced by `flow=shared` runs (see
/// mmr/mmu/).  All-zero / disabled otherwise.
struct MmuMetrics {
  bool enabled = false;  ///< the shared-buffer regime was active

  // Admissions by the pool that absorbed the flit.
  std::uint64_t admitted_reserved = 0;
  std::uint64_t admitted_shared = 0;
  std::uint64_t admitted_headroom = 0;  ///< lossless overflow during pause

  // Refusals, split by loss class.  `drops_lossless` must stay zero — that
  // is the regime's lossless guarantee; bench/incast_survival gates on it.
  std::uint64_t drops_lossless = 0;
  std::uint64_t drops_lossy = 0;

  // Xon/Xoff pause activity.
  std::uint64_t pause_events = 0;
  std::uint64_t resume_events = 0;
  std::uint64_t pause_cycles_total = 0;  ///< summed over ports
  std::uint64_t pause_cycles_max = 0;    ///< longest single pause

  // Occupancy extremes and the sampled shared-pool occupancy profile.
  std::uint64_t headroom_highwater = 0;
  std::uint64_t pool_highwater = 0;
  StreamingStats pool_occupancy;

  // ECN marking and the reactor's response.
  std::uint64_t ecn_marked = 0;
  std::uint64_t ecn_eligible = 0;  ///< shared-pool admissions (mark trials)
  std::uint64_t ecn_cuts = 0;      ///< multiplicative rate reductions taken

  /// Marked fraction of mark-eligible admissions (0 when none).
  [[nodiscard]] double mark_rate() const {
    return ecn_eligible == 0
               ? 0.0
               : static_cast<double>(ecn_marked) /
                     static_cast<double>(ecn_eligible);
  }
};

/// Crosspoint-fabric accounting produced by `qd=cicq` runs (see
/// mmr/router/cicq.hpp).  All-zero / disabled otherwise.
struct CicqMetrics {
  bool enabled = false;      ///< the crosspoint fabric was active
  bool stabilized = false;   ///< burst stabilization (stab:1) was on
  std::uint64_t transfers = 0;         ///< VOQ -> crosspoint moves
  std::uint64_t credit_stalls = 0;     ///< input cycles blocked only on credit
  std::uint64_t burst_activations = 0;   ///< parked credits unlocked
  std::uint64_t burst_deactivations = 0; ///< bursts drained, credits parked
};

struct SimulationMetrics {
  std::string arbiter;
  std::string queue_discipline = "vc";  ///< qd= axis: vc | voq | cicq
  double flit_cycle_us = 0.0;

  // Load accounting (fractions of aggregate link bandwidth).
  double generated_load_nominal = 0.0;  ///< workload construction target hit
  double generated_load_measured = 0.0;
  double delivered_load = 0.0;

  // Crossbar (Fig. 8).
  double crossbar_utilization = 0.0;
  double mean_matching_size = 0.0;
  double mean_reconfigurations = 0.0;

  // Flit-level (Fig. 5).
  std::uint64_t flits_generated = 0;
  std::uint64_t flits_delivered = 0;
  StreamingStats flit_delay_us;
  std::vector<ClassMetrics> per_class;

  // Frame-level (Fig. 9 and the jitter discussion).
  std::uint64_t frames_completed = 0;
  StreamingStats frame_delay_us;
  LogHistogram frame_delay_hist{0.1, 1.15};
  StreamingStats frame_jitter_us;  ///< per-connection mean jitters
  double max_frame_jitter_us = 0.0;

  // End-of-run backlog (flits still in NICs + router): grows without bound
  // past saturation.
  std::uint64_t backlog_flits = 0;

  // Overload protection (mmr/overload/); disabled unless police=/rogue= ran.
  OverloadMetrics overload;

  // Shared-buffer MMU backpressure (mmr/mmu/); disabled unless flow=shared.
  MmuMetrics mmu;

  // Crosspoint fabric (mmr/router/cicq.hpp); disabled unless qd=cicq.
  CicqMetrics cicq;

  // Fairness (Section 3's "efficient and fair resource scheduling"):
  // Jain's index over per-connection delivered/offered shares; 1.0 means
  // every connection received service proportional to its offered load.
  // Per-connection vectors are cleared by merge_runs (workloads differ).
  double fairness_index = 0.0;
  std::vector<std::uint64_t> generated_per_connection;
  std::vector<std::uint64_t> delivered_per_connection;

  /// Saturation heuristic: delivery falls measurably behind generation, or
  /// delays have exploded to hundreds of flit cycles (the paper's "delay
  /// grows without bound" signature).
  [[nodiscard]] bool saturated(double deficit_tolerance = 0.995,
                               double delay_threshold_cycles =
                                   kQosDeadlineCycles) const {
    if (delivered_load < generated_load_measured * deficit_tolerance)
      return true;
    return !flit_delay_us.empty() &&
           flit_delay_us.mean() > delay_threshold_cycles * flit_cycle_us;
  }

  /// Number of independent runs merged into this record (>= 1).
  std::uint32_t merged_runs = 1;

  [[nodiscard]] const ClassMetrics* find_class(const std::string& label) const;
};

/// Pools several runs of the same experiment point (different workload
/// realisations): sample statistics are merged, per-run ratios averaged.
[[nodiscard]] SimulationMetrics merge_runs(
    const std::vector<SimulationMetrics>& runs);

/// Stable class label used for grouping (CBR classes keyed by rate).
[[nodiscard]] std::string class_label(const ConnectionDescriptor& descriptor);

/// Accumulates per-flit / per-frame events during a run.
class MetricsCollector {
 public:
  MetricsCollector(const ConnectionTable& table, const SimConfig& config);

  void on_generated(ConnectionId connection, Cycle generated_at);
  void on_delivered(const MmrRouter::Departure& departure, Cycle delivered_at);

  /// Assembles the final metrics.  `backlog` = flits still queued anywhere.
  [[nodiscard]] SimulationMetrics finalize(const MmrRouter& router,
                                           double generated_load_nominal,
                                           std::uint64_t backlog) const;

  /// Checkpoint walk: every accumulator that feeds finalize().
  void snap(snapshot::Walker& w);

 private:
  [[nodiscard]] bool measured(Cycle cycle) const {
    return cycle >= warmup_;
  }

  const ConnectionTable& table_;
  TimeBase time_base_;
  Cycle warmup_;
  Cycle measure_cycles_;
  std::uint32_t ports_;

  std::vector<std::size_t> class_of_connection_;
  std::vector<ClassMetrics> classes_;
  std::vector<JitterTracker> frame_jitter_;  ///< per QoS connection
  std::vector<std::uint64_t> generated_per_connection_;
  std::vector<std::uint64_t> delivered_per_connection_;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  StreamingStats flit_delay_us_;
  std::uint64_t frames_completed_ = 0;
  StreamingStats frame_delay_us_;
  LogHistogram frame_delay_hist_{0.1, 1.15};
};

}  // namespace mmr
