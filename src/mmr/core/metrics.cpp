#include "mmr/core/metrics.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mmr/core/fairness.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/traffic/cbr.hpp"

namespace mmr {

SimulationMetrics merge_runs(const std::vector<SimulationMetrics>& runs) {
  MMR_ASSERT(!runs.empty());
  SimulationMetrics merged = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const SimulationMetrics& run = runs[r];
    MMR_ASSERT_MSG(run.arbiter == merged.arbiter,
                   "can only merge runs of the same arbiter");
    const double w_old = static_cast<double>(merged.merged_runs);
    const double w_new = w_old + 1.0;
    auto avg = [w_old, w_new](double a, double b) {
      return (a * w_old + b) / w_new;
    };
    merged.generated_load_nominal =
        avg(merged.generated_load_nominal, run.generated_load_nominal);
    merged.generated_load_measured =
        avg(merged.generated_load_measured, run.generated_load_measured);
    merged.delivered_load = avg(merged.delivered_load, run.delivered_load);
    merged.crossbar_utilization =
        avg(merged.crossbar_utilization, run.crossbar_utilization);
    merged.mean_matching_size =
        avg(merged.mean_matching_size, run.mean_matching_size);
    merged.mean_reconfigurations =
        avg(merged.mean_reconfigurations, run.mean_reconfigurations);

    merged.flits_generated += run.flits_generated;
    merged.flits_delivered += run.flits_delivered;
    merged.flit_delay_us.merge(run.flit_delay_us);
    for (const ClassMetrics& cls : run.per_class) {
      ClassMetrics* mine = nullptr;
      for (ClassMetrics& candidate : merged.per_class) {
        if (candidate.label == cls.label) {
          mine = &candidate;
          break;
        }
      }
      if (mine == nullptr) {
        merged.per_class.push_back(cls);
        continue;
      }
      mine->flits_generated += cls.flits_generated;
      mine->flits_delivered += cls.flits_delivered;
      mine->flit_delay_us.merge(cls.flit_delay_us);
      mine->flit_delay_hist.merge(cls.flit_delay_hist);
    }

    merged.frames_completed += run.frames_completed;
    merged.frame_delay_us.merge(run.frame_delay_us);
    merged.frame_delay_hist.merge(run.frame_delay_hist);
    merged.frame_jitter_us.merge(run.frame_jitter_us);
    merged.max_frame_jitter_us =
        std::fmax(merged.max_frame_jitter_us, run.max_frame_jitter_us);
    merged.backlog_flits += run.backlog_flits;
    merged.fairness_index = avg(merged.fairness_index, run.fairness_index);

    MMR_ASSERT_MSG(run.overload.enabled == merged.overload.enabled &&
                       run.overload.policy == merged.overload.policy,
                   "can only merge runs with the same overload setup");
    OverloadMetrics& o = merged.overload;
    const OverloadMetrics& ro = run.overload;
    o.rogue_connections += ro.rogue_connections;
    o.noncompliant_connections += ro.noncompliant_connections;
    for (std::size_t c = 0; c < 3; ++c) {
      o.policed[c].conforming += ro.policed[c].conforming;
      o.policed[c].dropped += ro.policed[c].dropped;
      o.policed[c].demoted += ro.policed[c].demoted;
      o.policed[c].shaped += ro.policed[c].shaped;
      o.policed[c].penalty_overflow += ro.policed[c].penalty_overflow;
      o.policed[c].shed += ro.policed[c].shed;
    }
    o.shape_delay_us.merge(ro.shape_delay_us);
    o.watchdog_escalations += ro.watchdog_escalations;
    o.watchdog_recoveries += ro.watchdog_recoveries;
    o.watchdog_alarms += ro.watchdog_alarms;
    for (std::size_t s = 0; s < 4; ++s)
      o.cycles_in_stage[s] += ro.cycles_in_stage[s];
    o.compliant_delivered += ro.compliant_delivered;
    o.compliant_violations += ro.compliant_violations;
    o.rogue_delivered += ro.rogue_delivered;
    o.rogue_violations += ro.rogue_violations;
    o.compliant_policed += ro.compliant_policed;
    o.rogue_policed += ro.rogue_policed;
    o.watchdog_pause_alarms += ro.watchdog_pause_alarms;

    MMR_ASSERT_MSG(run.mmu.enabled == merged.mmu.enabled,
                   "can only merge runs with the same flow regime");
    MmuMetrics& mm = merged.mmu;
    const MmuMetrics& rm = run.mmu;
    mm.admitted_reserved += rm.admitted_reserved;
    mm.admitted_shared += rm.admitted_shared;
    mm.admitted_headroom += rm.admitted_headroom;
    mm.drops_lossless += rm.drops_lossless;
    mm.drops_lossy += rm.drops_lossy;
    mm.pause_events += rm.pause_events;
    mm.resume_events += rm.resume_events;
    mm.pause_cycles_total += rm.pause_cycles_total;
    mm.pause_cycles_max = std::max(mm.pause_cycles_max, rm.pause_cycles_max);
    mm.headroom_highwater =
        std::max(mm.headroom_highwater, rm.headroom_highwater);
    mm.pool_highwater = std::max(mm.pool_highwater, rm.pool_highwater);
    mm.pool_occupancy.merge(rm.pool_occupancy);
    mm.ecn_marked += rm.ecn_marked;
    mm.ecn_eligible += rm.ecn_eligible;
    mm.ecn_cuts += rm.ecn_cuts;
    MMR_ASSERT_MSG(run.queue_discipline == merged.queue_discipline,
                   "can only merge runs of the same queue discipline");
    MMR_ASSERT_MSG(run.cicq.enabled == merged.cicq.enabled &&
                       run.cicq.stabilized == merged.cicq.stabilized,
                   "can only merge runs with the same crosspoint setup");
    merged.cicq.transfers += run.cicq.transfers;
    merged.cicq.credit_stalls += run.cicq.credit_stalls;
    merged.cicq.burst_activations += run.cicq.burst_activations;
    merged.cicq.burst_deactivations += run.cicq.burst_deactivations;

    // Per-connection vectors are not comparable across workload
    // realisations; only the pooled index survives a merge.
    merged.generated_per_connection.clear();
    merged.delivered_per_connection.clear();
    ++merged.merged_runs;
  }
  return merged;
}

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double DegradationMetrics::violation_rate_during_fault() const {
  return ratio(qos_violations_during_fault, delivered_during_fault);
}

double DegradationMetrics::violation_rate_outside_fault() const {
  return ratio(qos_violations_outside_fault, delivered_outside_fault);
}

double OverloadMetrics::compliant_violation_rate() const {
  return ratio(compliant_violations, compliant_delivered);
}

double OverloadMetrics::rogue_violation_rate() const {
  return ratio(rogue_violations, rogue_delivered);
}

double OverloadMetrics::degraded_fraction() const {
  const std::uint64_t total = cycles_in_stage[0] + cycles_in_stage[1] +
                              cycles_in_stage[2] + cycles_in_stage[3];
  return total == 0
             ? 0.0
             : static_cast<double>(total - cycles_in_stage[0]) /
                   static_cast<double>(total);
}

double survival_rate(const ClassMetrics& cls) {
  return cls.flits_generated == 0
             ? 1.0
             : ratio(cls.flits_delivered, cls.flits_generated);
}

const ClassMetrics* SimulationMetrics::find_class(
    const std::string& label) const {
  for (const ClassMetrics& c : per_class) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

std::string class_label(const ConnectionDescriptor& descriptor) {
  switch (descriptor.traffic_class) {
    case TrafficClass::kVbr:
      return "VBR";
    case TrafficClass::kBestEffort:
      return "BE";
    case TrafficClass::kCbr:
      break;
  }
  // Name the paper's classes; format anything else by rate.
  for (const CbrClass& cls : {kCbrLow, kCbrMedium, kCbrHigh}) {
    if (descriptor.mean_bandwidth_bps == cls.bps) {
      return std::string("CBR ") + cls.name;
    }
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "CBR %.3g Mbps",
                descriptor.mean_bandwidth_bps / 1e6);
  return buf;
}

MetricsCollector::MetricsCollector(const ConnectionTable& table,
                                   const SimConfig& config)
    : table_(table),
      time_base_(config.time_base()),
      warmup_(config.warmup_cycles),
      measure_cycles_(config.measure_cycles),
      ports_(config.ports),
      frame_jitter_(table.size()),
      generated_per_connection_(table.size(), 0),
      delivered_per_connection_(table.size(), 0) {
  class_of_connection_.reserve(table.size());
  for (const ConnectionDescriptor& c : table.all()) {
    const std::string label = class_label(c);
    std::size_t index = classes_.size();
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      if (classes_[i].label == label) {
        index = i;
        break;
      }
    }
    if (index == classes_.size()) {
      ClassMetrics metrics;
      metrics.label = label;
      classes_.push_back(std::move(metrics));
    }
    class_of_connection_.push_back(index);
  }
}

void MetricsCollector::on_generated(ConnectionId connection,
                                    Cycle generated_at) {
  if (!measured(generated_at)) return;
  MMR_ASSERT(connection < class_of_connection_.size());
  ++generated_;
  ++generated_per_connection_[connection];
  ++classes_[class_of_connection_[connection]].flits_generated;
}

void MetricsCollector::on_delivered(const MmrRouter::Departure& departure,
                                    Cycle delivered_at) {
  if (!measured(delivered_at)) return;
  const Flit& flit = departure.flit;
  MMR_ASSERT(flit.connection < class_of_connection_.size());
  MMR_ASSERT(delivered_at >= flit.generated_at);

  const double delay_us = time_base_.cycles_to_us(
      static_cast<double>(delivered_at - flit.generated_at));
  ++delivered_;
  ++delivered_per_connection_[flit.connection];
  flit_delay_us_.add(delay_us);
  ClassMetrics& cls = classes_[class_of_connection_[flit.connection]];
  ++cls.flits_delivered;
  cls.flit_delay_us.add(delay_us);
  cls.flit_delay_hist.add(delay_us);

  // Frame completion: the paper measures frame delay as the delay of the
  // last flit of the frame since its generation — a flit-delay measure, so
  // it compares across injection models (Section 5.2).
  const ConnectionDescriptor& descriptor = table_.get(flit.connection);
  if (flit.last_of_frame && descriptor.traffic_class == TrafficClass::kVbr) {
    const double frame_delay_us = delay_us;
    ++frames_completed_;
    frame_delay_us_.add(frame_delay_us);
    frame_delay_hist_.add(frame_delay_us);
    frame_jitter_[flit.connection].add(frame_delay_us);
  }
}

SimulationMetrics MetricsCollector::finalize(const MmrRouter& router,
                                             double generated_load_nominal,
                                             std::uint64_t backlog) const {
  SimulationMetrics m;
  m.arbiter = router.arbiter().name();
  switch (router.queue_discipline()) {
    case QueueDiscipline::kVc:
      m.queue_discipline = "vc";
      break;
    case QueueDiscipline::kVoq:
      m.queue_discipline = "voq";
      break;
    case QueueDiscipline::kCicq:
      m.queue_discipline = "cicq";
      break;
  }
  if (const CicqFabric* fabric = router.cicq()) {
    m.cicq.enabled = true;
    m.cicq.stabilized = fabric->spec().stabilize;
    m.cicq.transfers = fabric->transfers();
    m.cicq.credit_stalls = fabric->credit_stalls();
    m.cicq.burst_activations = fabric->burst_activations();
    m.cicq.burst_deactivations = fabric->burst_deactivations();
  }
  m.flit_cycle_us = time_base_.flit_cycle_us();
  m.generated_load_nominal = generated_load_nominal;

  const double port_cycles =
      static_cast<double>(ports_) * static_cast<double>(measure_cycles_);
  m.generated_load_measured = static_cast<double>(generated_) / port_cycles;
  m.delivered_load = static_cast<double>(delivered_) / port_cycles;

  m.crossbar_utilization = router.crossbar().utilization();
  m.mean_matching_size = router.crossbar().mean_matching_size();
  m.mean_reconfigurations = router.crossbar().mean_reconfigurations();

  m.flits_generated = generated_;
  m.flits_delivered = delivered_;
  m.flit_delay_us = flit_delay_us_;
  m.per_class = classes_;

  m.frames_completed = frames_completed_;
  m.frame_delay_us = frame_delay_us_;
  m.frame_delay_hist = frame_delay_hist_;
  for (const JitterTracker& jitter : frame_jitter_) {
    if (jitter.count() == 0) continue;
    m.frame_jitter_us.add(jitter.mean_jitter());
    m.max_frame_jitter_us = std::fmax(m.max_frame_jitter_us,
                                      jitter.max_jitter());
  }
  m.backlog_flits = backlog;
  m.generated_per_connection = generated_per_connection_;
  m.delivered_per_connection = delivered_per_connection_;
  m.fairness_index = jain_fairness_index(
      normalized_shares(delivered_per_connection_, generated_per_connection_));
  return m;
}

void ClassMetrics::snap(snapshot::Walker& w) {
  snapshot::value(w, flits_generated);
  snapshot::value(w, flits_delivered);
  flit_delay_us.snap(w);
  flit_delay_hist.snap(w);
}

void ClassMetrics::merge_from(const ClassMetrics& other) {
  MMR_ASSERT_MSG(label == other.label,
                 "merge_from must fold metrics of the same class");
  flits_generated += other.flits_generated;
  flits_delivered += other.flits_delivered;
  flit_delay_us.merge(other.flit_delay_us);
  flit_delay_hist.merge(other.flit_delay_hist);
}

std::vector<ClassMetrics> merge_class_shards(
    std::vector<std::pair<std::uint32_t, std::vector<ClassMetrics>>> shards) {
  // Canonicalise: shard id order first (completion order must not matter),
  // then one fold pass per class label in sorted order.
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> labels;
  for (const auto& [id, classes] : shards) {
    for (const ClassMetrics& cls : classes) {
      if (std::find(labels.begin(), labels.end(), cls.label) == labels.end())
        labels.push_back(cls.label);
    }
  }
  std::sort(labels.begin(), labels.end());

  std::vector<ClassMetrics> merged;
  merged.reserve(labels.size());
  for (const std::string& label : labels) {
    ClassMetrics* out = nullptr;
    for (const auto& [id, classes] : shards) {
      for (const ClassMetrics& cls : classes) {
        if (cls.label != label) continue;
        if (out == nullptr) {
          merged.push_back(cls);
          out = &merged.back();
        } else {
          out->merge_from(cls);
        }
      }
    }
  }
  return merged;
}

void DegradationMetrics::snap(snapshot::Walker& w) {
  snapshot::value(w, enabled);
  snapshot::value(w, flits_dropped);
  snapshot::value(w, flits_corrupted);
  snapshot::value(w, flits_flushed);
  snapshot::value(w, source_flits_discarded);
  snapshot::value(w, credits_lost);
  snapshot::value(w, credits_restored);
  snapshot::value(w, resync_events);
  snapshot::value(w, teardowns);
  snapshot::value(w, reroutes);
  snapshot::value(w, readmissions);
  snapshot::value(w, connections_lost);
  recovery_latency_us.snap(w);
  recovery_latency_hist.snap(w);
  snapshot::value(w, delivered_during_fault);
  snapshot::value(w, delivered_outside_fault);
  snapshot::value(w, qos_violations_during_fault);
  snapshot::value(w, qos_violations_outside_fault);
}

void MetricsCollector::snap(snapshot::Walker& w) {
  // classes_ and frame_jitter_ are sized (and labelled) at construction from
  // the connection table; walk the accumulators in place so a restore keeps
  // the labels instead of default-reconstructing the elements.
  std::uint64_t count = classes_.size();
  snapshot::value(w, count);
  if (w.loading())
    MMR_ASSERT_MSG(count == classes_.size(),
                   "metrics snapshot class count mismatch");
  for (ClassMetrics& c : classes_) c.snap(w);
  count = frame_jitter_.size();
  snapshot::value(w, count);
  if (w.loading())
    MMR_ASSERT_MSG(count == frame_jitter_.size(),
                   "metrics snapshot jitter-tracker count mismatch");
  for (JitterTracker& j : frame_jitter_) j.snap(w);
  snapshot::walk_vector_pod(w, generated_per_connection_);
  snapshot::walk_vector_pod(w, delivered_per_connection_);
  snapshot::value(w, generated_);
  snapshot::value(w, delivered_);
  flit_delay_us_.snap(w);
  snapshot::value(w, frames_completed_);
  frame_delay_us_.snap(w);
  frame_delay_hist_.snap(w);
}

}  // namespace mmr
