#include "mmr/core/simulation.hpp"

#include <optional>

#include "mmr/audit/sim_auditor.hpp"
#include "mmr/mmu/mmu.hpp"
#include "mmr/overload/policer.hpp"
#include "mmr/overload/rogue_apply.hpp"
#include "mmr/overload/watchdog.hpp"
#include "mmr/perf/probe.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/snapshot/format.hpp"
#include "mmr/snapshot/manager.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

namespace {

constexpr Cycle kInvariantCheckPeriod = 1 << 16;

constexpr std::uint32_t kNoSource = ~std::uint32_t{0};

}  // namespace

SimConfig MmrSimulation::with_flow_regime(SimConfig config) {
  if (config.flow_spec.empty()) return config;
  // Parse eagerly so a malformed spec fails before anything is built; only
  // the shared regime changes the buffer geometry (resolve() reads ports and
  // latencies, never buffer_flits_per_vc, so the order is safe).
  const mmu::MmuSpec spec = mmu::MmuSpec::parse(config.flow_spec);
  if (spec.mode == mmu::FlowMode::kShared)
    config.buffer_flits_per_vc = spec.resolve(config).vc_slots();
  return config;
}

MmrSimulation::MmrSimulation(SimConfig config, Workload workload)
    : config_(with_flow_regime(std::move(config))),
      workload_(std::move(workload)),
      router_(config_, workload_.table, Rng(config_.seed, 0xA0)),
      collector_(workload_.table, config_),
      generated_load_nominal_(
          workload_.generated_load(config_.time_base())) {
  config_.validate();
  workload_.check_invariants();

  // Rogue wrapping must precede the emission-heap build below so the heap
  // indexes the wrapped sources.  Wrapping never changes mean_bps(), so the
  // nominal load captured above stays the declared one.
  if (!config_.rogue_spec.empty()) {
    rogue_ids_ = overload::apply_rogue(
        workload_, overload::RogueSpec::parse(config_.rogue_spec));
    is_rogue_.assign(workload_.table.size(), 0);
    for (const ConnectionId id : rogue_ids_) is_rogue_[id] = 1;
  }
  if (!config_.police_spec.empty()) {
    const auto spec = overload::PoliceSpec::parse(config_.police_spec);
    qos_deadline_cycles_ = spec.qos_deadline_cycles;
    policer_ = std::make_unique<overload::InjectionPolicer>(workload_.table,
                                                            config_, spec);
    if (spec.wd_window > 0)
      watchdog_ =
          std::make_unique<overload::SaturationWatchdog>(spec, config_.ports);
  }

  if (config_.shared_flow()) {
    mmu_ = std::make_unique<mmu::SharedBufferMmu>(
        mmu::MmuSpec::parse(config_.flow_spec), config_);
    if (mmu_->spec().ecn) {
      ecn_ = std::make_unique<mmu::EcnReactor>(workload_.table.size(),
                                               mmu_->spec());
      source_of_connection_.assign(workload_.table.size(), kNoSource);
      for (std::uint32_t i = 0; i < workload_.sources.size(); ++i)
        source_of_connection_[workload_.sources[i]->connection()] = i;
    }
  }

  nics_.reserve(config_.ports);
  input_links_.reserve(config_.ports);
  for (std::uint32_t port = 0; port < config_.ports; ++port) {
    nics_.emplace_back(config_.vcs_per_link, config_.buffer_flits_per_vc,
                       config_.credit_latency);
    input_links_.emplace_back(config_.link_latency);
  }

  for (std::uint32_t i = 0; i < workload_.sources.size(); ++i) {
    const Cycle next = workload_.sources[i]->next_emission();
    if (next != kNever) heap_.emplace(next, i);
  }

  if (config_.audit_every > 0)
    auditor_ = std::make_unique<audit::SimAuditor>(config_);

  if (!config_.trace_spec.empty())
    tracer_ = std::make_unique<trace::Tracer>(
        trace::TraceSpec::parse(config_.trace_spec),
        trace::TraceMeta::from_config(config_));

  // Last: every subsystem the walk visits must already exist before a
  // `resume:` checkpoint is overlaid.
  if (!config_.snap_spec.empty()) {
    const snapshot::SnapSpec spec =
        snapshot::SnapSpec::parse(config_.snap_spec);
    snap_mgr_ = std::make_unique<snapshot::SnapshotManager>(
        spec, snapshot::config_digest(config_));
    if (!spec.resume.empty()) restore_checkpoint(spec.resume);
  }
}

MmrSimulation::~MmrSimulation() = default;

const Nic& MmrSimulation::nic(std::uint32_t link) const {
  MMR_ASSERT(link < nics_.size());
  return nics_[link];
}

std::uint64_t MmrSimulation::backlog() const {
  std::uint64_t total = router_.flits_buffered();
  for (const Nic& n : nics_) total += n.total_queued() - n.total_sent();
  for (const LinkPipeline& link : input_links_) total += link.in_flight();
  if (policer_) total += policer_->penalty_backlog();
  return total;
}

void MmrSimulation::step_one() {
  const Cycle now = now_;
  const bool measure = now >= config_.warmup_cycles;

  // Arm this simulation's tracer for the cycle (keeping any externally
  // armed tracer when trace= is unset, mirroring perf::ProbeScope).  The
  // mirrored clock lets clock-less call sites (arbiters, admission) stamp
  // their events with the right cycle.
  trace::Tracer* const tracer =
      tracer_ != nullptr ? tracer_.get() : trace::current();
  const trace::TraceScope trace_scope(tracer);
  if (tracer != nullptr) tracer->set_now(now);

  // 1. Flits whose link transfer completes this cycle enter the VCM —
  // gated, under flow=shared, by the MMU's pool accounting.
  {
    MMR_PERF_SCOPE(perf::Phase::kCredits);
    for (std::uint32_t port = 0; port < config_.ports; ++port) {
      arrival_buffer_.clear();
      input_links_[port].pop_due(now, arrival_buffer_);
      for (const LinkTransfer& transfer : arrival_buffer_) {
        if (mmu_) {
          const Flit& flit = transfer.flit;
          const auto admit = mmu_->admit(port, loss_class(flit), now);
          if (admit.pool == mmu::AdmitPool::kDropped) {
            // The VCM slot this flit was charged a credit for stays free;
            // return the credit so the NIC's ledger keeps balancing.
            nics_[port].return_credit(transfer.vc, now);
            MMR_TRACE_EVENT(trace::mmu_drop_event(now, port, transfer.vc,
                                                  flit.connection, flit.seq,
                                                  mmu_->occupancy()));
            continue;
          }
          if (admit.marked) {
            MMR_TRACE_EVENT(trace::ecn_mark_event(now, port, transfer.vc,
                                                  flit.connection, flit.seq,
                                                  mmu_->shared_used()));
            if (ecn_ && ecn_->on_mark(flit.connection))
              apply_ecn_factor(flit.connection);
          }
          if (admit.fire_xoff) {
            const Cycle effective = now + config_.credit_latency;
            pause_frames_.push_back({effective, port, /*xoff=*/true});
            MMR_TRACE_EVENT(trace::mmu_pause_event(
                now, port, mmu_->port_usage(port), effective));
          }
        }
        router_.accept(port, transfer.vc, transfer.flit, now);
      }
    }
  }

  // 2. Sources generate; flits land in their NIC's per-connection buffer.
  {
    MMR_PERF_SCOPE(perf::Phase::kTraffic);
    while (!heap_.empty() && heap_.top().first <= now) {
      const std::uint32_t index = heap_.top().second;
      heap_.pop();
      TrafficSource& source = *workload_.sources[index];
      flit_buffer_.clear();
      source.generate(now, flit_buffer_);
      const ConnectionDescriptor& descriptor =
          workload_.table.get(source.connection());
      for (const Flit& flit : flit_buffer_) {
        collector_.on_generated(flit.connection, flit.generated_at);
        if (policer_ == nullptr) {
          nics_[descriptor.input_link].deposit(descriptor.vc, flit);
          MMR_TRACE_EVENT(trace::inject_event(now, descriptor.input_link,
                                              descriptor.vc, flit.connection,
                                              flit.seq));
          continue;
        }
        switch (policer_->police(flit, now)) {
          case overload::Verdict::kPass:
            nics_[descriptor.input_link].deposit(descriptor.vc, flit);
            MMR_TRACE_EVENT(trace::inject_event(now, descriptor.input_link,
                                                descriptor.vc, flit.connection,
                                                flit.seq));
            break;
          case overload::Verdict::kDemoted: {
            Flit demoted = flit;
            demoted.demoted = true;
            nics_[descriptor.input_link].deposit(descriptor.vc, demoted);
            if (MMR_TRACE_ON()) {
              MMR_TRACE_EVENT(trace::police_event(
                  now, descriptor.input_link, descriptor.vc, flit.connection,
                  flit.seq, trace::PoliceAction::kDemoted));
              MMR_TRACE_EVENT(trace::inject_event(
                  now, descriptor.input_link, descriptor.vc, flit.connection,
                  flit.seq, /*demoted=*/true));
            }
            break;
          }
          case overload::Verdict::kShaped:  // held in the penalty queue
            MMR_TRACE_EVENT(trace::police_event(
                now, descriptor.input_link, descriptor.vc, flit.connection,
                flit.seq, trace::PoliceAction::kShaped));
            break;
          case overload::Verdict::kDropped:  // discarded at injection
            if (MMR_TRACE_ON()) {
              // Recover the reason the policer recorded in its tallies:
              // best-effort drops while shedding are watchdog sheds; QoS
              // drops under the shape policy mean the penalty queue was
              // full; everything else is a plain contract drop.
              trace::PoliceAction action = trace::PoliceAction::kDropped;
              if (!descriptor.is_qos() && policer_->shedding()) {
                action = trace::PoliceAction::kShed;
              } else if (descriptor.is_qos() &&
                         policer_->spec().policy ==
                             overload::OverloadPolicy::kShape) {
                action = trace::PoliceAction::kPenaltyOverflow;
              }
              MMR_TRACE_EVENT(trace::police_event(now, descriptor.input_link,
                                                  descriptor.vc,
                                                  flit.connection, flit.seq,
                                                  action));
            }
            break;
        }
      }
      const Cycle next = source.next_emission();
      if (next != kNever) {
        MMR_ASSERT_MSG(next > now, "source failed to advance its clock");
        heap_.emplace(next, index);
      }
    }

    // 2b. Shaped flits whose tokens have accrued enter their NIC now.
    if (policer_) {
      release_buffer_.clear();
      policer_->release_due(now, release_buffer_);
      for (const Flit& flit : release_buffer_) {
        const ConnectionDescriptor& descriptor =
            workload_.table.get(flit.connection);
        nics_[descriptor.input_link].deposit(descriptor.vc, flit);
        MMR_TRACE_EVENT(trace::shape_release_event(
            now, descriptor.input_link, descriptor.vc, flit.connection,
            flit.seq, now - flit.generated_at));
        if (measure && flit.generated_at >= config_.warmup_cycles) {
          shape_delay_us_.add(config_.time_base().cycles_to_us(
              static_cast<double>(now - flit.generated_at)));
        }
      }
    }
  }

  // 2c. ECN recovery: factors step back towards 1.0 once per window.
  if (ecn_) {
    ecn_changed_.clear();
    ecn_->on_cycle(now, ecn_changed_);
    for (const ConnectionId connection : ecn_changed_)
      apply_ecn_factor(connection);
  }

  // 3. Pause frames whose credit-channel propagation completes take effect,
  // then each NIC's link controller forwards at most one flit.
  {
    MMR_PERF_SCOPE(perf::Phase::kCredits);
    while (!pause_frames_.empty() &&
           pause_frames_.front().effective_at <= now) {
      const PauseFrame frame = pause_frames_.front();
      pause_frames_.pop_front();
      nics_[frame.port].set_paused(frame.xoff);
    }
    for (std::uint32_t port = 0; port < config_.ports; ++port) {
      if (auto transfer = nics_[port].select_and_send(now)) {
        input_links_[port].push(*transfer, now);
      }
    }
  }

  // 4. One scheduling cycle: link scheduling, switch arbitration, crossbar
  // transit.  Departures complete at now + 1 (one flit time through the
  // switch and output link) and their credits head back to the NIC.
  departure_buffer_.clear();
  router_.step(now, measure, departure_buffer_);

  MMR_PERF_SCOPE(perf::Phase::kMetrics);
  const bool overload_active = policer_ != nullptr || !rogue_ids_.empty();
  for (const MmrRouter::Departure& departure : departure_buffer_) {
    collector_.on_delivered(departure, now + 1);
    nics_[departure.input].return_credit(departure.vc, now);
    if (mmu_) {
      const auto released =
          mmu_->release(departure.input, loss_class(departure.flit), now);
      if (released.fire_xon) {
        const Cycle effective = now + config_.credit_latency;
        pause_frames_.push_back({effective, departure.input, /*xoff=*/false});
        MMR_TRACE_EVENT(trace::mmu_resume_event(
            now, departure.input, mmu_->port_usage(departure.input),
            released.paused_cycles));
      }
    }
    if (MMR_TRACE_ON()) {
      const Flit& flit = departure.flit;
      const std::uint64_t delay = now + 1 - flit.generated_at;
      MMR_TRACE_EVENT(trace::deliver_event(now, departure.input,
                                           departure.output, departure.vc,
                                           flit.connection, flit.seq, delay));
      MMR_TRACE_EVENT(
          trace::credit_return_event(now, departure.input, departure.vc));
      if (workload_.table.get(flit.connection).is_qos() &&
          static_cast<double>(delay) > qos_deadline_cycles_) {
        MMR_TRACE_EVENT(trace::deadline_miss_event(now, departure.input,
                                                   departure.vc,
                                                   flit.connection, flit.seq,
                                                   delay));
      }
    }
    if (observer_) observer_(departure, now + 1);

    // Compliant-vs-rogue QoS deadline split (overload accounting only).
    if (overload_active && measure) {
      const Flit& flit = departure.flit;
      if (workload_.table.get(flit.connection).is_qos()) {
        const bool rogue = !is_rogue_.empty() && is_rogue_[flit.connection];
        const bool violated =
            static_cast<double>(now + 1 - flit.generated_at) >
            qos_deadline_cycles_;
        if (rogue) {
          ++rogue_delivered_;
          if (violated) ++rogue_violations_;
        } else {
          ++compliant_delivered_;
          if (violated) ++compliant_violations_;
        }
      }
    }
  }

  if (mmu_) mmu_->on_cycle(now);

  if (watchdog_) {
    const std::uint64_t sample =
        watchdog_->wants_sample(now) ? backlog() : 0;
    watchdog_->on_cycle(now, sample, *policer_);
    if (mmu_)
      watchdog_->on_mmu_pause(now, mmu_->longest_open_pause(now), *policer_);
  }

  if (auditor_)
    auditor_->on_cycle(now, router_, nics_, input_links_, departure_buffer_,
                       mmu_.get());

  if ((now + 1) % kInvariantCheckPeriod == 0) check_invariants();
  ++now_;
}

SimulationMetrics MmrSimulation::run() {
  MMR_ASSERT_MSG(!ran_, "run() may only be called once");
  ran_ = true;
  const Cycle total = config_.total_cycles();
  if (snap_mgr_) return run_managed(total);
  while (now_ < total) step_one();
  check_invariants();
  if (tracer_) tracer_->write_outputs();
  return finalize();
}

SimulationMetrics MmrSimulation::run_managed(Cycle total) {
  const auto walk = [this](snapshot::Walker& w) { snap_walk(w); };

  // Crash path: on MMR_ASSERT the post-mortem checkpoint is written first,
  // then the previously installed hook (the tracer's flight-recorder dump)
  // runs — one crash, one bundle.  SIGINT/SIGTERM are polled cooperatively
  // at cycle boundaries below.
  std::optional<snapshot::SignalGuard> signals;
  std::optional<snapshot::CrashScope> crash;
  if (snap_mgr_->spec().on_crash) {
    signals.emplace();
    crash.emplace([this, walk] {
      snap_mgr_->write_checkpoint(now_, walk, "crash", /*nothrow=*/true);
    });
  }

  while (now_ < total) {
    step_one();
    snap_mgr_->after_cycle(now_, walk);
    if (watchdog_ && snap_mgr_->spec().on_crash)
      snap_mgr_->on_alarm_count(
          now_, walk, watchdog_->alarms() + watchdog_->pause_alarms(),
          "watchdog");
    if (signals && snapshot::SignalGuard::pending() != 0) {
      const int signal_number = snapshot::SignalGuard::consume();
      const std::string path =
          snap_mgr_->write_checkpoint(now_, walk, "signal", /*nothrow=*/true);
      if (tracer_) tracer_->write_outputs();
      snap_mgr_->write_hash_log();
      throw snapshot::Interrupted(signal_number, path);
    }
  }
  check_invariants();
  if (tracer_) tracer_->write_outputs();
  snap_mgr_->write_hash_log();
  return finalize();
}

std::uint64_t MmrSimulation::state_hash() {
  snapshot::HashWalker hasher;
  snap_walk(hasher);
  return hasher.digest();
}

void MmrSimulation::save_checkpoint(const std::string& path) {
  snapshot::Snapshot snap;
  snap.config_digest = snapshot::config_digest(config_);
  snap.cycle = now_;
  snapshot::SaveWalker writer(snap);
  snap_walk(writer);
  snapshot::save_file(path, snap);
}

void MmrSimulation::restore_checkpoint(const std::string& path) {
  const snapshot::Snapshot snap = snapshot::load_file(path);
  const std::uint64_t digest = snapshot::config_digest(config_);
  if (snap.config_digest != digest)
    throw snapshot::SnapshotError(
        "checkpoint " + path + " was written under a different SimConfig (" +
        std::to_string(snap.config_digest) + " vs " + std::to_string(digest) +
        "); resume requires the identical config and workload");
  snapshot::LoadWalker reader(snap);
  snap_walk(reader);
  reader.finish();
  MMR_ASSERT_MSG(now_ == snap.cycle,
                 "restored clock disagrees with the snapshot header");
}

void MmrSimulation::snap_walk(snapshot::Walker& w) {
  using snapshot::value;

  w.section("sim");
  value(w, now_);
  value(w, compliant_delivered_);
  value(w, compliant_violations_);
  value(w, rogue_delivered_);
  value(w, rogue_violations_);
  shape_delay_us_.snap(w);
  snapshot::walk_deque(w, pause_frames_,
                       [](snapshot::Walker& wk, PauseFrame& frame) {
                         value(wk, frame.effective_at);
                         value(wk, frame.port);
                         value(wk, frame.xoff);
                       });
  // The emission heap's raw array: rebuilding it from the restored sources'
  // next_emission() would not reproduce the original heap layout (and a
  // source that already queued its next emission must not emit twice).
  {
    auto& heap = snapshot::queue_container(heap_);
    std::uint64_t n = heap.size();
    value(w, n);
    if (w.loading()) heap.assign(static_cast<std::size_t>(n), Emission{});
    for (Emission& emission : heap) {
      value(w, emission.first);
      value(w, emission.second);
    }
  }

  w.section("sources");
  for (const auto& source : workload_.sources) source->snap(w);

  w.section("nics");
  for (Nic& nic : nics_) nic.snap(w);

  w.section("links");
  for (LinkPipeline& link : input_links_) link.snap(w);

  w.section("router");
  router_.snap(w);

  w.section("metrics");
  collector_.snap(w);

  // Conditional subsystems: present exactly when the config constructs them,
  // which the config digest pins — a section-name mismatch means a digest
  // bug, and LoadWalker throws rather than misaligning.
  if (policer_) {
    w.section("policer");
    policer_->snap(w);
  }
  if (watchdog_) {
    w.section("watchdog");
    watchdog_->snap(w);
  }
  if (mmu_) {
    w.section("mmu");
    mmu_->snap(w);
  }
  if (ecn_) {
    w.section("ecn");
    ecn_->snap(w);
  }
  if (auditor_) {
    w.section("audit");
    auditor_->snap(w);
  }
  if (tracer_) {
    w.section("trace");
    tracer_->snap(w);
  }
}

SimulationMetrics MmrSimulation::finalize() const {
  SimulationMetrics m =
      collector_.finalize(router_, generated_load_nominal_, backlog());

  if (mmu_) {
    MmuMetrics& mm = m.mmu;
    mm.enabled = true;
    mm.admitted_reserved = mmu_->admitted_reserved();
    mm.admitted_shared = mmu_->admitted_shared();
    mm.admitted_headroom = mmu_->admitted_headroom();
    mm.drops_lossless = mmu_->drops_lossless();
    mm.drops_lossy = mmu_->drops_lossy();
    mm.pause_events = mmu_->pause_events();
    mm.resume_events = mmu_->resume_events();
    mm.pause_cycles_total = mmu_->pause_cycles_total(now_);
    mm.pause_cycles_max = mmu_->pause_cycles_max(now_);
    mm.headroom_highwater = mmu_->headroom_highwater();
    mm.pool_highwater = mmu_->pool_highwater();
    mm.pool_occupancy = mmu_->pool_occupancy();
    mm.ecn_marked = mmu_->ecn_marked();
    mm.ecn_eligible = mmu_->ecn_eligible();
    if (ecn_) mm.ecn_cuts = ecn_->cuts();
  }

  OverloadMetrics& o = m.overload;
  o.enabled = policer_ != nullptr || !rogue_ids_.empty();
  if (!o.enabled) return m;
  o.policy = policer_ ? to_string(policer_->spec().policy) : "off";
  o.rogue_connections = static_cast<std::uint32_t>(rogue_ids_.size());
  o.compliant_delivered = compliant_delivered_;
  o.compliant_violations = compliant_violations_;
  o.rogue_delivered = rogue_delivered_;
  o.rogue_violations = rogue_violations_;
  if (policer_) {
    o.noncompliant_connections = policer_->noncompliant_connections();
    for (const TrafficClass cls :
         {TrafficClass::kCbr, TrafficClass::kVbr, TrafficClass::kBestEffort}) {
      const overload::ClassTally& t = policer_->tally(cls);
      PolicedClassTally& out = o.policed[static_cast<std::size_t>(cls)];
      out.conforming = t.conforming;
      out.dropped = t.dropped;
      out.demoted = t.demoted;
      out.shaped = t.shaped;
      out.penalty_overflow = t.penalty_overflow;
      out.shed = t.shed;
    }
    o.shape_delay_us = shape_delay_us_;
    const std::vector<std::uint64_t>& policed =
        policer_->policed_per_connection();
    for (ConnectionId id = 0; id < policed.size(); ++id) {
      const bool rogue = !is_rogue_.empty() && is_rogue_[id];
      (rogue ? o.rogue_policed : o.compliant_policed) += policed[id];
    }
  }
  if (watchdog_) {
    o.watchdog_escalations = watchdog_->escalations();
    o.watchdog_recoveries = watchdog_->recoveries();
    o.watchdog_alarms = watchdog_->alarms();
    o.watchdog_pause_alarms = watchdog_->pause_alarms();
    for (std::size_t s = 0; s < 4; ++s)
      o.cycles_in_stage[s] = watchdog_->cycles_in_stage(
          static_cast<overload::WatchdogStage>(s));
  }
  return m;
}

TrafficClass MmrSimulation::loss_class(const Flit& flit) const {
  return flit.demoted ? TrafficClass::kBestEffort
                      : workload_.table.get(flit.connection).traffic_class;
}

void MmrSimulation::apply_ecn_factor(ConnectionId connection) {
  const double factor = ecn_->factor(connection);
  const std::uint32_t source = source_of_connection_[connection];
  if (source != kNoSource) workload_.sources[source]->throttle(factor);
  if (policer_) policer_->set_rate_factor(connection, factor);
}

void MmrSimulation::check_invariants() const {
  router_.check_invariants();
  for (const Nic& n : nics_) n.check_invariants();
  if (policer_) policer_->check_invariants();
  if (mmu_) {
    mmu_->check_invariants();
    // Every flit buffered in the router is charged to exactly one pool.
    MMR_ASSERT_MSG(mmu_->occupancy() == router_.flits_buffered(),
                   "mmu occupancy disagrees with the router's buffered flits");
  }
}

}  // namespace mmr
