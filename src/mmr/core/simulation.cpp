#include "mmr/core/simulation.hpp"

#include "mmr/audit/sim_auditor.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/sim/log.hpp"

namespace mmr {

namespace {

constexpr Cycle kInvariantCheckPeriod = 1 << 16;

}  // namespace

MmrSimulation::MmrSimulation(SimConfig config, Workload workload)
    : config_(config),
      workload_(std::move(workload)),
      router_(config_, workload_.table, Rng(config_.seed, 0xA0)),
      collector_(workload_.table, config_),
      generated_load_nominal_(
          workload_.generated_load(config_.time_base())) {
  config_.validate();
  workload_.check_invariants();

  nics_.reserve(config_.ports);
  input_links_.reserve(config_.ports);
  for (std::uint32_t port = 0; port < config_.ports; ++port) {
    nics_.emplace_back(config_.vcs_per_link, config_.buffer_flits_per_vc,
                       config_.credit_latency);
    input_links_.emplace_back(config_.link_latency);
  }

  for (std::uint32_t i = 0; i < workload_.sources.size(); ++i) {
    const Cycle next = workload_.sources[i]->next_emission();
    if (next != kNever) heap_.emplace(next, i);
  }

  if (config_.audit_every > 0)
    auditor_ = std::make_unique<audit::SimAuditor>(config_);
}

MmrSimulation::~MmrSimulation() = default;

const Nic& MmrSimulation::nic(std::uint32_t link) const {
  MMR_ASSERT(link < nics_.size());
  return nics_[link];
}

std::uint64_t MmrSimulation::backlog() const {
  std::uint64_t total = router_.flits_buffered();
  for (const Nic& n : nics_) total += n.total_queued() - n.total_sent();
  for (const LinkPipeline& link : input_links_) total += link.in_flight();
  return total;
}

void MmrSimulation::step_one() {
  const Cycle now = now_;
  const bool measure = now >= config_.warmup_cycles;

  // 1. Flits whose link transfer completes this cycle enter the VCM.
  for (std::uint32_t port = 0; port < config_.ports; ++port) {
    arrival_buffer_.clear();
    input_links_[port].pop_due(now, arrival_buffer_);
    for (const LinkTransfer& transfer : arrival_buffer_) {
      router_.accept(port, transfer.vc, transfer.flit, now);
    }
  }

  // 2. Sources generate; flits land in their NIC's per-connection buffer.
  while (!heap_.empty() && heap_.top().first <= now) {
    const std::uint32_t index = heap_.top().second;
    heap_.pop();
    TrafficSource& source = *workload_.sources[index];
    flit_buffer_.clear();
    source.generate(now, flit_buffer_);
    const ConnectionDescriptor& descriptor =
        workload_.table.get(source.connection());
    for (const Flit& flit : flit_buffer_) {
      nics_[descriptor.input_link].deposit(descriptor.vc, flit);
      collector_.on_generated(flit.connection, flit.generated_at);
    }
    const Cycle next = source.next_emission();
    if (next != kNever) {
      MMR_ASSERT_MSG(next > now, "source failed to advance its clock");
      heap_.emplace(next, index);
    }
  }

  // 3. Each NIC's link controller forwards at most one flit.
  for (std::uint32_t port = 0; port < config_.ports; ++port) {
    if (auto transfer = nics_[port].select_and_send(now)) {
      input_links_[port].push(*transfer, now);
    }
  }

  // 4. One scheduling cycle: link scheduling, switch arbitration, crossbar
  // transit.  Departures complete at now + 1 (one flit time through the
  // switch and output link) and their credits head back to the NIC.
  departure_buffer_.clear();
  router_.step(now, measure, departure_buffer_);
  for (const MmrRouter::Departure& departure : departure_buffer_) {
    collector_.on_delivered(departure, now + 1);
    nics_[departure.input].return_credit(departure.vc, now);
    if (observer_) observer_(departure, now + 1);
  }

  if (auditor_)
    auditor_->on_cycle(now, router_, nics_, input_links_, departure_buffer_);

  if ((now + 1) % kInvariantCheckPeriod == 0) check_invariants();
  ++now_;
}

SimulationMetrics MmrSimulation::run() {
  MMR_ASSERT_MSG(!ran_, "run() may only be called once");
  ran_ = true;
  const Cycle total = config_.total_cycles();
  while (now_ < total) step_one();
  check_invariants();
  return finalize();
}

SimulationMetrics MmrSimulation::finalize() const {
  return collector_.finalize(router_, generated_load_nominal_, backlog());
}

void MmrSimulation::check_invariants() const {
  router_.check_invariants();
  for (const Nic& n : nics_) n.check_invariants();
}

}  // namespace mmr
