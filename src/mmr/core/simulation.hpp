// The single-router experimental setup of Section 5: one MMR, one NIC per
// input link with infinite source buffers, credit-based flow control across
// short links, traffic sources injecting into the NICs.  run() executes
// warmup + measurement and returns the paper's metrics.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "mmr/core/metrics.hpp"
#include "mmr/router/link.hpp"
#include "mmr/router/nic.hpp"
#include "mmr/router/router.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {

namespace audit {
class SimAuditor;
}  // namespace audit

namespace mmu {
class SharedBufferMmu;
class EcnReactor;
}  // namespace mmu

namespace overload {
class InjectionPolicer;
class SaturationWatchdog;
}  // namespace overload

namespace snapshot {
class SnapshotManager;
class Walker;
}  // namespace snapshot

namespace trace {
class Tracer;
}  // namespace trace

class MmrSimulation {
 public:
  MmrSimulation(SimConfig config, Workload workload);
  ~MmrSimulation();  ///< out-of-line for the SimAuditor forward declaration

  /// Runs warmup_cycles + measure_cycles and returns the metrics.  May only
  /// be called once per instance.
  SimulationMetrics run();

  /// Runs a single cycle (exposed for fine-grained integration tests).
  void step_one();

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const ConnectionTable& table() const { return workload_.table; }
  [[nodiscard]] const MmrRouter& router() const { return router_; }
  [[nodiscard]] const Nic& nic(std::uint32_t link) const;

  /// Flits queued in NICs plus buffered in the router right now.
  [[nodiscard]] std::uint64_t backlog() const;

  /// Observer invoked for every departure with its delivery cycle (tests,
  /// tracing, custom sinks).  Set before running.
  using DepartureObserver =
      std::function<void(const MmrRouter::Departure&, Cycle)>;
  void set_departure_observer(DepartureObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] SimulationMetrics finalize() const;

  /// The runtime invariant auditor, or nullptr when `audit=0` (default).
  [[nodiscard]] const audit::SimAuditor* auditor() const {
    return auditor_.get();
  }

  /// The injection policer, or nullptr when `police=` is unset.
  [[nodiscard]] const overload::InjectionPolicer* policer() const {
    return policer_.get();
  }
  /// The saturation watchdog, or nullptr when policing is off or the spec
  /// disables it (wd_window:0).
  [[nodiscard]] const overload::SaturationWatchdog* watchdog() const {
    return watchdog_.get();
  }
  /// ConnectionIds wrapped as rogue sources (empty when `rogue=` is unset).
  [[nodiscard]] const std::vector<ConnectionId>& rogue_connections() const {
    return rogue_ids_;
  }

  /// The shared-buffer MMU, or nullptr when `flow=` is unset or "credit".
  [[nodiscard]] const mmu::SharedBufferMmu* shared_mmu() const {
    return mmu_.get();
  }
  /// The ECN reactor, or nullptr when the MMU is off or marking disabled.
  [[nodiscard]] const mmu::EcnReactor* ecn_reactor() const {
    return ecn_.get();
  }

  /// The event tracer, or nullptr when `trace=` is unset.  Non-const so
  /// tests can snapshot/export after a run; emission itself never touches
  /// simulation state.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const trace::Tracer* tracer() const { return tracer_.get(); }

  void check_invariants() const;

  // --- checkpoint/restore (mmr/snapshot/, `snap=` override) -----------------
  /// The one serialization walk: every mutable piece of simulation state, in
  /// a fixed order, serving SaveWalker, LoadWalker and HashWalker alike.
  /// Conditional sections (policer, MMU, tracer, ...) appear exactly when
  /// the config constructs the subsystem, which the config digest pins.
  void snap_walk(snapshot::Walker& w);

  /// 64-bit FNV-1a StateHash of the current state (the per-cycle divergence
  /// fingerprint).  Works with or without `snap=`.
  [[nodiscard]] std::uint64_t state_hash();

  /// Writes an mmr-snap-v1 checkpoint of the current state to `path`
  /// (atomic: temp file + rename).
  void save_checkpoint(const std::string& path);

  /// Overlays a checkpoint onto this freshly constructed simulation and
  /// fast-forwards the clock.  The (config, workload) must match the saving
  /// run; a config-digest mismatch throws SnapshotError.  `snap=resume:PATH`
  /// calls this from the constructor.
  void restore_checkpoint(const std::string& path);

  /// The snapshot manager, or nullptr when `snap=` is unset.
  [[nodiscard]] const snapshot::SnapshotManager* snapshot_manager() const {
    return snap_mgr_.get();
  }

 private:
  /// run() with snapshot duties armed: periodic checkpoints + state hashes,
  /// crash/watchdog post-mortems, cooperative SIGINT/SIGTERM shutdown.
  SimulationMetrics run_managed(Cycle total);

  /// Normalizes the flow regime before member construction: `flow=shared`
  /// re-sizes the per-VC buffer/credit allowance to the MMU's admission
  /// allowance (MmuSpec::vc_slots), because a single field feeds both the
  /// router's VCM capacity and the NIC's credit budget.  Unset / "credit"
  /// returns the config untouched.
  [[nodiscard]] static SimConfig with_flow_regime(SimConfig config);

  /// A flit's loss class at the MMU: policed-demoted excess is lossy
  /// best-effort regardless of the VC's traffic class.
  [[nodiscard]] TrafficClass loss_class(const Flit& flit) const;

  /// Pushes the reactor's current factor for `connection` into its traffic
  /// source and the policer's token bucket.
  void apply_ecn_factor(ConnectionId connection);

  SimConfig config_;
  Workload workload_;
  MmrRouter router_;
  std::vector<Nic> nics_;
  std::vector<LinkPipeline> input_links_;  ///< NIC -> router, one per port
  MetricsCollector collector_;
  double generated_load_nominal_;

  /// Min-heap of (next emission cycle, source index).
  using Emission = std::pair<Cycle, std::uint32_t>;
  std::priority_queue<Emission, std::vector<Emission>, std::greater<>> heap_;

  DepartureObserver observer_;
  std::unique_ptr<audit::SimAuditor> auditor_;  ///< set when audit_every > 0
  std::unique_ptr<trace::Tracer> tracer_;       ///< set when trace= is present
  std::unique_ptr<snapshot::SnapshotManager> snap_mgr_;  ///< snap= present

  // Overload protection (set only when police= / rogue= are present; an
  // unset spec leaves every pointer null and the hot path untouched).
  std::unique_ptr<overload::InjectionPolicer> policer_;
  std::unique_ptr<overload::SaturationWatchdog> watchdog_;
  std::vector<ConnectionId> rogue_ids_;
  std::vector<char> is_rogue_;  ///< per-connection flag (empty = none)
  double qos_deadline_cycles_ = kQosDeadlineCycles;  ///< violation split
  std::uint64_t compliant_delivered_ = 0;
  std::uint64_t compliant_violations_ = 0;
  std::uint64_t rogue_delivered_ = 0;
  std::uint64_t rogue_violations_ = 0;
  StreamingStats shape_delay_us_;
  std::vector<Flit> release_buffer_;

  // Shared-buffer MMU backpressure (set only when flow=shared; null pointers
  // leave the credit-regime hot path bit-identical to a pre-MMU build).
  std::unique_ptr<mmu::SharedBufferMmu> mmu_;
  std::unique_ptr<mmu::EcnReactor> ecn_;
  /// In-flight Xon/Xoff frames on the credit channel; effective times are
  /// non-decreasing (every frame is stamped now + credit_latency), so a
  /// front-drain applies them in emission order.
  struct PauseFrame {
    Cycle effective_at = 0;
    std::uint32_t port = 0;
    bool xoff = false;
  };
  std::deque<PauseFrame> pause_frames_;
  std::vector<std::uint32_t> source_of_connection_;  ///< ECN throttle lookup
  std::vector<ConnectionId> ecn_changed_;            ///< recovery scratch

  Cycle now_ = 0;
  bool ran_ = false;
  std::vector<Flit> flit_buffer_;
  std::vector<LinkTransfer> arrival_buffer_;
  std::vector<MmrRouter::Departure> departure_buffer_;
};

}  // namespace mmr
