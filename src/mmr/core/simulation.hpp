// The single-router experimental setup of Section 5: one MMR, one NIC per
// input link with infinite source buffers, credit-based flow control across
// short links, traffic sources injecting into the NICs.  run() executes
// warmup + measurement and returns the paper's metrics.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "mmr/core/metrics.hpp"
#include "mmr/router/link.hpp"
#include "mmr/router/nic.hpp"
#include "mmr/router/router.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {

namespace audit {
class SimAuditor;
}  // namespace audit

namespace overload {
class InjectionPolicer;
class SaturationWatchdog;
}  // namespace overload

namespace trace {
class Tracer;
}  // namespace trace

class MmrSimulation {
 public:
  MmrSimulation(SimConfig config, Workload workload);
  ~MmrSimulation();  ///< out-of-line for the SimAuditor forward declaration

  /// Runs warmup_cycles + measure_cycles and returns the metrics.  May only
  /// be called once per instance.
  SimulationMetrics run();

  /// Runs a single cycle (exposed for fine-grained integration tests).
  void step_one();

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const ConnectionTable& table() const { return workload_.table; }
  [[nodiscard]] const MmrRouter& router() const { return router_; }
  [[nodiscard]] const Nic& nic(std::uint32_t link) const;

  /// Flits queued in NICs plus buffered in the router right now.
  [[nodiscard]] std::uint64_t backlog() const;

  /// Observer invoked for every departure with its delivery cycle (tests,
  /// tracing, custom sinks).  Set before running.
  using DepartureObserver =
      std::function<void(const MmrRouter::Departure&, Cycle)>;
  void set_departure_observer(DepartureObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] SimulationMetrics finalize() const;

  /// The runtime invariant auditor, or nullptr when `audit=0` (default).
  [[nodiscard]] const audit::SimAuditor* auditor() const {
    return auditor_.get();
  }

  /// The injection policer, or nullptr when `police=` is unset.
  [[nodiscard]] const overload::InjectionPolicer* policer() const {
    return policer_.get();
  }
  /// The saturation watchdog, or nullptr when policing is off or the spec
  /// disables it (wd_window:0).
  [[nodiscard]] const overload::SaturationWatchdog* watchdog() const {
    return watchdog_.get();
  }
  /// ConnectionIds wrapped as rogue sources (empty when `rogue=` is unset).
  [[nodiscard]] const std::vector<ConnectionId>& rogue_connections() const {
    return rogue_ids_;
  }

  /// The event tracer, or nullptr when `trace=` is unset.  Non-const so
  /// tests can snapshot/export after a run; emission itself never touches
  /// simulation state.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const trace::Tracer* tracer() const { return tracer_.get(); }

  void check_invariants() const;

 private:
  SimConfig config_;
  Workload workload_;
  MmrRouter router_;
  std::vector<Nic> nics_;
  std::vector<LinkPipeline> input_links_;  ///< NIC -> router, one per port
  MetricsCollector collector_;
  double generated_load_nominal_;

  /// Min-heap of (next emission cycle, source index).
  using Emission = std::pair<Cycle, std::uint32_t>;
  std::priority_queue<Emission, std::vector<Emission>, std::greater<>> heap_;

  DepartureObserver observer_;
  std::unique_ptr<audit::SimAuditor> auditor_;  ///< set when audit_every > 0
  std::unique_ptr<trace::Tracer> tracer_;       ///< set when trace= is present

  // Overload protection (set only when police= / rogue= are present; an
  // unset spec leaves every pointer null and the hot path untouched).
  std::unique_ptr<overload::InjectionPolicer> policer_;
  std::unique_ptr<overload::SaturationWatchdog> watchdog_;
  std::vector<ConnectionId> rogue_ids_;
  std::vector<char> is_rogue_;  ///< per-connection flag (empty = none)
  double qos_deadline_cycles_ = 250.0;  ///< violation split threshold
  std::uint64_t compliant_delivered_ = 0;
  std::uint64_t compliant_violations_ = 0;
  std::uint64_t rogue_delivered_ = 0;
  std::uint64_t rogue_violations_ = 0;
  StreamingStats shape_delay_us_;
  std::vector<Flit> release_buffer_;

  Cycle now_ = 0;
  bool ran_ = false;
  std::vector<Flit> flit_buffer_;
  std::vector<LinkTransfer> arrival_buffer_;
  std::vector<MmrRouter::Departure> departure_buffer_;
};

}  // namespace mmr
