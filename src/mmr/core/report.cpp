#include "mmr/core/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "mmr/sim/csv.hpp"

namespace mmr {

namespace {

std::vector<double> sorted_loads(const std::vector<SweepPoint>& points) {
  std::set<double> loads;
  for (const SweepPoint& p : points) loads.insert(p.target_load);
  return {loads.begin(), loads.end()};
}

std::vector<std::string> arbiter_order(const std::vector<SweepPoint>& points) {
  std::vector<std::string> order;
  for (const SweepPoint& p : points) {
    if (std::find(order.begin(), order.end(), p.arbiter) == order.end()) {
      order.push_back(p.arbiter);
    }
  }
  return order;
}

const SweepPoint* find_point(const std::vector<SweepPoint>& points,
                             double load, const std::string& arbiter) {
  for (const SweepPoint& p : points) {
    if (p.target_load == load && p.arbiter == arbiter) return &p;
  }
  return nullptr;
}

}  // namespace

AsciiTable sweep_table(const std::vector<SweepPoint>& points,
                       const MetricExtractor& extract, int precision) {
  const std::vector<double> loads = sorted_loads(points);
  const std::vector<std::string> arbiters = arbiter_order(points);

  std::vector<std::string> header = {"load %"};
  header.insert(header.end(), arbiters.begin(), arbiters.end());
  AsciiTable table(std::move(header));

  for (double load : loads) {
    std::vector<std::string> row = {AsciiTable::num(load * 100.0, 0)};
    for (const std::string& arbiter : arbiters) {
      const SweepPoint* point = find_point(points, load, arbiter);
      row.push_back(point != nullptr
                        ? AsciiTable::num(extract(point->metrics), precision)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void write_sweep_csv(
    std::ostream& out, const std::vector<SweepPoint>& points,
    const std::vector<std::pair<std::string, MetricExtractor>>& extractors) {
  std::vector<std::string> header = {"arbiter", "target_load"};
  for (const auto& [name, extractor] : extractors) header.push_back(name);
  CsvWriter csv(out, header);
  for (const SweepPoint& point : points) {
    std::vector<std::string> row = {point.arbiter,
                                    AsciiTable::num(point.target_load, 4)};
    for (const auto& [name, extractor] : extractors) {
      const double value = extractor(point.metrics);
      row.push_back(std::isnan(value) ? "" : AsciiTable::num(value, 6));
    }
    csv.row(row);
  }
}

MetricExtractor class_delay_us(const std::string& label) {
  return [label](const SimulationMetrics& m) {
    const ClassMetrics* cls = m.find_class(label);
    if (cls == nullptr || cls->flit_delay_us.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return cls->flit_delay_us.mean();
  };
}

MetricExtractor crossbar_utilization_pct() {
  return [](const SimulationMetrics& m) {
    return m.crossbar_utilization * 100.0;
  };
}

MetricExtractor delivered_load_pct() {
  return [](const SimulationMetrics& m) { return m.delivered_load * 100.0; };
}

MetricExtractor generated_load_pct() {
  return
      [](const SimulationMetrics& m) { return m.generated_load_measured * 100.0; };
}

MetricExtractor frame_delay_us() {
  return [](const SimulationMetrics& m) {
    return m.frame_delay_us.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : m.frame_delay_us.mean();
  };
}

MetricExtractor frame_jitter_us() {
  return [](const SimulationMetrics& m) {
    return m.frame_jitter_us.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : m.frame_jitter_us.mean();
  };
}

void print_saturation_summary(std::ostream& out,
                              const std::vector<SweepPoint>& points,
                              const std::vector<std::string>& arbiters) {
  out << "Saturation (first swept load where delivery falls behind "
         "generation):\n";
  for (const std::string& arbiter : arbiters) {
    const double load = saturation_load(points, arbiter);
    out << "  " << arbiter << ": ";
    if (std::isnan(load)) {
      out << "not reached within the sweep\n";
    } else {
      out << AsciiTable::num(load * 100.0, 0) << "%\n";
    }
  }
}

}  // namespace mmr
