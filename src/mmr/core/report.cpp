#include "mmr/core/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "mmr/sim/csv.hpp"

namespace mmr {

namespace {

std::vector<double> sorted_loads(const std::vector<SweepPoint>& points) {
  std::set<double> loads;
  for (const SweepPoint& p : points) loads.insert(p.target_load);
  return {loads.begin(), loads.end()};
}

std::vector<std::string> arbiter_order(const std::vector<SweepPoint>& points) {
  std::vector<std::string> order;
  for (const SweepPoint& p : points) {
    if (std::find(order.begin(), order.end(), p.arbiter) == order.end()) {
      order.push_back(p.arbiter);
    }
  }
  return order;
}

const SweepPoint* find_point(const std::vector<SweepPoint>& points,
                             double load, const std::string& arbiter) {
  for (const SweepPoint& p : points) {
    if (p.target_load == load && p.arbiter == arbiter) return &p;
  }
  return nullptr;
}

}  // namespace

AsciiTable sweep_table(const std::vector<SweepPoint>& points,
                       const MetricExtractor& extract, int precision) {
  const std::vector<double> loads = sorted_loads(points);
  const std::vector<std::string> arbiters = arbiter_order(points);

  std::vector<std::string> header = {"load %"};
  header.insert(header.end(), arbiters.begin(), arbiters.end());
  AsciiTable table(std::move(header));

  for (double load : loads) {
    std::vector<std::string> row = {AsciiTable::num(load * 100.0, 0)};
    for (const std::string& arbiter : arbiters) {
      const SweepPoint* point = find_point(points, load, arbiter);
      row.push_back(point != nullptr
                        ? AsciiTable::num(extract(point->metrics), precision)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void write_sweep_csv(
    std::ostream& out, const std::vector<SweepPoint>& points,
    const std::vector<std::pair<std::string, MetricExtractor>>& extractors) {
  std::vector<std::string> header = {"arbiter", "target_load"};
  for (const auto& [name, extractor] : extractors) header.push_back(name);
  CsvWriter csv(out, header);
  for (const SweepPoint& point : points) {
    std::vector<std::string> row = {point.arbiter,
                                    AsciiTable::num(point.target_load, 4)};
    for (const auto& [name, extractor] : extractors) {
      const double value = extractor(point.metrics);
      row.push_back(std::isnan(value) ? "" : AsciiTable::num(value, 6));
    }
    csv.row(row);
  }
}

MetricExtractor class_delay_us(const std::string& label) {
  return [label](const SimulationMetrics& m) {
    const ClassMetrics* cls = m.find_class(label);
    if (cls == nullptr || cls->flit_delay_us.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return cls->flit_delay_us.mean();
  };
}

MetricExtractor crossbar_utilization_pct() {
  return [](const SimulationMetrics& m) {
    return m.crossbar_utilization * 100.0;
  };
}

MetricExtractor delivered_load_pct() {
  return [](const SimulationMetrics& m) { return m.delivered_load * 100.0; };
}

MetricExtractor generated_load_pct() {
  return
      [](const SimulationMetrics& m) { return m.generated_load_measured * 100.0; };
}

MetricExtractor frame_delay_us() {
  return [](const SimulationMetrics& m) {
    return m.frame_delay_us.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : m.frame_delay_us.mean();
  };
}

MetricExtractor frame_jitter_us() {
  return [](const SimulationMetrics& m) {
    return m.frame_jitter_us.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : m.frame_jitter_us.mean();
  };
}

MetricExtractor compliant_violation_pct() {
  return [](const SimulationMetrics& m) {
    return m.overload.enabled
               ? m.overload.compliant_violation_rate() * 100.0
               : std::numeric_limits<double>::quiet_NaN();
  };
}

MetricExtractor rogue_violation_pct() {
  return [](const SimulationMetrics& m) {
    return m.overload.enabled
               ? m.overload.rogue_violation_rate() * 100.0
               : std::numeric_limits<double>::quiet_NaN();
  };
}

AsciiTable overload_table(const SimulationMetrics& metrics) {
  const OverloadMetrics& o = metrics.overload;
  AsciiTable table({"class", "conforming", "dropped", "demoted", "shaped",
                    "overflow", "shed"});
  const char* labels[3] = {"CBR", "VBR", "BE"};
  PolicedClassTally total;
  for (std::size_t c = 0; c < 3; ++c) {
    const PolicedClassTally& t = o.policed[c];
    table.add_row({labels[c], std::to_string(t.conforming),
                   std::to_string(t.dropped), std::to_string(t.demoted),
                   std::to_string(t.shaped), std::to_string(t.penalty_overflow),
                   std::to_string(t.shed)});
    total.conforming += t.conforming;
    total.dropped += t.dropped;
    total.demoted += t.demoted;
    total.shaped += t.shaped;
    total.penalty_overflow += t.penalty_overflow;
    total.shed += t.shed;
  }
  table.add_row({"total", std::to_string(total.conforming),
                 std::to_string(total.dropped), std::to_string(total.demoted),
                 std::to_string(total.shaped),
                 std::to_string(total.penalty_overflow),
                 std::to_string(total.shed)});
  return table;
}

void print_overload_summary(std::ostream& out,
                            const SimulationMetrics& metrics) {
  const OverloadMetrics& o = metrics.overload;
  if (!o.enabled) return;
  out << "Overload protection: policy=" << o.policy << ", rogue connections="
      << o.rogue_connections << ", noncompliant=" << o.noncompliant_connections
      << "\n";
  out << "  QoS deadline violations: compliant "
      << AsciiTable::num(o.compliant_violation_rate() * 100.0, 2) << "% ("
      << o.compliant_violations << "/" << o.compliant_delivered << "), rogue "
      << AsciiTable::num(o.rogue_violation_rate() * 100.0, 2) << "% ("
      << o.rogue_violations << "/" << o.rogue_delivered << ")\n";
  out << "  Policed actions: compliant " << o.compliant_policed << ", rogue "
      << o.rogue_policed << "\n";
  if (!o.shape_delay_us.empty()) {
    out << "  Shape delay: mean " << AsciiTable::num(o.shape_delay_us.mean(), 2)
        << " us over " << o.shape_delay_us.count() << " flits\n";
  }
  const std::uint64_t total_cycles = o.cycles_in_stage[0] +
                                     o.cycles_in_stage[1] +
                                     o.cycles_in_stage[2] + o.cycles_in_stage[3];
  if (total_cycles > 0) {
    out << "  Watchdog: " << o.watchdog_escalations << " escalations, "
        << o.watchdog_recoveries << " recoveries, " << o.watchdog_alarms
        << " alarms; degraded "
        << AsciiTable::num(o.degraded_fraction() * 100.0, 2)
        << "% of the run (shed " << o.cycles_in_stage[1] << ", clamp "
        << o.cycles_in_stage[2] << ", alarm " << o.cycles_in_stage[3]
        << " cycles)\n";
  }
}

void print_mmu_summary(std::ostream& out, const SimulationMetrics& metrics) {
  const MmuMetrics& m = metrics.mmu;
  if (!m.enabled) return;
  out << "Shared-buffer MMU: admitted reserved " << m.admitted_reserved
      << ", shared " << m.admitted_shared << ", headroom "
      << m.admitted_headroom << "; drops lossless " << m.drops_lossless
      << ", lossy " << m.drops_lossy << "\n";
  out << "  Pause: " << m.pause_events << " Xoff / " << m.resume_events
      << " Xon, total " << m.pause_cycles_total << " cycles, longest "
      << m.pause_cycles_max << "; headroom highwater " << m.headroom_highwater
      << ", pool highwater " << m.pool_highwater << "\n";
  out << "  ECN: " << m.ecn_marked << "/" << m.ecn_eligible << " marked ("
      << AsciiTable::num(m.mark_rate() * 100.0, 2) << "%), " << m.ecn_cuts
      << " rate cuts";
  if (!m.pool_occupancy.empty()) {
    out << "; pool occupancy mean "
        << AsciiTable::num(m.pool_occupancy.mean(), 1) << " flits";
  }
  out << "\n";
}

void print_saturation_summary(std::ostream& out,
                              const std::vector<SweepPoint>& points,
                              const std::vector<std::string>& arbiters) {
  out << "Saturation (first swept load where delivery falls behind "
         "generation):\n";
  for (const std::string& arbiter : arbiters) {
    const double load = saturation_load(points, arbiter);
    out << "  " << arbiter << ": ";
    if (std::isnan(load)) {
      out << "not reached within the sweep\n";
    } else {
      out << AsciiTable::num(load * 100.0, 0) << "%\n";
    }
  }
}

}  // namespace mmr
