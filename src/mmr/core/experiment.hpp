// Load-sweep experiment driver: the shape of every figure in the paper —
// run the same workloads across several arbiters and offered loads, collect
// metrics per point.  Every arbiter sees the *identical* workload at a given
// load (workload RNG streams depend only on the load index), and points run
// in parallel across a thread pool.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mmr/core/metrics.hpp"
#include "mmr/core/simulation.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {

enum class WorkloadKind : std::uint8_t { kCbr, kVbr };

struct SweepSpec {
  SimConfig base;                    ///< arbiter field is overridden per point
  std::vector<double> loads;         ///< target offered loads (fractions)
  std::vector<std::string> arbiters = {"coa", "wfa"};
  WorkloadKind kind = WorkloadKind::kCbr;

  // CBR knobs.
  CbrMixSpec cbr;
  // VBR knobs.
  VbrMixSpec vbr;

  /// Independent workload realisations per (load, arbiter) point; their
  /// statistics are pooled (merge_runs).  Replication matters with uniform
  /// random destinations, where a single draw decides how hot the hottest
  /// output link runs.
  std::uint32_t replications = 1;

  std::size_t threads = 0;  ///< 0 = hardware concurrency

  /// Rejects malformed sweeps with std::invalid_argument: loads must be
  /// non-empty, each in (0, ~2], and strictly ascending (duplicates are a
  /// silent double-spend of simulation time, so they are errors too).
  void validate() const;
};

struct SweepPoint {
  double target_load = 0.0;
  std::string arbiter;
  SimulationMetrics metrics;
};

/// Runs |loads| x |arbiters| simulations.  Results are ordered arbiter-major
/// then load-ascending, deterministically, regardless of thread count.
[[nodiscard]] std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

/// Builds the workload a sweep point uses (exposed so tests can verify the
/// same-workload-across-arbiters property).
[[nodiscard]] Workload build_sweep_workload(const SweepSpec& spec,
                                            std::size_t load_index,
                                            std::uint32_t replication = 0);

/// Smallest swept load at which the run saturated (see
/// SimulationMetrics::saturated), or NaN if it never did.
[[nodiscard]] double saturation_load(const std::vector<SweepPoint>& points,
                                     const std::string& arbiter);

}  // namespace mmr
