// Paper-style reporting: turns sweep results into the rows/series the
// figures plot (load on the x axis, one column per arbiter) plus CSV blocks
// for external re-plotting.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "mmr/core/experiment.hpp"
#include "mmr/sim/table.hpp"

namespace mmr {

using MetricExtractor = std::function<double(const SimulationMetrics&)>;

/// One ASCII table: rows = swept loads, columns = arbiters, cells =
/// extractor(metrics).  Missing points render as "-".
[[nodiscard]] AsciiTable sweep_table(const std::vector<SweepPoint>& points,
                                     const MetricExtractor& extract,
                                     int precision = 2);

/// CSV with one row per point and one column per named extractor.
void write_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points,
                     const std::vector<std::pair<std::string, MetricExtractor>>&
                         extractors);

// Common extractors -------------------------------------------------------

/// Mean flit delay (us) of one traffic class (NaN when the class is absent
/// or delivered nothing).
[[nodiscard]] MetricExtractor class_delay_us(const std::string& label);

[[nodiscard]] MetricExtractor crossbar_utilization_pct();
[[nodiscard]] MetricExtractor delivered_load_pct();
[[nodiscard]] MetricExtractor generated_load_pct();
[[nodiscard]] MetricExtractor frame_delay_us();
[[nodiscard]] MetricExtractor frame_jitter_us();

// Overload protection (mmr/overload/) -------------------------------------

/// QoS deadline-violation rate (%) of compliant / rogue connections, from
/// the OverloadMetrics split (NaN when overload accounting was off).
[[nodiscard]] MetricExtractor compliant_violation_pct();
[[nodiscard]] MetricExtractor rogue_violation_pct();

/// One row per traffic class with the policer's verdict tallies, plus a
/// totals row.  `metrics.overload.enabled` must be true.
[[nodiscard]] AsciiTable overload_table(const SimulationMetrics& metrics);

/// Prints the watchdog ladder summary (stage residency, transitions) for a
/// run with overload accounting; prints nothing when it was off.
void print_overload_summary(std::ostream& out,
                            const SimulationMetrics& metrics);

/// Prints the shared-buffer MMU summary (admission split, pause activity,
/// ECN marking) for a flow=shared run; prints nothing when it was off.
void print_mmu_summary(std::ostream& out, const SimulationMetrics& metrics);

/// Prints the standard bench footer: saturation loads per arbiter.
void print_saturation_summary(std::ostream& out,
                              const std::vector<SweepPoint>& points,
                              const std::vector<std::string>& arbiters);

}  // namespace mmr
