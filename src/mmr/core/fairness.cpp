#include "mmr/core/fairness.hpp"

#include "mmr/sim/assert.hpp"

namespace mmr {

double jain_fairness_index(const std::vector<double>& shares) {
  if (shares.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    MMR_ASSERT(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

std::vector<double> normalized_shares(
    const std::vector<std::uint64_t>& delivered,
    const std::vector<std::uint64_t>& offered) {
  MMR_ASSERT(delivered.size() == offered.size());
  std::vector<double> shares;
  shares.reserve(delivered.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    if (offered[i] == 0) continue;  // nothing offered: share undefined
    shares.push_back(static_cast<double>(delivered[i]) /
                     static_cast<double>(offered[i]));
  }
  return shares;
}

}  // namespace mmr
