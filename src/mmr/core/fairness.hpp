// Fairness measurement.  Section 3's requirement: "a successful arbitration
// scheme for the MMR must provide efficient and fair resource scheduling".
// We quantify it with Jain's fairness index over per-connection *normalised*
// throughput (delivered / offered), so connections of very different rates
// are comparable: 1.0 = perfectly proportional service, 1/n = one
// connection gets everything.
#pragma once

#include <cstdint>
#include <vector>

namespace mmr {

/// Jain's index: (sum x)^2 / (n * sum x^2), in (0, 1]; 0 for empty input
/// or all-zero shares.
[[nodiscard]] double jain_fairness_index(const std::vector<double>& shares);

/// Per-connection normalised service shares from delivered counts and
/// offered counts (connections that offered nothing are skipped).
[[nodiscard]] std::vector<double> normalized_shares(
    const std::vector<std::uint64_t>& delivered,
    const std::vector<std::uint64_t>& offered);

}  // namespace mmr
