#include "mmr/sim/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/atomic_file.hpp"

namespace mmr {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header,
                     std::string path)
    : out_(&out), path_(std::move(path)), columns_(header.size()) {
  MMR_ASSERT(columns_ > 0);
  row(header);
  rows_ = 0;  // header does not count as a data row
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : owned_(std::make_unique<AtomicFileWriter>(path)),
      out_(&owned_->stream()),
      path_(path),
      columns_(header.size()) {
  MMR_ASSERT(columns_ > 0);
  row(header);
  rows_ = 0;
}

CsvWriter::~CsvWriter() {
  // Destructors must not throw; a failure here is only observable through an
  // explicit flush()/close() before destruction.  In owning mode an
  // uncommitted temp file is discarded by ~AtomicFileWriter, leaving any
  // previous file at the destination untouched.
  if (owned_ == nullptr) out_->flush();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::check_stream() const {
  if (out_->good()) return;
  std::string what = "CSV write failed";
  if (!path_.empty()) what += " for " + path_;
  what += " after " + std::to_string(rows_) + " data rows";
  throw std::runtime_error(what);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  MMR_ASSERT_MSG(cells.size() == columns_, "CSV row width mismatch");
  MMR_ASSERT_MSG(!closed_, "CSV row after close()");
  check_stream();  // surface earlier buffered failures before writing more
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) *out_ << ',';
    *out_ << escape(cells[c]);
  }
  *out_ << '\n';
  check_stream();
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double x : cells) {
    if (std::isnan(x)) {
      text.emplace_back("");
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, x);
    text.emplace_back(buf);
  }
  row(text);
}

void CsvWriter::flush() {
  out_->flush();
  check_stream();
}

void CsvWriter::close() {
  if (closed_) return;
  flush();
  if (owned_) owned_->commit();
  closed_ = true;
}

}  // namespace mmr
