#include "mmr/sim/csv.hpp"

#include <cmath>
#include <cstdio>

#include "mmr/sim/assert.hpp"

namespace mmr {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  MMR_ASSERT(columns_ > 0);
  row(header);
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  MMR_ASSERT_MSG(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out_ << ',';
    out_ << escape(cells[c]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double x : cells) {
    if (std::isnan(x)) {
      text.emplace_back("");
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, x);
    text.emplace_back(buf);
  }
  row(text);
}

}  // namespace mmr
