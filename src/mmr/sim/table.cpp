#include "mmr/sim/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "mmr/sim/assert.hpp"

namespace mmr {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MMR_ASSERT(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  MMR_ASSERT_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row_numeric(const std::vector<double>& cells,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(num(c, precision));
  add_row(std::move(row));
}

std::string AsciiTable::num(double x, int precision) {
  if (std::isnan(x)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

}  // namespace mmr
