// Tiny leveled logger.  Level comes from the MMR_LOG environment variable
// (error|warn|info|debug); defaults to warn so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace mmr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static Logger& instance();

  [[nodiscard]] LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_;
};

namespace detail {

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  Logger& logger = Logger::instance();
  if (static_cast<int>(level) > static_cast<int>(logger.level())) return;
  std::ostringstream out;
  (out << ... << args);
  logger.write(level, out.str());
}

}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::kError, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::kDebug, std::forward<Args>(args)...);
}

}  // namespace mmr
