// Tiny leveled logger.  Level comes from the MMR_LOG environment variable
// (error|warn|info|debug); defaults to warn so tests and benches stay quiet.
//
// Thread safety: the level is atomic (sweep workers log while a driver
// thread may adjust verbosity) and each message is formatted into one
// string, then emitted with a single write under a mutex — concurrent
// messages never interleave mid-line.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace mmr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static Logger& instance();

  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Formats "[mmr LEVEL] message\n" and emits it atomically (one write,
  /// serialized by the logger mutex).
  void write(LogLevel level, const std::string& message);

  /// Redirects fully-formatted lines away from stderr (tests capture output
  /// here).  The sink is invoked under the logger mutex, so it needs no
  /// locking of its own; pass nullptr to restore stderr.
  using Sink = std::function<void(LogLevel, const std::string& line)>;
  void set_sink(Sink sink);

 private:
  Logger();
  std::atomic<LogLevel> level_;
  std::mutex mutex_;
  Sink sink_;
};

namespace detail {

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  Logger& logger = Logger::instance();
  if (static_cast<int>(level) > static_cast<int>(logger.level())) return;
  std::ostringstream out;
  (out << ... << args);
  logger.write(level, out.str());
}

}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::kError, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::kDebug, std::forward<Args>(args)...);
}

}  // namespace mmr
