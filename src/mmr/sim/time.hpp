// Time model.
//
// The engine advances one *flit cycle* at a time: the time to transmit one
// flit over a physical link (and, synchronously, through the crossbar).  A
// flit is made of phits; one phit crosses the link per *router cycle* (phit
// cycle).  SIABP queue-age counters are specified in router cycles, so the
// conversion factor `phits_per_flit` matters for priority biasing.
//
// All bookkeeping uses integral flit cycles; wall-clock conversions happen
// only at the reporting boundary (double microseconds).
#pragma once

#include <cstdint>

namespace mmr {

/// Simulation time in flit cycles.
using Cycle = std::uint64_t;

/// Sentinel for "not yet" timestamps.
inline constexpr Cycle kNever = ~Cycle{0};

/// Default QoS deadline in flit cycles: a delivered QoS flit later than this
/// counts as a deadline violation, and mean delays beyond it mark a run as
/// saturated.  Single source of truth shared by the single-router metrics,
/// the network metrics, the overload policer and the fault plan — the
/// regression test in test_metrics.cpp keeps every path in agreement.
inline constexpr double kQosDeadlineCycles = 250.0;

/// Converts between flit cycles, router cycles and wall-clock time for a
/// given link technology.
class TimeBase {
 public:
  constexpr TimeBase(double link_bandwidth_bps, std::uint32_t flit_bits,
                     std::uint32_t phit_bits)
      : link_bandwidth_bps_(link_bandwidth_bps),
        flit_bits_(flit_bits),
        phit_bits_(phit_bits) {}

  [[nodiscard]] constexpr double link_bandwidth_bps() const {
    return link_bandwidth_bps_;
  }
  [[nodiscard]] constexpr std::uint32_t flit_bits() const { return flit_bits_; }
  [[nodiscard]] constexpr std::uint32_t phit_bits() const { return phit_bits_; }

  [[nodiscard]] constexpr std::uint32_t phits_per_flit() const {
    return flit_bits_ / phit_bits_;
  }

  /// Duration of one flit cycle in seconds.
  [[nodiscard]] constexpr double flit_cycle_seconds() const {
    return static_cast<double>(flit_bits_) / link_bandwidth_bps_;
  }

  [[nodiscard]] constexpr double flit_cycle_us() const {
    return flit_cycle_seconds() * 1e6;
  }

  /// Duration of one router (phit) cycle in seconds.
  [[nodiscard]] constexpr double router_cycle_seconds() const {
    return static_cast<double>(phit_bits_) / link_bandwidth_bps_;
  }

  [[nodiscard]] constexpr double cycles_to_us(double flit_cycles) const {
    return flit_cycles * flit_cycle_us();
  }

  [[nodiscard]] constexpr double cycles_to_seconds(double flit_cycles) const {
    return flit_cycles * flit_cycle_seconds();
  }

  [[nodiscard]] constexpr double seconds_to_cycles(double seconds) const {
    return seconds / flit_cycle_seconds();
  }

  /// Flits per second a connection of `bps` average rate must inject.
  [[nodiscard]] constexpr double flits_per_second(double bps) const {
    return bps / static_cast<double>(flit_bits_);
  }

  /// Fraction of one link's bandwidth a connection of `bps` consumes.
  [[nodiscard]] constexpr double load_fraction(double bps) const {
    return bps / link_bandwidth_bps_;
  }

 private:
  double link_bandwidth_bps_;
  std::uint32_t flit_bits_;
  std::uint32_t phit_bits_;
};

}  // namespace mmr
