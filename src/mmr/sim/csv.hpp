// CSV emission for bench results so figures can be re-plotted externally.
//
// Write failures are reported, not swallowed: a full disk or a closed
// descriptor would otherwise truncate the CSV mid-table and the bench would
// still exit 0.  Every row and every explicit flush() checks the stream and
// throws std::runtime_error naming the destination path.
//
// Two modes:
//  * stream mode — the caller owns the std::ostream (stdout, a test
//    stringstream, an already-open file);
//  * owning-path mode — CsvWriter writes crash-safely through an
//    AtomicFileWriter (temp file + rename): the destination only appears
//    when close() commits, so a process killed mid-table never leaves a
//    torn CSV behind.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace mmr {

class AtomicFileWriter;

class CsvWriter {
 public:
  /// Stream mode.  `path` is only used in error messages; pass the file
  /// name when writing to an std::ofstream so failures identify the
  /// destination.
  CsvWriter(std::ostream& out, std::vector<std::string> header,
            std::string path = "");

  /// Owning-path mode: writes `<path>.tmp.<pid>` and renames onto `path`
  /// at close().  Destruction without close() discards the temp file and
  /// leaves any previous file at `path` untouched.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Stream mode: flushes (best effort — destructors must not throw; call
  /// flush() explicitly to observe the final write's success).  Owning
  /// mode: discards the temp file unless close() committed it.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Throws std::runtime_error if the stream entered a failed state.
  void row(const std::vector<std::string>& cells);
  void row_numeric(const std::vector<double>& cells, int precision = 6);

  /// Flushes the underlying stream and throws std::runtime_error if either
  /// the flush or any buffered prior write failed.
  void flush();

  /// Owning-path mode: commits the temp file onto the destination (throws
  /// std::runtime_error when the flush or rename fails).  No-op in stream
  /// mode beyond flush().
  void close();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// RFC-4180 quoting when a cell needs it.
  static std::string escape(const std::string& cell);

 private:
  void check_stream() const;

  std::unique_ptr<AtomicFileWriter> owned_;  ///< owning-path mode only
  std::ostream* out_;
  std::string path_;
  std::size_t columns_;
  std::size_t rows_ = 0;
  bool closed_ = false;
};

}  // namespace mmr
