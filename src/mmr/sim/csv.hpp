// CSV emission for bench results so figures can be re-plotted externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mmr {

class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& cells);
  void row_numeric(const std::vector<double>& cells, int precision = 6);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// RFC-4180 quoting when a cell needs it.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace mmr
