// Crash-safe file emission: write a temp file, rename into place on commit.
// An interrupted run (SIGKILL mid-write, full disk, crashed process) then
// never leaves a torn CSV/JSONL/snapshot at the destination path — the old
// file survives untouched and at worst a stale `.tmp.<pid>` remains, which
// the next successful writer of the same path replaces.
#pragma once

#include <fstream>
#include <functional>
#include <string>

namespace mmr {

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>` for writing; throws std::runtime_error when
  /// the temp file cannot be created.
  explicit AtomicFileWriter(std::string path);

  /// Discards the temp file when commit() was never reached (the abandoned
  /// write leaves the destination untouched).
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  [[nodiscard]] std::ostream& stream() { return out_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& temp_path() const { return temp_path_; }

  /// Flushes, closes and renames the temp file onto the destination.
  /// Throws std::runtime_error when any step fails (the destination is
  /// left untouched in that case).
  void commit();

  /// Closes and removes the temp file without touching the destination.
  void discard();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool done_ = false;
};

/// Runs `body` against a temp-file stream and commits; any exception from
/// `body` discards the temp file and rethrows.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& body);

}  // namespace mmr
