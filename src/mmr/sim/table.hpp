// Minimal ASCII table renderer for the bench harnesses: the benches print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace mmr {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 2);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  /// Formats a double like the paper's plots (fixed precision, "-" for NaN).
  static std::string num(double x, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmr
