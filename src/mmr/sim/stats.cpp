#include "mmr/sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mmr/snapshot/walker.hpp"

namespace mmr {

void StreamingStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double StreamingStats::min() const { return n_ == 0 ? 0.0 : min_; }

double StreamingStats::max() const { return n_ == 0 ? 0.0 : max_; }

void StreamingStats::snap(snapshot::Walker& w) {
  snapshot::value(w, n_);
  snapshot::value(w, mean_);
  snapshot::value(w, m2_);
  snapshot::value(w, min_);
  snapshot::value(w, max_);
}

void JitterTracker::add(double x) {
  if (has_prev_) deltas_.add(std::abs(x - prev_));
  prev_ = x;
  has_prev_ = true;
}

void JitterTracker::reset() {
  has_prev_ = false;
  prev_ = 0.0;
  deltas_.reset();
}

void JitterTracker::snap(snapshot::Walker& w) {
  snapshot::value(w, has_prev_);
  snapshot::value(w, prev_);
  deltas_.snap(w);
}

void RatioAccumulator::add(std::uint64_t numerator, std::uint64_t denominator) {
  num_ += numerator;
  den_ += denominator;
}

void RatioAccumulator::reset() {
  num_ = 0;
  den_ = 0;
}

void RatioAccumulator::snap(snapshot::Walker& w) {
  snapshot::value(w, num_);
  snapshot::value(w, den_);
}

double RatioAccumulator::ratio() const {
  return den_ == 0 ? 0.0 : static_cast<double>(num_) / static_cast<double>(den_);
}

}  // namespace mmr
