// Deterministic pseudo-random number generation (xoshiro256++), seeded via
// SplitMix64.  Every stochastic component of the simulator owns its own Rng
// stream derived from (master seed, component id) so that runs are exactly
// reproducible regardless of sweep parallelism or component count.
#pragma once

#include <cstdint>
#include <vector>

namespace mmr {

namespace snapshot {
class Walker;
}

/// SplitMix64 step; used for seeding and cheap hashing of stream ids.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a decorrelated seed from (seed, a, b), running every input
/// through the full SplitMix64 finalizer.  Unlike XOR-of-small-multiples,
/// nearby (a, b) pairs land on unrelated seeds and can never cancel.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a,
                                     std::uint64_t b);

/// xoshiro256++ generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a master seed and a stream id (component identity).
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller (no cached second value; cheap enough here).
  double normal(double mean, double stddev);

  /// Lognormal parameterised by the mean and coefficient of variation of the
  /// *resulting* distribution (not of the underlying normal).
  double lognormal_mean_cv(double mean, double cv);

  /// Index drawn proportionally to `weights` (all >= 0, sum > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Derives an independent child stream (for sub-components).
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Serializes the full generator state (position in the stream included).
  void snap(snapshot::Walker& w);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  std::uint64_t stream_;
};

}  // namespace mmr
