#include "mmr/sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "mmr/sim/assert.hpp"

namespace mmr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MMR_ASSERT(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MMR_ASSERT_MSG(!stopping_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const std::size_t lanes = std::min(n, pool.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace mmr
