#include "mmr/sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "mmr/sim/assert.hpp"

namespace mmr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MMR_ASSERT(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MMR_ASSERT_MSG(!stopping_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // The in-flight count must drop even when the task throws, or
    // wait_idle() deadlocks; the guard also hands the first exception to
    // wait_idle() for rethrow.
    struct TaskGuard {
      ThreadPool& pool;
      std::exception_ptr error;
      ~TaskGuard() {
        const std::lock_guard<std::mutex> lock(pool.mutex_);
        if (error && !pool.first_error_) pool.first_error_ = error;
        --pool.in_flight_;
        if (pool.in_flight_ == 0) pool.all_done_.notify_all();
      }
    };
    TaskGuard guard{*this, nullptr};
    try {
      task();
    } catch (...) {
      guard.error = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const std::size_t lanes = std::min(n, pool.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // wait_idle() below rethrows the first of these
        }
      }
    });
  }
  pool.wait_idle();
}

}  // namespace mmr
