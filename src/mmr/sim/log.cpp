#include "mmr/sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mmr {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("MMR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[mmr %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace mmr
