#include "mmr/sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace mmr {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("MMR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& message) {
  // Build the complete line before taking the lock so formatting cost is
  // paid outside the critical section, then emit it in one write.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[mmr ";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';

  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace mmr
