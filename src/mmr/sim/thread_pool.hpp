// Fixed-size worker pool used to run independent simulation points of a
// parameter sweep in parallel.  Tasks are run-to-completion; results are
// collected positionally so sweep output order is deterministic regardless of
// scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mmr {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  A throwing task does not wedge the pool: the first
  /// exception is captured and rethrown from the next wait_idle() call;
  /// subsequent exceptions are swallowed.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception any task raised since the last wait_idle().
  void wait_idle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Exact per-task work order is unspecified; use per-index output slots.
  /// Rethrows the first exception `fn` raised (remaining indices may be
  /// skipped once a worker has thrown).
  static void parallel_for(std::size_t n, std::size_t threads,
                           const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  ///< first task exception, set once
};

}  // namespace mmr
