#include "mmr/sim/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>

#if defined(_WIN32)
#include <process.h>
#define MMR_GETPID _getpid
#else
#include <unistd.h>
#define MMR_GETPID getpid
#endif

namespace mmr {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(MMR_GETPID())) {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("cannot open temp file for atomic write: " +
                             temp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) {
    out_.close();
    std::remove(temp_path_.c_str());
  }
}

void AtomicFileWriter::commit() {
  if (done_) return;
  out_.flush();
  if (!out_) {
    discard();
    throw std::runtime_error("write to temp file failed (disk full?): " +
                             temp_path_);
  }
  out_.close();
  if (out_.fail()) {
    done_ = true;
    std::remove(temp_path_.c_str());
    throw std::runtime_error("closing temp file failed: " + temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    done_ = true;
    std::remove(temp_path_.c_str());
    throw std::runtime_error("renaming " + temp_path_ + " onto " + path_ +
                             " failed");
  }
  done_ = true;
}

void AtomicFileWriter::discard() {
  if (done_) return;
  out_.close();
  std::remove(temp_path_.c_str());
  done_ = true;
}

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& body) {
  AtomicFileWriter writer(path);
  try {
    body(writer.stream());
  } catch (...) {
    writer.discard();
    throw;
  }
  writer.commit();
}

}  // namespace mmr
