// Always-on contract checks. Simulation correctness bugs silently corrupt
// measured results, so invariants stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mmr::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "MMR_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mmr::detail

#define MMR_ASSERT(expr)                                               \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::mmr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
  } while (false)

#define MMR_ASSERT_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) [[unlikely]]                                       \
      ::mmr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
