// Always-on contract checks. Simulation correctness bugs silently corrupt
// measured results, so invariants stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mmr::detail {

/// Hook invoked (once) after an assertion message is printed and before the
/// process aborts.  The trace layer's flight recorder registers one so the
/// last N events reach disk when an invariant dies; anything the hook does
/// must not assume intact simulation state.  The hook is cleared before it
/// runs, so an assertion raised *inside* the hook cannot recurse.
using AssertHook = void (*)();

inline AssertHook& assert_hook_slot() {
  static AssertHook hook = nullptr;
  return hook;
}

/// Installs `hook` (nullptr uninstalls) and returns the previous one.
inline AssertHook exchange_assert_hook(AssertHook hook) {
  AssertHook& slot = assert_hook_slot();
  const AssertHook previous = slot;
  slot = hook;
  return previous;
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "MMR_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  if (AssertHook hook = exchange_assert_hook(nullptr)) hook();
  std::abort();
}

}  // namespace mmr::detail

#define MMR_ASSERT(expr)                                               \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::mmr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
  } while (false)

#define MMR_ASSERT_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) [[unlikely]]                                       \
      ::mmr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
