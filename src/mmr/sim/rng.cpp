#include "mmr/sim/rng.hpp"

#include <cmath>
#include <numbers>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ a;
  state = splitmix64(state) ^ b;
  return splitmix64(state);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  // Mix seed and stream so that nearby (seed, stream) pairs diverge.
  std::uint64_t sm = seed ^ (stream * 0xD1B54A32D192ED03ULL) ^
                     0x2545F4914F6CDD1DULL;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  MMR_ASSERT(bound > 0);
  // Lemire's unbiased bounded generation (rejection on the low product half).
  __extension__ using uint128 = unsigned __int128;
  while (true) {
    const std::uint64_t x = next();
    const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  MMR_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform_real();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::exponential(double mean) {
  MMR_ASSERT(mean > 0.0);
  double u = uniform_real();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform_real();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_real();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  MMR_ASSERT(mean > 0.0);
  MMR_ASSERT(cv >= 0.0);
  if (cv == 0.0) return mean;
  // For X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV^2 = exp(sigma^2) - 1.
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MMR_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MMR_ASSERT(w >= 0.0);
    total += w;
  }
  MMR_ASSERT(total > 0.0);
  double x = uniform_real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

void Rng::snap(snapshot::Walker& w) {
  for (auto& word : s_) snapshot::value(w, word);
  snapshot::value(w, seed_);
  snapshot::value(w, stream_);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Children are derived from the *identity* of this stream, not its current
  // position, so forking is insensitive to how many numbers were drawn.
  return Rng(seed_ ^ rotl(stream_, 32) ^ 0xA5A5A5A55A5A5A5AULL, stream);
}

}  // namespace mmr
