// Log-bucketed histogram for latency distributions.  Buckets grow
// geometrically so that percentile queries stay accurate (bounded relative
// error) across the many decades a saturating router produces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mmr {

namespace snapshot {
class Walker;
}

class LogHistogram {
 public:
  /// `min_value` is the resolution floor (values below land in bucket 0),
  /// `growth` the geometric bucket ratio (> 1), `max_buckets` the storage
  /// cap (>= 2): samples beyond bucket `max_buckets - 2` land in a single
  /// unbounded overflow bucket, so one outlier cannot balloon memory.  The
  /// default cap spans ~50 decades at the default growth.
  explicit LogHistogram(double min_value = 1.0, double growth = 1.05,
                        std::size_t max_buckets = 4096);

  void add(double x);
  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Approximate quantile (q in [0, 1]); returns the geometric midpoint of
  /// the bucket containing the q-th sample, except at the rank extremes
  /// where the exact observed min / max is returned (so quantile(0) ==
  /// min_seen() and quantile(1) == max_seen(), even for single-sample or
  /// all-in-overflow histograms).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double max_seen() const { return max_; }
  [[nodiscard]] double min_seen() const { return min_; }

  /// Multi-line ASCII rendering (for examples / debugging).
  [[nodiscard]] std::string ascii(std::size_t max_rows = 20) const;

  /// Samples recorded in the overflow bucket (0 until an outlier exceeds
  /// the bucket cap's range).
  [[nodiscard]] std::uint64_t overflow_count() const;

  /// Serializes the mutable sample state (bucket shape is construction-time
  /// configuration and is not stored).
  void snap(snapshot::Walker& w);

 private:
  [[nodiscard]] std::size_t bucket_of(double x) const;
  [[nodiscard]] bool is_overflow(std::size_t b) const {
    return b + 1 == max_buckets_;
  }
  [[nodiscard]] double bucket_lo(std::size_t b) const;
  [[nodiscard]] double bucket_hi(std::size_t b) const;

  double min_value_;
  double log_growth_;
  std::size_t max_buckets_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mmr
