// Streaming statistics used throughout the simulator: Welford mean/variance,
// jitter tracking (mean |delta| between consecutive samples), and time-series
// accumulation for utilization-style ratios.
#pragma once

#include <cstdint>
#include <limits>

namespace mmr {

namespace snapshot {
class Walker;
}

/// Single-pass mean / variance / min / max accumulator (Welford).
///
/// Variance convention: `variance()` is the POPULATION variance m2/n — right
/// when the samples ARE the whole population (every flit delay of a run).
/// `sample_variance()` is the unbiased estimator m2/(n-1) — use it (and
/// `sample_stddev()`) when the samples estimate a larger population, e.g.
/// spreads or confidence intervals over repeated trials in benches.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< population variance m2/n
  [[nodiscard]] double stddev() const;    ///< sqrt of population variance
  /// Unbiased sample variance m2/(n-1); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double sample_stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

  void snap(snapshot::Walker& w);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Jitter: statistics of |x_i - x_{i-1}| over a sample stream (the paper's
/// definition — delay variation between adjacent units of one connection).
class JitterTracker {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] const StreamingStats& deltas() const { return deltas_; }
  [[nodiscard]] double mean_jitter() const { return deltas_.mean(); }
  [[nodiscard]] double max_jitter() const {
    return deltas_.empty() ? 0.0 : deltas_.max();
  }
  [[nodiscard]] std::uint64_t count() const { return deltas_.count(); }

  void snap(snapshot::Walker& w);

 private:
  bool has_prev_ = false;
  double prev_ = 0.0;
  StreamingStats deltas_;
};

/// Accumulates a ratio of counts over cycles (e.g. matched outputs / ports).
class RatioAccumulator {
 public:
  void add(std::uint64_t numerator, std::uint64_t denominator);
  void reset();

  [[nodiscard]] double ratio() const;
  [[nodiscard]] std::uint64_t numerator() const { return num_; }
  [[nodiscard]] std::uint64_t denominator() const { return den_; }

  void snap(snapshot::Walker& w);

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 0;
};

}  // namespace mmr
