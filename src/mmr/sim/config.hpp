// Central simulation configuration.  Defaults follow the paper / MMR
// literature: 4x4 router, 2.4 Gbps 16-bit links, 4096-bit flits, four
// candidate levels, SIABP link scheduling, small credit-controlled buffers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmr/sim/time.hpp"

namespace mmr {

/// Priority biasing function used by the link scheduler (Section 3.1).
enum class PriorityScheme : std::uint8_t {
  kSiabp,      ///< Simple-IABP: shift-based biasing (hardware-friendly)
  kIabp,       ///< Inter-Arrival Based Priority: queuing delay / IAT
  kFifoAge,    ///< age only, ignores bandwidth requirements
  kStatic,     ///< reserved slots only, ignores waiting time
};

[[nodiscard]] const char* to_string(PriorityScheme s);
[[nodiscard]] PriorityScheme priority_scheme_from_string(const std::string& s);

/// Largest port count any arbiter can represent: the bitset engines cap
/// their multi-word request rows at kMaxPorts / 64 words, and Candidate
/// stores ports in 16 bits.  Port counts outside [1, kMaxPorts] are rejected
/// at parse time (apply_overrides, SweepSpec::validate), not deep inside
/// arbiter construction.
inline constexpr std::uint32_t kMaxPorts = 1024;

struct SimConfig {
  // --- geometry -----------------------------------------------------------
  std::uint32_t ports = 4;            ///< physical input = output links
  std::uint32_t vcs_per_link = 256;   ///< virtual channels per physical link

  // --- link technology ----------------------------------------------------
  double link_bandwidth_bps = 2.4e9;  ///< 2.4 Gbps links
  std::uint32_t flit_bits = 4096;     ///< large flits amortise arbitration
  std::uint32_t phit_bits = 16;       ///< 16-bit wide links

  // --- router resources ---------------------------------------------------
  std::uint32_t buffer_flits_per_vc = 2;  ///< MMR VC buffer ("a few flits")
  std::uint32_t candidate_levels = 4;     ///< link-scheduler candidates/port
  Cycle link_latency = 1;                 ///< NIC->MMR flit transfer, cycles
  Cycle credit_latency = 1;               ///< MMR->NIC credit return, cycles

  // --- bandwidth accounting (Section 2, "Connection Set up") --------------
  /// Flit cycles per round = round_multiple * vcs_per_link.
  std::uint32_t round_multiple = 4;
  /// VBR admission: sum of peak bandwidths <= round * concurrency_factor.
  double concurrency_factor = 3.0;

  // --- scheduling ---------------------------------------------------------
  PriorityScheme priority_scheme = PriorityScheme::kSiabp;
  std::string arbiter = "coa";  ///< see arbiter factory for names

  // --- run control ---------------------------------------------------------
  std::uint64_t seed = 0x5EEDu;
  Cycle warmup_cycles = 20'000;    ///< statistics discarded
  Cycle measure_cycles = 200'000;  ///< statistics collected

  // --- fault injection (multi-router networks) ------------------------------
  /// Textual FaultPlan spec (see mmr/fault/fault_plan.hpp), parsed by the
  /// network simulation.  Empty = no fault machinery at all; results are
  /// bit-identical to a fault-free build.
  std::string fault_spec;

  // --- overload protection (mmr/overload/) ----------------------------------
  /// Textual PoliceSpec (see mmr/overload/spec.hpp): per-connection token-
  /// bucket policing at NIC injection plus the staged saturation watchdog.
  /// Empty = no policing machinery at all; results are bit-identical to a
  /// build without the subsystem.
  std::string police_spec;
  /// Textual RogueSpec: wraps a deterministic subset of QoS sources so they
  /// inflate past their admitted contract.  Empty = no rogue sources.
  std::string rogue_spec;

  // --- flow-control regime (mmr/mmu/) ---------------------------------------
  /// Textual MmuSpec (see mmr/mmu/spec.hpp): "credit" for the paper's
  /// dedicated per-VC buffers + credit flow control, or
  /// "shared[,key:value...]" for the shared-buffer MMU regime (dynamic-
  /// threshold admission, Xon/Xoff pause, ECN marking).  Empty = credit
  /// regime with no MMU machinery at all; results are bit-identical to a
  /// build without the subsystem.
  std::string flow_spec;

  // --- event tracing (mmr/trace/) -------------------------------------------
  /// Textual TraceSpec (see mmr/trace/spec.hpp): structured lifecycle-event
  /// tracing, either full-stream export or a flight-recorder ring dumped on
  /// invariant failure / watchdog alarm / fault activation.  Empty = no
  /// tracer is constructed at all; results are bit-identical to a build
  /// without the subsystem (and bit-identical traced vs untraced when set).
  std::string trace_spec;

  // --- checkpoint/restore (mmr/snapshot/) -----------------------------------
  /// Textual SnapSpec (see mmr/snapshot/spec.hpp): periodic checkpoints,
  /// per-cycle state hashing, crash-triggered post-mortem bundles, and
  /// resume-from-checkpoint.  Empty = no snapshot machinery at all; results
  /// are bit-identical to a build without the subsystem.
  std::string snap_spec;

  // --- queue discipline (mmr/router/qd_spec.hpp) ----------------------------
  /// Textual QdSpec: "vc" for the paper's per-VC input queueing, "voq" for
  /// per-input virtual output queues in front of the same SwitchArbiter API,
  /// or "cicq[,stab:0|1][,xp:N][,thresh:N]" for combined input-crosspoint
  /// queueing with RR/RR scheduling and the burst-stabilization credit
  /// protocol.  Empty = per-VC discipline with none of the VOQ/CICQ
  /// machinery constructed; results are bit-identical to a build without
  /// the subsystem.
  std::string qd_spec;

  // --- sharded network engine (mmr/network/) --------------------------------
  /// Worker shards for the multi-router network simulation.  0 (unset) and 1
  /// both run the original single-threaded engine — bit-identical to a build
  /// without the field.  N >= 2 partitions the routers into N contiguous
  /// shards stepped on a ThreadPool with a barrier per phase; results stay
  /// bit-identical to the serial run (metrics, trace bytes, StateHash
  /// sequence — tested).  `net_threads=hw` resolves to the hardware thread
  /// count at parse time.  Excluded from the snapshot config digest so
  /// checkpoints resume across thread counts.
  std::uint32_t net_threads = 0;

  // --- runtime invariant auditing (mmr/audit/sim_auditor.hpp) --------------
  /// 0 = off.  N >= 1 attaches the simulation-level invariant auditor:
  /// departure-stream checks (per-VC FIFO, crossbar bandwidth) run every
  /// cycle and the full credit-conservation sweep every N cycles.  Auditing
  /// never changes simulation results; violations abort with a message.
  std::uint32_t audit_every = 0;

  // --- derived ------------------------------------------------------------
  [[nodiscard]] TimeBase time_base() const {
    return TimeBase(link_bandwidth_bps, flit_bits, phit_bits);
  }
  [[nodiscard]] std::uint32_t flit_cycles_per_round() const {
    return round_multiple * vcs_per_link;
  }
  [[nodiscard]] Cycle total_cycles() const {
    return warmup_cycles + measure_cycles;
  }
  /// True when flow= selects the shared-buffer MMU regime.  (Cheap prefix
  /// test; full parsing and validation live in mmr::mmu::MmuSpec, above
  /// this layer.)
  [[nodiscard]] bool shared_flow() const {
    return flow_spec.rfind("shared", 0) == 0;
  }
  /// True when qd= selects the paper's per-VC discipline (the default).
  /// Cheap test; full parsing and validation live in mmr::QdSpec.
  [[nodiscard]] bool vc_discipline() const {
    return qd_spec.empty() || qd_spec == "vc";
  }

  /// Aborts with a readable message when a field combination is nonsense.
  void validate() const;

  /// validate() plus the constraints specific to a multi-router network run.
  /// Unlike validate() this *throws* std::invalid_argument (message prefixed
  /// "error:") on a conflicting key combination — e.g. `flow=shared`, which
  /// is a single-router regime — so drivers can print the message and exit 1
  /// instead of dying on an assert deep inside the network constructor.
  void validate_network() const;
};

/// Applies "key=value" overrides (e.g. from bench argv) to a config.
/// Unknown keys raise an error listing the valid keys.  Returns the keys that
/// were applied.
std::vector<std::string> apply_overrides(
    SimConfig& config, const std::vector<std::string>& overrides);

}  // namespace mmr
