#include "mmr/sim/config.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "mmr/sim/assert.hpp"

namespace mmr {

const char* to_string(PriorityScheme s) {
  switch (s) {
    case PriorityScheme::kSiabp: return "siabp";
    case PriorityScheme::kIabp: return "iabp";
    case PriorityScheme::kFifoAge: return "fifo-age";
    case PriorityScheme::kStatic: return "static";
  }
  return "?";
}

PriorityScheme priority_scheme_from_string(const std::string& s) {
  if (s == "siabp") return PriorityScheme::kSiabp;
  if (s == "iabp") return PriorityScheme::kIabp;
  if (s == "fifo-age") return PriorityScheme::kFifoAge;
  if (s == "static") return PriorityScheme::kStatic;
  throw std::invalid_argument("unknown priority scheme: " + s +
                              " (expected siabp|iabp|fifo-age|static)");
}

void SimConfig::validate() const {
  MMR_ASSERT_MSG(ports >= 2 && ports <= kMaxPorts,
                 "ports out of range (2..kMaxPorts)");
  MMR_ASSERT_MSG(vcs_per_link >= 1, "need at least one VC per link");
  MMR_ASSERT_MSG(std::isfinite(link_bandwidth_bps) && link_bandwidth_bps > 0.0,
                 "link bandwidth must be finite and positive");
  MMR_ASSERT_MSG(flit_bits > 0 && phit_bits > 0, "flit/phit bits positive");
  MMR_ASSERT_MSG(flit_bits % phit_bits == 0,
                 "flit must be a whole number of phits");
  MMR_ASSERT_MSG(buffer_flits_per_vc >= 1, "VC buffer must hold >= 1 flit");
  MMR_ASSERT_MSG(candidate_levels >= 1, "need >= 1 candidate level");
  MMR_ASSERT_MSG(candidate_levels <= vcs_per_link,
                 "more candidate levels than VCs is meaningless");
  MMR_ASSERT_MSG(round_multiple >= 1, "round must cover every VC");
  MMR_ASSERT_MSG(std::isfinite(concurrency_factor) && concurrency_factor >= 1.0,
                 "concurrency factor must be finite and >= 1");
  MMR_ASSERT_MSG(measure_cycles > 0, "nothing to measure");
}

void SimConfig::validate_network() const {
  validate();
  if (shared_flow()) {
    throw std::invalid_argument(
        "error: conflicting keys flow=" + flow_spec +
        " with a multi-router network run: the shared-buffer MMU is a "
        "single-router regime and the network layer supports flow=credit "
        "only; drop flow= (or set flow=credit), or run the single-router "
        "simulation");
  }
  if (!vc_discipline()) {
    throw std::invalid_argument(
        "error: conflicting keys qd=" + qd_spec +
        " with a multi-router network run: VOQ/CICQ queue disciplines are "
        "single-router regimes and the network layer supports qd=vc only; "
        "drop qd= (or set qd=vc), or run the single-router simulation");
  }
}

namespace {

/// Parses a double, rejecting nan/inf (strtod accepts both spellings) — a
/// config built from overrides must never carry a non-finite field into a
/// simulation, where it would silently poison every derived quantity.
double parse_double(std::string_view v, const std::string& key) {
  // std::from_chars(double) is not universally available; strtod suffices.
  const std::string tmp(v);
  char* end = nullptr;
  const double x = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0')
    throw std::invalid_argument("bad numeric value for " + key + ": " + tmp);
  if (!std::isfinite(x))
    throw std::invalid_argument("value for " + key +
                                " must be finite, got: " + tmp);
  return x;
}

std::uint64_t parse_u64(std::string_view v, const std::string& key) {
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
  if (ec != std::errc{} || p != v.data() + v.size())
    throw std::invalid_argument("bad integer value for " + key + ": " +
                                std::string(v));
  return x;
}

constexpr const char* kValidKeys =
    "ports, vcs, link_bps, flit_bits, phit_bits, buffer_flits, levels, "
    "link_latency, credit_latency, round_multiple, concurrency_factor, "
    "priority, arbiter, seed, warmup, measure, fault, flow, audit, police, "
    "rogue, trace, snap, qd, net_threads";

/// Largest accepted net_threads: far above any real machine, small enough
/// to catch a mistyped value before it allocates per-shard state.
constexpr std::uint32_t kMaxNetThreads = 4096;

}  // namespace

std::vector<std::string> apply_overrides(
    SimConfig& config, const std::vector<std::string>& overrides) {
  std::vector<std::string> applied;
  for (const std::string& kv : overrides) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("override must be key=value: " + kv);
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "ports") {
      const std::uint64_t ports = parse_u64(value, key);
      // Reject unrepresentable port counts here, at parse time, with the
      // limit in the message — not deep inside arbiter construction.
      if (ports < 1 || ports > kMaxPorts)
        throw std::invalid_argument(
            "ports=" + value + " out of range: arbiters represent 1.." +
            std::to_string(kMaxPorts) +
            " ports (kMaxPorts, mmr/sim/config.hpp)");
      config.ports = static_cast<std::uint32_t>(ports);
    } else if (key == "vcs") {
      config.vcs_per_link = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "link_bps") {
      const double bps = parse_double(value, key);
      if (bps <= 0.0)
        throw std::invalid_argument("link_bps must be positive, got: " + value);
      config.link_bandwidth_bps = bps;
    } else if (key == "flit_bits") {
      config.flit_bits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "phit_bits") {
      config.phit_bits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "buffer_flits") {
      config.buffer_flits_per_vc =
          static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "levels") {
      config.candidate_levels =
          static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "link_latency") {
      config.link_latency = parse_u64(value, key);
    } else if (key == "credit_latency") {
      config.credit_latency = parse_u64(value, key);
    } else if (key == "round_multiple") {
      config.round_multiple = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "concurrency_factor") {
      const double factor = parse_double(value, key);
      if (factor < 1.0)
        throw std::invalid_argument("concurrency_factor must be >= 1, got: " +
                                    value);
      config.concurrency_factor = factor;
    } else if (key == "priority") {
      config.priority_scheme = priority_scheme_from_string(value);
    } else if (key == "arbiter") {
      config.arbiter = value;
    } else if (key == "seed") {
      config.seed = parse_u64(value, key);
    } else if (key == "warmup") {
      config.warmup_cycles = parse_u64(value, key);
    } else if (key == "measure") {
      config.measure_cycles = parse_u64(value, key);
    } else if (key == "fault") {
      config.fault_spec = value;
    } else if (key == "flow") {
      config.flow_spec = value;
    } else if (key == "police") {
      config.police_spec = value;
    } else if (key == "rogue") {
      config.rogue_spec = value;
    } else if (key == "trace") {
      config.trace_spec = value;
    } else if (key == "snap") {
      config.snap_spec = value;
    } else if (key == "qd") {
      config.qd_spec = value;
    } else if (key == "net_threads") {
      if (value == "hw") {
        config.net_threads = std::max(1u, std::thread::hardware_concurrency());
      } else {
        const std::uint64_t threads = parse_u64(value, key);
        if (threads > kMaxNetThreads)
          throw std::invalid_argument(
              "net_threads=" + value + " out of range: expected 0.." +
              std::to_string(kMaxNetThreads) + " or 'hw'");
        config.net_threads = static_cast<std::uint32_t>(threads);
      }
    } else if (key == "audit") {
      config.audit_every = static_cast<std::uint32_t>(parse_u64(value, key));
    } else {
      throw std::invalid_argument("unknown config key '" + key +
                                  "'; valid keys: " + kValidKeys);
    }
    applied.push_back(key);
  }
  return applied;
}

}  // namespace mmr
