#include "mmr/sim/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

LogHistogram::LogHistogram(double min_value, double growth,
                           std::size_t max_buckets)
    : min_value_(min_value),
      log_growth_(std::log(growth)),
      max_buckets_(max_buckets) {
  MMR_ASSERT(min_value > 0.0);
  MMR_ASSERT(growth > 1.0);
  MMR_ASSERT(max_buckets >= 2);  // at least one regular + the overflow row
}

std::size_t LogHistogram::bucket_of(double x) const {
  if (x <= min_value_) return 0;
  const double b = std::log(x / min_value_) / log_growth_;
  // Everything past the cap shares the last (overflow) bucket.
  if (b >= static_cast<double>(max_buckets_ - 1)) return max_buckets_ - 1;
  return static_cast<std::size_t>(b) + 1;
}

double LogHistogram::bucket_lo(std::size_t b) const {
  if (b == 0) return 0.0;
  return min_value_ * std::exp(static_cast<double>(b - 1) * log_growth_);
}

double LogHistogram::bucket_hi(std::size_t b) const {
  return min_value_ * std::exp(static_cast<double>(b) * log_growth_);
}

void LogHistogram::add(double x) {
  MMR_ASSERT(x >= 0.0);
  const std::size_t b = bucket_of(x);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

std::uint64_t LogHistogram::overflow_count() const {
  return buckets_.size() == max_buckets_ ? buckets_.back() : 0;
}

void LogHistogram::merge(const LogHistogram& other) {
  MMR_ASSERT(min_value_ == other.min_value_);
  MMR_ASSERT(log_growth_ == other.log_growth_);
  MMR_ASSERT(max_buckets_ == other.max_buckets_);
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

void LogHistogram::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, buckets_);
  snapshot::value(w, count_);
  snapshot::value(w, min_);
  snapshot::value(w, max_);
}

void LogHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = 0.0;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  // The extreme order statistics are known exactly; reporting a bucket
  // midpoint for them would invent a value no sample ever took (and made
  // quantile(0)/quantile(1) disagree with min_seen()/max_seen()).
  if (rank == 0) return min_;
  if (rank == count_ - 1) return max_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      // Geometric midpoint, clamped to the observed extremes.  The overflow
      // bucket has no nominal upper edge; the observed maximum bounds it.
      const double lo = std::max(bucket_lo(b), min_);
      const double hi = is_overflow(b) ? max_ : std::min(bucket_hi(b), max_);
      if (lo <= 0.0) return hi * 0.5;
      return std::sqrt(lo * hi);
    }
  }
  return max_;
}

std::string LogHistogram::ascii(std::size_t max_rows) const {
  std::ostringstream out;
  if (count_ == 0) {
    out << "(empty histogram)\n";
    return out.str();
  }
  // Coalesce buckets into at most max_rows rows.
  const std::size_t nb = buckets_.size();
  const std::size_t per_row = std::max<std::size_t>(1, (nb + max_rows - 1) / max_rows);
  std::uint64_t row_max = 0;
  std::vector<std::uint64_t> rows;
  for (std::size_t b = 0; b < nb; b += per_row) {
    std::uint64_t c = 0;
    for (std::size_t i = b; i < std::min(nb, b + per_row); ++i) c += buckets_[i];
    rows.push_back(c);
    row_max = std::max(row_max, c);
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t b = r * per_row;
    const std::size_t last = std::min(nb, b + per_row) - 1;
    const double lo = bucket_lo(b);
    const auto width = static_cast<std::size_t>(
        row_max == 0 ? 0 : (40.0 * static_cast<double>(rows[r]) /
                            static_cast<double>(row_max)));
    char buf[96];
    if (is_overflow(last)) {
      // The overflow bucket has no nominal upper edge; rendering max_ as a
      // half-open bound misread as "no sample reached max_".
      std::snprintf(buf, sizeof buf, "[%10.2f,       +inf) ", lo);
    } else if (last == 0) {
      // Bucket 0 holds every sample at or below the resolution floor, so
      // its upper edge is closed, unlike every other bucket's.
      std::snprintf(buf, sizeof buf, "[%10.2f, %10.2f] ", lo, bucket_hi(last));
    } else {
      std::snprintf(buf, sizeof buf, "[%10.2f, %10.2f) ", lo, bucket_hi(last));
    }
    out << buf << std::string(width, '#') << ' ' << rows[r];
    if (is_overflow(last)) {
      std::snprintf(buf, sizeof buf, " (max %.2f)", max_);
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace mmr
