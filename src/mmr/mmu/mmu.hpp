// SharedBufferMmu: shared-buffer admission control and backpressure for the
// single-router engine (`flow=shared`).  Pure accounting — the MMU holds no
// flits itself; the simulation consults it when a flit arrives at the router
// (admit) and when one departs through the crossbar (release), and carries
// out the decisions it returns:
//
//   * admit() charges the flit to the first pool with room, in order
//     reserved -> shared (dynamic threshold) -> headroom (lossless classes
//     only), or reports a drop;
//   * a port whose buffered-flit usage crosses Xoff (or that had to touch
//     headroom) asks for a pause frame; the simulation delivers it to the
//     NIC after the credit channel's propagation latency, during which
//     headroom absorbs the flits already committed to the wire — with
//     correctly sized headroom a lossless-class flit is NEVER dropped;
//   * shared-pool admissions draw an ECN mark with probability ramping from
//     0 at kmin to pmax at kmax (1 beyond kmax); the EcnReactor below turns
//     marks into per-connection rate factors that traffic sources and the
//     injection policer apply.
//
// Release charges back in the order shared -> reserved -> headroom.  The
// headroom pool is per-port (not per-class), so freeing it last is what
// keeps every per-(port, class) counter non-negative: while a class still
// holds reserved/shared tokens those are returned first, and once both are
// exhausted every remaining buffered flit of that class is headroom-
// accounted by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/mmu/spec.hpp"
#include "mmr/qos/connection.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/sim/stats.hpp"
#include "mmr/sim/time.hpp"

namespace mmr::snapshot {
class Walker;
}

namespace mmr::mmu {

/// Pool a flit was charged to at admission.
enum class AdmitPool : std::uint8_t {
  kReserved,
  kShared,
  kHeadroom,
  kDropped,
};

struct AdmitResult {
  AdmitPool pool = AdmitPool::kDropped;
  bool marked = false;     ///< ECN mark drawn on shared-pool occupancy
  bool fire_xoff = false;  ///< emit a pause frame for this port now
};

struct ReleaseResult {
  bool fire_xon = false;  ///< emit a resume frame for this port now
  std::uint64_t paused_cycles = 0;  ///< pause duration closed by this Xon
};

class SharedBufferMmu {
 public:
  /// `spec` may be unresolved; geometry defaults are derived from `config`.
  SharedBufferMmu(const MmuSpec& spec, const SimConfig& config);

  /// Charges one arriving flit.  `cls` is the flit's loss class: CBR/VBR are
  /// lossless, best-effort (and policed-demoted excess) is lossy.
  [[nodiscard]] AdmitResult admit(std::uint32_t port, TrafficClass cls,
                                  Cycle now);

  /// Releases one departing flit's slot and re-evaluates the port's pause.
  [[nodiscard]] ReleaseResult release(std::uint32_t port, TrafficClass cls,
                                      Cycle now);

  /// Samples the shared-pool occupancy once per spec().sample_every cycles.
  void on_cycle(Cycle now);

  // Introspection ------------------------------------------------------------
  [[nodiscard]] const MmuSpec& spec() const { return spec_; }
  /// Flits currently charged to any pool == flits buffered in the router.
  [[nodiscard]] std::uint64_t occupancy() const { return occupancy_; }
  [[nodiscard]] std::uint64_t shared_used() const { return shared_used_; }
  /// Buffered flits charged to `port` across all pools.
  [[nodiscard]] std::uint64_t port_usage(std::uint32_t port) const;
  [[nodiscard]] std::uint32_t headroom_used(std::uint32_t port) const;
  /// MMU-side pause decision state (the NIC observes it one pause-frame
  /// propagation later).
  [[nodiscard]] bool pause_wanted(std::uint32_t port) const;
  /// Longest currently-open pause, 0 when no port is paused.
  [[nodiscard]] Cycle longest_open_pause(Cycle now) const;

  // Lifetime counters.
  [[nodiscard]] std::uint64_t admitted_reserved() const {
    return admitted_reserved_;
  }
  [[nodiscard]] std::uint64_t admitted_shared() const {
    return admitted_shared_;
  }
  [[nodiscard]] std::uint64_t admitted_headroom() const {
    return admitted_headroom_;
  }
  [[nodiscard]] std::uint64_t drops_lossless() const {
    return drops_lossless_;
  }
  [[nodiscard]] std::uint64_t drops_lossy() const { return drops_lossy_; }
  [[nodiscard]] std::uint64_t pause_events() const { return pause_events_; }
  [[nodiscard]] std::uint64_t resume_events() const { return resume_events_; }
  /// Pause cycles summed over ports; open pauses are closed at `now`.
  [[nodiscard]] std::uint64_t pause_cycles_total(Cycle now) const;
  /// Longest single pause so far; open pauses are measured at `now`.
  [[nodiscard]] std::uint64_t pause_cycles_max(Cycle now) const;
  [[nodiscard]] std::uint32_t headroom_highwater() const {
    return headroom_highwater_;
  }
  [[nodiscard]] std::uint64_t pool_highwater() const { return pool_highwater_; }
  [[nodiscard]] std::uint64_t ecn_marked() const { return ecn_marked_; }
  [[nodiscard]] std::uint64_t ecn_eligible() const { return ecn_eligible_; }
  [[nodiscard]] const StreamingStats& pool_occupancy() const {
    return pool_occupancy_;
  }

  void check_invariants() const;

  /// Checkpoint walk: pool accounting, pause state, the marking RNG lane,
  /// and lifetime counters.
  void snap(snapshot::Walker& w);

 private:
  struct PortClass {
    std::uint32_t reserved_used = 0;
    std::uint32_t shared_used = 0;
  };

  [[nodiscard]] PortClass& state(std::uint32_t port, TrafficClass cls);
  [[nodiscard]] const PortClass& state(std::uint32_t port,
                                       TrafficClass cls) const;
  [[nodiscard]] static bool lossless(TrafficClass cls) {
    return cls != TrafficClass::kBestEffort;
  }
  [[nodiscard]] double mark_probability() const;

  MmuSpec spec_;  ///< resolved
  std::uint32_t ports_;

  std::vector<PortClass> per_port_class_;  ///< [port * kClasses + class]
  std::vector<std::uint32_t> headroom_used_;
  std::uint64_t shared_used_ = 0;
  std::uint64_t occupancy_ = 0;

  std::vector<char> paused_;
  std::vector<Cycle> pause_started_;
  std::uint32_t paused_ports_ = 0;

  Rng mark_rng_;

  std::uint64_t admitted_reserved_ = 0;
  std::uint64_t admitted_shared_ = 0;
  std::uint64_t admitted_headroom_ = 0;
  std::uint64_t drops_lossless_ = 0;
  std::uint64_t drops_lossy_ = 0;
  std::uint64_t pause_events_ = 0;
  std::uint64_t resume_events_ = 0;
  std::uint64_t closed_pause_cycles_ = 0;
  std::uint64_t max_closed_pause_ = 0;
  std::uint32_t headroom_highwater_ = 0;
  std::uint64_t pool_highwater_ = 0;
  std::uint64_t ecn_marked_ = 0;
  std::uint64_t ecn_eligible_ = 0;
  StreamingStats pool_occupancy_;
};

/// Turns ECN marks into per-connection injection rate factors in (0, 1]:
/// multiplicative cut on every mark, additive recovery towards 1.0 once per
/// recover window.  The reactor only computes factors; the simulation pushes
/// changes into TrafficSource::throttle() and
/// InjectionPolicer::set_rate_factor().
class EcnReactor {
 public:
  EcnReactor(std::size_t connections, const MmuSpec& resolved);

  /// Applies a mark's multiplicative cut; true when the factor changed.
  [[nodiscard]] bool on_mark(ConnectionId id);

  /// Additive recovery step, once per spec.ecn_recover cycles; appends every
  /// connection whose factor changed to `changed`.
  void on_cycle(Cycle now, std::vector<ConnectionId>& changed);

  [[nodiscard]] double factor(ConnectionId id) const;
  [[nodiscard]] std::uint64_t cuts() const { return cuts_; }

  void snap(snapshot::Walker& w);

 private:
  double cut_;
  double floor_;
  double step_;
  Cycle window_;
  std::vector<double> factors_;
  std::uint64_t cuts_ = 0;
};

}  // namespace mmr::mmu
