#include "mmr/mmu/spec.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "mmr/sim/assert.hpp"

namespace mmr::mmu {

const char* to_string(FlowMode m) {
  switch (m) {
    case FlowMode::kCredit: return "credit";
    case FlowMode::kShared: return "shared";
  }
  return "?";
}

namespace {

double parse_double(std::string_view v, const std::string& key) {
  const std::string tmp(v);
  char* end = nullptr;
  const double x = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0')
    throw std::invalid_argument("mmu spec: bad numeric value for " + key +
                                ": " + tmp);
  if (!std::isfinite(x))
    throw std::invalid_argument("mmu spec: value for " + key +
                                " must be finite, got: " + tmp);
  return x;
}

std::uint64_t parse_u64(std::string_view v, const std::string& key) {
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
  if (ec != std::errc{} || p != v.data() + v.size())
    throw std::invalid_argument("mmu spec: bad integer value for " + key +
                                ": " + std::string(v));
  return x;
}

}  // namespace

MmuSpec MmuSpec::parse(const std::string& spec) {
  MmuSpec out;
  std::string_view rest(spec);

  const auto next_token = [&rest]() {
    const auto comma = rest.find(',');
    std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    return token;
  };

  const std::string_view mode = next_token();
  if (mode == "credit") {
    out.mode = FlowMode::kCredit;
  } else if (mode == "shared") {
    out.mode = FlowMode::kShared;
  } else {
    throw std::invalid_argument("mmu spec must start with credit|shared, got: " +
                                std::string(mode));
  }

  while (!rest.empty()) {
    const std::string_view token = next_token();
    if (token.empty()) continue;
    const auto colon = token.find(':');
    if (colon == std::string_view::npos)
      throw std::invalid_argument("mmu spec token must be key:value: " +
                                  std::string(token));
    const std::string key(token.substr(0, colon));
    const std::string_view value = token.substr(colon + 1);
    if (key == "pool") {
      out.pool_flits = parse_u64(value, key);
    } else if (key == "reserved") {
      out.reserved_per_class = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "headroom") {
      out.headroom_flits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "alpha") {
      out.alpha = parse_double(value, key);
    } else if (key == "alpha_be") {
      out.alpha_be = parse_double(value, key);
    } else if (key == "xoff") {
      out.xoff_flits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "xon") {
      out.xon_flits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "ecn") {
      out.ecn = parse_u64(value, key) != 0;
    } else if (key == "kmin") {
      out.ecn_kmin = parse_u64(value, key);
    } else if (key == "kmax") {
      out.ecn_kmax = parse_u64(value, key);
    } else if (key == "pmax") {
      out.ecn_pmax = parse_double(value, key);
    } else if (key == "ecn_cut") {
      out.ecn_cut = parse_double(value, key);
    } else if (key == "ecn_floor") {
      out.ecn_floor = parse_double(value, key);
    } else if (key == "ecn_recover") {
      out.ecn_recover = parse_u64(value, key);
    } else if (key == "ecn_step") {
      out.ecn_step = parse_double(value, key);
    } else if (key == "sample") {
      out.sample_every = parse_u64(value, key);
    } else {
      throw std::invalid_argument(
          "mmu spec: unknown key '" + key +
          "'; valid keys: pool, reserved, headroom, alpha, alpha_be, xoff, "
          "xon, ecn, kmin, kmax, pmax, ecn_cut, ecn_floor, ecn_recover, "
          "ecn_step, sample");
    }
  }
  if (out.mode == FlowMode::kCredit &&
      (out.pool_flits != 0 || out.xoff_flits != 0))
    throw std::invalid_argument(
        "mmu spec: pool/pause keys are meaningless under flow=credit");
  return out;
}

MmuSpec MmuSpec::resolve(const SimConfig& config) const {
  MMR_ASSERT_MSG(mode == FlowMode::kShared,
                 "only the shared regime has derivable pool geometry");
  MmuSpec r = *this;
  if (r.pool_flits == 0) r.pool_flits = 48ull * config.ports;
  if (r.headroom_flits == 0) {
    // Worst case between the Xoff decision and the NIC observing it: the
    // pause frame propagates for credit_latency cycles (the NIC sends one
    // flit per cycle meanwhile), link_latency flits are already on the
    // wire, plus slack for the same-cycle arrival that triggered the pause.
    r.headroom_flits = static_cast<std::uint32_t>(config.credit_latency +
                                                  config.link_latency + 2);
  }
  if (r.xoff_flits == 0) {
    const std::uint64_t half_share = r.pool_flits / (2ull * config.ports);
    r.xoff_flits = static_cast<std::uint32_t>(half_share < 8 ? 8 : half_share);
  }
  if (r.xon_flits == 0) r.xon_flits = r.xoff_flits / 2;
  if (r.ecn_kmin == 0) r.ecn_kmin = r.pool_flits / 8;
  if (r.ecn_kmax == 0) r.ecn_kmax = r.pool_flits / 2;
  r.validate();
  return r;
}

std::uint32_t MmuSpec::vc_slots() const {
  const std::uint64_t port_allowance = 3ull * reserved_per_class + pool_flits +
                                       headroom_flits;
  MMR_ASSERT_MSG(port_allowance <= ~std::uint32_t{0},
                 "shared pool too large for 32-bit credit accounting");
  return static_cast<std::uint32_t>(port_allowance);
}

void MmuSpec::validate() const {
  if (mode == FlowMode::kCredit) return;
  MMR_ASSERT_MSG(pool_flits >= 1, "shared pool must hold at least one flit");
  MMR_ASSERT_MSG(headroom_flits >= 1,
                 "headroom must absorb at least one in-flight flit");
  MMR_ASSERT_MSG(std::isfinite(alpha) && alpha > 0.0 &&
                     std::isfinite(alpha_be) && alpha_be > 0.0,
                 "dynamic-threshold alphas must be positive");
  MMR_ASSERT_MSG(xon_flits < xoff_flits,
                 "Xon must sit strictly below Xoff (hysteresis)");
  MMR_ASSERT_MSG(ecn_kmin < ecn_kmax, "ECN needs kmin < kmax");
  MMR_ASSERT_MSG(ecn_pmax > 0.0 && ecn_pmax <= 1.0,
                 "ECN pmax must be in (0, 1]");
  MMR_ASSERT_MSG(ecn_cut > 0.0 && ecn_cut < 1.0,
                 "ECN cut must be a fraction in (0, 1)");
  MMR_ASSERT_MSG(ecn_floor > 0.0 && ecn_floor <= 1.0,
                 "ECN floor must be in (0, 1]");
  MMR_ASSERT_MSG(ecn_step > 0.0, "ECN recovery step must be positive");
  MMR_ASSERT_MSG(sample_every >= 1, "occupancy sample period must be >= 1");
}

}  // namespace mmr::mmu
