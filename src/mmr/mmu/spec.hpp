// Shared-buffer MMU configuration (`flow=` SimConfig override).  The MMR
// paper models dedicated per-VC buffers with credit flow control as the only
// loss-avoidance mechanism; `flow=shared` replaces that with a datacenter-
// style memory-management unit (the ns-3 SwitchMmu shape): a buffer pool
// shared across VCs and ports with per-port/per-class accounting —
//
//   * a reserved quota per (port, traffic class) that is always admittable,
//   * alpha-scaled dynamic-threshold admission into the shared pool
//     (admit while used < alpha x remaining free pool),
//   * per-port headroom sized to absorb the flits still in flight after an
//     Xoff pause frame is emitted (the lossless guarantee), and
//   * ECN-style occupancy marking (kmin/kmax/pmax) that sources and the
//     injection policer react to by shaping down.
//
// The spec is pure data.  An empty `flow=` string (or "credit") means the
// MMU machinery is never instantiated and results stay bit-identical to a
// build without the subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "mmr/sim/config.hpp"
#include "mmr/sim/time.hpp"

namespace mmr::mmu {

/// Which flow-control regime the simulation runs.
enum class FlowMode : std::uint8_t {
  kCredit,  ///< dedicated per-VC buffers + credits (the paper's model)
  kShared,  ///< shared-buffer MMU with dynamic thresholds + Xon/Xoff + ECN
};

[[nodiscard]] const char* to_string(FlowMode m);

struct MmuSpec {
  FlowMode mode = FlowMode::kCredit;

  // Pool geometry (flits).  0 = derive a default from the SimConfig in
  // resolve(); see the field comments for the formulas.
  std::uint64_t pool_flits = 0;  ///< shared pool size (default 48 x ports)
  std::uint32_t reserved_per_class = 2;  ///< guaranteed flits / port / class
  std::uint32_t headroom_flits = 0;  ///< per-port pause absorption buffer
                                     ///< (default credit+link latency + 2)

  // Dynamic-threshold admission: a (port, class) may keep taking shared
  // slots while its usage < alpha x (free shared pool).
  double alpha = 1.0;      ///< QoS (lossless) classes
  double alpha_be = 0.25;  ///< best-effort (lossy) class

  // Xon/Xoff pause on per-port buffered-flit usage (hysteresis pair).
  std::uint32_t xoff_flits = 0;  ///< pause above (default max(8, pool/2P))
  std::uint32_t xon_flits = 0;   ///< resume at or below (default xoff / 2)

  // ECN-style marking on shared-pool occupancy: mark probability ramps
  // linearly from 0 at kmin to pmax at kmax and is 1 beyond kmax.
  bool ecn = true;
  std::uint64_t ecn_kmin = 0;  ///< default pool / 8
  std::uint64_t ecn_kmax = 0;  ///< default pool / 2
  double ecn_pmax = 0.1;

  // Reaction to marks (EcnReactor): multiplicative rate cut per mark,
  // additive recovery towards 1.0 every recover window.
  double ecn_cut = 0.5;           ///< factor *= cut on a mark
  double ecn_floor = 0.125;       ///< factor never drops below this
  Cycle ecn_recover = 1024;       ///< recovery period, cycles (0 = never)
  double ecn_step = 0.05;         ///< factor += step per recovery period

  Cycle sample_every = 64;  ///< shared-pool occupancy sampling period

  /// Parses "credit" or "shared[,key:value...]" with keys pool, reserved,
  /// headroom, alpha, alpha_be, xoff, xon, ecn (0|1), kmin, kmax, pmax,
  /// ecn_cut, ecn_floor, ecn_recover, ecn_step, sample.  Throws
  /// std::invalid_argument on unknown or malformed tokens.
  [[nodiscard]] static MmuSpec parse(const std::string& spec);

  /// Returns a copy with every derivable 0 replaced by its default for
  /// `config`, validated.  Only meaningful for kShared.
  [[nodiscard]] MmuSpec resolve(const SimConfig& config) const;

  /// Per-VC buffer/credit allowance in shared mode: one VC may in principle
  /// occupy a whole port's admission allowance, so the per-VC credit budget
  /// stops being the binding constraint and the MMU gates admission instead.
  /// Only valid on a resolved spec.
  [[nodiscard]] std::uint32_t vc_slots() const;

  /// Aborts with a readable message on nonsense combinations.  Expects a
  /// resolved spec (no remaining zeros in derivable fields).
  void validate() const;
};

}  // namespace mmr::mmu
