#include "mmr/mmu/mmu.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"

namespace mmr::mmu {

namespace {

constexpr std::size_t kClasses = 3;  ///< TrafficClass cardinality

constexpr std::size_t cls_index(TrafficClass cls) {
  return static_cast<std::size_t>(cls);
}

}  // namespace

SharedBufferMmu::SharedBufferMmu(const MmuSpec& spec, const SimConfig& config)
    : spec_(spec.resolve(config)),
      ports_(config.ports),
      per_port_class_(static_cast<std::size_t>(config.ports) * kClasses),
      headroom_used_(config.ports, 0),
      paused_(config.ports, 0),
      pause_started_(config.ports, 0),
      // Dedicated stream: mark draws must never perturb workload generation.
      mark_rng_(config.seed, 0xECC5) {}

SharedBufferMmu::PortClass& SharedBufferMmu::state(std::uint32_t port,
                                                   TrafficClass cls) {
  MMR_ASSERT(port < ports_);
  return per_port_class_[static_cast<std::size_t>(port) * kClasses +
                         cls_index(cls)];
}

const SharedBufferMmu::PortClass& SharedBufferMmu::state(
    std::uint32_t port, TrafficClass cls) const {
  MMR_ASSERT(port < ports_);
  return per_port_class_[static_cast<std::size_t>(port) * kClasses +
                         cls_index(cls)];
}

std::uint64_t SharedBufferMmu::port_usage(std::uint32_t port) const {
  MMR_ASSERT(port < ports_);
  std::uint64_t usage = headroom_used_[port];
  for (std::size_t c = 0; c < kClasses; ++c) {
    const PortClass& pc =
        per_port_class_[static_cast<std::size_t>(port) * kClasses + c];
    usage += pc.reserved_used + pc.shared_used;
  }
  return usage;
}

std::uint32_t SharedBufferMmu::headroom_used(std::uint32_t port) const {
  MMR_ASSERT(port < ports_);
  return headroom_used_[port];
}

bool SharedBufferMmu::pause_wanted(std::uint32_t port) const {
  MMR_ASSERT(port < ports_);
  return paused_[port] != 0;
}

double SharedBufferMmu::mark_probability() const {
  if (shared_used_ <= spec_.ecn_kmin) return 0.0;
  if (shared_used_ >= spec_.ecn_kmax) return 1.0;
  const double span =
      static_cast<double>(spec_.ecn_kmax - spec_.ecn_kmin);
  return spec_.ecn_pmax *
         static_cast<double>(shared_used_ - spec_.ecn_kmin) / span;
}

AdmitResult SharedBufferMmu::admit(std::uint32_t port, TrafficClass cls,
                                   Cycle now) {
  PortClass& pc = state(port, cls);
  AdmitResult result;

  if (pc.reserved_used < spec_.reserved_per_class) {
    ++pc.reserved_used;
    ++admitted_reserved_;
    result.pool = AdmitPool::kReserved;
  } else {
    // Dynamic threshold: this (port, class) may keep taking shared slots
    // while its usage stays below alpha x the remaining free pool.
    const double a = lossless(cls) ? spec_.alpha : spec_.alpha_be;
    const double remaining =
        static_cast<double>(spec_.pool_flits - shared_used_);
    if (shared_used_ < spec_.pool_flits &&
        static_cast<double>(pc.shared_used) < a * remaining) {
      ++pc.shared_used;
      ++shared_used_;
      ++admitted_shared_;
      pool_highwater_ = std::max(pool_highwater_, shared_used_);
      result.pool = AdmitPool::kShared;
      if (spec_.ecn) {
        ++ecn_eligible_;
        const double p = mark_probability();
        if (p >= 1.0 || (p > 0.0 && mark_rng_.uniform_real() < p)) {
          ++ecn_marked_;
          result.marked = true;
        }
      }
    } else if (lossless(cls) &&
               headroom_used_[port] < spec_.headroom_flits) {
      ++headroom_used_[port];
      ++admitted_headroom_;
      headroom_highwater_ =
          std::max(headroom_highwater_, headroom_used_[port]);
      result.pool = AdmitPool::kHeadroom;
    } else {
      // Lossy traffic is simply over threshold; a lossless drop means the
      // headroom was undersized for the pause propagation latency.
      if (lossless(cls)) {
        ++drops_lossless_;
      } else {
        ++drops_lossy_;
      }
      return result;
    }
  }

  ++occupancy_;

  // Pause decision: crossing Xoff, or having to touch headroom at all
  // (emergency — the shared pool was exhausted by other ports before this
  // port's own usage reached Xoff).
  if (!paused_[port] && (port_usage(port) >= spec_.xoff_flits ||
                         result.pool == AdmitPool::kHeadroom)) {
    paused_[port] = 1;
    pause_started_[port] = now;
    ++paused_ports_;
    ++pause_events_;
    result.fire_xoff = true;
  }
  return result;
}

ReleaseResult SharedBufferMmu::release(std::uint32_t port, TrafficClass cls,
                                       Cycle now) {
  PortClass& pc = state(port, cls);
  MMR_ASSERT_MSG(occupancy_ > 0, "mmu release without a matching admit");

  if (pc.shared_used > 0) {
    --pc.shared_used;
    MMR_ASSERT(shared_used_ > 0);
    --shared_used_;
  } else if (pc.reserved_used > 0) {
    --pc.reserved_used;
  } else {
    // Both per-class pools are empty, so every remaining buffered flit of
    // this class at this port is headroom-accounted (see header proof).
    MMR_ASSERT_MSG(lossless(cls) && headroom_used_[port] > 0,
                   "mmu release found no pool charge to return");
    --headroom_used_[port];
  }
  --occupancy_;

  ReleaseResult result;
  if (paused_[port] && port_usage(port) <= spec_.xon_flits) {
    paused_[port] = 0;
    MMR_ASSERT(paused_ports_ > 0);
    --paused_ports_;
    const std::uint64_t duration = now - pause_started_[port];
    closed_pause_cycles_ += duration;
    max_closed_pause_ = std::max(max_closed_pause_, duration);
    ++resume_events_;
    result.fire_xon = true;
    result.paused_cycles = duration;
  }
  return result;
}

void SharedBufferMmu::on_cycle(Cycle now) {
  if (now % spec_.sample_every == 0)
    pool_occupancy_.add(static_cast<double>(shared_used_));
}

Cycle SharedBufferMmu::longest_open_pause(Cycle now) const {
  if (paused_ports_ == 0) return 0;
  Cycle longest = 0;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (paused_[port])
      longest = std::max(longest, now - pause_started_[port]);
  }
  return longest;
}

std::uint64_t SharedBufferMmu::pause_cycles_total(Cycle now) const {
  std::uint64_t total = closed_pause_cycles_;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (paused_[port]) total += now - pause_started_[port];
  }
  return total;
}

std::uint64_t SharedBufferMmu::pause_cycles_max(Cycle now) const {
  return std::max<std::uint64_t>(max_closed_pause_, longest_open_pause(now));
}

void SharedBufferMmu::check_invariants() const {
  std::uint64_t shared = 0;
  std::uint64_t total = 0;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    MMR_ASSERT(headroom_used_[port] <= spec_.headroom_flits);
    total += headroom_used_[port];
    for (std::size_t c = 0; c < kClasses; ++c) {
      const PortClass& pc =
          per_port_class_[static_cast<std::size_t>(port) * kClasses + c];
      MMR_ASSERT(pc.reserved_used <= spec_.reserved_per_class);
      shared += pc.shared_used;
      total += pc.reserved_used + pc.shared_used;
    }
  }
  // Conservation: the pool books balance to the flit (reserved + shared +
  // headroom sums equal the admitted-minus-released occupancy).
  MMR_ASSERT_MSG(shared == shared_used_,
                 "mmu: per-class shared charges disagree with the pool total");
  MMR_ASSERT_MSG(shared_used_ <= spec_.pool_flits,
                 "mmu: shared pool overcommitted");
  MMR_ASSERT_MSG(total == occupancy_,
                 "mmu: pool charges disagree with buffered occupancy");
  std::uint32_t paused = 0;
  for (std::uint32_t port = 0; port < ports_; ++port)
    if (paused_[port]) ++paused;
  MMR_ASSERT(paused == paused_ports_);
}

EcnReactor::EcnReactor(std::size_t connections, const MmuSpec& resolved)
    : cut_(resolved.ecn_cut),
      floor_(resolved.ecn_floor),
      step_(resolved.ecn_step),
      window_(resolved.ecn_recover),
      factors_(connections, 1.0) {}

bool EcnReactor::on_mark(ConnectionId id) {
  MMR_ASSERT(id < factors_.size());
  const double next = std::max(floor_, factors_[id] * cut_);
  if (next == factors_[id]) return false;
  factors_[id] = next;
  ++cuts_;
  return true;
}

void EcnReactor::on_cycle(Cycle now, std::vector<ConnectionId>& changed) {
  if (window_ == 0 || now == 0 || now % window_ != 0) return;
  for (ConnectionId id = 0; id < factors_.size(); ++id) {
    if (factors_[id] >= 1.0) continue;
    factors_[id] = std::min(1.0, factors_[id] + step_);
    changed.push_back(id);
  }
}

double EcnReactor::factor(ConnectionId id) const {
  MMR_ASSERT(id < factors_.size());
  return factors_[id];
}

void SharedBufferMmu::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, per_port_class_,
                        [](snapshot::Walker& v, PortClass& pc) {
                          snapshot::value(v, pc.reserved_used);
                          snapshot::value(v, pc.shared_used);
                        });
  snapshot::walk_vector_pod(w, headroom_used_);
  snapshot::value(w, shared_used_);
  snapshot::value(w, occupancy_);
  snapshot::walk_vector_pod(w, paused_);
  snapshot::walk_vector_pod(w, pause_started_);
  snapshot::value(w, paused_ports_);
  mark_rng_.snap(w);
  snapshot::value(w, admitted_reserved_);
  snapshot::value(w, admitted_shared_);
  snapshot::value(w, admitted_headroom_);
  snapshot::value(w, drops_lossless_);
  snapshot::value(w, drops_lossy_);
  snapshot::value(w, pause_events_);
  snapshot::value(w, resume_events_);
  snapshot::value(w, closed_pause_cycles_);
  snapshot::value(w, max_closed_pause_);
  snapshot::value(w, headroom_highwater_);
  snapshot::value(w, pool_highwater_);
  snapshot::value(w, ecn_marked_);
  snapshot::value(w, ecn_eligible_);
  pool_occupancy_.snap(w);
}

void EcnReactor::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, factors_);
  snapshot::value(w, cuts_);
}

}  // namespace mmr::mmu
