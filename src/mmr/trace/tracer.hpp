// Structured event tracing with a flight-recorder mode (ISSUE 5 tentpole).
//
// Arming follows the mmr/perf precedent exactly: a Tracer is armed for the
// current thread via TraceScope (RAII, nestable, thread-local), call sites
// emit through MMR_TRACE_* macros that compile to nothing under
// -DMMR_TRACE=OFF, and emission is strictly read-only with respect to
// simulation state and RNG streams — traced and untraced runs are
// bit-identical (tested in tests/test_trace.cpp).
//
// Two buffering modes (see TraceSpec):
//   stream — keep every event (up to a limit); for full-lifecycle export.
//   flight — fixed-capacity binary ring per router keeping the last N
//            events; dumped automatically when something goes wrong:
//            MMR_ASSERT failure (covers SimAuditor invariants), watchdog
//            alarm stage, or fault activation (link-down).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mmr/sim/config.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/spec.hpp"

namespace mmr::snapshot {
class Walker;
}

namespace mmr::trace {

#if defined(MMR_TRACE_ENABLED)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Run provenance written into every export header; consumers (trace_lint,
/// the Chrome exporter) use it to bound-check event fields.
struct TraceMeta {
  std::uint32_t ports = 0;
  std::uint32_t vcs = 0;
  std::uint32_t levels = 0;
  std::string arbiter;
  std::uint64_t seed = 0;

  [[nodiscard]] static TraceMeta from_config(const SimConfig& config);
};

class Tracer {
 public:
  Tracer(TraceSpec spec, TraceMeta meta);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Stamps the current node id onto `event` and records it.  In flight
  /// mode this may trigger an automatic dump (watchdog alarm, link-down).
  void emit(const Event& event);

  /// Current router id stamped onto emitted events (single-router sims
  /// leave it at 0; the network simulation switches it per section).
  void set_node(std::uint16_t node) { node_ = node; }
  [[nodiscard]] std::uint16_t node() const { return node_; }

  /// Clock mirror for call sites that have no `now` of their own
  /// (arbiters, admission control); set once per simulated cycle.
  void set_now(Cycle now) { now_ = now; }
  [[nodiscard]] Cycle now() const { return now_; }

  [[nodiscard]] const TraceSpec& spec() const { return spec_; }
  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Stream-mode events discarded after the buffer hit spec().limit.
  [[nodiscard]] std::uint64_t truncated() const { return truncated_; }
  [[nodiscard]] std::uint32_t dumps_written() const { return dumps_written_; }
  [[nodiscard]] const std::vector<std::string>& dump_paths() const {
    return dump_paths_;
  }

  /// Buffered events, oldest first.  Flight mode merges the per-node rings
  /// and stable-sorts by cycle, so dumps read as one timeline.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Staging support for the sharded network engine: zero-copy view of the
  /// stream-mode buffer in emission order, and a reset so a per-shard
  /// staging tracer can be drained after every barrier.  Events replayed
  /// from a staging buffer already carry their node stamp; the replayer
  /// calls set_node(event.node) before re-emitting.
  [[nodiscard]] const std::vector<Event>& stream_events() const {
    return events_;
  }
  void clear_stream() { events_.clear(); }

  /// Writes the buffered events as mmr-trace-v1 JSONL; `trigger` names why
  /// the export happened (end | watchdog-alarm | fault-down | assert | ...).
  void export_jsonl(std::ostream& out, const std::string& trigger) const;

  /// Flight recorder dump: writes the ring contents to
  /// `<dump_prefix>-<trigger>-<seq>.jsonl` and returns the path ("" once
  /// the per-run dump cap is exhausted or the file cannot be opened).
  std::string dump(const std::string& trigger);

  /// Writes the run-end outputs named in the spec (out/chrome/summary).
  void write_outputs();

  /// Checkpoint walk: buffered events, rings, counters — everything needed
  /// for a resumed run's exports to be byte-identical to an uninterrupted
  /// one.  (Named after the subsystem-wide convention; unrelated to
  /// snapshot() above, which copies the buffered events out.)
  void snap(mmr::snapshot::Walker& w);

 private:
  /// Fixed-capacity ring; `head` is the next slot to overwrite.
  struct Ring {
    std::vector<Event> slots;
    std::size_t head = 0;
    std::uint64_t count = 0;  ///< total events ever pushed
  };

  Ring& ring_for(std::uint16_t node);
  void maybe_trigger_dump(const Event& event);

  TraceSpec spec_;
  TraceMeta meta_;
  std::uint16_t node_ = 0;
  Cycle now_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t truncated_ = 0;
  bool warned_truncation_ = false;
  std::vector<Event> events_;  ///< stream mode
  std::vector<Ring> rings_;    ///< flight mode, indexed by node
  std::uint32_t dumps_written_ = 0;
  std::uint32_t dump_seq_ = 0;
  std::vector<std::string> dump_paths_;
  bool registered_for_assert_ = false;
};

/// The tracer armed for this thread, or nullptr (the common case).
[[nodiscard]] Tracer* current();

/// RAII arming, identical in spirit to perf::ProbeScope: arms `tracer` for
/// the current thread, restores the previous tracer on destruction.  Pass
/// nullptr to disarm within a scope.
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* prev_;
};

}  // namespace mmr::trace

// --- emission macros -------------------------------------------------------
// MMR_TRACE_EVENT(expr)        records the Event built by `expr` when a
//                              tracer is armed; `expr` is not evaluated
//                              otherwise, and the whole statement compiles
//                              out under -DMMR_TRACE=OFF.
// MMR_TRACE_EMIT_NOW(b, ...)   like MMR_TRACE_EVENT but calls the builder
//                              `b` with the armed tracer's mirrored clock
//                              as its first argument — for call sites that
//                              have no `now` of their own (arbiters,
//                              admission control).
// MMR_TRACE_ON()               true when tracing is compiled in AND a
//                              tracer is armed; guards event-only
//                              computations (e.g. the grant/deny sweep).
#if defined(MMR_TRACE_ENABLED)
#define MMR_TRACE_EVENT(expr)                                              \
  do {                                                                     \
    if (::mmr::trace::Tracer* mmr_trace_t_ = ::mmr::trace::current())      \
      mmr_trace_t_->emit((expr));                                          \
  } while (false)
#define MMR_TRACE_EMIT_NOW(builder, ...)                                   \
  do {                                                                     \
    if (::mmr::trace::Tracer* mmr_trace_t_ = ::mmr::trace::current())      \
      mmr_trace_t_->emit(builder(mmr_trace_t_->now(), __VA_ARGS__));       \
  } while (false)
#define MMR_TRACE_SET_NODE(node)                                           \
  do {                                                                     \
    if (::mmr::trace::Tracer* mmr_trace_t_ = ::mmr::trace::current())      \
      mmr_trace_t_->set_node(static_cast<std::uint16_t>(node));            \
  } while (false)
#define MMR_TRACE_ON() (::mmr::trace::current() != nullptr)
#else
// The sizeof keeps every operand referenced (no -Wunused-variable at call
// sites) without evaluating anything; the whole statement folds to nothing.
#define MMR_TRACE_EVENT(expr) ((void)sizeof((expr)))
#define MMR_TRACE_EMIT_NOW(builder, ...) \
  ((void)sizeof(builder(::mmr::Cycle{0}, __VA_ARGS__)))
#define MMR_TRACE_SET_NODE(node) ((void)sizeof(node))
#define MMR_TRACE_ON() (false)
#endif
