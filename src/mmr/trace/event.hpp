// Typed trace events covering the full flit/connection lifecycle (ISSUE 5).
//
// An Event is a fixed-size POD so the flight recorder can keep them in a
// binary ring without allocation.  Semantics of the generic `a`/`b` payload
// words are per-type and documented on the builder functions below; exporters
// give them readable names.  `cycle` is always the *emission* cycle (the
// simulation step's `now`), never a semantic future time — consumers may
// assume cycles are non-decreasing within one trace.
#pragma once

#include <cstdint>

#include "mmr/sim/time.hpp"

namespace mmr::trace {

/// Connection sentinel for events not tied to a connection (mirrors
/// qos kInvalidConnection without creating a layering dependency).
inline constexpr std::uint32_t kNoConnection = ~std::uint32_t{0};

enum class EventType : std::uint8_t {
  kInject,        ///< flit deposited into its NIC VC buffer
  kPolice,        ///< policer verdict other than plain pass
  kShapeRelease,  ///< shaped flit released from the penalty queue
  kVcEnqueue,     ///< flit entered a router VC buffer
  kCandidate,     ///< link scheduler nominated a VC as a candidate
  kGrant,         ///< switch arbiter matched a candidate (router view)
  kGrantReason,   ///< arbiter-side grant with algorithm reason fields
  kDeny,          ///< candidate lost arbitration this cycle
  kXbar,          ///< flit traversed the crossbar
  kCreditReturn,  ///< credit returned upstream for a freed VC slot
  kDeliver,       ///< flit left the router / reached its destination
  kDeadlineMiss,  ///< delivered QoS flit exceeded the deadline
  kFault,         ///< fault activation / repair / applied fault action
  kWatchdog,      ///< saturation watchdog stage transition
  kAuditSweep,    ///< runtime auditor completed a conservation sweep
  kAdmit,         ///< admission control accepted a connection
  kRelease,       ///< admission control released a connection
  kMmuPause,      ///< shared-buffer MMU fired Xoff towards a NIC
  kMmuResume,     ///< shared-buffer MMU fired Xon towards a NIC
  kEcnMark,       ///< admission marked a flit (occupancy past kmin)
  kMmuDrop,       ///< MMU refused admission (lossy class, buffers full)
  kXpEnqueue,     ///< CICQ input stage moved a VOQ head into a crosspoint
  kXpGrant,       ///< CICQ output scheduler drained a crosspoint buffer
};

inline constexpr std::size_t kEventTypeCount = 23;

/// `level` codes for kPolice events.
enum class PoliceAction : std::uint8_t {
  kDropped = 0,
  kShaped = 1,
  kDemoted = 2,
  kShed = 3,             ///< dropped by watchdog load shedding
  kPenaltyOverflow = 4,  ///< dropped because the penalty queue was full
};

/// `level` codes for kFault events.
enum class FaultKind : std::uint8_t {
  kLinkDown = 0,
  kLinkUp = 1,
  kFlitDrop = 2,
  kFlitCorrupt = 3,
  kCreditLoss = 4,
};

[[nodiscard]] const char* to_string(EventType type);
[[nodiscard]] const char* to_string(PoliceAction action);
[[nodiscard]] const char* to_string(FaultKind kind);

struct Event {
  Cycle cycle = 0;
  std::uint64_t a = 0;  ///< per-type payload (see builders)
  std::uint64_t b = 0;  ///< per-type payload (see builders)
  std::uint32_t vc = 0;
  std::uint32_t connection = kNoConnection;
  std::uint16_t node = 0;  ///< router id (0 for single-router sims)
  std::uint16_t input = 0;
  std::uint16_t output = 0;
  EventType type = EventType::kInject;
  std::uint8_t level = 0;  ///< candidate level / verdict / stage / fault kind
};

static_assert(sizeof(Event) <= 40, "Event must stay ring-buffer friendly");

// --- builders --------------------------------------------------------------
// One per lifecycle point so call sites read like the taxonomy.  All builders
// are pure; Tracer::emit() stamps the node id.

/// a = flit seq, b = 1 when the flit was demoted at injection.
inline Event inject_event(Cycle now, std::uint32_t link, std::uint32_t vc,
                          std::uint32_t connection, std::uint64_t seq,
                          bool demoted = false) {
  Event e;
  e.cycle = now;
  e.type = EventType::kInject;
  e.input = static_cast<std::uint16_t>(link);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = demoted ? 1 : 0;
  return e;
}

/// level = PoliceAction, a = flit seq.
inline Event police_event(Cycle now, std::uint32_t link, std::uint32_t vc,
                          std::uint32_t connection, std::uint64_t seq,
                          PoliceAction action) {
  Event e;
  e.cycle = now;
  e.type = EventType::kPolice;
  e.input = static_cast<std::uint16_t>(link);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.level = static_cast<std::uint8_t>(action);
  return e;
}

/// a = flit seq, b = cycles the flit spent in the penalty queue.
inline Event shape_release_event(Cycle now, std::uint32_t link,
                                 std::uint32_t vc, std::uint32_t connection,
                                 std::uint64_t seq, std::uint64_t held) {
  Event e;
  e.cycle = now;
  e.type = EventType::kShapeRelease;
  e.input = static_cast<std::uint16_t>(link);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = held;
  return e;
}

/// a = flit seq.
inline Event vc_enqueue_event(Cycle now, std::uint32_t port, std::uint32_t vc,
                              std::uint32_t connection, std::uint64_t seq) {
  Event e;
  e.cycle = now;
  e.type = EventType::kVcEnqueue;
  e.input = static_cast<std::uint16_t>(port);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  return e;
}

/// level = candidate level, a = scheduler priority.
inline Event candidate_event(Cycle now, std::uint32_t input,
                             std::uint32_t output, std::uint32_t vc,
                             std::uint8_t level, std::uint64_t priority) {
  Event e;
  e.cycle = now;
  e.type = EventType::kCandidate;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.level = level;
  e.a = priority;
  return e;
}

/// Router-side grant/deny, emitted for every candidate after arbitration.
/// level = candidate level, a = priority.
inline Event grant_event(Cycle now, std::uint32_t input, std::uint32_t output,
                         std::uint32_t vc, std::uint8_t level,
                         std::uint64_t priority, bool granted) {
  Event e;
  e.cycle = now;
  e.type = granted ? EventType::kGrant : EventType::kDeny;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.level = level;
  e.a = priority;
  return e;
}

/// Arbiter-side reason record for a grant.  level = candidate level,
/// a = priority, b = algorithm detail: COA emits the conflict count of the
/// selected output; WFA/WWFA emit the anti-diagonal index that matched.
inline Event grant_reason_event(Cycle now, std::uint32_t input,
                                std::uint32_t output, std::uint32_t vc,
                                std::uint8_t level, std::uint64_t priority,
                                std::uint64_t detail) {
  Event e;
  e.cycle = now;
  e.type = EventType::kGrantReason;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.level = level;
  e.a = priority;
  e.b = detail;
  return e;
}

/// a = flit seq.
inline Event xbar_event(Cycle now, std::uint32_t input, std::uint32_t output,
                        std::uint32_t vc, std::uint32_t connection,
                        std::uint64_t seq) {
  Event e;
  e.cycle = now;
  e.type = EventType::kXbar;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  return e;
}

inline Event credit_return_event(Cycle now, std::uint32_t input,
                                 std::uint32_t vc) {
  Event e;
  e.cycle = now;
  e.type = EventType::kCreditReturn;
  e.input = static_cast<std::uint16_t>(input);
  e.vc = vc;
  return e;
}

/// a = flit seq, b = end-to-end delay in cycles at delivery.
inline Event deliver_event(Cycle now, std::uint32_t input,
                           std::uint32_t output, std::uint32_t vc,
                           std::uint32_t connection, std::uint64_t seq,
                           std::uint64_t delay_cycles) {
  Event e;
  e.cycle = now;
  e.type = EventType::kDeliver;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = delay_cycles;
  return e;
}

/// a = flit seq, b = delay in cycles (already past the deadline).
inline Event deadline_miss_event(Cycle now, std::uint32_t input,
                                 std::uint32_t vc, std::uint32_t connection,
                                 std::uint64_t seq,
                                 std::uint64_t delay_cycles) {
  Event e;
  e.cycle = now;
  e.type = EventType::kDeadlineMiss;
  e.input = static_cast<std::uint16_t>(input);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = delay_cycles;
  return e;
}

/// level = FaultKind, a = fault target id (channel index or link).
inline Event fault_event(Cycle now, FaultKind kind, std::uint64_t target) {
  Event e;
  e.cycle = now;
  e.type = EventType::kFault;
  e.level = static_cast<std::uint8_t>(kind);
  e.a = target;
  return e;
}

/// level = new watchdog stage, a = 1 for escalation / 0 for recovery,
/// b = backlog EWMA rounded to an integer.
inline Event watchdog_event(Cycle now, std::uint8_t stage, bool escalated,
                            std::uint64_t ewma) {
  Event e;
  e.cycle = now;
  e.type = EventType::kWatchdog;
  e.level = stage;
  e.a = escalated ? 1 : 0;
  e.b = ewma;
  return e;
}

/// a = completed sweep count.
inline Event audit_sweep_event(Cycle now, std::uint64_t sweeps) {
  Event e;
  e.cycle = now;
  e.type = EventType::kAuditSweep;
  e.a = sweeps;
  return e;
}

/// a = reserved slots per round (kAdmit) / 0 (kRelease).
inline Event admission_event(Cycle now, bool admitted, std::uint32_t input,
                             std::uint32_t output, std::uint32_t vc,
                             std::uint32_t connection, std::uint64_t slots) {
  Event e;
  e.cycle = now;
  e.type = admitted ? EventType::kAdmit : EventType::kRelease;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.connection = connection;
  e.a = slots;
  return e;
}

/// Xoff towards `input`'s NIC.  a = port buffer usage when the pause fired,
/// b = cycle the pause frame takes effect at the sender (now + credit
/// latency; informational — `cycle` stays the emission cycle).
inline Event mmu_pause_event(Cycle now, std::uint32_t input,
                             std::uint64_t port_usage,
                             std::uint64_t effective_at) {
  Event e;
  e.cycle = now;
  e.type = EventType::kMmuPause;
  e.input = static_cast<std::uint16_t>(input);
  e.a = port_usage;
  e.b = effective_at;
  return e;
}

/// Xon towards `input`'s NIC.  a = port buffer usage at resume,
/// b = pause duration in cycles (Xoff emission to Xon emission).
inline Event mmu_resume_event(Cycle now, std::uint32_t input,
                              std::uint64_t port_usage,
                              std::uint64_t paused_cycles) {
  Event e;
  e.cycle = now;
  e.type = EventType::kMmuResume;
  e.input = static_cast<std::uint16_t>(input);
  e.a = port_usage;
  e.b = paused_cycles;
  return e;
}

/// ECN-style congestion mark on an admitted flit.  a = flit seq,
/// b = shared-pool occupancy that produced the marking probability.
inline Event ecn_mark_event(Cycle now, std::uint32_t input, std::uint32_t vc,
                            std::uint32_t connection, std::uint64_t seq,
                            std::uint64_t pool_occupancy) {
  Event e;
  e.cycle = now;
  e.type = EventType::kEcnMark;
  e.input = static_cast<std::uint16_t>(input);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = pool_occupancy;
  return e;
}

/// MMU refused admission at the router input (lossy class with reserved,
/// shared and — for lossless — headroom exhausted).  a = flit seq,
/// b = total MMU occupancy at the drop.
inline Event mmu_drop_event(Cycle now, std::uint32_t input, std::uint32_t vc,
                            std::uint32_t connection, std::uint64_t seq,
                            std::uint64_t occupancy) {
  Event e;
  e.cycle = now;
  e.type = EventType::kMmuDrop;
  e.input = static_cast<std::uint16_t>(input);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = occupancy;
  return e;
}

/// CICQ input stage: a VOQ head crossed into crosspoint (input, output).
/// a = flit seq, b = crosspoint occupancy after the transfer.
inline Event xp_enqueue_event(Cycle now, std::uint32_t input,
                              std::uint32_t output, std::uint32_t vc,
                              std::uint32_t connection, std::uint64_t seq,
                              std::uint64_t occupancy) {
  Event e;
  e.cycle = now;
  e.type = EventType::kXpEnqueue;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = occupancy;
  return e;
}

/// CICQ output stage: the round-robin output scheduler drained crosspoint
/// (input, output).  a = flit seq, b = crosspoint occupancy after the drain.
inline Event xp_grant_event(Cycle now, std::uint32_t input,
                            std::uint32_t output, std::uint32_t vc,
                            std::uint32_t connection, std::uint64_t seq,
                            std::uint64_t occupancy) {
  Event e;
  e.cycle = now;
  e.type = EventType::kXpGrant;
  e.input = static_cast<std::uint16_t>(input);
  e.output = static_cast<std::uint16_t>(output);
  e.vc = vc;
  e.connection = connection;
  e.a = seq;
  e.b = occupancy;
  return e;
}

}  // namespace mmr::trace
