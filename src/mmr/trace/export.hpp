// Trace exporters: mmr-trace-v1 JSONL (the canonical, lintable format),
// Chrome trace-event JSON (chrome://tracing / Perfetto, one track per
// port/VC), and a per-connection event-count summary table.
//
// Determinism contract: JSONL output is a pure function of (meta, trigger,
// truncated, events) — every numeric field is emitted as a decimal integer
// (no floats, no locale), so re-running the same config+seed yields a
// byte-identical file (tested).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mmr/trace/event.hpp"

namespace mmr::trace {

struct TraceMeta;

/// Header line `{"schema":"mmr-trace-v1",...}` followed by one JSON object
/// per event.
void write_jsonl(std::ostream& out, const TraceMeta& meta,
                 const std::string& mode, const std::string& trigger,
                 std::uint64_t truncated, const std::vector<Event>& events);

/// Chrome trace-event JSON: pid = router node, tid = input*vcs + vc + 1
/// (tid 0 carries control events: watchdog, fault, audit, admission).
void write_chrome(std::ostream& out, const TraceMeta& meta,
                  const std::vector<Event>& events);

/// ASCII table: one row per connection, columns counting lifecycle events.
[[nodiscard]] std::string render_connection_summary(
    const std::vector<Event>& events);

}  // namespace mmr::trace
