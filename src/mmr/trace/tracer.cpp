#include "mmr/trace/tracer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/trace/export.hpp"

namespace mmr::trace {

namespace {

thread_local Tracer* t_current = nullptr;

// The MMR_ASSERT hook is a bare function pointer, so the flight recorder to
// dump is found through this process-global slot.  One flight-mode tracer
// owns it at a time (last constructed wins); simultaneous flight recorders
// in one process would race for crash dumps, which the sweep runner never
// does — tracing is a single-run diagnostic tool.
std::atomic<Tracer*> g_assert_tracer{nullptr};

void dump_armed_tracer_on_assert() {
  if (Tracer* tracer = g_assert_tracer.exchange(nullptr)) {
    const std::string path = tracer->dump("assert");
    if (!path.empty())
      std::fprintf(stderr, "mmr trace: flight recorder dumped to %s\n",
                   path.c_str());
  }
}

}  // namespace

TraceMeta TraceMeta::from_config(const SimConfig& config) {
  TraceMeta meta;
  meta.ports = config.ports;
  meta.vcs = config.vcs_per_link;
  meta.levels = config.candidate_levels;
  meta.arbiter = config.arbiter;
  meta.seed = config.seed;
  return meta;
}

Tracer::Tracer(TraceSpec spec, TraceMeta meta)
    : spec_(std::move(spec)), meta_(std::move(meta)) {
  spec_.validate();
  if (!kCompiledIn) {
    log_warn("trace= configured but tracing is compiled out (-DMMR_TRACE=OFF);"
             " outputs will contain no events");
  }
  if (spec_.mode == TraceSpec::Mode::kFlight) {
    g_assert_tracer.store(this, std::memory_order_release);
    detail::exchange_assert_hook(&dump_armed_tracer_on_assert);
    registered_for_assert_ = true;
  }
}

Tracer::~Tracer() {
  if (registered_for_assert_) {
    Tracer* expected = this;
    if (g_assert_tracer.compare_exchange_strong(expected, nullptr))
      detail::exchange_assert_hook(nullptr);
  }
}

Tracer::Ring& Tracer::ring_for(std::uint16_t node) {
  if (rings_.size() <= node) rings_.resize(node + 1u);
  Ring& ring = rings_[node];
  if (ring.slots.empty()) ring.slots.resize(spec_.ring);
  return ring;
}

void Tracer::emit(const Event& event) {
  Event e = event;
  e.node = node_;
  ++emitted_;
  if (spec_.mode == TraceSpec::Mode::kStream) {
    if (events_.size() < spec_.limit) {
      events_.push_back(e);
    } else {
      ++truncated_;
      if (!warned_truncation_) {
        warned_truncation_ = true;
        log_warn("trace stream buffer full (limit:", spec_.limit,
                 "); further events are dropped — raise limit: or use flight "
                 "mode");
      }
    }
    return;
  }
  Ring& ring = ring_for(e.node);
  ring.slots[ring.head] = e;
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.count;
  maybe_trigger_dump(e);
}

void Tracer::maybe_trigger_dump(const Event& event) {
  // Automatic flight-recorder triggers: the watchdog escalating into its
  // alarm stage, and a fault activation (link going down).  SimAuditor
  // failures and MMR_ASSERT deaths reach dump() via the assert hook instead.
  if (event.type == EventType::kWatchdog && event.level == 3 &&
      event.a == 1) {
    dump("watchdog-alarm");
  } else if (event.type == EventType::kFault &&
             event.level == static_cast<std::uint8_t>(FaultKind::kLinkDown)) {
    dump("fault-down");
  }
}

std::vector<Event> Tracer::snapshot() const {
  if (spec_.mode == TraceSpec::Mode::kStream) return events_;
  std::vector<Event> merged;
  for (const Ring& ring : rings_) {
    if (ring.slots.empty()) continue;
    const std::size_t cap = ring.slots.size();
    const std::size_t held = ring.count < cap
                                 ? static_cast<std::size_t>(ring.count)
                                 : cap;
    // Oldest slot is `head` once the ring has wrapped, 0 before that.
    const std::size_t start = ring.count < cap ? 0 : ring.head;
    for (std::size_t i = 0; i < held; ++i)
      merged.push_back(ring.slots[(start + i) % cap]);
  }
  // Each ring is already time-ordered; a stable sort by cycle interleaves
  // the nodes without reordering same-cycle events within a node.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& x, const Event& y) {
                     return x.cycle < y.cycle;
                   });
  return merged;
}

void Tracer::export_jsonl(std::ostream& out, const std::string& trigger) const {
  write_jsonl(out, meta_, to_string(spec_.mode), trigger, truncated_,
              snapshot());
}

std::string Tracer::dump(const std::string& trigger) {
  if (dumps_written_ >= spec_.max_dumps) {
    log_warn("trace: dump cap (dumps:", spec_.max_dumps,
             ") reached; skipping trigger '", trigger, "'");
    return "";
  }
  const std::string path = spec_.dump_prefix + "-" + trigger + "-" +
                           std::to_string(dump_seq_++) + ".jsonl";
  std::ofstream out(path);
  if (!out) {
    log_error("trace: cannot open flight dump file ", path);
    return "";
  }
  export_jsonl(out, trigger);
  ++dumps_written_;
  dump_paths_.push_back(path);
  log_info("trace: flight recorder dumped ", path, " (trigger: ", trigger,
           ")");
  return path;
}

void Tracer::write_outputs() {
  if (!spec_.out.empty()) {
    std::ofstream out(spec_.out);
    if (out) {
      export_jsonl(out, "end");
    } else {
      log_error("trace: cannot open out: file ", spec_.out);
    }
  }
  if (!spec_.chrome.empty()) {
    std::ofstream out(spec_.chrome);
    if (out) {
      write_chrome(out, meta_, snapshot());
    } else {
      log_error("trace: cannot open chrome: file ", spec_.chrome);
    }
  }
  if (!spec_.summary.empty()) {
    std::ofstream out(spec_.summary);
    if (out) {
      out << render_connection_summary(snapshot());
    } else {
      log_error("trace: cannot open summary: file ", spec_.summary);
    }
  }
}

Tracer* current() { return t_current; }

TraceScope::TraceScope(Tracer* tracer) : prev_(t_current) {
  t_current = tracer;
}

TraceScope::~TraceScope() { t_current = prev_; }

}  // namespace mmr::trace
