#include "mmr/trace/tracer.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/atomic_file.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/trace/export.hpp"

namespace mmr::trace {

namespace {

thread_local Tracer* t_current = nullptr;

// The MMR_ASSERT hook is a bare function pointer, so the flight recorder to
// dump is found through this process-global slot.  One flight-mode tracer
// owns it at a time (last constructed wins); simultaneous flight recorders
// in one process would race for crash dumps, which the sweep runner never
// does — tracing is a single-run diagnostic tool.
std::atomic<Tracer*> g_assert_tracer{nullptr};

void dump_armed_tracer_on_assert() {
  if (Tracer* tracer = g_assert_tracer.exchange(nullptr)) {
    const std::string path = tracer->dump("assert");
    if (!path.empty())
      std::fprintf(stderr, "mmr trace: flight recorder dumped to %s\n",
                   path.c_str());
  }
}

}  // namespace

TraceMeta TraceMeta::from_config(const SimConfig& config) {
  TraceMeta meta;
  meta.ports = config.ports;
  meta.vcs = config.vcs_per_link;
  meta.levels = config.candidate_levels;
  meta.arbiter = config.arbiter;
  meta.seed = config.seed;
  return meta;
}

Tracer::Tracer(TraceSpec spec, TraceMeta meta)
    : spec_(std::move(spec)), meta_(std::move(meta)) {
  spec_.validate();
  if (!kCompiledIn) {
    log_warn("trace= configured but tracing is compiled out (-DMMR_TRACE=OFF);"
             " outputs will contain no events");
  }
  if (spec_.mode == TraceSpec::Mode::kFlight) {
    g_assert_tracer.store(this, std::memory_order_release);
    detail::exchange_assert_hook(&dump_armed_tracer_on_assert);
    registered_for_assert_ = true;
  }
}

Tracer::~Tracer() {
  if (registered_for_assert_) {
    Tracer* expected = this;
    if (g_assert_tracer.compare_exchange_strong(expected, nullptr))
      detail::exchange_assert_hook(nullptr);
  }
}

Tracer::Ring& Tracer::ring_for(std::uint16_t node) {
  if (rings_.size() <= node) rings_.resize(node + 1u);
  Ring& ring = rings_[node];
  if (ring.slots.empty()) ring.slots.resize(spec_.ring);
  return ring;
}

void Tracer::emit(const Event& event) {
  Event e = event;
  e.node = node_;
  ++emitted_;
  if (spec_.mode == TraceSpec::Mode::kStream) {
    if (events_.size() < spec_.limit) {
      events_.push_back(e);
    } else {
      ++truncated_;
      if (!warned_truncation_) {
        warned_truncation_ = true;
        log_warn("trace stream buffer full (limit:", spec_.limit,
                 "); further events are dropped — raise limit: or use flight "
                 "mode");
      }
    }
    return;
  }
  Ring& ring = ring_for(e.node);
  ring.slots[ring.head] = e;
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.count;
  maybe_trigger_dump(e);
}

void Tracer::maybe_trigger_dump(const Event& event) {
  // Automatic flight-recorder triggers: the watchdog escalating into its
  // alarm stage, and a fault activation (link going down).  SimAuditor
  // failures and MMR_ASSERT deaths reach dump() via the assert hook instead.
  if (event.type == EventType::kWatchdog && event.level == 3 &&
      event.a == 1) {
    dump("watchdog-alarm");
  } else if (event.type == EventType::kFault &&
             event.level == static_cast<std::uint8_t>(FaultKind::kLinkDown)) {
    dump("fault-down");
  }
}

std::vector<Event> Tracer::snapshot() const {
  if (spec_.mode == TraceSpec::Mode::kStream) return events_;
  std::vector<Event> merged;
  for (const Ring& ring : rings_) {
    if (ring.slots.empty()) continue;
    const std::size_t cap = ring.slots.size();
    const std::size_t held = ring.count < cap
                                 ? static_cast<std::size_t>(ring.count)
                                 : cap;
    // Oldest slot is `head` once the ring has wrapped, 0 before that.
    const std::size_t start = ring.count < cap ? 0 : ring.head;
    for (std::size_t i = 0; i < held; ++i)
      merged.push_back(ring.slots[(start + i) % cap]);
  }
  // Each ring is already time-ordered; a stable sort by cycle interleaves
  // the nodes without reordering same-cycle events within a node.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& x, const Event& y) {
                     return x.cycle < y.cycle;
                   });
  return merged;
}

void Tracer::export_jsonl(std::ostream& out, const std::string& trigger) const {
  write_jsonl(out, meta_, to_string(spec_.mode), trigger, truncated_,
              snapshot());
}

std::string Tracer::dump(const std::string& trigger) {
  if (dumps_written_ >= spec_.max_dumps) {
    log_warn("trace: dump cap (dumps:", spec_.max_dumps,
             ") reached; skipping trigger '", trigger, "'");
    return "";
  }
  const std::string path = spec_.dump_prefix + "-" + trigger + "-" +
                           std::to_string(dump_seq_++) + ".jsonl";
  try {
    // Atomic (temp + rename): a dump raced by process death never leaves a
    // torn post-mortem file that looks complete.
    write_file_atomic(path,
                      [&](std::ostream& out) { export_jsonl(out, trigger); });
  } catch (const std::exception& error) {
    log_error("trace: cannot write flight dump file ", path, ": ",
              error.what());
    return "";
  }
  ++dumps_written_;
  dump_paths_.push_back(path);
  log_info("trace: flight recorder dumped ", path, " (trigger: ", trigger,
           ")");
  return path;
}

void Tracer::write_outputs() {
  // All three outputs commit atomically (temp + rename); failures are
  // logged, not thrown — trace emission must never fail a finished run.
  const auto write = [](const char* label, const std::string& path,
                        const std::function<void(std::ostream&)>& body) {
    try {
      write_file_atomic(path, body);
    } catch (const std::exception& error) {
      log_error("trace: cannot write ", label, " file ", path, ": ",
                error.what());
    }
  };
  if (!spec_.out.empty())
    write("out:", spec_.out,
          [&](std::ostream& out) { export_jsonl(out, "end"); });
  if (!spec_.chrome.empty())
    write("chrome:", spec_.chrome,
          [&](std::ostream& out) { write_chrome(out, meta_, snapshot()); });
  if (!spec_.summary.empty())
    write("summary:", spec_.summary, [&](std::ostream& out) {
      out << render_connection_summary(snapshot());
    });
}

Tracer* current() { return t_current; }

TraceScope::TraceScope(Tracer* tracer) : prev_(t_current) {
  t_current = tracer;
}

TraceScope::~TraceScope() { t_current = prev_; }

namespace {

// Event is a padding-free 40-byte POD (static_assert in event.hpp), so the
// buffers bulk-walk as raw bytes.
void walk_events(mmr::snapshot::Walker& w, std::vector<Event>& events) {
  std::uint64_t n = events.size();
  mmr::snapshot::value(w, n);
  if (w.loading()) events.resize(static_cast<std::size_t>(n));
  if (n != 0)
    w.bytes(events.data(), static_cast<std::size_t>(n) * sizeof(Event));
}

}  // namespace

void Tracer::snap(mmr::snapshot::Walker& w) {
  namespace snap = mmr::snapshot;
  snap::value(w, node_);
  snap::value(w, now_);
  snap::value(w, emitted_);
  snap::value(w, truncated_);
  snap::value(w, warned_truncation_);
  walk_events(w, events_);
  snap::walk_vector(w, rings_, [](snap::Walker& v, Ring& ring) {
    walk_events(v, ring.slots);
    std::uint64_t head = ring.head;
    snap::value(v, head);
    if (v.loading()) ring.head = static_cast<std::size_t>(head);
    snap::value(v, ring.count);
  });
  snap::value(w, dumps_written_);
  snap::value(w, dump_seq_);
  snap::walk_vector(w, dump_paths_, [](snap::Walker& v, std::string& s) {
    snap::walk_string(v, s);
  });
}

}  // namespace mmr::trace
