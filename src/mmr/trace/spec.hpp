// Textual trace configuration, mirroring the overload spec-string idiom:
// `trace=stream,out:run.jsonl` or `trace=flight,ring:4096,dump:flight`.
//
// Grammar:  mode[,key:value...]   with mode in {stream, flight}
//   stream mode buffers every event (up to `limit`) and writes the
//   configured outputs at the end of the run;
//   flight mode keeps only the last `ring` events per router and dumps them
//   automatically when an invariant dies, the watchdog reaches its alarm
//   stage, or a fault activates.
// Keys: out:PATH  chrome:PATH  summary:PATH  ring:N  dump:PREFIX  limit:N
//       dumps:N (max automatic flight dumps per run)
#pragma once

#include <cstdint>
#include <string>

namespace mmr::trace {

struct TraceSpec {
  enum class Mode : std::uint8_t { kStream, kFlight };

  Mode mode = Mode::kStream;
  std::string out;      ///< run-end mmr-trace-v1 JSONL path ("" = none)
  std::string chrome;   ///< run-end Chrome trace-event JSON path ("" = none)
  std::string summary;  ///< run-end per-connection summary table ("" = none)
  std::string dump_prefix = "mmr-flight";  ///< flight dump file prefix
  std::uint64_t limit = 1u << 20;          ///< stream: max buffered events
  std::uint32_t ring = 4096;               ///< flight: events kept per router
  std::uint32_t max_dumps = 8;             ///< flight: automatic dump cap

  /// Parses the grammar above; throws std::invalid_argument on bad input.
  static TraceSpec parse(const std::string& spec);

  /// Aborts with a readable message when a field combination is nonsense.
  void validate() const;
};

[[nodiscard]] const char* to_string(TraceSpec::Mode mode);

}  // namespace mmr::trace
