#include "mmr/trace/event.hpp"

namespace mmr::trace {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kInject: return "inject";
    case EventType::kPolice: return "police";
    case EventType::kShapeRelease: return "shape_release";
    case EventType::kVcEnqueue: return "vc_enqueue";
    case EventType::kCandidate: return "candidate";
    case EventType::kGrant: return "grant";
    case EventType::kGrantReason: return "grant_reason";
    case EventType::kDeny: return "deny";
    case EventType::kXbar: return "xbar";
    case EventType::kCreditReturn: return "credit_return";
    case EventType::kDeliver: return "deliver";
    case EventType::kDeadlineMiss: return "deadline_miss";
    case EventType::kFault: return "fault";
    case EventType::kWatchdog: return "watchdog";
    case EventType::kAuditSweep: return "audit_sweep";
    case EventType::kAdmit: return "admit";
    case EventType::kRelease: return "release";
    case EventType::kMmuPause: return "pause";
    case EventType::kMmuResume: return "resume";
    case EventType::kEcnMark: return "ecn_mark";
    case EventType::kMmuDrop: return "mmu_drop";
    case EventType::kXpEnqueue: return "xp_enqueue";
    case EventType::kXpGrant: return "xp_grant";
  }
  return "unknown";
}

const char* to_string(PoliceAction action) {
  switch (action) {
    case PoliceAction::kDropped: return "dropped";
    case PoliceAction::kShaped: return "shaped";
    case PoliceAction::kDemoted: return "demoted";
    case PoliceAction::kShed: return "shed";
    case PoliceAction::kPenaltyOverflow: return "penalty_overflow";
  }
  return "unknown";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kFlitDrop: return "flit_drop";
    case FaultKind::kFlitCorrupt: return "flit_corrupt";
    case FaultKind::kCreditLoss: return "credit_loss";
  }
  return "unknown";
}

}  // namespace mmr::trace
