#include "mmr/trace/spec.hpp"

#include <charconv>
#include <stdexcept>
#include <vector>

#include "mmr/sim/assert.hpp"

namespace mmr::trace {

const char* to_string(TraceSpec::Mode mode) {
  switch (mode) {
    case TraceSpec::Mode::kStream: return "stream";
    case TraceSpec::Mode::kFlight: return "flight";
  }
  return "?";
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& value, const std::string& token) {
  std::uint64_t x = 0;
  const auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), x);
  if (ec != std::errc{} || p != value.data() + value.size())
    throw std::invalid_argument("bad integer value in trace spec token: " +
                                token);
  return x;
}

/// Splits "key:value"; throws when there is no colon.
std::pair<std::string, std::string> key_value(const std::string& token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("trace spec token must be key:value: " + token);
  return {token.substr(0, colon), token.substr(colon + 1)};
}

}  // namespace

TraceSpec TraceSpec::parse(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("empty trace spec (omit trace= instead)");
  TraceSpec parsed;
  bool mode_seen = false;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    if (token == "stream" || token == "flight") {
      if (mode_seen)
        throw std::invalid_argument("trace spec names two modes: " + spec);
      mode_seen = true;
      parsed.mode =
          token == "stream" ? TraceSpec::Mode::kStream : TraceSpec::Mode::kFlight;
      continue;
    }
    const auto [key, value] = key_value(token);
    if (key == "out") {
      parsed.out = value;
    } else if (key == "chrome") {
      parsed.chrome = value;
    } else if (key == "summary") {
      parsed.summary = value;
    } else if (key == "dump") {
      parsed.dump_prefix = value;
    } else if (key == "ring") {
      parsed.ring = static_cast<std::uint32_t>(parse_u64(value, token));
    } else if (key == "limit") {
      parsed.limit = parse_u64(value, token);
    } else if (key == "dumps") {
      parsed.max_dumps = static_cast<std::uint32_t>(parse_u64(value, token));
    } else {
      throw std::invalid_argument(
          "unknown trace spec token '" + token +
          "'; expected stream|flight, out, chrome, summary, dump, ring, "
          "limit, dumps");
    }
  }
  if (!mode_seen)
    throw std::invalid_argument(
        "trace spec must name a mode (stream|flight): " + spec);
  parsed.validate();
  return parsed;
}

void TraceSpec::validate() const {
  MMR_ASSERT_MSG(ring >= 16, "flight ring must hold >= 16 events");
  MMR_ASSERT_MSG(limit >= 1, "stream event limit must be >= 1");
  MMR_ASSERT_MSG(mode != Mode::kFlight || !dump_prefix.empty(),
                 "flight mode needs a dump file prefix");
}

}  // namespace mmr::trace
