#include "mmr/trace/export.hpp"

#include <array>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <tuple>

#include "mmr/sim/table.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr::trace {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters);
/// enough for arbiter names, triggers, and track labels.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Events not tied to a port/VC pair; they ride the per-node control track
/// in the Chrome export.
bool is_control(EventType type) {
  switch (type) {
    case EventType::kFault:
    case EventType::kWatchdog:
    case EventType::kAuditSweep:
    case EventType::kAdmit:
    case EventType::kRelease:
      return true;
    default:
      return false;
  }
}

}  // namespace

void write_jsonl(std::ostream& out, const TraceMeta& meta,
                 const std::string& mode, const std::string& trigger,
                 std::uint64_t truncated, const std::vector<Event>& events) {
  out << "{\"schema\":\"mmr-trace-v1\",\"ports\":" << meta.ports
      << ",\"vcs\":" << meta.vcs << ",\"levels\":" << meta.levels
      << ",\"arbiter\":\"" << json_escape(meta.arbiter)
      << "\",\"seed\":" << meta.seed << ",\"mode\":\"" << json_escape(mode)
      << "\",\"trigger\":\"" << json_escape(trigger)
      << "\",\"events\":" << events.size() << ",\"truncated\":" << truncated
      << "}\n";
  for (const Event& e : events) {
    out << "{\"cycle\":" << e.cycle << ",\"type\":\"" << to_string(e.type)
        << "\",\"node\":" << e.node << ",\"input\":" << e.input
        << ",\"output\":" << e.output << ",\"vc\":" << e.vc
        << ",\"conn\":" << e.connection
        << ",\"level\":" << static_cast<unsigned>(e.level) << ",\"a\":" << e.a
        << ",\"b\":" << e.b << "}\n";
  }
}

void write_chrome(std::ostream& out, const TraceMeta& meta,
                  const std::vector<Event>& events) {
  // tid 0 is the per-node control track; port/VC tracks start at 1.
  const auto tid_of = [&meta](const Event& e) -> std::uint64_t {
    if (is_control(e.type)) return 0;
    return static_cast<std::uint64_t>(e.input) * meta.vcs + e.vc + 1;
  };

  std::set<std::pair<std::uint16_t, std::uint64_t>> tracks;
  for (const Event& e : events) tracks.emplace(e.node, tid_of(e));

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, tid] : tracks) {
    if (!first) out << ",";
    first = false;
    std::string name = "control";
    if (tid != 0) {
      const std::uint64_t slot = tid - 1;
      name = "in" + std::to_string(slot / meta.vcs) + "/vc" +
             std::to_string(slot % meta.vcs);
    }
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
        << "\"}}";
  }
  for (const Event& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << to_string(e.type) << "\",\"pid\":" << e.node
        << ",\"tid\":" << tid_of(e) << ",\"ts\":" << e.cycle;
    if (e.type == EventType::kXbar) {
      out << ",\"ph\":\"X\",\"dur\":1";
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out << ",\"args\":{\"output\":" << e.output
        << ",\"level\":" << static_cast<unsigned>(e.level);
    if (e.connection != kNoConnection) out << ",\"conn\":" << e.connection;
    out << ",\"a\":" << e.a << ",\"b\":" << e.b << "}}";
  }
  out << "\n]}\n";
}

std::string render_connection_summary(const std::vector<Event>& events) {
  // Only connection-carrying lifecycle types get a column; arbitration
  // events (candidate/grant/deny) are port-scoped and have no connection.
  static constexpr std::array<EventType, 11> kColumns = {
      EventType::kInject,     EventType::kPolice,
      EventType::kShapeRelease, EventType::kVcEnqueue,
      EventType::kXpEnqueue,  EventType::kXpGrant,
      EventType::kXbar,       EventType::kDeliver,
      EventType::kDeadlineMiss, EventType::kAdmit,
      EventType::kRelease,
  };

  std::map<std::uint32_t, std::array<std::uint64_t, kColumns.size()>> counts;
  for (const Event& e : events) {
    if (e.connection == kNoConnection) continue;
    for (std::size_t c = 0; c < kColumns.size(); ++c) {
      if (e.type == kColumns[c]) {
        auto [it, inserted] = counts.try_emplace(e.connection);
        if (inserted) it->second.fill(0);
        ++it->second[c];
        break;
      }
    }
  }

  std::vector<std::string> header = {"conn"};
  for (const EventType type : kColumns) header.emplace_back(to_string(type));
  AsciiTable table(header);
  for (const auto& [conn, row] : counts) {
    std::vector<std::string> cells = {std::to_string(conn)};
    for (const std::uint64_t n : row) cells.push_back(std::to_string(n));
    table.add_row(std::move(cells));
  }
  return table.render();
}

}  // namespace mmr::trace
