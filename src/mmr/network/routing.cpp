#include "mmr/network/routing.hpp"

#include <limits>
#include <queue>

namespace mmr {

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// BFS parents: for each router, the (router, out_port) used to reach it.
struct Reach {
  std::uint32_t distance = kUnreached;
  std::uint32_t via_router = 0;
  std::uint32_t via_out_port = 0;
  std::uint32_t via_in_port = 0;
};

std::vector<Reach> bfs(const NetworkTopology& topology, std::uint32_t src,
                       const LinkFilter& blocked) {
  std::vector<Reach> reach(topology.routers());
  reach[src].distance = 0;
  std::queue<std::uint32_t> queue;
  queue.push(src);
  while (!queue.empty()) {
    const std::uint32_t router = queue.front();
    queue.pop();
    for (std::uint32_t port = 0; port < topology.ports_per_router(); ++port) {
      const auto next = topology.downstream(router, port);
      if (!next.has_value()) continue;
      if (blocked && blocked(router, port)) continue;
      Reach& r = reach[next->router];
      if (r.distance != kUnreached) continue;
      r.distance = reach[router].distance + 1;
      r.via_router = router;
      r.via_out_port = port;
      r.via_in_port = next->port;
      queue.push(next->router);
    }
  }
  return reach;
}

}  // namespace

std::vector<Hop> compute_path_avoiding(const NetworkTopology& topology,
                                       std::uint32_t src_router,
                                       std::uint32_t src_port,
                                       std::uint32_t dst_router,
                                       std::uint32_t dst_port,
                                       const LinkFilter& blocked) {
  MMR_ASSERT_MSG(topology.input_is_local(src_router, src_port),
                 "source must inject on a local input port");
  MMR_ASSERT_MSG(topology.output_is_local(dst_router, dst_port),
                 "destination must eject on a local output port");

  const std::vector<Reach> reach = bfs(topology, src_router, blocked);
  if (reach[dst_router].distance == kUnreached) return {};

  // Reconstruct the router sequence backwards.
  std::vector<Hop> path(reach[dst_router].distance + 1);
  std::uint32_t router = dst_router;
  for (std::size_t i = path.size(); i-- > 0;) {
    path[i].router = router;
    if (i + 1 < path.size()) {
      // Output port chosen when computing hop i+1's reach.
      path[i].out_port = reach[path[i + 1].router].via_out_port;
    }
    if (i > 0) {
      path[i].in_port = reach[router].via_in_port;
      router = reach[router].via_router;
    }
  }
  path.front().in_port = src_port;
  path.back().out_port = dst_port;
  return path;
}

std::vector<Hop> compute_path(const NetworkTopology& topology,
                              std::uint32_t src_router, std::uint32_t src_port,
                              std::uint32_t dst_router,
                              std::uint32_t dst_port) {
  std::vector<Hop> path = compute_path_avoiding(
      topology, src_router, src_port, dst_router, dst_port, nullptr);
  MMR_ASSERT_MSG(!path.empty(), "destination router unreachable");
  return path;
}

std::uint32_t path_length(const NetworkTopology& topology,
                          std::uint32_t src_router, std::uint32_t dst_router) {
  const std::vector<Reach> reach = bfs(topology, src_router, nullptr);
  MMR_ASSERT(reach[dst_router].distance != kUnreached);
  return reach[dst_router].distance + 1;
}

}  // namespace mmr
