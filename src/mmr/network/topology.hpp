// Multi-router topology description (the paper's stated future work:
// "this study must be further extended to a network composed of several
// MMRs").  Every router has P ports; each port pairs one input link with
// one output link.  A port is either *local* (a NIC injects on the input
// side, a host consumes on the output side) or *connected*: its output link
// feeds another router's input link.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mmr/sim/assert.hpp"

namespace mmr {

struct PortEndpoint {
  std::uint32_t router = 0;
  std::uint32_t port = 0;

  friend bool operator==(const PortEndpoint&, const PortEndpoint&) = default;
};

class NetworkTopology {
 public:
  NetworkTopology(std::uint32_t routers, std::uint32_t ports_per_router);

  [[nodiscard]] std::uint32_t routers() const { return routers_; }
  [[nodiscard]] std::uint32_t ports_per_router() const { return ports_; }

  /// Directed channel: `from` router's output port -> `to` router's input
  /// port.  Each output and each input may be connected at most once.
  void connect(PortEndpoint from, PortEndpoint to);

  /// Downstream endpoint of an output link, or nullopt if local.
  [[nodiscard]] std::optional<PortEndpoint> downstream(
      std::uint32_t router, std::uint32_t out_port) const;

  /// Upstream endpoint feeding an input link, or nullopt if local (NIC).
  [[nodiscard]] std::optional<PortEndpoint> upstream(
      std::uint32_t router, std::uint32_t in_port) const;

  [[nodiscard]] bool output_is_local(std::uint32_t router,
                                     std::uint32_t out_port) const {
    return !downstream(router, out_port).has_value();
  }
  [[nodiscard]] bool input_is_local(std::uint32_t router,
                                    std::uint32_t in_port) const {
    return !upstream(router, in_port).has_value();
  }

  /// Local (host-facing) ports of one router.
  [[nodiscard]] std::vector<std::uint32_t> local_input_ports(
      std::uint32_t router) const;
  [[nodiscard]] std::vector<std::uint32_t> local_output_ports(
      std::uint32_t router) const;

  /// Total number of directed inter-router channels.
  [[nodiscard]] std::uint32_t channels() const { return channel_count_; }

  // --- stock topologies ----------------------------------------------------
  // Every factory validates its parameters and throws std::invalid_argument
  // naming the offending dimension — degenerate shapes (1-router ring,
  // 0-width mesh, too few ports for the node degree) are rejected here, at
  // construction, not later via an opaque assert.

  /// Bidirectional ring: port 0 runs clockwise (to the next router), port 1
  /// counter-clockwise; the remaining P-2 ports are local.  Needs P >= 3
  /// and >= 2 routers.
  static NetworkTopology bidirectional_ring(std::uint32_t routers,
                                            std::uint32_t ports_per_router);

  /// Open chain: interior routers spend two ports on neighbours, end
  /// routers one.  Needs P >= 3 and >= 2 routers.
  static NetworkTopology line(std::uint32_t routers,
                              std::uint32_t ports_per_router);

  /// A single router with every port local (the paper's base setup).
  static NetworkTopology single(std::uint32_t ports_per_router);

  /// width x height 2-D mesh.  Direction ports are fixed: 0 = east,
  /// 1 = west, 2 = north, 3 = south (unused directions on edge routers
  /// stay local); remaining ports are local.  Needs ports_per_router >= 5
  /// for interior routers to keep a host port.  Router index = y*width + x.
  static NetworkTopology mesh(std::uint32_t width, std::uint32_t height,
                              std::uint32_t ports_per_router);

  /// width x height 2-D torus (mesh with wraparound links): every router
  /// has degree 4, so ports_per_router >= 5 keeps one host port per router.
  /// Direction ports match mesh (E=0, W=1, N=2, S=3); needs width >= 2 and
  /// height >= 2.  Router index = y*width + x.
  /// 32x32 builds the 1024-router fabric bench/network_scale drives.
  static NetworkTopology torus2d(std::uint32_t width, std::uint32_t height,
                                 std::uint32_t ports_per_router);

  /// k-ary fat-tree (k even, >= 2): k pods of k/2 edge + k/2 aggregation
  /// switches plus (k/2)^2 core switches — 5k^2/4 routers total.  Edge
  /// switches spend k/2 ports going up and keep ports_per_router - k/2
  /// host ports; aggregation and core switches spend all k fabric ports
  /// (any extra ports stay local).  Needs ports_per_router >= k.
  /// Router ids: cores first, then all aggregations (by pod), then all
  /// edges (by pod) — hosts attach to the contiguous tail of the id space.
  static NetworkTopology fat_tree(std::uint32_t k,
                                  std::uint32_t ports_per_router);

  /// First edge-switch router id of a fat_tree(k, ...) — hosts attach to
  /// ids >= this (cores and aggregations have no local ports when
  /// ports_per_router == k).
  [[nodiscard]] static std::uint32_t fat_tree_first_edge(std::uint32_t k) {
    return (k / 2) * (k / 2) + k * (k / 2);
  }

 private:
  [[nodiscard]] std::size_t index(std::uint32_t router,
                                  std::uint32_t port) const {
    MMR_ASSERT(router < routers_);
    MMR_ASSERT(port < ports_);
    return static_cast<std::size_t>(router) * ports_ + port;
  }

  std::uint32_t routers_;
  std::uint32_t ports_;
  std::uint32_t channel_count_ = 0;
  std::vector<std::optional<PortEndpoint>> downstream_of_output_;
  std::vector<std::optional<PortEndpoint>> upstream_of_input_;
};

}  // namespace mmr
