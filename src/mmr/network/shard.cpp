// Barrier-per-cycle sharded stepping for MmrNetworkSimulation — the
// `net_threads=` SimConfig override (ISSUE 9 tentpole).
//
// Partitioning: routers are assigned to N contiguous shards once, at the
// first sharded step.  A shard owns its routers, the NICs attached to them
// (NIC indices are assigned router-ascending at construction, so each
// shard's NIC range is contiguous) and the channels *received* by them.
// Within one simulated cycle the shards run two parallel phases:
//
//   phase A  credit ticks + channel/NIC-link arrivals (writes land only in
//            the owned receiving routers; CreditManager::tick/release touch
//            disjoint members, see below)
//   phase B  NIC send + router scheduling cycles (reads of remote channel
//            credit counts are cross-shard but those words are only written
//            at the barrier or by their single owner phase)
//
// between serial sections (fault transitions, traffic generation off the
// global emission heap, deferred delivery accounting, credit resync).
//
// Determinism contract — the sharded engine is BIT-identical to the serial
// one, not merely statistically equivalent:
//   * Float accumulators (delay StreamingStats, per-class histograms) are
//     only updated in the serial sections, in ascending router order: phase
//     B queues PendingDelivery records per shard and the barrier drains
//     them shard-ascending, which IS serial router order because shards are
//     contiguous and ascending.
//   * RNG draws: every fault stream (per-channel drop/corrupt, per-channel
//     credit loss) is drawn only by the owning shard, in the same per-
//     stream order as the serial loop; streams are independent, so global
//     interleaving does not matter.
//   * Trace bytes: each shard emits into a private staging Tracer; at each
//     barrier the staged events are replayed into the real tracer ordered
//     by span key (phase, entity-id) — exactly the serial emission order.
//   * Data races: none.  CreditManager::consume writes only `credits_`
//     (written solely by the sending shard in phase B; its assert reads
//     `credits_` only), release() appends only to `pending_` (receiving
//     shard), and tick() applies pending->credits in phase A before any
//     phase-B reads.  The phases are separated by pool barriers.
//
// The runtime holds no simulated state — every buffer drains at a barrier —
// so snapshots, state hashes and resume behaviour are identical across
// thread counts (tested in tests/test_network_shard.cpp).

#include "mmr/network/network.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "mmr/sim/thread_pool.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

struct NetworkShardRuntime {
  /// Replay-order key: (phase << 32) | entity-id.  Ascending keys reproduce
  /// the serial engine's section order: all channels, then all NIC links
  /// (phase A); all NIC sends, then all routers (phase B).
  enum Phase : std::uint64_t {
    kChannelArrivals = 0,
    kNicArrivals = 1,
    kNicSend = 2,
    kRouterCycle = 3,
  };
  [[nodiscard]] static std::uint64_t key(Phase phase, std::uint32_t entity) {
    return (static_cast<std::uint64_t>(phase) << 32) | entity;
  }

  struct Shard {
    std::uint32_t router_begin = 0;
    std::uint32_t router_end = 0;  ///< exclusive
    std::uint32_t nic_begin = 0;
    std::uint32_t nic_end = 0;
    std::vector<std::uint32_t> channels;  ///< owned (receiving), ascending

    // Per-cycle scratch; drained/cleared at every barrier.
    std::vector<LinkTransfer> arrivals;
    std::vector<MmrRouter::Departure> departures;
    std::vector<MmrNetworkSimulation::PendingDelivery> deliveries;
    MmrNetworkSimulation::FaultTally tally;

    // Trace staging: the shard's events plus (key, end-offset) span marks
    // so the replay can interleave shards into serial order.
    std::unique_ptr<trace::Tracer> staging;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> spans;
    std::uint32_t span_mark = 0;

    /// Closes the current span (if any events were emitted since the last
    /// mark) under `key`.
    void mark(std::uint64_t key) {
      if (!staging) return;
      const auto size =
          static_cast<std::uint32_t>(staging->stream_events().size());
      if (size != span_mark) {
        spans.emplace_back(key, size);
        span_mark = size;
      }
    }
  };

  explicit NetworkShardRuntime(std::uint32_t shard_count)
      : pool(shard_count) {}

  ThreadPool pool;
  std::vector<Shard> shards;

  /// Replay scratch: every span of every shard, re-sorted by key at each
  /// barrier.  Keys are unique (one owner per entity), so the sort is a
  /// total order and the replay is deterministic.
  struct SpanRef {
    std::uint64_t key = 0;
    std::uint32_t shard = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<SpanRef> replay_order;
};

void NetworkShardRuntimeDeleter::operator()(
    NetworkShardRuntime* runtime) const {
  delete runtime;
}

void MmrNetworkSimulation::ensure_shard_runtime() {
  if (shard_) return;
  const auto routers = static_cast<std::uint32_t>(routers_.size());
  const std::uint32_t shard_count = std::min(config_.net_threads, routers);
  shard_.reset(new NetworkShardRuntime(shard_count));
  NetworkShardRuntime& rt = *shard_;
  rt.shards.resize(shard_count);

  // Balanced contiguous router ranges: shard s owns [s*R/S, (s+1)*R/S).
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    rt.shards[s].router_begin = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(routers) * s / shard_count);
    rt.shards[s].router_end = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(routers) * (s + 1) / shard_count);
  }

  // A channel belongs to the shard of its *receiving* router: phase A
  // mutates the downstream VCMs and the channel's credit/pipe queues.
  for (auto& shard : rt.shards) {
    for (std::uint32_t ci = 0;
         ci < static_cast<std::uint32_t>(channels_.size()); ++ci) {
      const std::uint32_t to = channels_[ci].to.router;
      if (to >= shard.router_begin && to < shard.router_end) {
        shard.channels.push_back(ci);
      }
    }
  }

  // NIC endpoints were appended router-ascending at construction, so each
  // shard's NICs form one contiguous index range.
  std::uint32_t cursor = 0;
  const auto nic_count = static_cast<std::uint32_t>(nic_endpoints_.size());
  for (auto& shard : rt.shards) {
    while (cursor < nic_count &&
           nic_endpoints_[cursor].router < shard.router_begin) {
      ++cursor;
    }
    shard.nic_begin = cursor;
    while (cursor < nic_count &&
           nic_endpoints_[cursor].router < shard.router_end) {
      ++cursor;
    }
    shard.nic_end = cursor;
  }
}

void MmrNetworkSimulation::replay_staged_trace(trace::Tracer& main) {
  NetworkShardRuntime& rt = *shard_;
  rt.replay_order.clear();
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(rt.shards.size());
       ++s) {
    std::uint32_t begin = 0;
    for (const auto& [key, end] : rt.shards[s].spans) {
      rt.replay_order.push_back({key, s, begin, end});
      begin = end;
    }
  }
  std::sort(rt.replay_order.begin(), rt.replay_order.end(),
            [](const NetworkShardRuntime::SpanRef& a,
               const NetworkShardRuntime::SpanRef& b) { return a.key < b.key; });
  for (const NetworkShardRuntime::SpanRef& span : rt.replay_order) {
    const std::vector<trace::Event>& events =
        rt.shards[span.shard].staging->stream_events();
    for (std::uint32_t i = span.begin; i < span.end; ++i) {
      // Staged events already carry their node stamp; mirror it onto the
      // real tracer so emit() re-stamps the identical value.
      main.set_node(events[i].node);
      main.emit(events[i]);
    }
  }
  for (auto& shard : rt.shards) {
    if (shard.staging) shard.staging->clear_stream();
    shard.spans.clear();
    shard.span_mark = 0;
  }
}

void MmrNetworkSimulation::step_one_sharded() {
  NetworkShardRuntime& rt = *shard_;
  const Cycle now = now_;
  const bool measure = now >= warmup_;

  trace::Tracer* const cycle_tracer =
      tracer_ != nullptr ? tracer_.get() : trace::current();
  const trace::TraceScope trace_scope(cycle_tracer);
  if (cycle_tracer != nullptr) {
    cycle_tracer->set_now(now);
    cycle_tracer->set_node(0);
  }
  const bool staged = trace::kCompiledIn && cycle_tracer != nullptr;
  if (staged) {
    for (auto& shard : rt.shards) {
      if (!shard.staging) {
        trace::TraceSpec spec;
        spec.mode = trace::TraceSpec::Mode::kStream;
        spec.limit = std::numeric_limits<std::uint64_t>::max();
        shard.staging =
            std::make_unique<trace::Tracer>(spec, cycle_tracer->meta());
      }
      shard.staging->set_now(now);
      shard.staging->set_node(0);
    }
  }

  // 0. Serial: fault transitions (teardown/reroute walk global state).
  if (fault_) apply_fault_transitions(now);

  // 1+1b. Parallel phase A: channel housekeeping + arrivals per shard.
  for (auto& shard : rt.shards) {
    rt.pool.submit([this, &shard, now, staged] {
      const trace::TraceScope arm(staged ? shard.staging.get() : nullptr);
      for (const std::uint32_t ci : shard.channels) {
        process_channel_arrivals(ci, now, shard.arrivals, shard.tally);
        shard.mark(NetworkShardRuntime::key(
            NetworkShardRuntime::kChannelArrivals, ci));
      }
      for (std::uint32_t n = shard.nic_begin; n < shard.nic_end; ++n) {
        process_nic_arrivals(n, now, shard.arrivals);
        shard.mark(
            NetworkShardRuntime::key(NetworkShardRuntime::kNicArrivals, n));
      }
    });
  }
  rt.pool.wait_idle();
  if (staged) {
    replay_staged_trace(*cycle_tracer);
    // The serial engine's SET_NODE runs per entity even when nothing is
    // emitted, and the tracer's node register is part of the snapshot walk
    // — mirror its end-of-phase value so state hashes stay identical.
    if (!nic_endpoints_.empty()) {
      cycle_tracer->set_node(
          static_cast<std::uint16_t>(nic_endpoints_.back().router));
    } else if (!channels_.empty()) {
      cycle_tracer->set_node(
          static_cast<std::uint16_t>(channels_.back().to.router));
    }
  }

  // 2. Serial: traffic generation pops the global emission heap (its
  // storage order is part of the snapshot walk, so it stays untouched).
  generate_traffic(now);

  // 3+4. Parallel phase B: NIC sends, then router scheduling cycles.
  // Deliveries and fault counters are deferred to the barrier.
  for (auto& shard : rt.shards) {
    rt.pool.submit([this, &shard, now, measure, staged] {
      const trace::TraceScope arm(staged ? shard.staging.get() : nullptr);
      for (std::uint32_t n = shard.nic_begin; n < shard.nic_end; ++n) {
        if (auto transfer = nics_[n]->select_and_send(now)) {
          nic_links_[n].push(*transfer, now);
        }
        shard.mark(NetworkShardRuntime::key(NetworkShardRuntime::kNicSend, n));
      }
      for (std::uint32_t r = shard.router_begin; r < shard.router_end; ++r) {
        process_router_cycle(r, now, measure, shard.departures, shard.tally,
                             &shard.deliveries);
        shard.mark(
            NetworkShardRuntime::key(NetworkShardRuntime::kRouterCycle, r));
      }
    });
  }
  rt.pool.wait_idle();
  if (staged) {
    replay_staged_trace(*cycle_tracer);
    // Serial phase 4 leaves the node register at the last router id.
    cycle_tracer->set_node(
        static_cast<std::uint16_t>(routers_.size() - 1));
  }

  // Barrier: deferred accounting in ascending shard order == ascending
  // router order, so every float accumulates exactly as in the serial run.
  for (auto& shard : rt.shards) {
    for (const PendingDelivery& delivery : shard.deliveries) {
      account_delivery(delivery.departure, delivery.hops, now + 1);
    }
    shard.deliveries.clear();
    flush_fault_tally(shard.tally);
    shard.tally = FaultTally{};
  }

  // 5. Serial: credit-resync watchdog + periodic invariants.
  if (fault_) credit_resync(now);
  if ((now + 1) % (1 << 16) == 0) check_invariants();
  ++now_;
}

}  // namespace mmr
