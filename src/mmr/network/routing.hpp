// Path computation for pipelined circuit switching: at connection setup a
// routing probe walks from source to destination reserving one VC per hop.
// We model it as shortest-path (BFS) routing over the router graph, fixed
// for the connection's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mmr/network/topology.hpp"

namespace mmr {

/// One router traversal of a connection's path.
struct Hop {
  std::uint32_t router = 0;
  std::uint32_t in_port = 0;   ///< input link entered on
  std::uint32_t out_port = 0;  ///< output link left on
  std::uint32_t vc = 0;        ///< VC reserved on (router, in_port);
                               ///< assigned by the network builder

  friend bool operator==(const Hop&, const Hop&) = default;
};

/// Shortest path from (src_router, src local input port) to (dst_router,
/// dst local output port).  Returns one Hop per traversed router; hop 0
/// enters on the source's local port, the last hop leaves on the
/// destination's local port.  Aborts when the endpoints are not local or no
/// path exists (VC fields are left 0 for the builder to fill).
[[nodiscard]] std::vector<Hop> compute_path(const NetworkTopology& topology,
                                            std::uint32_t src_router,
                                            std::uint32_t src_port,
                                            std::uint32_t dst_router,
                                            std::uint32_t dst_port);

/// Predicate marking an inter-router link as unusable for routing (true =
/// (router, out_port) must be avoided — e.g. the channel is down).
using LinkFilter = std::function<bool(std::uint32_t router,
                                      std::uint32_t out_port)>;

/// Like compute_path, but routes around links the filter blocks, falling
/// back to the next shortest usable path.  Returns an empty vector when no
/// usable path exists (instead of aborting) so the caller can drop the
/// connection gracefully.  A null filter blocks nothing.
[[nodiscard]] std::vector<Hop> compute_path_avoiding(
    const NetworkTopology& topology, std::uint32_t src_router,
    std::uint32_t src_port, std::uint32_t dst_router, std::uint32_t dst_port,
    const LinkFilter& blocked);

/// Router-level hop distance (number of routers traversed).
[[nodiscard]] std::uint32_t path_length(const NetworkTopology& topology,
                                        std::uint32_t src_router,
                                        std::uint32_t dst_router);

}  // namespace mmr
