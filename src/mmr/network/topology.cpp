#include "mmr/network/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mmr {

namespace {

/// Factory parameter rejection: factories throw (callers often feed
/// user-supplied dimensions) where the programmatic connect() API asserts.
[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument(what);
}

}  // namespace

NetworkTopology::NetworkTopology(std::uint32_t routers,
                                 std::uint32_t ports_per_router)
    : routers_(routers), ports_(ports_per_router) {
  MMR_ASSERT(routers_ >= 1);
  MMR_ASSERT(ports_ >= 2);
  downstream_of_output_.resize(static_cast<std::size_t>(routers_) * ports_);
  upstream_of_input_.resize(static_cast<std::size_t>(routers_) * ports_);
}

void NetworkTopology::connect(PortEndpoint from, PortEndpoint to) {
  auto& down = downstream_of_output_[index(from.router, from.port)];
  auto& up = upstream_of_input_[index(to.router, to.port)];
  MMR_ASSERT_MSG(!down.has_value(), "output port already connected");
  MMR_ASSERT_MSG(!up.has_value(), "input port already connected");
  MMR_ASSERT_MSG(from.router != to.router, "self-loops are not meaningful");
  down = to;
  up = from;
  ++channel_count_;
}

std::optional<PortEndpoint> NetworkTopology::downstream(
    std::uint32_t router, std::uint32_t out_port) const {
  return downstream_of_output_[index(router, out_port)];
}

std::optional<PortEndpoint> NetworkTopology::upstream(
    std::uint32_t router, std::uint32_t in_port) const {
  return upstream_of_input_[index(router, in_port)];
}

std::vector<std::uint32_t> NetworkTopology::local_input_ports(
    std::uint32_t router) const {
  std::vector<std::uint32_t> ports;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (input_is_local(router, port)) ports.push_back(port);
  }
  return ports;
}

std::vector<std::uint32_t> NetworkTopology::local_output_ports(
    std::uint32_t router) const {
  std::vector<std::uint32_t> ports;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (output_is_local(router, port)) ports.push_back(port);
  }
  return ports;
}

NetworkTopology NetworkTopology::bidirectional_ring(
    std::uint32_t routers, std::uint32_t ports_per_router) {
  if (routers < 2)
    reject("bidirectional_ring: routers=" + std::to_string(routers) +
           " is degenerate; a ring needs >= 2 routers");
  if (ports_per_router < 3)
    reject("bidirectional_ring: ports_per_router=" +
           std::to_string(ports_per_router) +
           " is below the required degree; a ring router spends 2 ports on "
           "neighbours and needs >= 1 local port (>= 3 total)");
  NetworkTopology topology(routers, ports_per_router);
  for (std::uint32_t r = 0; r < routers; ++r) {
    const std::uint32_t next = (r + 1) % routers;
    // Clockwise on port 0, counter-clockwise on port 1.
    topology.connect({r, 0}, {next, 0});
    topology.connect({next, 1}, {r, 1});
  }
  return topology;
}

NetworkTopology NetworkTopology::line(std::uint32_t routers,
                                      std::uint32_t ports_per_router) {
  if (routers < 2)
    reject("line: routers=" + std::to_string(routers) +
           " is degenerate; a line needs >= 2 routers");
  if (ports_per_router < 3)
    reject("line: ports_per_router=" + std::to_string(ports_per_router) +
           " is below the required degree; interior routers spend 2 ports "
           "on neighbours and need >= 1 local port (>= 3 total)");
  NetworkTopology topology(routers, ports_per_router);
  for (std::uint32_t r = 0; r + 1 < routers; ++r) {
    topology.connect({r, 0}, {r + 1, 0});      // rightward
    topology.connect({r + 1, 1}, {r, 1});      // leftward
  }
  return topology;
}

NetworkTopology NetworkTopology::single(std::uint32_t ports_per_router) {
  return NetworkTopology(1, ports_per_router);
}

NetworkTopology NetworkTopology::mesh(std::uint32_t width,
                                      std::uint32_t height,
                                      std::uint32_t ports_per_router) {
  if (width == 0 || height == 0)
    reject("mesh: width=" + std::to_string(width) + " height=" +
           std::to_string(height) + " is degenerate; both must be >= 1");
  if (width * height < 2)
    reject("mesh: width=" + std::to_string(width) + " height=" +
           std::to_string(height) +
           " yields a single router; a mesh needs >= 2 (use "
           "NetworkTopology::single for one router)");
  // Direction ports use fixed indices (E=0, W=1, N=2, S=3), so the port
  // count must span the used directions; additionally every router must
  // keep at least one local (host) port beyond its own link degree.  Max
  // node degree: east+west both used needs width >= 3, north+south
  // height >= 3.
  const std::uint32_t direction_span = height > 1 ? 4u : 2u;
  const std::uint32_t max_degree =
      std::min(width - 1, 2u) + std::min(height - 1, 2u);
  if (ports_per_router < std::max(direction_span, max_degree + 1))
    reject("mesh: ports_per_router=" + std::to_string(ports_per_router) +
           " is below the required degree for " + std::to_string(width) +
           "x" + std::to_string(height) +
           ": routers need the direction span plus a local port (>= " +
           std::to_string(std::max(direction_span, max_degree + 1)) + ")");
  NetworkTopology topology(width * height, ports_per_router);
  constexpr std::uint32_t kEast = 0;
  constexpr std::uint32_t kWest = 1;
  constexpr std::uint32_t kNorth = 2;
  constexpr std::uint32_t kSouth = 3;
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return y * width + x;
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        topology.connect({id(x, y), kEast}, {id(x + 1, y), kWest});
        topology.connect({id(x + 1, y), kWest}, {id(x, y), kEast});
      }
      if (y + 1 < height) {
        topology.connect({id(x, y), kSouth}, {id(x, y + 1), kNorth});
        topology.connect({id(x, y + 1), kNorth}, {id(x, y), kSouth});
      }
    }
  }
  return topology;
}

NetworkTopology NetworkTopology::torus2d(std::uint32_t width,
                                         std::uint32_t height,
                                         std::uint32_t ports_per_router) {
  if (width < 2 || height < 2)
    reject("torus2d: width=" + std::to_string(width) + " height=" +
           std::to_string(height) +
           " is degenerate; wraparound links need both dimensions >= 2");
  if (ports_per_router < 5)
    reject("torus2d: ports_per_router=" + std::to_string(ports_per_router) +
           " is below the required degree; every torus router spends 4 "
           "ports on neighbours and needs >= 1 local port (>= 5 total)");
  NetworkTopology topology(width * height, ports_per_router);
  constexpr std::uint32_t kEast = 0;
  constexpr std::uint32_t kWest = 1;
  constexpr std::uint32_t kNorth = 2;
  constexpr std::uint32_t kSouth = 3;
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return y * width + x;
  };
  // Every +x / +y hop gets both directed channels of its bidirectional
  // link; wraparound makes every router interior (degree exactly 4).
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const std::uint32_t xe = (x + 1) % width;
      const std::uint32_t ys = (y + 1) % height;
      topology.connect({id(x, y), kEast}, {id(xe, y), kWest});
      topology.connect({id(xe, y), kWest}, {id(x, y), kEast});
      topology.connect({id(x, y), kSouth}, {id(x, ys), kNorth});
      topology.connect({id(x, ys), kNorth}, {id(x, y), kSouth});
    }
  }
  return topology;
}

NetworkTopology NetworkTopology::fat_tree(std::uint32_t k,
                                          std::uint32_t ports_per_router) {
  if (k < 2 || k % 2 != 0)
    reject("fat_tree: k=" + std::to_string(k) +
           " is invalid; the pod construction needs k even and >= 2");
  if (ports_per_router < k)
    reject("fat_tree: ports_per_router=" + std::to_string(ports_per_router) +
           " is below the required degree; aggregation and core switches "
           "need k=" + std::to_string(k) + " fabric ports");
  const std::uint32_t half = k / 2;
  const std::uint32_t cores = half * half;    // ids [0, cores)
  const std::uint32_t aggs0 = cores;          // k*half aggs, grouped by pod
  const std::uint32_t edges0 = cores + k * half;  // k*half edges, by pod
  NetworkTopology topology(edges0 + k * half, ports_per_router);
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      const std::uint32_t agg = aggs0 + p * half + a;
      // Aggregation a serves every edge of its pod on ports [0, half)...
      for (std::uint32_t e = 0; e < half; ++e) {
        const std::uint32_t edge = edges0 + p * half + e;
        topology.connect({edge, a}, {agg, e});
        topology.connect({agg, e}, {edge, a});
      }
      // ...and reaches core group a on ports [half, k); core (a, i)'s
      // port p is dedicated to pod p.
      for (std::uint32_t i = 0; i < half; ++i) {
        const std::uint32_t core = a * half + i;
        topology.connect({agg, half + i}, {core, p});
        topology.connect({core, p}, {agg, half + i});
      }
    }
  }
  return topology;
}

}  // namespace mmr
