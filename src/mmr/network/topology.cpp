#include "mmr/network/topology.hpp"

#include <algorithm>

namespace mmr {

NetworkTopology::NetworkTopology(std::uint32_t routers,
                                 std::uint32_t ports_per_router)
    : routers_(routers), ports_(ports_per_router) {
  MMR_ASSERT(routers_ >= 1);
  MMR_ASSERT(ports_ >= 2);
  downstream_of_output_.resize(static_cast<std::size_t>(routers_) * ports_);
  upstream_of_input_.resize(static_cast<std::size_t>(routers_) * ports_);
}

void NetworkTopology::connect(PortEndpoint from, PortEndpoint to) {
  auto& down = downstream_of_output_[index(from.router, from.port)];
  auto& up = upstream_of_input_[index(to.router, to.port)];
  MMR_ASSERT_MSG(!down.has_value(), "output port already connected");
  MMR_ASSERT_MSG(!up.has_value(), "input port already connected");
  MMR_ASSERT_MSG(from.router != to.router, "self-loops are not meaningful");
  down = to;
  up = from;
  ++channel_count_;
}

std::optional<PortEndpoint> NetworkTopology::downstream(
    std::uint32_t router, std::uint32_t out_port) const {
  return downstream_of_output_[index(router, out_port)];
}

std::optional<PortEndpoint> NetworkTopology::upstream(
    std::uint32_t router, std::uint32_t in_port) const {
  return upstream_of_input_[index(router, in_port)];
}

std::vector<std::uint32_t> NetworkTopology::local_input_ports(
    std::uint32_t router) const {
  std::vector<std::uint32_t> ports;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (input_is_local(router, port)) ports.push_back(port);
  }
  return ports;
}

std::vector<std::uint32_t> NetworkTopology::local_output_ports(
    std::uint32_t router) const {
  std::vector<std::uint32_t> ports;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    if (output_is_local(router, port)) ports.push_back(port);
  }
  return ports;
}

NetworkTopology NetworkTopology::bidirectional_ring(
    std::uint32_t routers, std::uint32_t ports_per_router) {
  MMR_ASSERT(routers >= 2);
  MMR_ASSERT(ports_per_router >= 3);
  NetworkTopology topology(routers, ports_per_router);
  for (std::uint32_t r = 0; r < routers; ++r) {
    const std::uint32_t next = (r + 1) % routers;
    // Clockwise on port 0, counter-clockwise on port 1.
    topology.connect({r, 0}, {next, 0});
    topology.connect({next, 1}, {r, 1});
  }
  return topology;
}

NetworkTopology NetworkTopology::line(std::uint32_t routers,
                                      std::uint32_t ports_per_router) {
  MMR_ASSERT(routers >= 2);
  MMR_ASSERT(ports_per_router >= 3);
  NetworkTopology topology(routers, ports_per_router);
  for (std::uint32_t r = 0; r + 1 < routers; ++r) {
    topology.connect({r, 0}, {r + 1, 0});      // rightward
    topology.connect({r + 1, 1}, {r, 1});      // leftward
  }
  return topology;
}

NetworkTopology NetworkTopology::single(std::uint32_t ports_per_router) {
  return NetworkTopology(1, ports_per_router);
}

NetworkTopology NetworkTopology::mesh(std::uint32_t width,
                                      std::uint32_t height,
                                      std::uint32_t ports_per_router) {
  MMR_ASSERT(width >= 1 && height >= 1);
  MMR_ASSERT(width * height >= 2);
  // Direction ports use fixed indices (E=0, W=1, N=2, S=3), so the port
  // count must span the used directions; additionally every router must
  // keep at least one local (host) port beyond its own link degree.  Max
  // node degree: east+west both used needs width >= 3, north+south
  // height >= 3.
  const std::uint32_t direction_span = height > 1 ? 4u : 2u;
  const std::uint32_t max_degree =
      std::min(width - 1, 2u) + std::min(height - 1, 2u);
  MMR_ASSERT_MSG(
      ports_per_router >= std::max(direction_span, max_degree + 1),
      "mesh routers need the direction span plus a local port");
  NetworkTopology topology(width * height, ports_per_router);
  constexpr std::uint32_t kEast = 0;
  constexpr std::uint32_t kWest = 1;
  constexpr std::uint32_t kNorth = 2;
  constexpr std::uint32_t kSouth = 3;
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return y * width + x;
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        topology.connect({id(x, y), kEast}, {id(x + 1, y), kWest});
        topology.connect({id(x + 1, y), kWest}, {id(x, y), kEast});
      }
      if (y + 1 < height) {
        topology.connect({id(x, y), kSouth}, {id(x, y + 1), kNorth});
        topology.connect({id(x, y + 1), kNorth}, {id(x, y), kSouth});
      }
    }
  }
  return topology;
}

}  // namespace mmr
