#include "mmr/network/network.hpp"

#include <algorithm>
#include <optional>

#include "mmr/audit/sim_auditor.hpp"
#include "mmr/qos/rounds.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/snapshot/format.hpp"
#include "mmr/snapshot/manager.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

void NetworkWorkload::check_invariants() const {
  MMR_ASSERT_MSG(sources.size() == connections.size(),
                 "one source per network connection");
  for (std::size_t id = 0; id < connections.size(); ++id) {
    const NetworkConnection& c = connections[id];
    MMR_ASSERT(c.id == static_cast<ConnectionId>(id));
    MMR_ASSERT(sources[id] != nullptr);
    MMR_ASSERT(sources[id]->connection() == c.id);
    MMR_ASSERT(!c.path.empty());
    MMR_ASSERT(topology.input_is_local(c.first_hop().router,
                                       c.first_hop().in_port));
    MMR_ASSERT(topology.output_is_local(c.last_hop().router,
                                        c.last_hop().out_port));
    for (std::size_t h = 0; h + 1 < c.path.size(); ++h) {
      const auto down =
          topology.downstream(c.path[h].router, c.path[h].out_port);
      MMR_ASSERT_MSG(down.has_value(), "interior hop must leave on a channel");
      MMR_ASSERT(down->router == c.path[h + 1].router);
      MMR_ASSERT(down->port == c.path[h + 1].in_port);
    }
  }
}

namespace {

/// Shared placement machinery: destination pool and all-or-nothing per-hop
/// VC reservation (what the setup probe does).
class NetworkPlacer {
 public:
  NetworkPlacer(const SimConfig& config, const NetworkTopology& topology)
      : config_(config),
        vc_cursor_(topology.routers(),
                   std::vector<std::uint32_t>(topology.ports_per_router(), 0)) {
    for (std::uint32_t r = 0; r < topology.routers(); ++r) {
      for (std::uint32_t p : topology.local_output_ports(r)) {
        sinks_.push_back({r, p});
      }
    }
    MMR_ASSERT_MSG(!sinks_.empty(), "topology has no local output ports");
  }

  [[nodiscard]] const std::vector<PortEndpoint>& sinks() const {
    return sinks_;
  }

  [[nodiscard]] bool reserve_path(std::vector<Hop>& path) {
    for (const Hop& hop : path) {
      if (vc_cursor_[hop.router][hop.in_port] >= config_.vcs_per_link) {
        return false;
      }
    }
    for (Hop& hop : path) {
      hop.vc = vc_cursor_[hop.router][hop.in_port]++;
    }
    return true;
  }

 private:
  const SimConfig& config_;
  std::vector<PortEndpoint> sinks_;
  std::vector<std::vector<std::uint32_t>> vc_cursor_;
};

}  // namespace

NetworkWorkload build_network_cbr_mix(const SimConfig& config,
                                      const NetworkTopology& topology,
                                      const CbrMixSpec& spec, Rng& rng) {
  MMR_ASSERT(topology.ports_per_router() == config.ports);
  MMR_ASSERT(!spec.classes.empty());
  MMR_ASSERT(spec.classes.size() == spec.class_weights.size());

  NetworkWorkload workload(topology);
  const TimeBase time_base = config.time_base();
  NetworkPlacer placer(config, topology);
  const std::vector<PortEndpoint>& sinks = placer.sinks();

  std::vector<std::size_t> by_rate(spec.classes.size());
  for (std::size_t i = 0; i < by_rate.size(); ++i) by_rate[i] = i;
  std::sort(by_rate.begin(), by_rate.end(),
            [&spec](std::size_t a, std::size_t b) {
              return spec.classes[a].bps > spec.classes[b].bps;
            });

  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    for (std::uint32_t in_port : topology.local_input_ports(r)) {
      Rng port_rng = rng.fork(0x33CC + r * 64 + in_port);
      double remaining_bps =
          spec.target_load * time_base.link_bandwidth_bps();
      while (true) {
        std::size_t cls = port_rng.weighted_index(spec.class_weights);
        if (spec.classes[cls].bps > remaining_bps) {
          bool found = false;
          for (std::size_t idx : by_rate) {
            if (spec.classes[idx].bps <= remaining_bps) {
              cls = idx;
              found = true;
              break;
            }
          }
          if (!found) break;
        }
        const double bps = spec.classes[cls].bps;
        const PortEndpoint sink =
            sinks[port_rng.uniform(sinks.size())];
        NetworkConnection connection;
        connection.traffic_class = TrafficClass::kCbr;
        connection.mean_bandwidth_bps = bps;
        connection.peak_bandwidth_bps = bps;
        connection.path =
            compute_path(topology, r, in_port, sink.router, sink.port);
        if (!placer.reserve_path(connection.path)) break;  // VCs exhausted
        connection.id = static_cast<ConnectionId>(workload.connections.size());
        const double phase =
            port_rng.uniform_real() * (time_base.link_bandwidth_bps() / bps);
        workload.sources.push_back(std::make_unique<CbrSource>(
            connection.id, bps, time_base, phase));
        workload.connections.push_back(std::move(connection));
        remaining_bps -= bps;
      }
    }
  }
  workload.check_invariants();
  return workload;
}

NetworkWorkload build_network_vbr_mix(const SimConfig& config,
                                      const NetworkTopology& topology,
                                      const VbrMixSpec& spec, Rng& rng) {
  MMR_ASSERT(topology.ports_per_router() == config.ports);
  MMR_ASSERT(spec.trace_gops >= 1);

  NetworkWorkload workload(topology);
  const TimeBase time_base = config.time_base();
  NetworkPlacer placer(config, topology);
  const std::vector<PortEndpoint>& sinks = placer.sinks();
  const auto& library = mpeg_sequence_library();
  const double period_cycles =
      time_base.seconds_to_cycles(kFramePeriodSeconds);

  // Pass 1: plan connections and realise traces (the BB peak rate is
  // workload-wide, so sources are built afterwards).
  struct Planned {
    NetworkConnection connection;
    MpegTrace trace;
    double phase;
    std::uint32_t start_frame;
  };
  std::vector<Planned> planned;
  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    for (std::uint32_t in_port : topology.local_input_ports(r)) {
      Rng port_rng = rng.fork(0x44DD + r * 64 + in_port);
      double remaining_bps =
          spec.target_load * time_base.link_bandwidth_bps();
      while (true) {
        const auto& params = library[port_rng.uniform(library.size())];
        if (params.mean_bps() > remaining_bps) {
          const auto leanest = std::min_element(
              library.begin(), library.end(),
              [](const MpegSequenceParams& a, const MpegSequenceParams& b) {
                return a.mean_bps() < b.mean_bps();
              });
          if (leanest->mean_bps() > remaining_bps) break;
          continue;
        }
        Planned p;
        p.connection.traffic_class = TrafficClass::kVbr;
        const PortEndpoint sink = sinks[port_rng.uniform(sinks.size())];
        p.connection.path =
            compute_path(topology, r, in_port, sink.router, sink.port);
        if (!placer.reserve_path(p.connection.path)) break;
        p.trace = generate_mpeg_trace(params, spec.trace_gops, port_rng);
        p.connection.mean_bandwidth_bps = p.trace.mean_bps();
        p.connection.peak_bandwidth_bps = p.trace.peak_bps();
        p.start_frame =
            static_cast<std::uint32_t>(port_rng.uniform(p.trace.frames()));
        p.phase = port_rng.uniform_real() * period_cycles;
        remaining_bps -= p.connection.mean_bandwidth_bps;
        planned.push_back(std::move(p));
      }
    }
  }

  double workload_peak_bps = 0.0;
  for (const Planned& p : planned) {
    workload_peak_bps =
        std::max(workload_peak_bps, p.connection.peak_bandwidth_bps);
  }
  workload_peak_bps =
      std::min(workload_peak_bps, time_base.link_bandwidth_bps());

  for (Planned& p : planned) {
    p.connection.id = static_cast<ConnectionId>(workload.connections.size());
    workload.sources.push_back(std::make_unique<VbrSource>(
        p.connection.id, std::move(p.trace), spec.model, time_base,
        workload_peak_bps, p.phase, p.start_frame));
    workload.connections.push_back(std::move(p.connection));
  }
  workload.check_invariants();
  return workload;
}

const ClassMetrics* NetworkMetrics::find_class(
    const std::string& label) const {
  for (const ClassMetrics& c : per_class) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

MmrNetworkSimulation::MmrNetworkSimulation(SimConfig config,
                                           NetworkWorkload workload)
    : config_(config),
      workload_(std::move(workload)),
      warmup_(config.warmup_cycles) {
  config_.validate_network();  // throws: flow=shared conflicts with a network
  workload_.check_invariants();
  const NetworkTopology& topology = workload_.topology;
  MMR_ASSERT(topology.ports_per_router() == config_.ports);

  // Per-router connection tables: one entry per hop, added in (connection,
  // hop) order so that ConnectionTable's VC assignment reproduces the
  // reservation made by the workload builder.
  tables_.assign(topology.routers(), ConnectionTable(config_.ports));
  // (router, input, vc) -> routing info.
  next_hop_.assign(topology.routers(),
                   std::vector<std::vector<NextHop>>(
                       config_.ports, std::vector<NextHop>()));
  hop_index_.assign(topology.routers(),
                    std::vector<std::vector<std::uint32_t>>(
                        config_.ports, std::vector<std::uint32_t>()));
  for (auto& per_router : next_hop_) {
    for (auto& per_input : per_router) {
      per_input.resize(config_.vcs_per_link);
    }
  }
  for (auto& per_router : hop_index_) {
    for (auto& per_input : per_router) {
      per_input.resize(config_.vcs_per_link, 0);
    }
  }

  // Channels.
  channel_of_output_.assign(
      static_cast<std::size_t>(topology.routers()) * config_.ports, -1);
  upstream_channel_.assign(
      static_cast<std::size_t>(topology.routers()) * config_.ports, -1);
  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    for (std::uint32_t p = 0; p < config_.ports; ++p) {
      const auto down = topology.downstream(r, p);
      if (!down.has_value()) continue;
      const auto channel = static_cast<std::int32_t>(channels_.size());
      channel_of_output_[static_cast<std::size_t>(r) * config_.ports + p] =
          channel;
      upstream_channel_[static_cast<std::size_t>(down->router) *
                            config_.ports +
                        down->port] = channel;
      channels_.emplace_back(PortEndpoint{r, p}, *down, config_.link_latency,
                             config_.vcs_per_link,
                             config_.buffer_flits_per_vc,
                             config_.credit_latency);
    }
  }

  // NICs on local input ports.
  nic_of_input_.assign(
      static_cast<std::size_t>(topology.routers()) * config_.ports, -1);
  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    for (std::uint32_t p : topology.local_input_ports(r)) {
      nic_of_input_[static_cast<std::size_t>(r) * config_.ports + p] =
          static_cast<std::int32_t>(nics_.size());
      nics_.push_back(std::make_unique<Nic>(config_.vcs_per_link,
                                            config_.buffer_flits_per_vc,
                                            config_.credit_latency));
      nic_links_.emplace_back(config_.link_latency);
      nic_endpoints_.push_back({r, p});
      ++local_inputs_;
    }
    local_outputs_ +=
        static_cast<std::uint32_t>(topology.local_output_ports(r).size());
  }

  // Populate tables and the routing maps.
  for (const NetworkConnection& connection : workload_.connections) {
    for (std::size_t h = 0; h < connection.path.size(); ++h) {
      const Hop& hop = connection.path[h];
      const ConnectionId local_id = tables_[hop.router].add(
          hop_descriptor(connection, hop), config_.vcs_per_link);
      MMR_ASSERT_MSG(tables_[hop.router].get(local_id).vc == hop.vc,
                     "table VC assignment must match the reservation");

      NextHop& next = next_hop_[hop.router][hop.in_port][hop.vc];
      hop_index_[hop.router][hop.in_port][hop.vc] =
          static_cast<std::uint32_t>(h);
      if (h + 1 < connection.path.size()) {
        const std::int32_t channel =
            channel_of_output_[static_cast<std::size_t>(hop.router) *
                                   config_.ports +
                               hop.out_port];
        MMR_ASSERT(channel != -1);
        next.local = false;
        next.channel = static_cast<std::uint32_t>(channel);
        next.downstream_vc = connection.path[h + 1].vc;
      } else {
        next.local = true;
      }
    }
  }

  // Routers, each with a downstream-credit eligibility gate.  The gate also
  // refuses to offer VCs whose next channel is inside an outage window —
  // the null check keeps fault-free runs on the exact original code path.
  routers_.reserve(topology.routers());
  const Rng rng(config_.seed, 0x4E7);
  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    routers_.emplace_back(config_, tables_[r], rng.fork(r));
  }
  for (std::uint32_t r = 0; r < topology.routers(); ++r) {
    routers_[r].set_eligibility(
        [this, r](std::uint32_t input, std::uint32_t vc) {
          const NextHop& next = next_hop_[r][input][vc];
          if (next.local) return true;
          if (fault_ && fault_->injector.is_down(next.channel)) return false;
          return channels_[next.channel].credits.has_credit(
              next.downstream_vc);
        });
  }

  // Statistics grouping.
  for (const NetworkConnection& connection : workload_.connections) {
    ConnectionDescriptor descriptor;
    descriptor.traffic_class = connection.traffic_class;
    descriptor.mean_bandwidth_bps = connection.mean_bandwidth_bps;
    const std::string label = class_label(descriptor);
    std::size_t index = classes_.size();
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      if (classes_[i].label == label) {
        index = i;
        break;
      }
    }
    if (index == classes_.size()) {
      ClassMetrics cls;
      cls.label = label;
      classes_.push_back(std::move(cls));
    }
    class_of_connection_.push_back(index);
  }

  for (std::uint32_t i = 0; i < workload_.sources.size(); ++i) {
    const Cycle next = workload_.sources[i]->next_emission();
    if (next != kNever) heap_.emplace(next, i);
  }

  if (!config_.fault_spec.empty()) {
    set_fault_plan(FaultPlan::parse(config_.fault_spec));
  }

  if (!config_.trace_spec.empty())
    tracer_ = std::make_unique<trace::Tracer>(
        trace::TraceSpec::parse(config_.trace_spec),
        trace::TraceMeta::from_config(config_));

  // Last: the fault runtime and tracer must exist before a `resume:`
  // checkpoint is overlaid.
  if (!config_.snap_spec.empty()) {
    const snapshot::SnapSpec spec =
        snapshot::SnapSpec::parse(config_.snap_spec);
    snap_mgr_ = std::make_unique<snapshot::SnapshotManager>(
        spec, snapshot::config_digest(config_));
    if (!spec.resume.empty()) restore_checkpoint(spec.resume);
  }
}

MmrNetworkSimulation::~MmrNetworkSimulation() = default;

ConnectionDescriptor MmrNetworkSimulation::hop_descriptor(
    const NetworkConnection& connection, const Hop& hop) const {
  const RoundAccounting rounds(config_.flit_cycles_per_round(),
                               config_.time_base());
  ConnectionDescriptor descriptor;
  descriptor.traffic_class = connection.traffic_class;
  descriptor.input_link = hop.in_port;
  descriptor.output_link = hop.out_port;
  descriptor.mean_bandwidth_bps = connection.mean_bandwidth_bps;
  descriptor.peak_bandwidth_bps = connection.peak_bandwidth_bps;
  descriptor.slots_per_round =
      rounds.slots_for_bandwidth(connection.mean_bandwidth_bps);
  descriptor.peak_slots_per_round =
      rounds.slots_for_bandwidth(connection.peak_bandwidth_bps);
  return descriptor;
}

std::int32_t MmrNetworkSimulation::channel_at(std::uint32_t router,
                                              std::uint32_t out_port) const {
  MMR_ASSERT(router < routers_.size() && out_port < config_.ports);
  return channel_of_output_[static_cast<std::size_t>(router) * config_.ports +
                            out_port];
}

void MmrNetworkSimulation::set_fault_plan(FaultPlan plan) {
  MMR_ASSERT_MSG(!ran_ && now_ == 0,
                 "the fault plan must be installed before the first step");
  plan.validate(channel_count());
  if (plan.empty()) {
    fault_.reset();  // strict no-op: not even the machinery exists
    return;
  }

  fault_ = std::make_unique<FaultRuntime>(std::move(plan), channel_count());
  FaultRuntime& f = *fault_;
  f.metrics.enabled = true;

  // Mirror every hop's bandwidth reservation into per-router admission
  // controllers so teardown can release it and re-admission can re-check it.
  // Initial workloads are built by load targeting, not admission control, so
  // a hop may legitimately exceed the budgets; those hops simply hold no
  // reservation.
  const RoundAccounting rounds(config_.flit_cycles_per_round(),
                               config_.time_base());
  f.admission.assign(routers_.size(),
                     AdmissionController(config_.ports, rounds,
                                         config_.concurrency_factor));
  f.state.assign(workload_.connections.size(), FaultRuntime::ConnState::kActive);
  f.dropped_at.assign(workload_.connections.size(), 0);
  f.hop_admitted.resize(workload_.connections.size());
  for (std::size_t c = 0; c < workload_.connections.size(); ++c) {
    const NetworkConnection& connection = workload_.connections[c];
    f.hop_admitted[c].assign(connection.path.size(), false);
    for (std::size_t h = 0; h < connection.path.size(); ++h) {
      ConnectionDescriptor descriptor =
          hop_descriptor(connection, connection.path[h]);
      f.hop_admitted[c][h] =
          f.admission[connection.path[h].router].try_admit(descriptor);
    }
  }
  f.leak_since.assign(channels_.size(),
                      std::vector<Cycle>(config_.vcs_per_link, kNever));
}

const MmrRouter& MmrNetworkSimulation::router(std::uint32_t index) const {
  MMR_ASSERT(index < routers_.size());
  return routers_[index];
}

std::uint64_t MmrNetworkSimulation::backlog() const {
  std::uint64_t total = 0;
  for (const MmrRouter& router : routers_) total += router.flits_buffered();
  for (const auto& nic : nics_) total += nic->total_queued() - nic->total_sent();
  for (const LinkPipeline& link : nic_links_) total += link.in_flight();
  for (const Channel& channel : channels_) total += channel.pipe.in_flight();
  return total;
}

void MmrNetworkSimulation::deliver(const MmrRouter::Departure& departure,
                                   std::uint32_t hops, Cycle delivered_at) {
  emit_delivery_trace(departure, delivered_at);
  account_delivery(departure, hops, delivered_at);
}

void MmrNetworkSimulation::emit_delivery_trace(
    const MmrRouter::Departure& departure, Cycle delivered_at) {
  MMR_TRACE_EMIT_NOW(trace::deliver_event, departure.input, departure.output,
                     departure.vc, departure.flit.connection,
                     departure.flit.seq,
                     delivered_at - departure.flit.generated_at);
  if (delivered_at < warmup_) return;
  if (fault_) {
    const Flit& flit = departure.flit;
    const bool violated =
        static_cast<double>(delivered_at - flit.generated_at) >
        fault_->injector.plan().qos_deadline_cycles;
    if (violated) {
      MMR_TRACE_EMIT_NOW(trace::deadline_miss_event, departure.input,
                         departure.vc, flit.connection, flit.seq,
                         delivered_at - flit.generated_at);
    }
  }
}

void MmrNetworkSimulation::account_delivery(
    const MmrRouter::Departure& departure, std::uint32_t hops,
    Cycle delivered_at) {
  if (delivered_at < warmup_) return;
  const Flit& flit = departure.flit;
  ++delivered_;
  const double delay_us = config_.time_base().cycles_to_us(
      static_cast<double>(delivered_at - flit.generated_at));
  flit_delay_us_.add(delay_us);
  delivered_hops_.add(static_cast<double>(hops));
  ClassMetrics& cls = classes_[class_of_connection_[flit.connection]];
  ++cls.flits_delivered;
  cls.flit_delay_us.add(delay_us);
  cls.flit_delay_hist.add(delay_us);
  if (flit.last_of_frame &&
      workload_.connections[flit.connection].traffic_class ==
          TrafficClass::kVbr) {
    ++frames_completed_;
    frame_delay_us_.add(delay_us);
  }
  if (fault_) {
    const bool violated =
        static_cast<double>(delivered_at - flit.generated_at) >
        fault_->injector.plan().qos_deadline_cycles;
    if (fault_->injector.any_down()) {
      ++fault_->metrics.delivered_during_fault;
      if (violated) ++fault_->metrics.qos_violations_during_fault;
    } else {
      ++fault_->metrics.delivered_outside_fault;
      if (violated) ++fault_->metrics.qos_violations_outside_fault;
    }
  }
}

void MmrNetworkSimulation::apply_fault_transitions(Cycle now) {
  FaultRuntime& f = *fault_;
  f.went_down.clear();
  f.came_up.clear();
  f.injector.advance_to(now, f.went_down, f.came_up);

  for (const std::uint32_t ch : f.went_down) {
    // Flits on the wire are lost outright; their consumed downstream credits
    // leak until the resync watchdog notices the deficit.
    f.metrics.flits_dropped += channels_[ch].pipe.drain_all();
  }
  if (!f.went_down.empty()) {
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(workload_.connections.size()); ++c) {
      if (f.state[c] != FaultRuntime::ConnState::kActive) continue;
      const std::vector<Hop>& path = workload_.connections[c].path;
      bool crosses_down_link = false;
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const std::int32_t ch = channel_at(path[h].router, path[h].out_port);
        MMR_ASSERT(ch != -1);
        if (f.injector.is_down(static_cast<std::uint32_t>(ch))) {
          crosses_down_link = true;
          break;
        }
      }
      if (!crosses_down_link) continue;
      ++f.metrics.teardowns;
      tear_down(c, now);
      if (try_readmit(c)) {
        ++f.metrics.reroutes;
      } else {
        f.state[c] = FaultRuntime::ConnState::kDropped;
        f.dropped_at[c] = now;
      }
    }
  }
  if (!f.came_up.empty()) {
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(workload_.connections.size()); ++c) {
      if (f.state[c] != FaultRuntime::ConnState::kDropped) continue;
      if (!try_readmit(c)) continue;
      ++f.metrics.readmissions;
      const double outage_us = config_.time_base().cycles_to_us(
          static_cast<double>(now - f.dropped_at[c]));
      f.metrics.recovery_latency_us.add(outage_us);
      f.metrics.recovery_latency_hist.add(outage_us);
    }
  }
}

void MmrNetworkSimulation::tear_down(std::uint32_t connection, Cycle now) {
  FaultRuntime& f = *fault_;
  const NetworkConnection& c = workload_.connections[connection];
  const std::vector<Hop>& path = c.path;

  // Every flushed flit's credit is settled synchronously, so only genuine
  // wire losses are left for the resync watchdog to repair.
  const Hop& first = path.front();
  const std::int32_t nic =
      nic_of_input_[static_cast<std::size_t>(first.router) * config_.ports +
                    first.in_port];
  MMR_ASSERT(nic != -1);
  Nic& source_nic = *nics_[static_cast<std::size_t>(nic)];
  const std::uint32_t on_nic_link =
      nic_links_[static_cast<std::size_t>(nic)].drain_vc(first.vc);
  f.metrics.flits_flushed += on_nic_link;
  for (std::uint32_t i = 0; i < on_nic_link; ++i) {
    source_nic.return_credit(first.vc, now);
  }

  for (std::size_t h = 0; h < path.size(); ++h) {
    const Hop& hop = path[h];
    const std::uint32_t in_vcm =
        routers_[hop.router].drain_vc(hop.in_port, hop.vc);
    f.metrics.flits_flushed += in_vcm;
    for (std::uint32_t i = 0; i < in_vcm; ++i) {
      if (h == 0) {
        source_nic.return_credit(hop.vc, now);
      } else {
        const std::int32_t up =
            upstream_channel_[static_cast<std::size_t>(hop.router) *
                                  config_.ports +
                              hop.in_port];
        MMR_ASSERT(up != -1);
        channels_[static_cast<std::size_t>(up)].credits.release(hop.vc, now);
      }
    }
    if (h + 1 < path.size()) {
      const std::int32_t ch = channel_at(hop.router, hop.out_port);
      MMR_ASSERT(ch != -1);
      Channel& channel = channels_[static_cast<std::size_t>(ch)];
      const std::uint32_t on_wire = channel.pipe.drain_vc(path[h + 1].vc);
      f.metrics.flits_flushed += on_wire;
      for (std::uint32_t i = 0; i < on_wire; ++i) {
        channel.credits.release(path[h + 1].vc, now);
      }
    }
    if (f.hop_admitted[connection][h]) {
      f.admission[hop.router].release(hop_descriptor(c, hop));
      f.hop_admitted[connection][h] = false;
    }
  }
}

bool MmrNetworkSimulation::try_readmit(std::uint32_t connection) {
  FaultRuntime& f = *fault_;
  NetworkConnection& c = workload_.connections[connection];
  const Hop old_first = c.path.front();

  const LinkFilter blocked = [this](std::uint32_t router,
                                    std::uint32_t out_port) {
    const std::int32_t ch = channel_at(router, out_port);
    return ch != -1 &&
           fault_->injector.is_down(static_cast<std::uint32_t>(ch));
  };
  std::vector<Hop> path = compute_path_avoiding(
      workload_.topology, old_first.router, old_first.in_port,
      c.last_hop().router, c.last_hop().out_port, blocked);
  if (path.empty()) return false;  // no usable route around the outage

  // A setup probe needs a fresh VC on every traversed input link (freed VCs
  // are not recycled — a simplification that costs VC space, not
  // correctness, and mirrors how the tables assign VCs in admission order).
  for (const Hop& hop : path) {
    if (tables_[hop.router].on_input_link(hop.in_port).size() >=
        config_.vcs_per_link) {
      return false;
    }
  }

  // All-or-nothing bandwidth admission along the new path.
  std::vector<ConnectionDescriptor> admitted(path.size());
  for (std::size_t h = 0; h < path.size(); ++h) {
    admitted[h] = hop_descriptor(c, path[h]);
    if (!f.admission[path[h].router].try_admit(admitted[h])) {
      for (std::size_t r = 0; r < h; ++r) {
        f.admission[path[r].router].release(admitted[r]);
      }
      return false;
    }
  }

  // Install: table entries, link-scheduler bindings, routing maps.
  for (std::size_t h = 0; h < path.size(); ++h) {
    Hop& hop = path[h];
    const ConnectionId local_id =
        tables_[hop.router].add(admitted[h], config_.vcs_per_link);
    hop.vc = tables_[hop.router].get(local_id).vc;
  }
  const RoundAccounting rounds(config_.flit_cycles_per_round(),
                               config_.time_base());
  for (std::size_t h = 0; h < path.size(); ++h) {
    const Hop& hop = path[h];
    QosParams qos;
    qos.slots_per_round =
        std::max<std::uint32_t>(1, admitted[h].slots_per_round);
    qos.iat_router_cycles =
        rounds.iat_router_cycles(std::max(c.mean_bandwidth_bps, 1.0));
    routers_[hop.router].install_vc(hop.in_port, hop.vc, hop.out_port, qos);

    NextHop& next = next_hop_[hop.router][hop.in_port][hop.vc];
    hop_index_[hop.router][hop.in_port][hop.vc] =
        static_cast<std::uint32_t>(h);
    if (h + 1 < path.size()) {
      const std::int32_t ch = channel_at(hop.router, hop.out_port);
      MMR_ASSERT(ch != -1);
      next.local = false;
      next.channel = static_cast<std::uint32_t>(ch);
      next.downstream_vc = path[h + 1].vc;
    } else {
      next.local = true;
    }
  }

  // Flits still in host memory follow the connection to its new first-hop
  // VC (the source endpoint itself never moves).
  if (path.front().vc != old_first.vc) {
    const std::int32_t nic =
        nic_of_input_[static_cast<std::size_t>(old_first.router) *
                          config_.ports +
                      old_first.in_port];
    MMR_ASSERT(nic != -1);
    nics_[static_cast<std::size_t>(nic)]->move_queue(old_first.vc,
                                                     path.front().vc);
  }

  f.hop_admitted[connection].assign(path.size(), true);
  f.state[connection] = FaultRuntime::ConnState::kActive;
  c.path = std::move(path);
  return true;
}

void MmrNetworkSimulation::credit_resync(Cycle now) {
  FaultRuntime& f = *fault_;
  const FaultPlan& plan = f.injector.plan();
  if (now % plan.resync_period != 0) return;

  for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
    Channel& channel = channels_[ci];
    const VirtualChannelMemory& vcm =
        routers_[channel.to.router].vcm(channel.to.port);
    for (std::uint32_t vc = 0; vc < config_.vcs_per_link; ++vc) {
      // Conservation audit: every buffer slot is either an available
      // credit, a credit travelling back, a flit on the wire, or a flit in
      // the downstream VCM.  Anything missing leaked through a fault.
      const std::uint32_t accounted = audit::credit_accounted_slots(
          channel.credits, channel.pipe, vcm, vc);
      const std::uint32_t capacity = channel.credits.capacity_per_vc();
      MMR_ASSERT_MSG(accounted <= capacity,
                     "credit audit found a surplus: accounting bug");
      Cycle& since = f.leak_since[ci][vc];
      if (accounted == capacity) {
        since = kNever;
        continue;
      }
      if (since == kNever) {
        since = now;
        continue;
      }
      if (now - since < plan.resync_timeout) continue;
      const std::uint32_t missing = capacity - accounted;
      channel.credits.restore(vc, missing);
      f.metrics.credits_restored += missing;
      ++f.metrics.resync_events;
      const double leak_age_us =
          config_.time_base().cycles_to_us(static_cast<double>(now - since));
      f.metrics.recovery_latency_us.add(leak_age_us);
      f.metrics.recovery_latency_hist.add(leak_age_us);
      since = kNever;
    }
  }
}

void MmrNetworkSimulation::step_one() {
  // Engine dispatch: net_threads is a pure execution-strategy knob — the
  // sharded engine is bit-identical to the serial one (tested against
  // metrics, trace bytes and the StateHash sequence), so the choice never
  // changes results, only wall-clock.
  if (config_.net_threads >= 2 && routers_.size() >= 2) {
    ensure_shard_runtime();
    step_one_sharded();
    return;
  }
  step_one_serial();
}

void MmrNetworkSimulation::step_one_serial() {
  const Cycle now = now_;
  const bool measure = now >= warmup_;

  // Arm the tracer for the cycle (see MmrSimulation::step_one); sections
  // below re-stamp the node id so events attribute to the right router.
  trace::Tracer* const cycle_tracer =
      tracer_ != nullptr ? tracer_.get() : trace::current();
  const trace::TraceScope trace_scope(cycle_tracer);
  if (cycle_tracer != nullptr) {
    cycle_tracer->set_now(now);
    cycle_tracer->set_node(0);
  }

  // 0. Outage schedule: link transitions, teardowns, re-admissions.
  if (fault_) apply_fault_transitions(now);

  // 1. Channel housekeeping: returned credits land, in-flight flits arrive.
  FaultTally tally;
  for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
    process_channel_arrivals(static_cast<std::uint32_t>(ci), now,
                             arrival_buffer_, tally);
  }
  // NIC->router links likewise.
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    process_nic_arrivals(static_cast<std::uint32_t>(n), now, arrival_buffer_);
  }

  // 2. Traffic generation into NICs.
  generate_traffic(now);

  // 3. NIC link controllers.
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    if (auto transfer = nics_[n]->select_and_send(now)) {
      nic_links_[n].push(*transfer, now);
    }
  }

  // 4. Every router performs one scheduling cycle (deliveries inline).
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(routers_.size());
       ++r) {
    process_router_cycle(r, now, measure, departure_buffer_, tally,
                         /*deferred=*/nullptr);
  }
  flush_fault_tally(tally);

  // 5. Credit-resync watchdog (periodic conservation audit).
  if (fault_) credit_resync(now);

  if ((now + 1) % (1 << 16) == 0) check_invariants();
  ++now_;
}

void MmrNetworkSimulation::process_channel_arrivals(
    std::uint32_t ci, Cycle now, std::vector<LinkTransfer>& scratch,
    FaultTally& tally) {
  Channel& channel = channels_[ci];
  channel.credits.tick(now);
  scratch.clear();
  channel.pipe.pop_due(now, scratch);
  MMR_TRACE_SET_NODE(channel.to.router);
  for (const LinkTransfer& transfer : scratch) {
    if (fault_) {
      // Both outcomes discard the flit at the receiving router (a corrupt
      // flit fails its CRC there); the consumed downstream credit leaks
      // until the resync watchdog repairs it.
      if (fault_->injector.drop_flit(ci)) {
        ++tally.flits_dropped;
        MMR_TRACE_EVENT(
            trace::fault_event(now, trace::FaultKind::kFlitDrop, ci));
        continue;
      }
      if (fault_->injector.corrupt_flit(ci)) {
        ++tally.flits_corrupted;
        MMR_TRACE_EVENT(
            trace::fault_event(now, trace::FaultKind::kFlitCorrupt, ci));
        continue;
      }
    }
    routers_[channel.to.router].accept(channel.to.port, transfer.vc,
                                       transfer.flit, now);
  }
}

void MmrNetworkSimulation::process_nic_arrivals(
    std::uint32_t n, Cycle now, std::vector<LinkTransfer>& scratch) {
  scratch.clear();
  nic_links_[n].pop_due(now, scratch);
  const PortEndpoint endpoint = nic_endpoints_[n];
  MMR_TRACE_SET_NODE(endpoint.router);
  for (const LinkTransfer& transfer : scratch) {
    routers_[endpoint.router].accept(endpoint.port, transfer.vc,
                                     transfer.flit, now);
  }
}

void MmrNetworkSimulation::generate_traffic(Cycle now) {
  while (!heap_.empty() && heap_.top().first <= now) {
    const std::uint32_t index = heap_.top().second;
    heap_.pop();
    TrafficSource& source = *workload_.sources[index];
    flit_buffer_.clear();
    source.generate(now, flit_buffer_);
    const NetworkConnection& connection = workload_.connections[index];
    const Hop& first = connection.first_hop();
    const std::int32_t nic = nic_of_input_[static_cast<std::size_t>(
                                               first.router) *
                                               config_.ports +
                                           first.in_port];
    MMR_ASSERT(nic != -1);
    MMR_TRACE_SET_NODE(first.router);
    for (const Flit& flit : flit_buffer_) {
      if (flit.generated_at >= warmup_) {
        ++generated_;
        ++classes_[class_of_connection_[flit.connection]].flits_generated;
      }
      if (fault_ &&
          fault_->state[index] == FaultRuntime::ConnState::kDropped) {
        // The source keeps producing (and counts against survival) while
        // the connection waits for re-admission, but nothing is queued: the
        // application has nowhere to send.
        ++fault_->metrics.source_flits_discarded;
        continue;
      }
      nics_[static_cast<std::size_t>(nic)]->deposit(first.vc, flit);
      MMR_TRACE_EVENT(trace::inject_event(now, first.in_port, first.vc,
                                          flit.connection, flit.seq));
    }
    const Cycle next = source.next_emission();
    if (next != kNever) {
      MMR_ASSERT(next > now);
      heap_.emplace(next, index);
    }
  }
}

void MmrNetworkSimulation::process_router_cycle(
    std::uint32_t r, Cycle now, bool measure,
    std::vector<MmrRouter::Departure>& scratch, FaultTally& tally,
    std::vector<PendingDelivery>* deferred) {
  scratch.clear();
  MMR_TRACE_SET_NODE(r);
  routers_[r].step(now, measure, scratch);
  for (const MmrRouter::Departure& departure : scratch) {
    // Return the freed buffer slot to whoever fills this input link.
    const std::int32_t nic =
        nic_of_input_[static_cast<std::size_t>(r) * config_.ports +
                      departure.input];
    if (nic != -1) {
      nics_[static_cast<std::size_t>(nic)]->return_credit(departure.vc, now);
      MMR_TRACE_EVENT(
          trace::credit_return_event(now, departure.input, departure.vc));
    } else {
      // Find the upstream channel: it is the unique channel ending at
      // (r, departure.input).
      const std::int32_t up = upstream_channel_[static_cast<std::size_t>(
                                                    r) *
                                                    config_.ports +
                                                departure.input];
      MMR_ASSERT(up != -1);
      if (fault_ &&
          fault_->injector.lose_credit(static_cast<std::uint32_t>(up))) {
        ++tally.credits_lost;  // the watchdog will restore it
        MMR_TRACE_EVENT(trace::fault_event(
            now, trace::FaultKind::kCreditLoss,
            static_cast<std::uint64_t>(up)));
      } else {
        channels_[static_cast<std::size_t>(up)].credits.release(
            departure.vc, now);
        MMR_TRACE_EVENT(
            trace::credit_return_event(now, departure.input, departure.vc));
      }
    }
    // Forward or deliver.  Sharded stepping defers the delivery accounting
    // (floats must accumulate in serial router order) but emits the trace
    // events here, at their in-stream position.
    const NextHop& next = next_hop_[r][departure.input][departure.vc];
    if (next.local) {
      const std::uint32_t hops =
          hop_index_[r][departure.input][departure.vc] + 1;
      if (deferred == nullptr) {
        deliver(departure, hops, now + 1);
      } else {
        emit_delivery_trace(departure, now + 1);
        deferred->push_back(PendingDelivery{departure, hops});
      }
    } else {
      Channel& channel = channels_[next.channel];
      channel.credits.consume(next.downstream_vc);
      LinkTransfer transfer;
      transfer.flit = departure.flit;
      transfer.vc = next.downstream_vc;
      channel.pipe.push(transfer, now);
    }
  }
}

void MmrNetworkSimulation::flush_fault_tally(const FaultTally& tally) {
  if (!fault_) return;
  fault_->metrics.flits_dropped += tally.flits_dropped;
  fault_->metrics.flits_corrupted += tally.flits_corrupted;
  fault_->metrics.credits_lost += tally.credits_lost;
}

NetworkMetrics MmrNetworkSimulation::run() {
  MMR_ASSERT_MSG(!ran_, "run() may only be called once");
  ran_ = true;
  const Cycle total = config_.total_cycles();
  if (snap_mgr_) return run_managed(total);
  while (now_ < total) step_one();
  check_invariants();
  if (tracer_) tracer_->write_outputs();
  return finalize_metrics();
}

NetworkMetrics MmrNetworkSimulation::run_managed(Cycle total) {
  const auto walk = [this](snapshot::Walker& w) { snap_walk(w); };

  std::optional<snapshot::SignalGuard> signals;
  std::optional<snapshot::CrashScope> crash;
  if (snap_mgr_->spec().on_crash) {
    signals.emplace();
    crash.emplace([this, walk] {
      snap_mgr_->write_checkpoint(now_, walk, "crash", /*nothrow=*/true);
    });
  }

  while (now_ < total) {
    step_one();
    snap_mgr_->after_cycle(now_, walk);
    if (signals && snapshot::SignalGuard::pending() != 0) {
      const int signal_number = snapshot::SignalGuard::consume();
      const std::string path =
          snap_mgr_->write_checkpoint(now_, walk, "signal", /*nothrow=*/true);
      if (tracer_) tracer_->write_outputs();
      snap_mgr_->write_hash_log();
      throw snapshot::Interrupted(signal_number, path);
    }
  }
  check_invariants();
  if (tracer_) tracer_->write_outputs();
  snap_mgr_->write_hash_log();
  return finalize_metrics();
}

std::uint64_t MmrNetworkSimulation::state_hash() {
  snapshot::HashWalker hasher;
  snap_walk(hasher);
  return hasher.digest();
}

void MmrNetworkSimulation::save_checkpoint(const std::string& path) {
  snapshot::Snapshot snap;
  snap.config_digest = snapshot::config_digest(config_);
  snap.cycle = now_;
  snapshot::SaveWalker writer(snap);
  snap_walk(writer);
  snapshot::save_file(path, snap);
}

void MmrNetworkSimulation::restore_checkpoint(const std::string& path) {
  const snapshot::Snapshot snap = snapshot::load_file(path);
  const std::uint64_t digest = snapshot::config_digest(config_);
  if (snap.config_digest != digest)
    throw snapshot::SnapshotError(
        "checkpoint " + path + " was written under a different SimConfig (" +
        std::to_string(snap.config_digest) + " vs " + std::to_string(digest) +
        "); resume requires the identical config and workload");
  snapshot::LoadWalker reader(snap);
  snap_walk(reader);
  reader.finish();
  MMR_ASSERT_MSG(now_ == snap.cycle,
                 "restored clock disagrees with the snapshot header");
}

void MmrNetworkSimulation::snap_walk(snapshot::Walker& w) {
  using snapshot::value;
  const auto walk_hop = [](snapshot::Walker& v, Hop& hop) {
    value(v, hop.router);
    value(v, hop.in_port);
    value(v, hop.out_port);
    value(v, hop.vc);
  };

  w.section("sim");
  value(w, now_);
  value(w, generated_);
  value(w, delivered_);
  value(w, frames_completed_);
  flit_delay_us_.snap(w);
  delivered_hops_.snap(w);
  frame_delay_us_.snap(w);
  // classes_ is sized (and labelled) at construction from the workload; walk
  // the accumulators in place so a restore keeps the labels.
  {
    std::uint64_t count = classes_.size();
    value(w, count);
    if (w.loading())
      MMR_ASSERT_MSG(count == classes_.size(),
                     "network snapshot class count mismatch");
    for (ClassMetrics& c : classes_) c.snap(w);
  }
  {
    auto& heap = snapshot::queue_container(heap_);
    std::uint64_t n = heap.size();
    value(w, n);
    if (w.loading()) heap.assign(static_cast<std::size_t>(n), Emission{});
    for (Emission& emission : heap) {
      value(w, emission.first);
      value(w, emission.second);
    }
  }

  w.section("sources");
  for (const auto& source : workload_.sources) source->snap(w);

  w.section("nics");
  for (const auto& nic : nics_) nic->snap(w);
  for (LinkPipeline& link : nic_links_) link.snap(w);

  w.section("channels");
  for (Channel& channel : channels_) {
    channel.pipe.snap(w);
    channel.credits.snap(w);
  }

  w.section("routers");
  for (MmrRouter& router : routers_) router.snap(w);

  // Tables, routing maps and reserved paths all mutate when fault recovery
  // re-admits a connection on fresh VCs; fault-free they are constants, but
  // walking them unconditionally keeps one walk shape per config.
  w.section("tables");
  for (ConnectionTable& table : tables_) table.snap(w);

  w.section("routing");
  for (auto& per_router : next_hop_) {
    for (auto& per_input : per_router) {
      snapshot::walk_vector(w, per_input,
                            [](snapshot::Walker& v, NextHop& next) {
                              value(v, next.local);
                              value(v, next.channel);
                              value(v, next.downstream_vc);
                            });
    }
  }
  for (auto& per_router : hop_index_) {
    for (auto& per_input : per_router) snapshot::walk_vector_pod(w, per_input);
  }
  for (NetworkConnection& connection : workload_.connections)
    snapshot::walk_vector(w, connection.path, walk_hop);

  if (fault_) {
    w.section("fault");
    FaultRuntime& f = *fault_;
    f.injector.snap(w);
    for (AdmissionController& admission : f.admission) admission.snap(w);
    snapshot::walk_vector_pod(w, f.state);
    snapshot::walk_vector_pod(w, f.dropped_at);
    snapshot::walk_vector(w, f.hop_admitted,
                          [](snapshot::Walker& v, std::vector<bool>& hops) {
                            snapshot::walk_vector_bool(v, hops);
                          });
    snapshot::walk_vector(w, f.leak_since,
                          [](snapshot::Walker& v, std::vector<Cycle>& leaks) {
                            snapshot::walk_vector_pod(v, leaks);
                          });
    f.metrics.snap(w);
  }

  if (tracer_) {
    w.section("trace");
    tracer_->snap(w);
  }
}

NetworkMetrics MmrNetworkSimulation::finalize_metrics() {
  NetworkMetrics metrics;
  metrics.arbiter = config_.arbiter;
  metrics.flit_cycle_us = config_.time_base().flit_cycle_us();
  const double in_capacity = static_cast<double>(local_inputs_) *
                             static_cast<double>(config_.measure_cycles);
  const double out_capacity = static_cast<double>(local_outputs_) *
                              static_cast<double>(config_.measure_cycles);
  metrics.generated_load_measured =
      static_cast<double>(generated_) / in_capacity;
  metrics.delivered_load = static_cast<double>(delivered_) / out_capacity;
  metrics.flits_generated = generated_;
  metrics.flits_delivered = delivered_;
  metrics.backlog_flits = backlog();
  metrics.flit_delay_us = flit_delay_us_;
  metrics.per_class = classes_;
  metrics.delivered_hops = delivered_hops_;
  for (const MmrRouter& router : routers_) {
    metrics.router_utilization.push_back(router.crossbar().utilization());
  }
  metrics.frames_completed = frames_completed_;
  metrics.frame_delay_us = frame_delay_us_;
  if (fault_) {
    for (const FaultRuntime::ConnState state : fault_->state) {
      if (state == FaultRuntime::ConnState::kDropped) {
        ++fault_->metrics.connections_lost;
      }
    }
    metrics.degradation = fault_->metrics;
  }
  return metrics;
}

void MmrNetworkSimulation::check_invariants() const {
  for (const MmrRouter& router : routers_) router.check_invariants();
  for (const auto& nic : nics_) nic->check_invariants();
  for (const Channel& channel : channels_) channel.credits.check_invariants();
}

}  // namespace mmr
