// A network of MMRs (the paper's future work, Section 6).  Every router is
// a full MmrRouter; inter-router channels carry flits with the same
// credit-based flow control used between NIC and router, and a router's
// link scheduler only offers a VC as a candidate when the *downstream* hop
// has buffer space (credit) — so flits are never dropped anywhere.
// Connections follow fixed shortest paths (pipelined circuit switching
// reserves one VC per traversed input link at setup).
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "mmr/core/metrics.hpp"
#include "mmr/fault/fault_injector.hpp"
#include "mmr/network/routing.hpp"
#include "mmr/network/topology.hpp"
#include "mmr/qos/admission.hpp"
#include "mmr/router/nic.hpp"
#include "mmr/router/router.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/traffic/cbr.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr {

namespace trace {
class Tracer;
}  // namespace trace

namespace snapshot {
class SnapshotManager;
class Walker;
}  // namespace snapshot

/// Per-cycle parallel stepping state (shard.cpp); only allocated when
/// `net_threads >= 2` selects the sharded engine.  The deleter is defined
/// out of line so translation units holding an MmrNetworkSimulation never
/// need the complete runtime type.
struct NetworkShardRuntime;
struct NetworkShardRuntimeDeleter {
  void operator()(NetworkShardRuntime* runtime) const;
};

/// A multi-hop connection: class, rates and the reserved path.
struct NetworkConnection {
  ConnectionId id = kInvalidConnection;
  TrafficClass traffic_class = TrafficClass::kCbr;
  double mean_bandwidth_bps = 0.0;
  double peak_bandwidth_bps = 0.0;
  std::vector<Hop> path;  ///< per-hop VCs filled by the workload builder

  [[nodiscard]] const Hop& first_hop() const { return path.front(); }
  [[nodiscard]] const Hop& last_hop() const { return path.back(); }
};

struct NetworkWorkload {
  explicit NetworkWorkload(NetworkTopology topology_)
      : topology(std::move(topology_)) {}

  NetworkTopology topology;
  std::vector<NetworkConnection> connections;            ///< by id
  std::vector<std::unique_ptr<TrafficSource>> sources;   ///< by id

  void check_invariants() const;
};

/// Builds a CBR mix over the network: per local input port, connections are
/// drawn from the spec's classes until `target_load` is reached;
/// destinations are uniform over all local output ports of other placements
/// (uniform-random policy only — balancing is topology-dependent).
[[nodiscard]] NetworkWorkload build_network_cbr_mix(
    const SimConfig& config, const NetworkTopology& topology,
    const CbrMixSpec& spec, Rng& rng);

/// Builds an MPEG-2 VBR mix over the network (the paper's video workload on
/// its future-work topology): per local input port, sequences are drawn
/// uniformly from the library until `target_load` of average bandwidth is
/// placed; the BB peak is workload-wide, as in the single-router builder.
[[nodiscard]] NetworkWorkload build_network_vbr_mix(
    const SimConfig& config, const NetworkTopology& topology,
    const VbrMixSpec& spec, Rng& rng);

struct NetworkMetrics {
  std::string arbiter;
  double flit_cycle_us = 0.0;

  double generated_load_measured = 0.0;  ///< vs local input capacity
  double delivered_load = 0.0;           ///< vs local output capacity
  std::uint64_t flits_generated = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t backlog_flits = 0;

  StreamingStats flit_delay_us;          ///< end-to-end, since generation
  std::vector<ClassMetrics> per_class;
  StreamingStats delivered_hops;         ///< path length of delivered flits
  std::vector<double> router_utilization;

  // VBR application-level metrics (empty for CBR-only workloads).
  std::uint64_t frames_completed = 0;
  StreamingStats frame_delay_us;

  /// Fault-injection accounting; all-zero unless a fault plan was installed.
  DegradationMetrics degradation;

  [[nodiscard]] bool saturated(double deficit_tolerance = 0.995,
                               double delay_threshold_cycles =
                                   kQosDeadlineCycles) const {
    if (static_cast<double>(flits_delivered) <
        static_cast<double>(flits_generated) * deficit_tolerance) {
      return true;
    }
    return !flit_delay_us.empty() &&
           flit_delay_us.mean() > delay_threshold_cycles * flit_cycle_us;
  }

  [[nodiscard]] const ClassMetrics* find_class(const std::string& label) const;
};

class MmrNetworkSimulation {
 public:
  MmrNetworkSimulation(SimConfig config, NetworkWorkload workload);
  ~MmrNetworkSimulation();  ///< out-of-line for the Tracer forward declaration

  /// The event tracer, or nullptr when `trace=` is unset.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }

  /// Runs warmup + measurement; may only be called once.
  NetworkMetrics run();

  void step_one();

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const NetworkTopology& topology() const {
    return workload_.topology;
  }
  [[nodiscard]] const MmrRouter& router(std::uint32_t index) const;
  [[nodiscard]] std::uint64_t backlog() const;

  /// Installs a fault plan (must happen before the first step; overrides any
  /// plan parsed from SimConfig::fault_spec).  An empty plan is a strict
  /// no-op: no fault machinery is instantiated and results stay
  /// bit-identical to a run that never called this.
  void set_fault_plan(FaultPlan plan);

  /// Directed inter-router channels (fault-plan targets are indexed by
  /// channel).  channel_at() maps (router, out_port) to its channel index,
  /// or -1 for local output ports.
  [[nodiscard]] std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  [[nodiscard]] std::int32_t channel_at(std::uint32_t router,
                                        std::uint32_t out_port) const;

  void check_invariants() const;

  // --- checkpoint/restore (mmr/snapshot/, `snap=` override) -----------------
  /// The network's serialization walk — see MmrSimulation::snap_walk.  Covers
  /// routers, channels (wire + credit loops), NICs, per-router connection
  /// tables and routing maps (both mutate under fault recovery), and the
  /// full fault runtime including the injector's RNG streams.
  void snap_walk(snapshot::Walker& w);

  /// 64-bit FNV-1a StateHash of the current network state.
  [[nodiscard]] std::uint64_t state_hash();

  /// Writes an mmr-snap-v1 checkpoint of the current state to `path`.
  void save_checkpoint(const std::string& path);

  /// Overlays a checkpoint onto this freshly constructed simulation; the
  /// (config, workload) must match the saving run.
  void restore_checkpoint(const std::string& path);

  /// The snapshot manager, or nullptr when `snap=` is unset.
  [[nodiscard]] const snapshot::SnapshotManager* snapshot_manager() const {
    return snap_mgr_.get();
  }

 private:
  /// run() with snapshot duties armed (periodic checkpoints and hashes,
  /// crash post-mortems, cooperative SIGINT/SIGTERM shutdown).
  NetworkMetrics run_managed(Cycle total);

  /// The metrics block shared by run() and run_managed().
  [[nodiscard]] NetworkMetrics finalize_metrics();

  /// Where a flit popped from (router, input, vc) goes next.
  struct NextHop {
    bool local = true;            ///< delivered to the attached host
    std::uint32_t channel = 0;    ///< else: channel index...
    std::uint32_t downstream_vc = 0;  ///< ...and VC on the next input link
  };

  /// Directed inter-router channel with its credit loop.
  struct Channel {
    PortEndpoint from;
    PortEndpoint to;
    LinkPipeline pipe;
    CreditManager credits;  ///< upstream view of the downstream VCM

    Channel(PortEndpoint from_, PortEndpoint to_, Cycle link_latency,
            std::uint32_t vcs, std::uint32_t buffer_flits,
            Cycle credit_latency)
        : from(from_),
          to(to_),
          pipe(link_latency),
          credits(vcs, buffer_flits, credit_latency) {}
  };

  /// Everything the fault subsystem needs at runtime.  Only allocated when a
  /// non-empty plan is installed; every fault code path in the simulation is
  /// guarded by `if (fault_)`, so a null pointer means zero behavioural
  /// difference from a fault-free build.
  struct FaultRuntime {
    enum class ConnState : std::uint8_t {
      kActive,   ///< connection has an installed path
      kDropped,  ///< torn down, waiting for a link to come back up
    };

    FaultRuntime(FaultPlan plan, std::uint32_t channels)
        : injector(std::move(plan), channels) {}

    FaultInjector injector;
    std::vector<AdmissionController> admission;  ///< per router
    std::vector<ConnState> state;                ///< per connection
    std::vector<Cycle> dropped_at;               ///< per connection
    /// Per connection, per hop: whether the hop holds a reservation in
    /// `admission` (initial workloads can exceed the admission budgets).
    std::vector<std::vector<bool>> hop_admitted;
    /// Per channel, per VC: when a credit deficit was first observed by the
    /// resync watchdog (kNever = currently balanced).
    std::vector<std::vector<Cycle>> leak_since;
    DegradationMetrics metrics;
    std::vector<std::uint32_t> went_down;  ///< advance_to() scratch
    std::vector<std::uint32_t> came_up;
  };

  /// A host delivery whose accounting is deferred to the cycle barrier
  /// (sharded engine): float accumulators must be updated in serial router
  /// order to stay bit-identical, so workers only queue the departure.
  struct PendingDelivery {
    MmrRouter::Departure departure;
    std::uint32_t hops = 0;
  };

  /// Fault counters a (possibly parallel) phase accumulates locally and
  /// flushes into DegradationMetrics at a deterministic serial point —
  /// integer sums, so the flush order never changes the totals.
  struct FaultTally {
    std::uint64_t flits_dropped = 0;
    std::uint64_t flits_corrupted = 0;
    std::uint64_t credits_lost = 0;
  };

  // --- one simulated cycle, two engines -------------------------------------
  // step_one() dispatches: net_threads <= 1 runs the original serial loop;
  // net_threads >= 2 runs the barrier-per-cycle sharded loop (shard.cpp).
  // Both engines share the per-entity helpers below, so they are
  // bit-identical by construction (and tested to be).
  void step_one_serial();
  void step_one_sharded();
  void ensure_shard_runtime();

  /// Phase 1 for one channel: credit tick, wire arrivals, fault draws.
  void process_channel_arrivals(std::uint32_t ci, Cycle now,
                                std::vector<LinkTransfer>& scratch,
                                FaultTally& tally);
  /// Phase 1b for one NIC link: arrivals into the attached router.
  void process_nic_arrivals(std::uint32_t n, Cycle now,
                            std::vector<LinkTransfer>& scratch);
  /// Phase 2: the global emission heap feeds flits into NICs (serial in
  /// both engines; the heap's storage order is part of the snapshot walk).
  void generate_traffic(Cycle now);
  /// Phases 4+5 for one router: scheduling step, credit returns, forwards.
  /// With `deferred` null, host deliveries are accounted inline (serial
  /// engine); otherwise their trace events are emitted in place and the
  /// accounting is queued for the barrier.
  void process_router_cycle(std::uint32_t r, Cycle now, bool measure,
                            std::vector<MmrRouter::Departure>& scratch,
                            FaultTally& tally,
                            std::vector<PendingDelivery>* deferred);
  void flush_fault_tally(const FaultTally& tally);
  /// Replays per-shard staged trace events into `main` in serial emission
  /// order (span keys), then resets the staging buffers.
  void replay_staged_trace(trace::Tracer& main);

  void deliver(const MmrRouter::Departure& departure, std::uint32_t hops,
               Cycle delivered_at);
  /// The trace half of deliver(): kDeliver (and kDeadlineMiss) events,
  /// emitted at the departure's position in the event stream.
  void emit_delivery_trace(const MmrRouter::Departure& departure,
                           Cycle delivered_at);
  /// The accounting half of deliver(): counters and float accumulators,
  /// no trace emission.
  void account_delivery(const MmrRouter::Departure& departure,
                        std::uint32_t hops, Cycle delivered_at);

  /// Descriptor for one hop of a connection, slots filled exactly as the
  /// constructor's setup walk fills them (release() must subtract what
  /// try_admit() added).
  [[nodiscard]] ConnectionDescriptor hop_descriptor(
      const NetworkConnection& connection, const Hop& hop) const;

  // Fault handling (all no-ops / unreachable when fault_ is null).
  void apply_fault_transitions(Cycle now);
  void tear_down(std::uint32_t connection, Cycle now);
  [[nodiscard]] bool try_readmit(std::uint32_t connection);
  void credit_resync(Cycle now);

  SimConfig config_;
  NetworkWorkload workload_;

  std::vector<MmrRouter> routers_;
  std::vector<Channel> channels_;
  /// Per-router connection tables; kept after construction so re-admission
  /// can register replacement paths.
  std::vector<ConnectionTable> tables_;
  std::unique_ptr<FaultRuntime> fault_;  ///< null = fault-free run
  /// Sharded-engine state (net_threads >= 2); holds no simulated state —
  /// every buffer drains at a barrier — so snapshots and state hashes are
  /// identical across thread counts.
  std::unique_ptr<NetworkShardRuntime, NetworkShardRuntimeDeleter> shard_;
  friend struct NetworkShardRuntime;
  std::unique_ptr<trace::Tracer> tracer_;  ///< set when trace= is present
  std::unique_ptr<snapshot::SnapshotManager> snap_mgr_;  ///< snap= present
  /// (router, out_port) -> channel index or -1 (local).
  std::vector<std::int32_t> channel_of_output_;
  /// NICs on local input ports; -1 elsewhere.
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::int32_t> nic_of_input_;
  std::vector<LinkPipeline> nic_links_;       ///< one per NIC, same indexing
  std::vector<PortEndpoint> nic_endpoints_;   ///< (router, input) per NIC
  /// (router, in_port) -> channel feeding it, or -1 (local / NIC).
  std::vector<std::int32_t> upstream_channel_;
  /// Per (router, input, vc): routing and upstream-credit bookkeeping.
  std::vector<std::vector<std::vector<NextHop>>> next_hop_;
  std::vector<std::vector<std::vector<std::uint32_t>>> hop_index_;

  // Statistics.
  Cycle warmup_;
  std::uint32_t local_inputs_ = 0;
  std::uint32_t local_outputs_ = 0;
  std::vector<std::size_t> class_of_connection_;
  std::vector<ClassMetrics> classes_;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  StreamingStats flit_delay_us_;
  StreamingStats delivered_hops_;
  std::uint64_t frames_completed_ = 0;
  StreamingStats frame_delay_us_;

  using Emission = std::pair<Cycle, std::uint32_t>;
  std::priority_queue<Emission, std::vector<Emission>, std::greater<>> heap_;

  Cycle now_ = 0;
  bool ran_ = false;
  std::vector<Flit> flit_buffer_;
  std::vector<LinkTransfer> arrival_buffer_;
  std::vector<MmrRouter::Departure> departure_buffer_;
};

}  // namespace mmr
