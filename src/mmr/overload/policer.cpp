#include "mmr/overload/policer.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"

namespace mmr::overload {

namespace {

constexpr std::size_t cls_index(TrafficClass cls) {
  return static_cast<std::size_t>(cls);
}

}  // namespace

InjectionPolicer::InjectionPolicer(const ConnectionTable& table,
                                   const SimConfig& config,
                                   const PoliceSpec& spec)
    : spec_(spec),
      buckets_(table.size()),
      policed_per_connection_(table.size(), 0) {
  spec_.validate();
  const double round = static_cast<double>(config.flit_cycles_per_round());
  MMR_ASSERT(round > 0.0);
  for (const ConnectionDescriptor& d : table.all()) {
    Bucket& bucket = buckets_[d.id];
    bucket.cls = static_cast<std::uint8_t>(d.traffic_class);
    bucket.qos = d.is_qos();
    if (!d.is_qos()) continue;
    const double mean_slots = static_cast<double>(d.slots_per_round);
    const double peak_slots = static_cast<double>(d.peak_slots_per_round);
    MMR_ASSERT_MSG(mean_slots >= 1.0 && peak_slots >= mean_slots,
                   "QoS connection admitted without slot reservation");
    bucket.mean_rate = mean_slots / round;
    if (d.traffic_class == TrafficClass::kCbr) {
      bucket.rate = bucket.mean_rate;
      bucket.depth = std::max(2.0, spec_.burst_rounds * mean_slots);
    } else {
      // Envelope admission rule (b) priced: mean plus the concurrency-
      // discounted share of the declared burst headroom.
      bucket.rate = (mean_slots +
                     (peak_slots - mean_slots) / config.concurrency_factor) /
                    round;
      bucket.depth = std::max(2.0, spec_.vbr_burst_rounds * peak_slots);
    }
    bucket.tokens = bucket.depth;  // start with full burst credit
  }
}

double InjectionPolicer::depth_of(const Bucket& bucket) const {
  if (clamp_noncompliant_ && bucket.noncompliant)
    return std::max(2.0, bucket.mean_rate *
                             static_cast<double>(spec_.wd_window == 0
                                                     ? 512
                                                     : spec_.wd_window));
  return bucket.depth;
}

void InjectionPolicer::refill(Bucket& bucket, Cycle now) const {
  MMR_ASSERT(now >= bucket.last_refill);
  // x * 1.0 is IEEE-exact, so an unmarked connection refills bit-identically
  // to a build without the ECN hook.
  const double rate = ((clamp_noncompliant_ && bucket.noncompliant)
                           ? bucket.mean_rate
                           : bucket.rate) *
                      bucket.ecn_factor;
  bucket.tokens = std::min(
      depth_of(bucket),
      bucket.tokens + rate * static_cast<double>(now - bucket.last_refill));
  bucket.last_refill = now;
}

Verdict InjectionPolicer::police(const Flit& flit, Cycle now) {
  MMR_ASSERT(flit.connection < buckets_.size());
  Bucket& bucket = buckets_[flit.connection];
  ClassTally& tally = tallies_[bucket.cls];

  if (!bucket.qos) {
    // Best effort carries no contract; the watchdog may still shed it.
    if (shed_best_effort_) {
      ++tally.shed;
      ++policed_per_connection_[flit.connection];
      return Verdict::kDropped;
    }
    ++tally.conforming;
    return Verdict::kPass;
  }

  refill(bucket, now);

  // A connection with queued penalty traffic must keep arriving behind it,
  // or the per-VC FIFO order would break on release.
  const bool must_queue =
      spec_.policy == OverloadPolicy::kShape && !bucket.penalty.empty();
  if (!must_queue && bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++tally.conforming;
    return Verdict::kPass;
  }

  bucket.noncompliant = true;
  OverloadPolicy policy = spec_.policy;
  if (clamp_noncompliant_) policy = OverloadPolicy::kDrop;

  switch (policy) {
    case OverloadPolicy::kDemote:
      ++tally.demoted;
      ++policed_per_connection_[flit.connection];
      return Verdict::kDemoted;
    case OverloadPolicy::kShape:
      if (bucket.penalty.size() >= spec_.penalty_flits) {
        ++tally.penalty_overflow;
        ++policed_per_connection_[flit.connection];
        return Verdict::kDropped;
      }
      if (bucket.penalty.empty()) shapers_.push_back(flit.connection);
      bucket.penalty.push_back(flit);
      ++penalty_backlog_;
      ++tally.shaped;
      ++policed_per_connection_[flit.connection];
      return Verdict::kShaped;
    case OverloadPolicy::kDrop:
      break;
  }
  ++tally.dropped;
  ++policed_per_connection_[flit.connection];
  return Verdict::kDropped;
}

void InjectionPolicer::release_due(Cycle now, std::vector<Flit>& out) {
  if (shapers_.empty()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < shapers_.size(); ++i) {
    Bucket& bucket = buckets_[shapers_[i]];
    refill(bucket, now);
    while (!bucket.penalty.empty() && bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      out.push_back(bucket.penalty.front());
      bucket.penalty.pop_front();
      --penalty_backlog_;
    }
    if (!bucket.penalty.empty()) shapers_[keep++] = shapers_[i];
  }
  shapers_.resize(keep);
}

void InjectionPolicer::set_rate_factor(ConnectionId id, double factor) {
  MMR_ASSERT(id < buckets_.size());
  MMR_ASSERT_MSG(factor > 0.0 && factor <= 1.0,
                 "ECN rate factor must lie in (0, 1]");
  buckets_[id].ecn_factor = factor;
}

double InjectionPolicer::rate_factor(ConnectionId id) const {
  MMR_ASSERT(id < buckets_.size());
  return buckets_[id].ecn_factor;
}

std::uint32_t InjectionPolicer::noncompliant_connections() const {
  std::uint32_t n = 0;
  for (const Bucket& bucket : buckets_)
    if (bucket.noncompliant) ++n;
  return n;
}

double InjectionPolicer::tokens(ConnectionId id) const {
  MMR_ASSERT(id < buckets_.size());
  return buckets_[id].tokens;
}

void InjectionPolicer::check_invariants() const {
  std::uint64_t queued = 0;
  for (const Bucket& bucket : buckets_) {
    MMR_ASSERT_MSG(bucket.tokens >= 0.0, "policer token bucket went negative");
    MMR_ASSERT_MSG(bucket.penalty.size() <= spec_.penalty_flits,
                   "policer penalty queue exceeded its bound");
    MMR_ASSERT_MSG(bucket.qos || bucket.penalty.empty(),
                   "best-effort connection acquired a penalty queue");
    queued += bucket.penalty.size();
  }
  MMR_ASSERT_MSG(queued == penalty_backlog_,
                 "policer penalty backlog counter out of sync");
  for (std::uint32_t id : shapers_)
    MMR_ASSERT_MSG(!buckets_[id].penalty.empty(),
                   "policer shaper list references an empty penalty queue");
}

void InjectionPolicer::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, buckets_, [](snapshot::Walker& v, Bucket& b) {
    snapshot::value(v, b.tokens);
    snapshot::value(v, b.rate);
    snapshot::value(v, b.mean_rate);
    snapshot::value(v, b.depth);
    snapshot::value(v, b.last_refill);
    snapshot::value(v, b.ecn_factor);
    snapshot::walk_deque(v, b.penalty, snap_flit);
    snapshot::value(v, b.noncompliant);
    snapshot::value(v, b.qos);
    snapshot::value(v, b.cls);
  });
  for (ClassTally& tally : tallies_) {
    snapshot::value(w, tally.conforming);
    snapshot::value(w, tally.dropped);
    snapshot::value(w, tally.demoted);
    snapshot::value(w, tally.shaped);
    snapshot::value(w, tally.penalty_overflow);
    snapshot::value(w, tally.shed);
  }
  snapshot::walk_vector_pod(w, policed_per_connection_);
  snapshot::walk_vector_pod(w, shapers_);
  snapshot::value(w, penalty_backlog_);
  snapshot::value(w, shed_best_effort_);
  snapshot::value(w, clamp_noncompliant_);
}

}  // namespace mmr::overload
