#include "mmr/overload/spec.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "mmr/sim/assert.hpp"

namespace mmr::overload {

const char* to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kDrop: return "drop";
    case OverloadPolicy::kShape: return "shape";
    case OverloadPolicy::kDemote: return "demote";
  }
  return "?";
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

double parse_double(const std::string& value, const std::string& token) {
  char* end = nullptr;
  const double x = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(x))
    throw std::invalid_argument("bad numeric value in overload spec token: " +
                                token);
  return x;
}

std::uint64_t parse_u64(const std::string& value, const std::string& token) {
  std::uint64_t x = 0;
  const auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), x);
  if (ec != std::errc{} || p != value.data() + value.size())
    throw std::invalid_argument("bad integer value in overload spec token: " +
                                token);
  return x;
}

/// Splits "key:value"; throws when there is no colon.
std::pair<std::string, std::string> key_value(const std::string& token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("overload spec token must be key:value: " +
                                token);
  return {token.substr(0, colon), token.substr(colon + 1)};
}

}  // namespace

PoliceSpec PoliceSpec::parse(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("empty police spec (omit police= instead)");
  PoliceSpec parsed;
  bool policy_seen = false;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    if (token == "drop" || token == "shape" || token == "demote") {
      if (policy_seen)
        throw std::invalid_argument("police spec names two policies: " + spec);
      policy_seen = true;
      parsed.policy = token == "drop"    ? OverloadPolicy::kDrop
                      : token == "shape" ? OverloadPolicy::kShape
                                         : OverloadPolicy::kDemote;
      continue;
    }
    const auto [key, value] = key_value(token);
    if (key == "burst") {
      parsed.burst_rounds = parse_double(value, token);
    } else if (key == "vbr_burst") {
      parsed.vbr_burst_rounds = parse_double(value, token);
    } else if (key == "penalty") {
      parsed.penalty_flits = static_cast<std::uint32_t>(parse_u64(value, token));
    } else if (key == "deadline") {
      parsed.qos_deadline_cycles = parse_double(value, token);
    } else if (key == "wd_window") {
      parsed.wd_window = parse_u64(value, token);
    } else if (key == "wd_alpha") {
      parsed.wd_alpha = parse_double(value, token);
    } else if (key == "wd_high") {
      parsed.wd_high = parse_double(value, token);
    } else if (key == "wd_low") {
      parsed.wd_low = parse_double(value, token);
    } else if (key == "wd_escalate") {
      parsed.wd_escalate_after =
          static_cast<std::uint32_t>(parse_u64(value, token));
    } else if (key == "wd_recover") {
      parsed.wd_recover_after =
          static_cast<std::uint32_t>(parse_u64(value, token));
    } else if (key == "wd_pause_limit") {
      parsed.wd_pause_limit = parse_u64(value, token);
    } else {
      throw std::invalid_argument(
          "unknown police spec token '" + token +
          "'; expected drop|shape|demote, burst, vbr_burst, penalty, "
          "deadline, wd_window, wd_alpha, wd_high, wd_low, wd_escalate, "
          "wd_recover, wd_pause_limit");
    }
  }
  if (!policy_seen)
    throw std::invalid_argument(
        "police spec must name a policy (drop|shape|demote): " + spec);
  parsed.validate();
  return parsed;
}

void PoliceSpec::validate() const {
  MMR_ASSERT_MSG(std::isfinite(burst_rounds) && burst_rounds > 0.0,
                 "police burst depth must be positive");
  MMR_ASSERT_MSG(std::isfinite(vbr_burst_rounds) && vbr_burst_rounds > 0.0,
                 "police VBR burst depth must be positive");
  MMR_ASSERT_MSG(penalty_flits >= 1, "shape penalty queue must hold >= 1 flit");
  MMR_ASSERT_MSG(
      std::isfinite(qos_deadline_cycles) && qos_deadline_cycles > 0.0,
      "QoS deadline must be positive");
  MMR_ASSERT_MSG(std::isfinite(wd_alpha) && wd_alpha > 0.0 && wd_alpha <= 1.0,
                 "watchdog EWMA alpha must be in (0, 1]");
  MMR_ASSERT_MSG(std::isfinite(wd_high) && std::isfinite(wd_low) &&
                     wd_low >= 0.0 && wd_high > wd_low,
                 "watchdog watermarks need wd_high > wd_low >= 0 (hysteresis)");
  MMR_ASSERT_MSG(wd_window == 0 || (wd_escalate_after >= 1 &&
                                    wd_recover_after >= 1),
                 "watchdog escalate/recover window counts must be >= 1");
}

RogueSpec RogueSpec::parse(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("empty rogue spec (omit rogue= instead)");
  RogueSpec parsed;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    const auto [key, value] = key_value(token);
    if (key == "frac") {
      parsed.fraction = parse_double(value, token);
    } else if (key == "count") {
      parsed.count = static_cast<std::uint32_t>(parse_u64(value, token));
    } else if (key == "scale") {
      parsed.scale = parse_double(value, token);
    } else if (key == "burst_scale") {
      parsed.burst_scale = parse_double(value, token);
    } else if (key == "burst_period") {
      parsed.burst_period = parse_u64(value, token);
    } else if (key == "burst_len") {
      parsed.burst_len = parse_u64(value, token);
    } else if (key == "seed") {
      parsed.seed = parse_u64(value, token);
    } else if (key == "class") {
      if (value == "any") {
        parsed.classes = Classes::kAny;
      } else if (value == "cbr") {
        parsed.classes = Classes::kCbrOnly;
      } else if (value == "vbr") {
        parsed.classes = Classes::kVbrOnly;
      } else {
        throw std::invalid_argument("rogue class must be any|cbr|vbr, got: " +
                                    value);
      }
    } else {
      throw std::invalid_argument(
          "unknown rogue spec token '" + token +
          "'; expected frac, count, scale, burst_scale, burst_period, "
          "burst_len, seed, class");
    }
  }
  parsed.validate();
  return parsed;
}

void RogueSpec::validate() const {
  MMR_ASSERT_MSG(std::isfinite(fraction) && fraction >= 0.0 && fraction <= 1.0,
                 "rogue fraction must be in [0, 1]");
  MMR_ASSERT_MSG(std::isfinite(scale) && scale >= 1.0,
                 "rogue scale must be >= 1 (1 = compliant)");
  MMR_ASSERT_MSG(std::isfinite(burst_scale) && burst_scale >= 1.0,
                 "rogue burst scale must be >= 1");
  MMR_ASSERT_MSG(burst_period == 0 || burst_len <= burst_period,
                 "rogue burst window longer than its period");
  MMR_ASSERT_MSG(burst_scale == 1.0 || burst_period > 0,
                 "rogue burst scale needs a burst_period");
}

}  // namespace mmr::overload
