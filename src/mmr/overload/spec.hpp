// Overload-protection specs: compact textual configuration for the
// per-connection injection policer (`police=` SimConfig override) and the
// deterministic rogue-source traffic inflater (`rogue=` override), mirroring
// the fault layer's FaultPlan grammar.  Both specs are pure data; an empty
// spec string means the corresponding machinery is never instantiated and
// simulation results stay bit-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "mmr/sim/time.hpp"

namespace mmr::overload {

/// What happens to a flit that exceeds its connection's admitted envelope.
enum class OverloadPolicy : std::uint8_t {
  kDrop,    ///< discard at the NIC injection point
  kShape,   ///< delay in a bounded penalty queue until tokens accrue
  kDemote,  ///< inject, but reclassified to best-effort priority
};

[[nodiscard]] const char* to_string(OverloadPolicy p);

/// Policer + saturation-watchdog configuration (`police=` override).
///
/// Token buckets enforce the admitted contract per QoS connection:
///  * CBR — refill `slots_per_round` per round, depth `burst` rounds of the
///    reservation (contract: the declared constant rate, small phase slack).
///  * VBR — refill at the concurrency-discounted envelope
///    mean + (peak - mean) / concurrency_factor per round, depth
///    `vbr_burst` rounds of the *peak* reservation (contract: sustained mean
///    with bursts up to the declared peak, as admission rule (b) priced it).
/// Best-effort connections have no contract and pass unpoliced (until the
/// watchdog sheds them).
struct PoliceSpec {
  OverloadPolicy policy = OverloadPolicy::kDemote;

  double burst_rounds = 2.0;       ///< CBR bucket depth, rounds of mean slots
  double vbr_burst_rounds = 24.0;  ///< VBR bucket depth, rounds of peak slots
  std::uint32_t penalty_flits = 64;  ///< shape queue bound per connection
  double qos_deadline_cycles = kQosDeadlineCycles;  ///< violation threshold

  // Saturation watchdog (staged degradation; 0 disables it).
  Cycle wd_window = 512;        ///< backlog sample period, cycles
  double wd_alpha = 0.25;       ///< EWMA smoothing of backlog-per-port
  double wd_high = 48.0;        ///< escalate above this backlog/port (flits)
  double wd_low = 12.0;         ///< recover below this backlog/port (flits)
  std::uint32_t wd_escalate_after = 4;  ///< windows over high before +1 stage
  std::uint32_t wd_recover_after = 16;  ///< windows under low before -1 stage
  /// MMU escalation (flow=shared runs): an Xoff pause still open after this
  /// many cycles jumps the watchdog straight to kAlarm.  0 disables.
  Cycle wd_pause_limit = 0;

  /// Parses "drop|shape|demote[,key:value...]", e.g.
  ///   "demote,burst:2,vbr_burst:24,penalty:64,deadline:250,
  ///    wd_window:512,wd_high:48,wd_low:12,wd_pause_limit:20000"
  /// `wd_window:0` disables the watchdog.  Throws std::invalid_argument on
  /// unknown or malformed tokens.
  [[nodiscard]] static PoliceSpec parse(const std::string& spec);

  /// Aborts with a readable message on nonsense combinations.
  void validate() const;
};

/// Rogue-source configuration (`rogue=` override): a deterministic subset of
/// QoS sources is wrapped to inflate past its declared rate.
struct RogueSpec {
  double fraction = 0.25;   ///< fraction of eligible QoS sources gone rogue
  std::uint32_t count = 0;  ///< absolute count; overrides fraction when > 0
  double scale = 3.0;       ///< sustained inflation factor (>= 1)

  // Optional periodic extra bursts on top of the sustained scale.
  double burst_scale = 1.0;  ///< multiplier during burst windows (>= 1)
  Cycle burst_period = 0;    ///< 0 = no bursts
  Cycle burst_len = 0;       ///< window length within each period

  std::uint64_t seed = 0x60609u;  ///< selection + burst-phase stream

  enum class Classes : std::uint8_t { kAny, kCbrOnly, kVbrOnly };
  Classes classes = Classes::kAny;

  /// Parses "frac:0.25,scale:3,count:2,burst_scale:2,burst_period:20000,
  /// burst_len:4000,seed:7,class:cbr|vbr|any".  Throws std::invalid_argument
  /// on unknown or malformed tokens.
  [[nodiscard]] static RogueSpec parse(const std::string& spec);

  void validate() const;
};

}  // namespace mmr::overload
