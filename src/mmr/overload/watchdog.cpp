#include "mmr/overload/watchdog.hpp"

#include "mmr/snapshot/walker.hpp"

#include <cmath>

#include "mmr/sim/assert.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr::overload {

const char* to_string(WatchdogStage s) {
  switch (s) {
    case WatchdogStage::kNormal: return "normal";
    case WatchdogStage::kShedBestEffort: return "shed-be";
    case WatchdogStage::kClampNoncompliant: return "clamp";
    case WatchdogStage::kAlarm: return "alarm";
  }
  return "?";
}

SaturationWatchdog::SaturationWatchdog(const PoliceSpec& spec,
                                       std::uint32_t ports)
    : spec_(spec), ports_(static_cast<double>(ports)) {
  MMR_ASSERT(ports >= 1);
  spec_.validate();
}

void SaturationWatchdog::apply(InjectionPolicer& policer) const {
  policer.set_shed_best_effort(stage_ >= WatchdogStage::kShedBestEffort);
  policer.set_clamp_noncompliant(stage_ >= WatchdogStage::kClampNoncompliant);
}

void SaturationWatchdog::on_cycle(Cycle now, std::uint64_t backlog_flits,
                                  InjectionPolicer& policer) {
  ++cycles_in_stage_[static_cast<std::size_t>(stage_)];
  if (spec_.wd_window == 0) return;
  if ((now + 1) % spec_.wd_window != 0) return;

  const double sample = static_cast<double>(backlog_flits) / ports_;
  ewma_ = seeded_ ? spec_.wd_alpha * sample + (1.0 - spec_.wd_alpha) * ewma_
                  : sample;
  seeded_ = true;

  if (ewma_ > spec_.wd_high) {
    ++over_windows_;
    calm_windows_ = 0;
  } else if (ewma_ < spec_.wd_low) {
    ++calm_windows_;
    over_windows_ = 0;
  } else {
    // Dead band between the watermarks: hold the stage, restart both counts.
    over_windows_ = 0;
    calm_windows_ = 0;
  }

  if (over_windows_ >= spec_.wd_escalate_after &&
      stage_ < WatchdogStage::kAlarm) {
    stage_ = static_cast<WatchdogStage>(static_cast<std::uint8_t>(stage_) + 1);
    over_windows_ = 0;
    ++escalations_;
    if (stage_ == WatchdogStage::kAlarm) ++alarms_;
    apply(policer);
    MMR_TRACE_EVENT(trace::watchdog_event(
        now, static_cast<std::uint8_t>(stage_), /*escalated=*/true,
        static_cast<std::uint64_t>(std::llround(ewma_))));
  } else if (calm_windows_ >= spec_.wd_recover_after &&
             stage_ > WatchdogStage::kNormal) {
    stage_ = static_cast<WatchdogStage>(static_cast<std::uint8_t>(stage_) - 1);
    calm_windows_ = 0;
    ++recoveries_;
    apply(policer);
    MMR_TRACE_EVENT(trace::watchdog_event(
        now, static_cast<std::uint8_t>(stage_), /*escalated=*/false,
        static_cast<std::uint64_t>(std::llround(ewma_))));
  }
}

void SaturationWatchdog::on_mmu_pause(Cycle now, Cycle longest_open_pause,
                                      InjectionPolicer& policer) {
  if (spec_.wd_pause_limit == 0) return;
  if (longest_open_pause == 0) {
    pause_alarmed_ = false;  // every pause closed: re-arm
    return;
  }
  if (pause_alarmed_ || longest_open_pause < spec_.wd_pause_limit) return;

  pause_alarmed_ = true;
  ++pause_alarms_;
  if (stage_ < WatchdogStage::kAlarm) {
    stage_ = WatchdogStage::kAlarm;
    ++alarms_;
    over_windows_ = 0;
    calm_windows_ = 0;
    apply(policer);
  }
  MMR_TRACE_EVENT(trace::watchdog_event(
      now, static_cast<std::uint8_t>(stage_), /*escalated=*/true,
      static_cast<std::uint64_t>(longest_open_pause)));
}

void SaturationWatchdog::snap(snapshot::Walker& w) {
  snapshot::value(w, stage_);
  snapshot::value(w, ewma_);
  snapshot::value(w, seeded_);
  snapshot::value(w, over_windows_);
  snapshot::value(w, calm_windows_);
  snapshot::value(w, escalations_);
  snapshot::value(w, recoveries_);
  snapshot::value(w, alarms_);
  snapshot::value(w, pause_alarms_);
  snapshot::value(w, pause_alarmed_);
  for (Cycle& cycles : cycles_in_stage_) snapshot::value(w, cycles);
}

}  // namespace mmr::overload
