#include "mmr/overload/rogue_apply.hpp"

#include <algorithm>
#include <cmath>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/traffic/rogue.hpp"

namespace mmr::overload {

namespace {

bool eligible(const ConnectionDescriptor& d, RogueSpec::Classes classes) {
  if (!d.is_qos()) return false;
  switch (classes) {
    case RogueSpec::Classes::kAny: return true;
    case RogueSpec::Classes::kCbrOnly:
      return d.traffic_class == TrafficClass::kCbr;
    case RogueSpec::Classes::kVbrOnly:
      return d.traffic_class == TrafficClass::kVbr;
  }
  return false;
}

}  // namespace

std::vector<ConnectionId> apply_rogue(Workload& workload,
                                      const RogueSpec& spec) {
  spec.validate();

  std::vector<ConnectionId> pool;
  for (const ConnectionDescriptor& d : workload.table.all())
    if (eligible(d, spec.classes)) pool.push_back(d.id);

  std::size_t want =
      spec.count > 0
          ? spec.count
          : static_cast<std::size_t>(
                std::llround(spec.fraction * static_cast<double>(pool.size())));
  want = std::min(want, pool.size());
  if (want == 0) return {};

  Rng rng(spec.seed, 0x206u);
  rng.shuffle(pool);
  std::vector<ConnectionId> rogues(pool.begin(),
                                   pool.begin() + static_cast<long>(want));
  std::sort(rogues.begin(), rogues.end());

  for (ConnectionId id : rogues) {
    MMR_ASSERT(id < workload.sources.size());
    const Cycle phase =
        spec.burst_period > 0 ? rng.uniform(spec.burst_period) : 0;
    workload.sources[id] = std::make_unique<RogueSource>(
        std::move(workload.sources[id]), spec.scale, spec.burst_scale,
        spec.burst_period, spec.burst_len, phase);
  }
  return rogues;
}

}  // namespace mmr::overload
