// Per-connection token-bucket policer at the NIC injection point.  Every QoS
// connection is measured against the contract admission control granted it
// (ConnectionDescriptor::slots_per_round / peak_slots_per_round); flits in
// excess of the envelope are dropped, shaped (delayed in a bounded penalty
// queue until tokens accrue), or demoted to best-effort priority, per the
// configured policy.  Best-effort connections have no contract and pass
// freely — until the saturation watchdog orders them shed.
//
// Contracts (see PoliceSpec):
//  * CBR — refill slots_per_round per round; depth = burst rounds of the
//    reservation.  A compliant CBR source emits at its exact declared IAT
//    and is never policed.
//  * VBR — refill mean + (peak - mean) / concurrency_factor slots per round
//    (the concurrency-discounted envelope admission rule (b) priced); depth
//    = vbr_burst rounds of the *peak* reservation, so declared-rate frame
//    bursts (BB injection at the workload peak, SR I-frames) pass while a
//    sustained liar drains the bucket and gets policed.
//
// All state is deterministic; the policer never consults an RNG.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mmr/qos/connection.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr::snapshot {
class Walker;
}

namespace mmr::overload {

/// Outcome of policing one flit at injection.
enum class Verdict : std::uint8_t {
  kPass,     ///< conforming: deposit as-is
  kDemoted,  ///< excess under the demote policy: deposit at BE priority
  kShaped,   ///< excess under the shape policy: held in the penalty queue
  kDropped,  ///< excess under the drop policy, penalty overflow, or shed BE
};

/// Per-traffic-class policing tallies (indexed by TrafficClass).
struct ClassTally {
  std::uint64_t conforming = 0;
  std::uint64_t dropped = 0;   ///< excess discarded (drop policy or clamp)
  std::uint64_t demoted = 0;   ///< excess reclassified to best-effort
  std::uint64_t shaped = 0;    ///< excess delayed via the penalty queue
  std::uint64_t penalty_overflow = 0;  ///< shape queue full: discarded
  std::uint64_t shed = 0;      ///< best-effort dropped by watchdog order
};

class InjectionPolicer {
 public:
  InjectionPolicer(const ConnectionTable& table, const SimConfig& config,
                   const PoliceSpec& spec);

  /// Polices one generated flit (flit.connection selects the bucket).  On
  /// kShaped the policer keeps the flit; all other verdicts leave it with
  /// the caller.
  [[nodiscard]] Verdict police(const Flit& flit, Cycle now);

  /// Appends shaped flits whose tokens have accrued by `now`, in admission
  /// (FIFO per connection, deterministic across connections) order.  Call
  /// once per cycle.
  void release_due(Cycle now, std::vector<Flit>& out);

  // Watchdog controls -------------------------------------------------------
  void set_shed_best_effort(bool on) { shed_best_effort_ = on; }
  void set_clamp_noncompliant(bool on) { clamp_noncompliant_ = on; }
  [[nodiscard]] bool shedding() const { return shed_best_effort_; }
  [[nodiscard]] bool clamping() const { return clamp_noncompliant_; }

  // ECN reaction -------------------------------------------------------------
  /// Scales a connection's refill rate by `factor` in (0, 1] — the token
  /// bucket's contribution to congestion backoff (sources stretch their IATs
  /// via TrafficSource::throttle; the bucket shrinks in step so the shaped
  /// envelope tracks the throttled source instead of policing it).  1.0
  /// restores the admitted contract exactly.
  void set_rate_factor(ConnectionId id, double factor);
  [[nodiscard]] double rate_factor(ConnectionId id) const;

  // Introspection -----------------------------------------------------------
  [[nodiscard]] const PoliceSpec& spec() const { return spec_; }
  [[nodiscard]] const ClassTally& tally(TrafficClass cls) const {
    return tallies_[static_cast<std::size_t>(cls)];
  }
  /// Policed actions (drops + demotions + overflow) per connection.
  [[nodiscard]] const std::vector<std::uint64_t>& policed_per_connection()
      const {
    return policed_per_connection_;
  }
  /// Connections that have ever exceeded their contract.
  [[nodiscard]] std::uint32_t noncompliant_connections() const;
  /// Flits currently held in penalty queues (counts toward backlog).
  [[nodiscard]] std::uint64_t penalty_backlog() const {
    return penalty_backlog_;
  }
  [[nodiscard]] double tokens(ConnectionId id) const;

  void check_invariants() const;

  /// Checkpoint walk: token buckets (penalty flits included), tallies, and
  /// watchdog-applied switches.
  void snap(snapshot::Walker& w);

 private:
  struct Bucket {
    double tokens = 0.0;
    double rate = 0.0;       ///< envelope refill, flits per flit cycle
    double mean_rate = 0.0;  ///< clamped refill, flits per flit cycle
    double depth = 0.0;      ///< burst tolerance, flits
    Cycle last_refill = 0;
    double ecn_factor = 1.0;   ///< ECN backoff scale on the refill rate
    std::deque<Flit> penalty;  ///< shape policy: delayed excess
    bool noncompliant = false;
    bool qos = false;
    std::uint8_t cls = 0;  ///< TrafficClass index
  };

  void refill(Bucket& bucket, Cycle now) const;
  [[nodiscard]] double depth_of(const Bucket& bucket) const;

  PoliceSpec spec_;
  std::vector<Bucket> buckets_;  ///< indexed by ConnectionId
  ClassTally tallies_[3];
  std::vector<std::uint64_t> policed_per_connection_;
  std::vector<std::uint32_t> shapers_;  ///< connections with queued penalty
  std::uint64_t penalty_backlog_ = 0;
  bool shed_best_effort_ = false;
  bool clamp_noncompliant_ = false;
};

}  // namespace mmr::overload
