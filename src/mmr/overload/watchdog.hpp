// Staged saturation watchdog.  Samples the simulation-wide flit backlog once
// per wd_window cycles, smooths backlog-per-port with an EWMA, and walks a
// degradation ladder when the smoothed value stays above the high watermark:
//
//   kNormal -> kShedBestEffort -> kClampNoncompliant -> kAlarm
//
// Each escalation requires wd_escalate_after consecutive over-watermark
// windows; recovery (one stage down) requires wd_recover_after consecutive
// windows below the *low* watermark — the gap between the watermarks plus the
// asymmetric window counts is the hysteresis that prevents stage flapping.
// Stage actions are applied through the InjectionPolicer: stage >= shed turns
// on best-effort shedding, stage >= clamp additionally hard-clamps
// connections that have ever violated their contract to their mean rate.
// kAlarm takes no further traffic action; it is the operator signal.
#pragma once

#include <cstdint>

#include "mmr/overload/policer.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/sim/time.hpp"

namespace mmr::overload {

enum class WatchdogStage : std::uint8_t {
  kNormal = 0,
  kShedBestEffort = 1,
  kClampNoncompliant = 2,
  kAlarm = 3,
};

[[nodiscard]] const char* to_string(WatchdogStage s);

class SaturationWatchdog {
 public:
  SaturationWatchdog(const PoliceSpec& spec, std::uint32_t ports);

  /// True when on_cycle(now, ...) will read the backlog sample — lets the
  /// caller skip computing it on non-window cycles.
  [[nodiscard]] bool wants_sample(Cycle now) const {
    return spec_.wd_window != 0 && (now + 1) % spec_.wd_window == 0;
  }

  /// Call once per simulation cycle with the total in-flight flit backlog
  /// (NIC queues + router buffers + penalty queues; only read on
  /// wants_sample cycles).  Applies stage changes to `policer` (must
  /// outlive this call; never null).
  void on_cycle(Cycle now, std::uint64_t backlog_flits,
                InjectionPolicer& policer);

  /// MMU backpressure escalation (flow=shared runs only): call once per
  /// cycle with the age of the oldest still-open Xoff pause.  A pause held
  /// longer than wd_pause_limit means backpressure is not draining — the
  /// watchdog jumps straight to kAlarm and applies the full ladder (shed +
  /// clamp).  Re-arms once every pause has closed.  wd_pause_limit == 0
  /// disables the check.
  void on_mmu_pause(Cycle now, Cycle longest_open_pause,
                    InjectionPolicer& policer);
  [[nodiscard]] std::uint32_t pause_alarms() const { return pause_alarms_; }

  [[nodiscard]] WatchdogStage stage() const { return stage_; }
  [[nodiscard]] double ewma() const { return ewma_; }
  [[nodiscard]] std::uint32_t escalations() const { return escalations_; }
  [[nodiscard]] std::uint32_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint32_t alarms() const { return alarms_; }
  /// Cycles spent in each stage so far (indexed by WatchdogStage).
  [[nodiscard]] Cycle cycles_in_stage(WatchdogStage s) const {
    return cycles_in_stage_[static_cast<std::size_t>(s)];
  }
  /// Cycles spent in any degraded stage (everything above kNormal).
  [[nodiscard]] Cycle cycles_degraded() const {
    return cycles_in_stage_[1] + cycles_in_stage_[2] + cycles_in_stage_[3];
  }

  /// Checkpoint walk: ladder position, EWMA, hysteresis counters.
  void snap(snapshot::Walker& w);

 private:
  void apply(InjectionPolicer& policer) const;

  PoliceSpec spec_;
  double ports_;
  WatchdogStage stage_ = WatchdogStage::kNormal;
  double ewma_ = 0.0;
  bool seeded_ = false;            ///< first sample initialises the EWMA
  std::uint32_t over_windows_ = 0;  ///< consecutive windows above wd_high
  std::uint32_t calm_windows_ = 0;  ///< consecutive windows below wd_low
  std::uint32_t escalations_ = 0;
  std::uint32_t recoveries_ = 0;
  std::uint32_t alarms_ = 0;
  std::uint32_t pause_alarms_ = 0;
  bool pause_alarmed_ = false;  ///< latched until all pauses clear
  Cycle cycles_in_stage_[4] = {0, 0, 0, 0};
};

}  // namespace mmr::overload
