// Applies a RogueSpec to a built workload: deterministically selects a
// subset of eligible QoS sources and wraps each in a RogueSource inflater.
// Selection and burst phases draw from Rng(spec.seed, ...) — a stream
// independent of the workload's own, so turning rogues on never perturbs the
// generated mix itself.
#pragma once

#include <vector>

#include "mmr/overload/spec.hpp"
#include "mmr/traffic/mix.hpp"

namespace mmr::overload {

/// Wraps the selected sources in place; returns the rogue ConnectionIds in
/// ascending order (empty when the spec selects nothing).
std::vector<ConnectionId> apply_rogue(Workload& workload,
                                      const RogueSpec& spec);

}  // namespace mmr::overload
