#include "mmr/snapshot/manager.hpp"

#include <exception>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/atomic_file.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/snapshot/format.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr::snapshot {

SnapshotManager::SnapshotManager(SnapSpec spec, std::uint64_t config_digest)
    : spec_(std::move(spec)), config_digest_(config_digest) {
  spec_.validate();
}

std::uint64_t SnapshotManager::hash_state(const WalkFn& walk) const {
  HashWalker hasher;
  walk(hasher);
  return hasher.digest();
}

void SnapshotManager::after_cycle(std::uint64_t cycle, const WalkFn& walk) {
  if (spec_.hash_every != 0 && cycle % spec_.hash_every == 0)
    hashes_.emplace_back(cycle, hash_state(walk));
  if (spec_.every != 0 && cycle % spec_.every == 0)
    (void)write_checkpoint(cycle, walk, "", /*nothrow=*/true);
}

std::string SnapshotManager::write_checkpoint(std::uint64_t cycle,
                                              const WalkFn& walk,
                                              const std::string& tag,
                                              bool nothrow) {
  Snapshot snapshot;
  snapshot.config_digest = config_digest_;
  snapshot.cycle = cycle;
  SaveWalker writer(snapshot);
  walk(writer);
  const std::string path = spec_.prefix + (tag.empty() ? "" : "-" + tag) +
                           "-" + std::to_string(cycle) + ".snap";
  try {
    save_file(path, snapshot);
  } catch (const std::exception& error) {
    if (!nothrow) throw;
    log_error("snapshot: checkpoint write failed: ", error.what());
    return "";
  }
  checkpoint_paths_.push_back(path);
  return path;
}

void SnapshotManager::on_alarm_count(std::uint64_t cycle, const WalkFn& walk,
                                     std::uint64_t alarms,
                                     const std::string& trigger) {
  if (alarms <= alarms_seen_) return;
  alarms_seen_ = alarms;
  if (postmortems_written_ >= kMaxPostmortems) return;
  ++postmortems_written_;
  const std::string path =
      write_checkpoint(cycle, walk, trigger, /*nothrow=*/true);
  if (!path.empty())
    log_info("snapshot: post-mortem checkpoint ", path, " (trigger: ",
             trigger, ")");
}

void SnapshotManager::write_hash_log() const {
  if (spec_.hash_out.empty()) return;
  write_file_atomic(spec_.hash_out, [&](std::ostream& out) {
    for (const auto& [cycle, hash] : hashes_)
      out << "{\"cycle\":" << cycle << ",\"hash\":" << hash << "}\n";
  });
}

namespace {

// The assert hook is a bare function pointer; the armed action and the
// displaced hook live in process globals.  One CrashScope is active at a
// time (runs are sequential within a process; the sweep runner's thread
// pool never runs snapshot-armed simulations concurrently).
std::function<void()> g_crash_action;
mmr::detail::AssertHook g_previous_hook = nullptr;
int g_crash_scopes = 0;

void crash_hook() {
  if (g_crash_action) {
    // Move out first: an assert inside the action finds the slot empty.
    const std::function<void()> action = std::move(g_crash_action);
    g_crash_action = nullptr;
    try {
      action();
    } catch (...) {
      // The process is dying on an invariant failure; a post-mortem write
      // error must not mask the original abort.
    }
  }
  if (g_previous_hook != nullptr) g_previous_hook();
}

}  // namespace

CrashScope::CrashScope(std::function<void()> action) {
  MMR_ASSERT_MSG(g_crash_scopes == 0,
                 "nested snapshot CrashScopes are not supported");
  ++g_crash_scopes;
  g_crash_action = std::move(action);
  g_previous_hook = mmr::detail::exchange_assert_hook(&crash_hook);
}

CrashScope::~CrashScope() {
  g_crash_action = nullptr;
  mmr::detail::exchange_assert_hook(g_previous_hook);
  g_previous_hook = nullptr;
  --g_crash_scopes;
}

}  // namespace mmr::snapshot
