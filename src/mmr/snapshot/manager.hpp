// SnapshotManager: the run-loop side of the snapshot subsystem.  Owns the
// SnapSpec policy and performs the periodic duties — StateHash recording,
// periodic checkpoints, post-mortem bundles on watchdog alarms — plus the
// run-end hash log.  The simulation supplies one walk callback; the manager
// never sees simulation types, so both MmrSimulation and
// MmrNetworkSimulation drive it with the same code.
//
// CrashScope arms the MMR_ASSERT hook for the duration of a run: when an
// invariant dies, the registered action writes a post-mortem checkpoint
// before the previously installed hook (the trace layer's flight-recorder
// dump) runs — one crash, one bundle of snapshot + flight dump.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mmr/snapshot/spec.hpp"

namespace mmr::snapshot {

class Walker;

class SnapshotManager {
 public:
  using WalkFn = std::function<void(Walker&)>;

  SnapshotManager(SnapSpec spec, std::uint64_t config_digest);

  [[nodiscard]] const SnapSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t config_digest() const { return config_digest_; }

  /// One StateHash of the current state (also usable ad hoc from tests).
  [[nodiscard]] std::uint64_t hash_state(const WalkFn& walk) const;

  /// Periodic duties after a completed cycle; `cycle` = cycles done so far.
  /// Checkpoint I/O failures are logged, not thrown — a full disk must not
  /// kill a soak that can still finish in memory.
  void after_cycle(std::uint64_t cycle, const WalkFn& walk);

  /// Writes `<prefix>[-<tag>]-<cycle>.snap`; returns the path ("" on I/O
  /// failure when `nothrow`).
  std::string write_checkpoint(std::uint64_t cycle, const WalkFn& walk,
                               const std::string& tag = "",
                               bool nothrow = false);

  /// Post-mortem entry point for watchdog alarms: writes one bundle per
  /// alarm-count increase (capped), tagged with `trigger`.
  void on_alarm_count(std::uint64_t cycle, const WalkFn& walk,
                      std::uint64_t alarms, const std::string& trigger);

  /// Recorded (cycle, hash) sequence so far.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  hash_sequence() const {
    return hashes_;
  }

  /// Writes spec().hash_out as JSONL (atomic); no-op when unset.
  void write_hash_log() const;

  [[nodiscard]] const std::vector<std::string>& checkpoints_written() const {
    return checkpoint_paths_;
  }

 private:
  SnapSpec spec_;
  std::uint64_t config_digest_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hashes_;
  std::vector<std::string> checkpoint_paths_;
  std::uint64_t alarms_seen_ = 0;
  std::uint32_t postmortems_written_ = 0;
};

/// Maximum automatic post-mortem checkpoints per run (watchdog alarms can
/// repeat; one bundle per escalation is plenty).
inline constexpr std::uint32_t kMaxPostmortems = 4;

/// RAII arming of the MMR_ASSERT crash action.  The action runs once, with
/// the assert hook slot already cleared (an assert inside the action cannot
/// recurse), then the previously installed hook (trace flight dump) runs.
class CrashScope {
 public:
  explicit CrashScope(std::function<void()> action);
  ~CrashScope();
  CrashScope(const CrashScope&) = delete;
  CrashScope& operator=(const CrashScope&) = delete;
};

}  // namespace mmr::snapshot
