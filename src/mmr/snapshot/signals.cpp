#include "mmr/snapshot/signals.hpp"

#include <atomic>
#include <csignal>
#include <iostream>

namespace mmr::snapshot {

namespace {

std::atomic<int> g_pending{0};
int g_guards = 0;  ///< nesting depth (main-thread construction only)

#if defined(_WIN32)

using Handler = void (*)(int);
Handler g_prev_int = SIG_DFL;
Handler g_prev_term = SIG_DFL;

extern "C" void mmr_snapshot_signal_handler(int sig) {
  g_pending.store(sig, std::memory_order_relaxed);
  std::signal(sig, &mmr_snapshot_signal_handler);
}

void install() {
  g_prev_int = std::signal(SIGINT, &mmr_snapshot_signal_handler);
  g_prev_term = std::signal(SIGTERM, &mmr_snapshot_signal_handler);
}

void uninstall() {
  std::signal(SIGINT, g_prev_int);
  std::signal(SIGTERM, g_prev_term);
}

#else

struct sigaction g_prev_int;
struct sigaction g_prev_term;

extern "C" void mmr_snapshot_signal_handler(int sig) {
  g_pending.store(sig, std::memory_order_relaxed);
}

void install() {
  struct sigaction action = {};
  action.sa_handler = &mmr_snapshot_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, &g_prev_int);
  sigaction(SIGTERM, &action, &g_prev_term);
}

void uninstall() {
  sigaction(SIGINT, &g_prev_int, nullptr);
  sigaction(SIGTERM, &g_prev_term, nullptr);
}

#endif

}  // namespace

SignalGuard::SignalGuard() {
  if (g_guards++ == 0) install();
}

SignalGuard::~SignalGuard() {
  if (--g_guards == 0) uninstall();
}

int SignalGuard::pending() {
  return g_pending.load(std::memory_order_relaxed);
}

int SignalGuard::consume() {
  return g_pending.exchange(0, std::memory_order_relaxed);
}

int exit_status_for_signal(int signal_number) {
  return 128 + signal_number;
}

Interrupted::Interrupted(int signal_number, std::string checkpoint_path)
    : std::runtime_error(
          std::string("run interrupted by ") +
          (signal_number == SIGINT ? "SIGINT" : "SIGTERM") +
          (checkpoint_path.empty()
               ? std::string("; no checkpoint written")
               : "; checkpoint written to " + checkpoint_path)),
      signal_(signal_number),
      checkpoint_(std::move(checkpoint_path)) {}

int report_interrupted(const Interrupted& stop) {
  std::cout << stop.what() << '\n';
  if (!stop.checkpoint().empty()) {
    std::cout << "resume with snap=resume:" << stop.checkpoint() << '\n';
  }
  return exit_status_for_signal(stop.signal_number());
}

}  // namespace mmr::snapshot
