// Cooperative SIGINT/SIGTERM handling for long runs and bench drivers.
// A SignalGuard installs async-signal-safe handlers that only set an atomic
// flag; run loops poll the flag at cycle boundaries and shut down cleanly
// (flush metrics, write the post-mortem bundle) instead of dying mid-write.
// Guards nest and restore the previous disposition on destruction.
#pragma once

#include <stdexcept>
#include <string>

namespace mmr::snapshot {

class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// Signal number received since the last consume(), without clearing it.
  [[nodiscard]] static int pending();

  /// Returns and clears the pending signal (0 when none arrived).
  static int consume();
};

/// Conventional shell exit status for death-by-signal: 128 + signo
/// (130 for SIGINT, 143 for SIGTERM).
[[nodiscard]] int exit_status_for_signal(int signal_number);

/// Thrown by run loops when a signal interrupted the run after the
/// post-mortem bundle was written; carries what a driver needs to report.
class Interrupted : public std::runtime_error {
 public:
  Interrupted(int signal_number, std::string checkpoint_path);

  [[nodiscard]] int signal_number() const { return signal_; }
  /// Post-mortem checkpoint path ("" when none could be written).
  [[nodiscard]] const std::string& checkpoint() const { return checkpoint_; }

 private:
  int signal_;
  std::string checkpoint_;
};

/// The one-liner a CLI main needs in its catch block: prints the
/// interruption notice (with a resume hint when a post-mortem checkpoint
/// was written) to stdout and returns the 128+signo exit status.
int report_interrupted(const Interrupted& stop);

}  // namespace mmr::snapshot
