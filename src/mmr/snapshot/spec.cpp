#include "mmr/snapshot/spec.hpp"

#include <charconv>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/snapshot/format.hpp"

namespace mmr::snapshot {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& value, const std::string& token) {
  std::uint64_t x = 0;
  const auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), x);
  if (ec != std::errc{} || p != value.data() + value.size())
    throw std::invalid_argument("bad integer value in snap spec token: " +
                                token);
  return x;
}

}  // namespace

SnapSpec SnapSpec::parse(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("empty snap spec (omit snap= instead)");
  SnapSpec parsed;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("snap spec token must be key:value: " +
                                  token);
    const std::string key = token.substr(0, colon);
    const std::string value = token.substr(colon + 1);
    if (key == "every") {
      parsed.every = parse_u64(value, token);
    } else if (key == "hash_every") {
      parsed.hash_every = parse_u64(value, token);
    } else if (key == "prefix") {
      parsed.prefix = value;
    } else if (key == "hash_out") {
      parsed.hash_out = value;
    } else if (key == "resume") {
      parsed.resume = value;
    } else if (key == "crash") {
      const std::uint64_t flag = parse_u64(value, token);
      if (flag > 1)
        throw std::invalid_argument("snap spec crash: must be 0 or 1");
      parsed.on_crash = flag != 0;
    } else {
      throw std::invalid_argument(
          "unknown snap spec token '" + token +
          "'; expected every, hash_every, prefix, hash_out, resume, crash");
    }
  }
  parsed.validate();
  return parsed;
}

void SnapSpec::validate() const {
  MMR_ASSERT_MSG(!prefix.empty(), "snap prefix must not be empty");
  MMR_ASSERT_MSG(hash_out.empty() || hash_every > 0,
                 "snap hash_out: needs hash_every:N > 0");
}

namespace {

void fold_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x00000100000001b3ull;
  }
}

template <typename T>
void fold(std::uint64_t& hash, T scalar) {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "fold structs field-by-field");
  fold_bytes(hash, &scalar, sizeof(scalar));
}

void fold_str(std::uint64_t& hash, const std::string& text) {
  fold(hash, static_cast<std::uint64_t>(text.size()));
  fold_bytes(hash, text.data(), text.size());
}

}  // namespace

std::uint64_t config_digest(const SimConfig& config) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  fold(hash, config.ports);
  fold(hash, config.vcs_per_link);
  fold(hash, config.link_bandwidth_bps);
  fold(hash, config.flit_bits);
  fold(hash, config.phit_bits);
  fold(hash, config.buffer_flits_per_vc);
  fold(hash, config.candidate_levels);
  fold(hash, config.link_latency);
  fold(hash, config.credit_latency);
  fold(hash, config.round_multiple);
  fold(hash, config.concurrency_factor);
  fold(hash, config.priority_scheme);
  fold_str(hash, config.arbiter);
  fold(hash, config.seed);
  fold(hash, config.warmup_cycles);
  fold(hash, config.measure_cycles);
  fold_str(hash, config.fault_spec);
  fold_str(hash, config.police_spec);
  fold_str(hash, config.rogue_spec);
  fold_str(hash, config.flow_spec);
  fold_str(hash, config.trace_spec);
  fold_str(hash, config.qd_spec);
  fold(hash, config.audit_every);
  return hash;
}

void validate_spec(const SimConfig& config) {
  if (config.snap_spec.empty()) return;
  const SnapSpec spec = SnapSpec::parse(config.snap_spec);
  if (spec.resume.empty()) return;
  const Snapshot snapshot = load_file(spec.resume);
  if (snapshot.config_digest != config_digest(config)) {
    throw std::invalid_argument(
        "snapshot " + spec.resume +
        " was captured under a different configuration (config digest "
        "mismatch); resume with the same seed/arbiter/traffic setup");
  }
}

}  // namespace mmr::snapshot
