#include "mmr/snapshot/format.hpp"

#include <cstring>
#include <fstream>

#include "mmr/sim/atomic_file.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr::snapshot {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] const std::uint8_t* take(std::size_t n) {
    if (size_ - pos_ < n)
      throw SnapshotError("snapshot file truncated");
    const std::uint8_t* at = data_ + pos_;
    pos_ += n;
    return at;
  }

  [[nodiscard]] std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    const std::uint8_t* p = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const Snapshot& snapshot) {
  std::vector<std::uint8_t> out;
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));

  std::vector<std::uint8_t> header;
  put_u32(header, kFormatVersion);
  put_u64(header, snapshot.config_digest);
  put_u64(header, snapshot.cycle);
  put_u32(header, static_cast<std::uint32_t>(snapshot.sections.size()));
  out.insert(out.end(), header.begin(), header.end());
  put_u32(out, crc32(header.data(), header.size()));

  for (const Section& section : snapshot.sections) {
    put_u32(out, static_cast<std::uint32_t>(section.name.size()));
    out.insert(out.end(), section.name.begin(), section.name.end());
    put_u64(out, section.data.size());
    put_u32(out, crc32(section.data.data(), section.data.size()));
    out.insert(out.end(), section.data.begin(), section.data.end());
  }
  return out;
}

Snapshot decode(const std::uint8_t* data, std::size_t size) {
  Reader in(data, size);
  const std::uint8_t* magic = in.take(sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("not an mmr-snap-v1 file (bad magic)");

  const std::size_t header_at = in.pos();
  Snapshot snapshot;
  const std::uint32_t version = in.u32();
  if (version != kFormatVersion)
    throw SnapshotError("unsupported mmr-snap version " +
                        std::to_string(version));
  snapshot.config_digest = in.u64();
  snapshot.cycle = in.u64();
  const std::uint32_t section_count = in.u32();
  const std::uint32_t header_crc =
      crc32(data + header_at, in.pos() - header_at);
  if (in.u32() != header_crc)
    throw SnapshotError("snapshot header CRC mismatch");

  snapshot.sections.reserve(section_count);
  for (std::uint32_t s = 0; s < section_count; ++s) {
    Section section;
    const std::uint32_t name_len = in.u32();
    const std::uint8_t* name = in.take(name_len);
    section.name.assign(reinterpret_cast<const char*>(name), name_len);
    const std::uint64_t data_len = in.u64();
    const std::uint32_t data_crc = in.u32();
    const std::uint8_t* payload =
        in.take(static_cast<std::size_t>(data_len));
    if (crc32(payload, static_cast<std::size_t>(data_len)) != data_crc)
      throw SnapshotError("snapshot section '" + section.name +
                          "' CRC mismatch (corrupted file)");
    section.data.assign(payload, payload + data_len);
    snapshot.sections.push_back(std::move(section));
  }
  if (in.remaining() != 0)
    throw SnapshotError("snapshot file has trailing bytes");
  return snapshot;
}

void save_file(const std::string& path, const Snapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = encode(snapshot);
  write_file_atomic(path, [&](std::ostream& out) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  });
}

Snapshot load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open snapshot file: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("reading snapshot failed: " + path);
  return decode(bytes.data(), bytes.size());
}

}  // namespace mmr::snapshot
