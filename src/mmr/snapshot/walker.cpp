#include "mmr/snapshot/walker.hpp"

#include <array>
#include <cstring>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/format.hpp"

namespace mmr::snapshot {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

SaveWalker::SaveWalker(Snapshot& out) : out_(out) {}

void SaveWalker::bytes(void* data, std::size_t size) {
  MMR_ASSERT_MSG(open_, "snap walk wrote bytes before its first section()");
  auto& sink = out_.sections.back().data;
  const auto* src = static_cast<const std::uint8_t*>(data);
  sink.insert(sink.end(), src, src + size);
}

void SaveWalker::section(const char* name) {
  out_.sections.push_back({name, {}});
  open_ = true;
}

LoadWalker::LoadWalker(const Snapshot& in) : in_(in) {}

void LoadWalker::bytes(void* data, std::size_t size) {
  if (section_index_ == 0)
    throw SnapshotError("snapshot walk read bytes before its first section");
  const Section& current = in_.sections[section_index_ - 1];
  if (cursor_ + size > current.data.size())
    throw SnapshotError("snapshot section '" + current.name +
                        "' is shorter than the state walk expects");
  std::memcpy(data, current.data.data() + cursor_, size);
  cursor_ += size;
}

void LoadWalker::section(const char* name) {
  if (section_index_ > 0) {
    const Section& done = in_.sections[section_index_ - 1];
    if (cursor_ != done.data.size())
      throw SnapshotError("snapshot section '" + done.name +
                          "' has trailing bytes the state walk never read");
  }
  if (section_index_ >= in_.sections.size())
    throw SnapshotError(std::string("snapshot is missing section '") + name +
                        "'");
  const Section& next = in_.sections[section_index_];
  if (next.name != name)
    throw SnapshotError("snapshot section order mismatch: expected '" +
                        std::string(name) + "', found '" + next.name + "'");
  ++section_index_;
  cursor_ = 0;
}

void LoadWalker::finish() const {
  if (section_index_ != in_.sections.size())
    throw SnapshotError("snapshot holds sections the state walk never "
                        "visited (config/state mismatch?)");
  if (section_index_ > 0) {
    const Section& last = in_.sections[section_index_ - 1];
    if (cursor_ != last.data.size())
      throw SnapshotError("snapshot section '" + last.name +
                          "' has trailing bytes the state walk never read");
  }
}

void HashWalker::bytes(void* data, std::size_t size) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= src[i];
    hash_ *= kPrime;
  }
}

void HashWalker::section(const char* name) {
  // Fold the section name plus a separator so the walk *structure* is part
  // of the fingerprint, mirroring the file format exactly.
  hash_ ^= 0xFFu;
  hash_ *= kPrime;
  bytes(const_cast<char*>(name), std::strlen(name));
}

}  // namespace mmr::snapshot
