// The mmr-snap-v1 container: a versioned binary file of named, CRC-guarded
// sections produced by one SaveWalker pass.
//
// Layout (all integers little-endian):
//   magic            "mmr-snap-v1\n"          12 bytes
//   u32 version      1
//   u64 config_digest   fingerprint of the SimConfig the state belongs to;
//                       restore refuses a snapshot whose digest differs
//                       (the restore model rebuilds immutable state by
//                       reconstructing the simulation from the same config
//                       and workload, then overlays this file)
//   u64 cycle        simulation cycles completed at capture
//   u32 section_count
//   u32 header_crc   crc32 of the 24 bytes version..section_count
//   per section:
//     u32 name_len, name bytes, u64 data_len, u32 data_crc, data bytes
//
// scripts/snap_lint.py validates the same layout from Python (stdlib only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mmr::snapshot {

inline constexpr char kMagic[12] = {'m', 'm', 'r', '-', 's', 'n',
                                    'a', 'p', '-', 'v', '1', '\n'};
inline constexpr std::uint32_t kFormatVersion = 1;

struct Section {
  std::string name;
  std::vector<std::uint8_t> data;
};

struct Snapshot {
  std::uint64_t config_digest = 0;
  std::uint64_t cycle = 0;
  std::vector<Section> sections;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Snapshot& snapshot);

/// Throws SnapshotError on bad magic / version / CRC / truncation.
[[nodiscard]] Snapshot decode(const std::uint8_t* data, std::size_t size);

/// Atomic write: temp file + rename, so a crash mid-write never leaves a
/// torn snapshot at `path`.  Throws std::runtime_error on I/O failure.
void save_file(const std::string& path, const Snapshot& snapshot);

/// Throws SnapshotError (bad content) or std::runtime_error (I/O).
[[nodiscard]] Snapshot load_file(const std::string& path);

}  // namespace mmr::snapshot
