// One serialization walk, three consumers (ISSUE 8 tentpole).  Every
// stateful component exposes a single `snap(snapshot::Walker&)` method that
// visits its mutable state in a fixed, documented order; the same walk then
// serves
//   * SaveWalker — serialize into the named sections of an mmr-snap-v1
//     Snapshot (mmr/snapshot/format.hpp),
//   * LoadWalker — overlay a decoded Snapshot back onto a freshly
//     constructed simulation (construction is deterministic, so immutable
//     state is rebuilt rather than stored),
//   * HashWalker — fold the identical byte stream into a 64-bit FNV-1a
//     fingerprint (the per-cycle StateHash; hash walk == serialization walk
//     by construction, which is what makes hash divergence a usable
//     first-divergent-cycle oracle).
//
// Walks must be byte-deterministic: structs with padding are visited
// field-by-field (never memcpy'd whole), container walks emit an explicit
// u64 length, and section() marks top-level boundaries.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace mmr::snapshot {

/// Raised on any malformed / truncated / mismatching snapshot input.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE, reflected) over `size` bytes, continuing from `crc`.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t crc = 0);

class Walker {
 public:
  virtual ~Walker() = default;

  /// True for LoadWalker: container walks resize before visiting elements.
  [[nodiscard]] virtual bool loading() const = 0;

  /// Visits `size` raw bytes (write, read, or fold into the hash).
  virtual void bytes(void* data, std::size_t size) = 0;

  /// Opens a named top-level section.  Sections exist so a corrupted file
  /// pinpoints the subsystem (per-section CRCs) and so the hash folds the
  /// walk structure, not just its bytes.
  virtual void section(const char* name) = 0;
};

/// Arithmetic / enum scalar.  bool is one byte; padding never enters.
template <typename T>
void value(Walker& w, T& v) {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "value() takes scalars; walk structs field-by-field");
  w.bytes(&v, sizeof(v));
}

inline void walk_string(Walker& w, std::string& s) {
  std::uint64_t n = s.size();
  value(w, n);
  if (w.loading()) s.resize(static_cast<std::size_t>(n));
  if (n != 0) w.bytes(s.data(), static_cast<std::size_t>(n));
}

/// Vector of padding-free scalars, visited as one byte block.
template <typename T>
void walk_vector_pod(Walker& w, std::vector<T>& v) {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "bulk walks are for scalar element types only");
  std::uint64_t n = v.size();
  value(w, n);
  if (w.loading()) v.resize(static_cast<std::size_t>(n));
  if (n != 0) w.bytes(v.data(), static_cast<std::size_t>(n) * sizeof(T));
}

/// Vector of anything else; `fn(Walker&, T&)` visits one element.
template <typename T, typename Fn>
void walk_vector(Walker& w, std::vector<T>& v, Fn fn) {
  std::uint64_t n = v.size();
  value(w, n);
  if (w.loading()) {
    v.clear();
    v.resize(static_cast<std::size_t>(n));
  }
  for (T& element : v) fn(w, element);
}

/// std::vector<bool> has no contiguous storage; one byte per element.
inline void walk_vector_bool(Walker& w, std::vector<bool>& v) {
  std::uint64_t n = v.size();
  value(w, n);
  if (w.loading()) v.assign(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint8_t b = v[i] ? 1 : 0;
    value(w, b);
    if (w.loading()) v[i] = b != 0;
  }
}

template <typename T, typename Fn>
void walk_deque(Walker& w, std::deque<T>& d, Fn fn) {
  std::uint64_t n = d.size();
  value(w, n);
  if (w.loading()) {
    d.clear();
    d.resize(static_cast<std::size_t>(n));
  }
  for (T& element : d) fn(w, element);
}

/// The container inside a std::priority_queue (standard-mandated protected
/// member `c`).  The raw heap array is deterministic given a deterministic
/// operation sequence, so saving and restoring it verbatim keeps every
/// later pop bit-identical.
template <typename T, typename C, typename Cmp>
[[nodiscard]] C& queue_container(std::priority_queue<T, C, Cmp>& q) {
  struct Access : std::priority_queue<T, C, Cmp> {
    static C& get(std::priority_queue<T, C, Cmp>& queue) {
      return queue.*&Access::c;
    }
  };
  return Access::get(q);
}

// --- the three consumers ---------------------------------------------------

struct Snapshot;  // mmr/snapshot/format.hpp

/// Serializes a walk into named sections.
class SaveWalker final : public Walker {
 public:
  explicit SaveWalker(Snapshot& out);

  [[nodiscard]] bool loading() const override { return false; }
  void bytes(void* data, std::size_t size) override;
  void section(const char* name) override;

 private:
  Snapshot& out_;
  bool open_ = false;
};

/// Overlays a decoded Snapshot back onto live objects.  Section names and
/// every length must match the walk exactly; anything else throws
/// SnapshotError (never silently truncates).
class LoadWalker final : public Walker {
 public:
  explicit LoadWalker(const Snapshot& in);

  [[nodiscard]] bool loading() const override { return true; }
  void bytes(void* data, std::size_t size) override;
  void section(const char* name) override;

  /// Call after the walk: throws if sections or bytes were left unread.
  void finish() const;

 private:
  const Snapshot& in_;
  std::size_t section_index_ = 0;  ///< sections consumed so far
  std::size_t cursor_ = 0;         ///< bytes consumed of the open section
};

/// Folds the walk into a 64-bit FNV-1a fingerprint.
class HashWalker final : public Walker {
 public:
  [[nodiscard]] bool loading() const override { return false; }
  void bytes(void* data, std::size_t size) override;
  void section(const char* name) override;

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  std::uint64_t hash_ = kOffset;
};

}  // namespace mmr::snapshot
