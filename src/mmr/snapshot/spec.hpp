// Textual snapshot configuration, mirroring the trace/overload spec-string
// idiom: `snap=every:50000,prefix:ckpt,hash_every:1000`.
//
// Grammar:  key:value[,key:value...]
//   every:N        write a checkpoint every N completed cycles (0 = never)
//   prefix:P       checkpoint / post-mortem file prefix (default mmr-snap)
//   hash_every:N   record the 64-bit StateHash every N cycles (0 = never)
//   hash_out:PATH  run-end JSONL of the recorded (cycle, hash) sequence
//   resume:PATH    restore this checkpoint before running
//   crash:0|1      post-mortem bundle on MMR_ASSERT / watchdog alarm /
//                  SIGINT / SIGTERM (default 1)
//
// `snap=` unset constructs no snapshot machinery at all; runs are
// bit-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <string>

namespace mmr {
struct SimConfig;
}

namespace mmr::snapshot {

struct SnapSpec {
  std::uint64_t every = 0;       ///< checkpoint period, cycles (0 = off)
  std::uint64_t hash_every = 0;  ///< StateHash period, cycles (0 = off)
  std::string prefix = "mmr-snap";
  std::string hash_out;  ///< "" = keep the sequence in memory only
  std::string resume;    ///< "" = fresh start
  bool on_crash = true;

  /// Parses the grammar above; throws std::invalid_argument on bad input.
  static SnapSpec parse(const std::string& spec);

  /// Aborts with a readable message when a field combination is nonsense.
  void validate() const;
};

/// FNV-1a fingerprint over every SimConfig field that shapes simulation
/// behaviour — snap_spec itself excluded (snapshotting never changes
/// results, so a run may be resumed under a different snap policy).
/// Restore refuses a snapshot whose digest differs from the live config's:
/// the restore model rebuilds immutable state by reconstructing the
/// simulation from the same (config, workload), then overlays the file.
[[nodiscard]] std::uint64_t config_digest(const SimConfig& config);

/// CLI fail-fast helper for binary mains: parses `config.snap_spec` and, for
/// `resume:`, loads the checkpoint and checks its config digest — so bad
/// user input surfaces as a clean `error: ...` exit instead of an uncaught
/// throw at simulation construction.  No-op when the spec is unset.  Throws
/// std::invalid_argument (grammar / digest) or std::runtime_error (I/O,
/// corrupt container).
void validate_spec(const SimConfig& config);

}  // namespace mmr::snapshot
