#include "mmr/traffic/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mmr/sim/atomic_file.hpp"
#include "mmr/sim/log.hpp"

namespace mmr {

namespace {

std::string strip(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::uint64_t parse_bits(const std::string& cell, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long bits = std::stoull(cell, &used);
    if (used != cell.size() || bits == 0) throw std::invalid_argument(cell);
    return bits;
  } catch (const std::exception&) {
    throw std::invalid_argument("trace line " + std::to_string(line) +
                                ": bad frame size '" + cell + "'");
  }
}

}  // namespace

void write_trace_csv(std::ostream& out, const MpegTrace& trace) {
  out << "frame,type,bits\n";
  for (std::uint32_t f = 0; f < trace.frames(); ++f) {
    out << f << ',' << to_string(trace.frame_type(f)) << ','
        << trace.frame_bits[f] << '\n';
  }
}

MpegTrace read_trace_csv(std::istream& in, const std::string& name) {
  MpegTrace trace;
  trace.sequence = name;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = strip(line);
    if (text.empty() || text[0] == '#') continue;
    // Skip a header row (any row whose last field is not numeric).
    const auto comma = text.find_last_of(',');
    const std::string last =
        strip(comma == std::string::npos ? text : text.substr(comma + 1));
    if (line_number == 1 && !last.empty() &&
        (last.find_first_not_of("0123456789") != std::string::npos)) {
      continue;
    }
    trace.frame_bits.push_back(parse_bits(last, line_number));
  }
  if (trace.frame_bits.empty()) {
    throw std::invalid_argument("trace '" + name + "' contains no frames");
  }
  return trace;
}

MpegTrace read_trace_lines(std::istream& in, const std::string& name) {
  MpegTrace trace;
  trace.sequence = name;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = strip(line);
    if (text.empty() || text[0] == '#') continue;
    trace.frame_bits.push_back(parse_bits(text, line_number));
  }
  if (trace.frame_bits.empty()) {
    throw std::invalid_argument("trace '" + name + "' contains no frames");
  }
  return trace;
}

void save_trace_csv(const std::string& path, const MpegTrace& trace) {
  // Atomic (temp + rename): a run killed mid-write never leaves a torn
  // trace file that a later run would silently load.
  write_file_atomic(path,
                    [&](std::ostream& out) { write_trace_csv(out, trace); });
}

MpegTrace load_trace(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read trace file: " + path);
  // Sniff the format from the first non-empty line.
  const auto start = in.tellg();
  std::string first;
  while (std::getline(in, first)) {
    if (!strip(first).empty()) break;
  }
  in.clear();
  in.seekg(start);
  if (strip(first).find(',') != std::string::npos) {
    return read_trace_csv(in, name);
  }
  return read_trace_lines(in, name);
}

std::optional<MpegTrace> try_load_trace(const std::string& path,
                                        const std::string& name,
                                        std::string* diagnostic) {
  try {
    return load_trace(path, name);
  } catch (const std::exception& error) {
    const std::string message =
        "skipping trace '" + path + "': " + error.what();
    log_error(message);
    if (diagnostic != nullptr) *diagnostic = message;
    return std::nullopt;
  }
}

}  // namespace mmr
