// Rogue-source wrapper: decorates any TrafficSource so that it emits *more*
// flits than its admitted contract declares — a tenant that lies to
// admission control.  The inflation is deterministic: a sustained scale
// factor plus optional periodic burst windows, realised with a fractional
// accumulator (no RNG in the data path), so overload experiments replay
// bit-identically for a fixed configuration.
//
// The wrapper renumbers outgoing flit sequence numbers (the per-VC FIFO
// invariant demands strictly increasing seq per connection) and keeps the
// inner source's frame structure intact: extra flits are emitted *before*
// the frame's closing flit so `last_of_frame` still closes it.
// `mean_bps()` keeps reporting the *declared* rate — the whole point is that
// the source lies about its envelope.
#pragma once

#include <memory>

#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

class RogueSource final : public TrafficSource {
 public:
  /// Emits `scale` x the inner source's flits, sustained; during windows
  /// [phase + k*burst_period, phase + k*burst_period + burst_len) the factor
  /// is scale * burst_scale.  scale, burst_scale >= 1; burst_period == 0
  /// disables bursts.
  RogueSource(std::unique_ptr<TrafficSource> inner, double scale,
              double burst_scale = 1.0, Cycle burst_period = 0,
              Cycle burst_len = 0, Cycle phase = 0);

  [[nodiscard]] ConnectionId connection() const override {
    return inner_->connection();
  }
  [[nodiscard]] Cycle next_emission() const override {
    return inner_->next_emission();
  }
  void generate(Cycle now, std::vector<Flit>& out) override;
  /// The *declared* (contracted) rate, not the inflated one.
  [[nodiscard]] double mean_bps() const override { return inner_->mean_bps(); }
  // throttle() deliberately keeps the base-class no-op: a rogue endpoint
  // ignores ECN congestion marks just like it lies to admission control,
  // leaving containment to the policer and the MMU's lossy-class drops.
  void snap(snapshot::Walker& w) override;

  [[nodiscard]] const TrafficSource& inner() const { return *inner_; }
  [[nodiscard]] double scale() const { return scale_; }
  /// Flits emitted beyond what the inner source produced.
  [[nodiscard]] std::uint64_t excess_emitted() const { return excess_; }

  /// The inflation factor in effect at `now`.
  [[nodiscard]] double factor_at(Cycle now) const;

 private:
  std::unique_ptr<TrafficSource> inner_;
  double scale_;
  double burst_scale_;
  Cycle burst_period_;
  Cycle burst_len_;
  Cycle phase_;

  double surplus_ = 0.0;   ///< fractional extra-flit accumulator
  std::uint64_t seq_ = 0;  ///< renumbered outgoing sequence
  std::uint64_t excess_ = 0;
  std::vector<Flit> scratch_;
};

}  // namespace mmr
