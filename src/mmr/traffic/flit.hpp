// Flit: the flow-control unit.  Flits are large (4096 bits by default) and
// forwarded synchronously through the crossbar; phit-level pipelining hides
// their serialization latency, so the engine treats one flit transfer as one
// scheduling cycle.
#pragma once

#include <cstdint>

#include "mmr/qos/connection.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

struct Flit {
  ConnectionId connection = kInvalidConnection;
  std::uint64_t seq = 0;       ///< per-connection sequence number
  std::uint32_t frame = 0;     ///< video frame (VBR) / message (BE) index
  bool last_of_frame = false;  ///< closes its frame / message
  Cycle generated_at = 0;      ///< when the source emitted this flit
  Cycle frame_origin = 0;      ///< when its frame was generated (application
                               ///< data unit boundary); == generated_at for
                               ///< CBR and best-effort traffic
  bool demoted = false;        ///< policed excess: scheduled at best-effort
                               ///< priority regardless of the VC's class
};

/// Checkpoint walk of one Flit.  Field-by-field: the struct has padding, so
/// a whole-struct byte walk would fold indeterminate bytes into the hash.
void snap_flit(snapshot::Walker& w, Flit& flit);

/// Interface implemented by every traffic generator.  Sources are pulled by
/// the engine: `next_emission()` says when the source has something to emit;
/// `generate(now, out)` appends every flit due at or before `now` (in
/// emission order) and advances the emission clock.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  [[nodiscard]] virtual ConnectionId connection() const = 0;

  /// Cycle of the next flit emission, or kNever for an exhausted source.
  [[nodiscard]] virtual Cycle next_emission() const = 0;

  virtual void generate(Cycle now, std::vector<Flit>& out) = 0;

  /// Long-run average offered bandwidth (bps) — used for load accounting.
  [[nodiscard]] virtual double mean_bps() const = 0;

  /// ECN-style congestion signal: scale the injection rate by `factor` in
  /// (0, 1].  Default is a no-op; rate-based sources stretch their
  /// inter-arrival times, and deliberately non-reactive sources (rogues)
  /// keep the default to model endpoints that ignore congestion marks.
  virtual void throttle(double factor) { (void)factor; }

  /// Checkpoint walk of the source's mutable state (emission clock, sequence
  /// counters, RNG position).  Every production source overrides this; the
  /// default no-op exists for stateless test doubles only.
  virtual void snap(snapshot::Walker& w) { (void)w; }
};

}  // namespace mmr
