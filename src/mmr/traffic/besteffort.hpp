// Best-effort traffic: the MMR forwards non-multimedia messages with Virtual
// Cut-Through switching using leftover bandwidth.  Modelled as Poisson
// message arrivals with geometrically distributed message lengths; a
// message's flits are enqueued together (the host writes the whole message
// into the NIC).
#pragma once

#include "mmr/sim/rng.hpp"
#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

class BestEffortSource final : public TrafficSource {
 public:
  /// `mean_bps` long-run offered rate; `mean_message_flits` average message
  /// length (geometric, >= 1).
  BestEffortSource(ConnectionId connection, double mean_bps,
                   double mean_message_flits, TimeBase time_base, Rng rng);

  [[nodiscard]] ConnectionId connection() const override { return connection_; }
  [[nodiscard]] Cycle next_emission() const override;
  void generate(Cycle now, std::vector<Flit>& out) override;
  [[nodiscard]] double mean_bps() const override { return mean_bps_; }
  void snap(snapshot::Walker& w) override;

 private:
  void schedule_next_message();

  ConnectionId connection_;
  double mean_bps_;
  double mean_message_flits_;
  double mean_gap_cycles_;  ///< mean inter-message gap
  Rng rng_;
  double next_time_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint32_t message_index_ = 0;
};

}  // namespace mmr
