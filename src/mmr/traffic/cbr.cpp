#include "mmr/traffic/cbr.hpp"

#include <cmath>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

CbrSource::CbrSource(ConnectionId connection, double bps, TimeBase time_base,
                     double phase_cycles)
    : connection_(connection),
      bps_(bps),
      iat_cycles_(time_base.link_bandwidth_bps() / bps),
      next_time_(phase_cycles) {
  MMR_ASSERT(bps > 0.0);
  MMR_ASSERT_MSG(bps <= time_base.link_bandwidth_bps(),
                 "a CBR connection cannot exceed the link bandwidth");
  MMR_ASSERT(phase_cycles >= 0.0);
}

Cycle CbrSource::next_emission() const {
  return static_cast<Cycle>(std::ceil(next_time_));
}

void CbrSource::generate(Cycle now, std::vector<Flit>& out) {
  while (next_emission() <= now) {
    Flit flit;
    flit.connection = connection_;
    flit.seq = seq_++;
    flit.frame = 0;
    flit.last_of_frame = true;  // each CBR flit is its own data unit
    flit.generated_at = next_emission();
    flit.frame_origin = flit.generated_at;
    out.push_back(flit);
    // x / 1.0 is IEEE-exact, so an unthrottled source stays bit-identical
    // to one built without the ECN hook.
    next_time_ += iat_cycles_ / throttle_;
  }
}

void CbrSource::throttle(double factor) {
  MMR_ASSERT(factor > 0.0 && factor <= 1.0);
  throttle_ = factor;
}

void CbrSource::snap(snapshot::Walker& w) {
  snapshot::value(w, next_time_);
  snapshot::value(w, throttle_);
  snapshot::value(w, seq_);
}

}  // namespace mmr
