// Workload construction: turns a target offered load into a set of admitted
// connections plus their traffic sources, the way the paper's experiments
// are set up — random mixes of CBR classes, or MPEG-2 VBR connections with
// random destinations and random GOP alignment, per input link.
#pragma once

#include <memory>
#include <vector>

#include "mmr/qos/admission.hpp"
#include "mmr/qos/connection.hpp"
#include "mmr/sim/config.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/traffic/cbr.hpp"
#include "mmr/traffic/vbr.hpp"

namespace mmr {

/// A complete workload: the connection table plus one source per connection
/// (indexed by ConnectionId).
struct Workload {
  explicit Workload(std::uint32_t ports) : table(ports) {}

  ConnectionTable table;
  std::vector<std::unique_ptr<TrafficSource>> sources;

  /// Mean generated load fraction, averaged over input links.
  [[nodiscard]] double generated_load(const TimeBase& time_base) const;
  /// Mean generated load fraction of one input link.
  [[nodiscard]] double generated_load_on_input(std::uint32_t link,
                                               const TimeBase& time_base) const;
  [[nodiscard]] std::size_t connections() const { return sources.size(); }

  void check_invariants() const;
};

/// How connection destinations are drawn.  The paper draws them uniformly at
/// random; with few ports a single unlucky draw can overload one output link
/// and dominate a sweep point, so the benches default to kBalanced — each new
/// connection goes to the currently least-loaded output, with random
/// tie-breaks (still random, but stratified).
enum class DestinationPolicy : std::uint8_t { kUniformRandom, kBalanced };

struct CbrMixSpec {
  double target_load = 0.5;  ///< per-input-link fraction of link bandwidth
  std::vector<CbrClass> classes = {kCbrLow, kCbrMedium, kCbrHigh};
  std::vector<double> class_weights = {1.0, 1.0, 1.0};
  DestinationPolicy destinations = DestinationPolicy::kUniformRandom;
  /// >= 0 pins every connection of this mix onto that output link,
  /// overriding `destinations` — the incast pattern the MMU benches lean on
  /// (many inputs converging on one hot output).
  std::int32_t hot_output = -1;
  /// When true, connections failing the CAC test are dropped (the paper's
  /// sweeps push load to 100%, which CBR admission permits).  Admission is
  /// scoped to one add_* call: it does not see reservations made by earlier
  /// calls on the same workload.
  bool enforce_admission = false;
};

struct VbrMixSpec {
  double target_load = 0.5;
  InjectionModel model = InjectionModel::kSmoothRate;
  std::uint32_t trace_gops = 8;  ///< realised trace length (repeats)
  DestinationPolicy destinations = DestinationPolicy::kUniformRandom;
  bool enforce_admission = false;
};

struct BestEffortSpec {
  double load = 0.1;  ///< per-input-link fraction
  std::uint32_t connections_per_link = 4;
  double mean_message_flits = 8.0;
};

/// Adds the paper's CBR workload to `workload`: per input link, connections
/// are drawn from `classes` by weight until `target_load` of *additional*
/// bandwidth has been placed; destinations per `destinations` policy; each
/// source gets a random phase.
///
/// Note on RNG streams: the builders derive per-link child streams from the
/// *identity* of `rng` (not its position), so two add_cbr_mix calls with the
/// same Rng object would draw identical mixes — pass distinct streams when
/// layering several mixes of the same kind.
void add_cbr_mix(Workload& workload, const SimConfig& config,
                 const CbrMixSpec& spec, Rng& rng);

/// Adds the paper's VBR workload to `workload`: per input link, sequences
/// are drawn uniformly from the MPEG-2 library until `target_load` of
/// additional average bandwidth has been placed; every connection gets its
/// own realised trace and a random alignment within one GOP time.  The BB
/// peak rate is the workload-wide largest frame / frame period, as the
/// paper specifies.
void add_vbr_mix(Workload& workload, const SimConfig& config,
                 const VbrMixSpec& spec, Rng& rng);

/// Adds best-effort background connections to an existing workload.
void add_best_effort(Workload& workload, const SimConfig& config,
                     const BestEffortSpec& spec, Rng& rng);

/// Convenience single-mix constructors.
[[nodiscard]] Workload build_cbr_mix(const SimConfig& config,
                                     const CbrMixSpec& spec, Rng& rng);
[[nodiscard]] Workload build_vbr_mix(const SimConfig& config,
                                     const VbrMixSpec& spec, Rng& rng);

}  // namespace mmr
