// MPEG trace import/export.  The paper drove its experiments from real
// MPEG-2 trace files; this module reads the two common interchange formats
// so real traces can replace the synthetic generator:
//  * "lines" format (classic trace archives): one frame size per line, in
//    bits; '#' comments and blank lines ignored.
//  * CSV format (what the fig6 bench emits): header `frame,type,bits` or
//    any CSV whose last column is the frame size in bits.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "mmr/traffic/mpeg.hpp"

namespace mmr {

/// Writes `frame,type,bits` CSV (types follow the GOP pattern).
void write_trace_csv(std::ostream& out, const MpegTrace& trace);

/// Reads the CSV format back.  Throws std::invalid_argument on malformed
/// rows or an empty trace.
[[nodiscard]] MpegTrace read_trace_csv(std::istream& in,
                                       const std::string& name);

/// Reads the one-size-per-line archive format (bits per frame).
[[nodiscard]] MpegTrace read_trace_lines(std::istream& in,
                                         const std::string& name);

/// File helpers; throw std::runtime_error when the file cannot be opened.
void save_trace_csv(const std::string& path, const MpegTrace& trace);
[[nodiscard]] MpegTrace load_trace(const std::string& path,
                                   const std::string& name);

/// Recoverable variant of load_trace for batch loaders: a missing,
/// malformed or truncated trace yields std::nullopt instead of terminating
/// the caller.  The diagnostic is logged (log_error) and, when `diagnostic`
/// is non-null, also stored there so callers can report which file of a
/// batch was skipped and why.
[[nodiscard]] std::optional<MpegTrace> try_load_trace(
    const std::string& path, const std::string& name,
    std::string* diagnostic = nullptr);

}  // namespace mmr
