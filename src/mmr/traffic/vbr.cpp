#include "mmr/traffic/vbr.hpp"

#include <cmath>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

const char* to_string(InjectionModel m) {
  switch (m) {
    case InjectionModel::kBackToBack: return "BB";
    case InjectionModel::kSmoothRate: return "SR";
  }
  return "?";
}

VbrSource::VbrSource(ConnectionId connection, MpegTrace trace,
                     InjectionModel model, TimeBase time_base, double peak_bps,
                     double phase_cycles, std::uint32_t start_frame)
    : connection_(connection),
      trace_(std::move(trace)),
      model_(model),
      flit_bits_(time_base.flit_bits()),
      period_cycles_(time_base.seconds_to_cycles(kFramePeriodSeconds)),
      peak_iat_cycles_(time_base.link_bandwidth_bps() / peak_bps),
      phase_cycles_(phase_cycles),
      start_frame_(start_frame),
      mean_bps_(trace_.mean_bps()) {
  MMR_ASSERT(!trace_.frame_bits.empty());
  MMR_ASSERT(peak_bps > 0.0);
  MMR_ASSERT_MSG(peak_bps <= time_base.link_bandwidth_bps(),
                 "peak injection rate cannot exceed the link bandwidth");
  MMR_ASSERT_MSG(peak_bps + 1e-9 >= trace_.peak_bps(),
                 "BB peak must fit the largest frame in one frame period");
  MMR_ASSERT(phase_cycles >= 0.0);
  MMR_ASSERT_MSG(phase_cycles < period_cycles_,
                 "boundary phase must stay below one frame period; use "
                 "start_frame for whole-frame alignment");
  advance_frame();  // prime the first frame's cursor
}

std::uint32_t VbrSource::frame_flits(std::uint32_t index) const {
  const std::uint64_t bits =
      trace_.frame_bits[(start_frame_ + index) % trace_.frames()];
  const auto flits = static_cast<std::uint32_t>(
      (bits + flit_bits_ - 1) / flit_bits_);
  return flits == 0 ? 1u : flits;
}

double VbrSource::frame_boundary(std::uint32_t index) const {
  return phase_cycles_ + static_cast<double>(index) * period_cycles_;
}

void VbrSource::advance_frame() {
  flits_this_frame_ = frame_flits(frame_index_);
  flit_in_frame_ = 0;
  switch (model_) {
    case InjectionModel::kBackToBack:
      iat_this_frame_ = peak_iat_cycles_;
      break;
    case InjectionModel::kSmoothRate:
      iat_this_frame_ = period_cycles_ / flits_this_frame_;
      break;
  }
  const double boundary = frame_boundary(frame_index_);
  // A throttled frame may overrun its period; the next frame then starts
  // where the stretched one ended rather than bursting to catch up.  The
  // unthrottled path always takes the boundary, bit-identical to before.
  next_time_ = (throttle_ != 1.0 && next_time_ > boundary) ? next_time_
                                                           : boundary;
}

Cycle VbrSource::next_emission() const {
  return static_cast<Cycle>(std::ceil(next_time_));
}

void VbrSource::generate(Cycle now, std::vector<Flit>& out) {
  while (next_emission() <= now) {
    Flit flit;
    flit.connection = connection_;
    flit.seq = seq_++;
    flit.frame = frame_index_;
    flit.last_of_frame = (flit_in_frame_ + 1 == flits_this_frame_);
    flit.generated_at = next_emission();
    flit.frame_origin =
        static_cast<Cycle>(std::ceil(frame_boundary(frame_index_)));
    out.push_back(flit);

    ++flit_in_frame_;
    if (flit_in_frame_ == flits_this_frame_) {
      ++frame_index_;
      advance_frame();
    } else {
      // x / 1.0 is IEEE-exact: unthrottled sources stay bit-identical.
      next_time_ += iat_this_frame_ / throttle_;
    }
  }
}

void VbrSource::throttle(double factor) {
  MMR_ASSERT(factor > 0.0 && factor <= 1.0);
  throttle_ = factor;
}

void VbrSource::snap(snapshot::Walker& w) {
  snapshot::value(w, frame_index_);
  snapshot::value(w, flit_in_frame_);
  snapshot::value(w, flits_this_frame_);
  snapshot::value(w, iat_this_frame_);
  snapshot::value(w, next_time_);
  snapshot::value(w, throttle_);
  snapshot::value(w, seq_);
}

}  // namespace mmr
