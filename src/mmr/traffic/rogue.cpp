#include "mmr/traffic/rogue.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

RogueSource::RogueSource(std::unique_ptr<TrafficSource> inner, double scale,
                         double burst_scale, Cycle burst_period,
                         Cycle burst_len, Cycle phase)
    : inner_(std::move(inner)),
      scale_(scale),
      burst_scale_(burst_scale),
      burst_period_(burst_period),
      burst_len_(burst_len),
      phase_(phase) {
  MMR_ASSERT(inner_ != nullptr);
  MMR_ASSERT_MSG(scale_ >= 1.0, "rogue scale < 1 would be compliant");
  MMR_ASSERT_MSG(burst_scale_ >= 1.0, "rogue burst scale must be >= 1");
  MMR_ASSERT_MSG(burst_period_ == 0 || burst_len_ <= burst_period_,
                 "burst window longer than its period");
}

double RogueSource::factor_at(Cycle now) const {
  if (burst_period_ == 0 || burst_len_ == 0 || now < phase_) return scale_;
  const Cycle in_period = (now - phase_) % burst_period_;
  return in_period < burst_len_ ? scale_ * burst_scale_ : scale_;
}

void RogueSource::generate(Cycle now, std::vector<Flit>& out) {
  scratch_.clear();
  inner_->generate(now, scratch_);
  const double factor = factor_at(now);
  for (const Flit& original : scratch_) {
    // Excess clones first so the genuine flit still closes its frame.
    surplus_ += factor - 1.0;
    while (surplus_ >= 1.0) {
      surplus_ -= 1.0;
      Flit extra = original;
      extra.last_of_frame = false;
      extra.seq = seq_++;
      out.push_back(extra);
      ++excess_;
    }
    Flit flit = original;
    flit.seq = seq_++;
    out.push_back(flit);
  }
}

void RogueSource::snap(snapshot::Walker& w) {
  inner_->snap(w);
  snapshot::value(w, surplus_);
  snapshot::value(w, seq_);
  snapshot::value(w, excess_);
}

}  // namespace mmr
