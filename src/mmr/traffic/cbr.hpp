// Constant-bit-rate sources.  The paper's CBR workload is a random mix of
// 64 Kbps (voice), 1.54 Mbps (T1 video) and 55 Mbps (high-quality video)
// connections, each injecting flits at a fixed inter-arrival time.
#pragma once

#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

/// The paper's three CBR bandwidth classes.
struct CbrClass {
  const char* name;
  double bps;
};
inline constexpr CbrClass kCbrLow{"64 Kbps", 64e3};
inline constexpr CbrClass kCbrMedium{"1.54 Mbps", 1.54e6};
inline constexpr CbrClass kCbrHigh{"55 Mbps", 55e6};

class CbrSource final : public TrafficSource {
 public:
  /// `phase_cycles` staggers the first emission so that same-rate sources do
  /// not all fire on the same cycle.
  CbrSource(ConnectionId connection, double bps, TimeBase time_base,
            double phase_cycles = 0.0);

  [[nodiscard]] ConnectionId connection() const override { return connection_; }
  [[nodiscard]] Cycle next_emission() const override;
  void generate(Cycle now, std::vector<Flit>& out) override;
  [[nodiscard]] double mean_bps() const override { return bps_; }
  void throttle(double factor) override;
  void snap(snapshot::Walker& w) override;

  /// Flit inter-arrival time in flit cycles (= link_bps / connection_bps).
  [[nodiscard]] double iat_cycles() const { return iat_cycles_; }

 private:
  ConnectionId connection_;
  double bps_;
  double iat_cycles_;
  double next_time_;  ///< fractional cycles; emitted at ceil()
  double throttle_ = 1.0;  ///< ECN rate factor; 1.0 = nominal rate
  std::uint64_t seq_ = 0;
};

}  // namespace mmr
