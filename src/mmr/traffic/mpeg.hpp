// MPEG-2 video traffic model (Section 5.2).
//
// The paper drives its VBR experiments with real MPEG-2 traces of seven
// well-known sequences (Table 1).  The original trace files are not
// available, so this module generates *synthetic* traces with the same
// structure: a fixed 15-frame GOP (IBBPBBPBBPBBPBB), one frame every 33 ms,
// and per-sequence I/P/B frame-size statistics (lognormal around per-type
// means) calibrated to high-quality MPEG-2 rates (≈7–22 Mbps average,
// peak/mean ≈ 2.5–4).  See DESIGN.md for the substitution rationale.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mmr/sim/rng.hpp"

namespace mmr {

enum class FrameType : std::uint8_t { kI, kP, kB };

[[nodiscard]] const char* to_string(FrameType t);

/// The paper's GOP: IBBPBBPBBPBBPBB.
inline constexpr std::array<FrameType, 15> kGopPattern = {
    FrameType::kI, FrameType::kB, FrameType::kB, FrameType::kP, FrameType::kB,
    FrameType::kB, FrameType::kP, FrameType::kB, FrameType::kB, FrameType::kP,
    FrameType::kB, FrameType::kB, FrameType::kP, FrameType::kB, FrameType::kB};

inline constexpr std::uint32_t kGopFrames =
    static_cast<std::uint32_t>(kGopPattern.size());

/// Frame period: "Every 33 milliseconds, a frame must be injected."
inline constexpr double kFramePeriodSeconds = 33e-3;

/// Per-sequence frame-size statistics (bits).
struct MpegSequenceParams {
  std::string name;
  double mean_bits_i = 0.0;
  double mean_bits_p = 0.0;
  double mean_bits_b = 0.0;
  double cv_i = 0.0;  ///< coefficient of variation per frame type
  double cv_p = 0.0;
  double cv_b = 0.0;

  [[nodiscard]] double mean_bits(FrameType t) const;
  [[nodiscard]] double cv(FrameType t) const;

  /// Long-run average bit rate (bits/s) implied by the GOP mix.
  [[nodiscard]] double mean_bps() const;
};

/// Table 1's seven sequences: Ayersroc, Hook, Martin, Flower Garden,
/// Mobile Calendar, Table Tennis, Football.
[[nodiscard]] const std::vector<MpegSequenceParams>& mpeg_sequence_library();

[[nodiscard]] const MpegSequenceParams& mpeg_sequence(const std::string& name);

/// A realised trace: frame sizes in bits, GOP-pattern order.
struct MpegTrace {
  std::string sequence;
  std::vector<std::uint64_t> frame_bits;

  [[nodiscard]] std::uint32_t frames() const {
    return static_cast<std::uint32_t>(frame_bits.size());
  }
  [[nodiscard]] std::uint32_t gops() const { return frames() / kGopFrames; }
  [[nodiscard]] std::uint64_t max_frame_bits() const;
  [[nodiscard]] std::uint64_t min_frame_bits() const;
  [[nodiscard]] double mean_frame_bits() const;
  /// Average rate of the realised trace (bits/s).
  [[nodiscard]] double mean_bps() const;
  /// Rate needed to inject the largest frame within one frame period —
  /// the Back-to-Back injection model's peak bandwidth contribution.
  [[nodiscard]] double peak_bps() const;
  [[nodiscard]] FrameType frame_type(std::uint32_t index) const {
    return kGopPattern[index % kGopFrames];
  }
};

/// Draws `gops` GOPs of frame sizes.  Sizes are lognormal per frame type,
/// clamped to [0.25, 4] x the type mean so a single outlier cannot dominate
/// the run.
[[nodiscard]] MpegTrace generate_mpeg_trace(const MpegSequenceParams& params,
                                            std::uint32_t gops, Rng& rng);

}  // namespace mmr
