#include "mmr/traffic/mpeg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmr/sim/assert.hpp"

namespace mmr {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kI: return "I";
    case FrameType::kP: return "P";
    case FrameType::kB: return "B";
  }
  return "?";
}

double MpegSequenceParams::mean_bits(FrameType t) const {
  switch (t) {
    case FrameType::kI: return mean_bits_i;
    case FrameType::kP: return mean_bits_p;
    case FrameType::kB: return mean_bits_b;
  }
  return 0.0;
}

double MpegSequenceParams::cv(FrameType t) const {
  switch (t) {
    case FrameType::kI: return cv_i;
    case FrameType::kP: return cv_p;
    case FrameType::kB: return cv_b;
  }
  return 0.0;
}

double MpegSequenceParams::mean_bps() const {
  double gop_bits = 0.0;
  for (FrameType t : kGopPattern) gop_bits += mean_bits(t);
  return gop_bits / (kGopFrames * kFramePeriodSeconds);
}

const std::vector<MpegSequenceParams>& mpeg_sequence_library() {
  // Means in bits; calibrated (not the unavailable originals — see DESIGN.md)
  // so that complex sequences (Mobile Calendar, Flower Garden) run hot and
  // movie content (Hook, Martin) runs cool, like the real traces.
  static const std::vector<MpegSequenceParams> library = {
      {"Ayersroc", 900e3, 450e3, 220e3, 0.12, 0.18, 0.15},
      {"Hook", 700e3, 320e3, 150e3, 0.15, 0.22, 0.20},
      {"Martin", 650e3, 300e3, 140e3, 0.14, 0.20, 0.18},
      {"Flower Garden", 1500e3, 850e3, 420e3, 0.10, 0.15, 0.13},
      {"Mobile Calendar", 1700e3, 1000e3, 500e3, 0.08, 0.12, 0.10},
      {"Table Tennis", 1100e3, 550e3, 260e3, 0.16, 0.24, 0.20},
      {"Football", 1300e3, 700e3, 350e3, 0.14, 0.20, 0.18},
  };
  return library;
}

const MpegSequenceParams& mpeg_sequence(const std::string& name) {
  for (const MpegSequenceParams& seq : mpeg_sequence_library()) {
    if (seq.name == name) return seq;
  }
  throw std::invalid_argument("unknown MPEG-2 sequence: " + name);
}

std::uint64_t MpegTrace::max_frame_bits() const {
  MMR_ASSERT(!frame_bits.empty());
  return *std::max_element(frame_bits.begin(), frame_bits.end());
}

std::uint64_t MpegTrace::min_frame_bits() const {
  MMR_ASSERT(!frame_bits.empty());
  return *std::min_element(frame_bits.begin(), frame_bits.end());
}

double MpegTrace::mean_frame_bits() const {
  MMR_ASSERT(!frame_bits.empty());
  double total = 0.0;
  for (std::uint64_t bits : frame_bits) total += static_cast<double>(bits);
  return total / static_cast<double>(frame_bits.size());
}

double MpegTrace::mean_bps() const {
  return mean_frame_bits() / kFramePeriodSeconds;
}

double MpegTrace::peak_bps() const {
  return static_cast<double>(max_frame_bits()) / kFramePeriodSeconds;
}

MpegTrace generate_mpeg_trace(const MpegSequenceParams& params,
                              std::uint32_t gops, Rng& rng) {
  MMR_ASSERT(gops > 0);
  MMR_ASSERT(params.mean_bits_i > 0.0);
  MMR_ASSERT(params.mean_bits_p > 0.0);
  MMR_ASSERT(params.mean_bits_b > 0.0);
  MpegTrace trace;
  trace.sequence = params.name;
  trace.frame_bits.reserve(static_cast<std::size_t>(gops) * kGopFrames);
  for (std::uint32_t g = 0; g < gops; ++g) {
    for (FrameType t : kGopPattern) {
      const double mean = params.mean_bits(t);
      double bits = rng.lognormal_mean_cv(mean, params.cv(t));
      bits = std::clamp(bits, 0.25 * mean, 4.0 * mean);
      trace.frame_bits.push_back(static_cast<std::uint64_t>(bits));
    }
  }
  return trace;
}

}  // namespace mmr
