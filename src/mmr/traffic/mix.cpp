#include "mmr/traffic/mix.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>

#include "mmr/sim/assert.hpp"
#include "mmr/sim/log.hpp"
#include "mmr/traffic/besteffort.hpp"

namespace mmr {

double Workload::generated_load(const TimeBase& time_base) const {
  double total = 0.0;
  for (std::uint32_t link = 0; link < table.ports(); ++link) {
    total += generated_load_on_input(link, time_base);
  }
  return total / static_cast<double>(table.ports());
}

double Workload::generated_load_on_input(std::uint32_t link,
                                         const TimeBase& time_base) const {
  double bps = 0.0;
  for (ConnectionId id : table.on_input_link(link)) {
    bps += sources[id]->mean_bps();
  }
  return time_base.load_fraction(bps);
}

void Workload::check_invariants() const {
  MMR_ASSERT_MSG(sources.size() == table.size(),
                 "one source per connection required");
  for (std::size_t id = 0; id < sources.size(); ++id) {
    MMR_ASSERT(sources[id] != nullptr);
    MMR_ASSERT(sources[id]->connection() == static_cast<ConnectionId>(id));
  }
}

namespace {

/// Shared helper: admits (optionally) and registers a connection + source.
/// Returns false when admission rejected the connection.
bool place_connection(Workload& workload, const SimConfig& config,
                      AdmissionController* admission,
                      ConnectionDescriptor descriptor,
                      const std::function<std::unique_ptr<TrafficSource>(
                          ConnectionId)>& make_source) {
  if (admission != nullptr && !admission->try_admit(descriptor)) return false;
  if (admission == nullptr && descriptor.is_qos()) {
    // Record the slot reservation even when CAC is bypassed: the priority
    // biasing functions need slots_per_round.
    RoundAccounting rounds(config.flit_cycles_per_round(), config.time_base());
    descriptor.slots_per_round =
        rounds.slots_for_bandwidth(descriptor.mean_bandwidth_bps);
    descriptor.peak_slots_per_round =
        rounds.slots_for_bandwidth(descriptor.peak_bandwidth_bps);
  }
  const ConnectionId id =
      workload.table.add(descriptor, config.vcs_per_link);
  workload.sources.push_back(make_source(id));
  return true;
}

/// Tracks per-output allocated bandwidth and draws destinations.
class DestinationChooser {
 public:
  DestinationChooser(std::uint32_t ports, DestinationPolicy policy)
      : policy_(policy), allocated_bps_(ports, 0.0) {}

  std::uint32_t choose(double bps, Rng& rng) {
    const auto ports = static_cast<std::uint32_t>(allocated_bps_.size());
    std::uint32_t pick = 0;
    switch (policy_) {
      case DestinationPolicy::kUniformRandom:
        pick = static_cast<std::uint32_t>(rng.uniform(ports));
        break;
      case DestinationPolicy::kBalanced: {
        double best = allocated_bps_[0];
        std::uint32_t ties = 1;
        for (std::uint32_t out = 1; out < ports; ++out) {
          if (allocated_bps_[out] < best) {
            best = allocated_bps_[out];
            pick = out;
            ties = 1;
          } else if (allocated_bps_[out] == best) {
            ++ties;
            if (rng.uniform(ties) == 0) pick = out;
          }
        }
        break;
      }
    }
    allocated_bps_[pick] += bps;
    return pick;
  }

 private:
  DestinationPolicy policy_;
  std::vector<double> allocated_bps_;
};

}  // namespace

void add_cbr_mix(Workload& workload, const SimConfig& config,
                 const CbrMixSpec& spec, Rng& rng) {
  MMR_ASSERT(!spec.classes.empty());
  MMR_ASSERT(spec.classes.size() == spec.class_weights.size());
  MMR_ASSERT(spec.target_load >= 0.0);
  MMR_ASSERT(workload.table.ports() == config.ports);
  MMR_ASSERT(spec.hot_output < static_cast<std::int32_t>(config.ports));

  const TimeBase time_base = config.time_base();
  std::optional<AdmissionController> admission;
  if (spec.enforce_admission) {
    admission.emplace(config.ports,
                      RoundAccounting(config.flit_cycles_per_round(), time_base),
                      config.concurrency_factor);
  }

  DestinationChooser destinations(config.ports, spec.destinations);

  // Classes sorted by descending rate, for the fallback when the randomly
  // drawn class no longer fits in the remaining budget.
  std::vector<std::size_t> by_rate(spec.classes.size());
  for (std::size_t i = 0; i < by_rate.size(); ++i) by_rate[i] = i;
  std::sort(by_rate.begin(), by_rate.end(), [&spec](std::size_t a, std::size_t b) {
    return spec.classes[a].bps > spec.classes[b].bps;
  });

  for (std::uint32_t link = 0; link < config.ports; ++link) {
    // Per-link child stream: the connections placed on a link form a common
    // prefix across target loads (common random numbers), which makes load
    // sweeps monotone instead of re-rolling every hot spot per point.
    Rng link_rng = rng.fork(0x11AA + link);
    double remaining_bps = spec.target_load * time_base.link_bandwidth_bps();
    std::uint32_t rejected = 0;
    while (workload.table.on_input_link(link).size() < config.vcs_per_link) {
      // Draw a class; fall back to the largest class that still fits.
      std::size_t cls = link_rng.weighted_index(spec.class_weights);
      if (spec.classes[cls].bps > remaining_bps) {
        bool found = false;
        for (std::size_t idx : by_rate) {
          if (spec.classes[idx].bps <= remaining_bps) {
            cls = idx;
            found = true;
            break;
          }
        }
        if (!found) break;  // link filled to target
      }
      const double bps = spec.classes[cls].bps;

      ConnectionDescriptor descriptor;
      descriptor.traffic_class = TrafficClass::kCbr;
      descriptor.input_link = link;
      descriptor.output_link =
          spec.hot_output >= 0 ? static_cast<std::uint32_t>(spec.hot_output)
                               : destinations.choose(bps, link_rng);
      descriptor.mean_bandwidth_bps = bps;
      descriptor.peak_bandwidth_bps = bps;

      const double phase = link_rng.uniform_real() *
                           (time_base.link_bandwidth_bps() / bps);
      const bool placed = place_connection(
          workload, config, admission ? &*admission : nullptr, descriptor,
          [&](ConnectionId id) {
            return std::make_unique<CbrSource>(id, bps, time_base, phase);
          });
      if (placed) {
        remaining_bps -= bps;
      } else if (++rejected > 64) {
        break;  // CAC keeps rejecting (likely an output link is full)
      }
    }
  }
  workload.check_invariants();
}

void add_vbr_mix(Workload& workload, const SimConfig& config,
                 const VbrMixSpec& spec, Rng& rng) {
  MMR_ASSERT(spec.target_load >= 0.0);
  MMR_ASSERT(spec.trace_gops >= 1);
  MMR_ASSERT(workload.table.ports() == config.ports);

  const TimeBase time_base = config.time_base();
  std::optional<AdmissionController> admission;
  if (spec.enforce_admission) {
    admission.emplace(config.ports,
                      RoundAccounting(config.flit_cycles_per_round(), time_base),
                      config.concurrency_factor);
  }

  const auto& library = mpeg_sequence_library();
  DestinationChooser destinations(config.ports, spec.destinations);
  const double period_cycles =
      time_base.seconds_to_cycles(kFramePeriodSeconds);

  // Pass 1: choose connections and realise their traces; the BB peak rate
  // depends on the largest frame across the whole workload.
  struct Planned {
    ConnectionDescriptor descriptor;
    MpegTrace trace;
    double phase;
    std::uint32_t start_frame;
  };
  std::vector<Planned> planned;
  for (std::uint32_t link = 0; link < config.ports; ++link) {
    Rng link_rng = rng.fork(0x22BB + link);  // common prefix across loads
    double remaining_bps = spec.target_load * time_base.link_bandwidth_bps();
    auto placed_on_link = static_cast<std::uint32_t>(
        workload.table.on_input_link(link).size());
    while (placed_on_link < config.vcs_per_link) {
      const auto& params = library[link_rng.uniform(library.size())];
      if (params.mean_bps() > remaining_bps) {
        // Try the leanest sequence before giving up on this link.
        const auto leanest = std::min_element(
            library.begin(), library.end(),
            [](const MpegSequenceParams& a, const MpegSequenceParams& b) {
              return a.mean_bps() < b.mean_bps();
            });
        if (leanest->mean_bps() > remaining_bps) break;
        continue;  // redraw until an affordable sequence comes up
      }

      Planned p;
      p.descriptor.traffic_class = TrafficClass::kVbr;
      p.descriptor.input_link = link;
      p.descriptor.output_link =
          destinations.choose(params.mean_bps(), link_rng);
      p.trace = generate_mpeg_trace(params, spec.trace_gops, link_rng);
      p.descriptor.mean_bandwidth_bps = p.trace.mean_bps();
      p.descriptor.peak_bandwidth_bps = p.trace.peak_bps();
      // Random alignment within a GOP time: whole frames via start_frame,
      // the remainder as a sub-period boundary phase.
      p.start_frame =
          static_cast<std::uint32_t>(link_rng.uniform(p.trace.frames()));
      p.phase = link_rng.uniform_real() * period_cycles;
      remaining_bps -= p.descriptor.mean_bandwidth_bps;
      ++placed_on_link;
      planned.push_back(std::move(p));
    }
  }

  double workload_peak_bps = 0.0;
  for (const Planned& p : planned) {
    workload_peak_bps =
        std::max(workload_peak_bps, p.descriptor.peak_bandwidth_bps);
  }
  // BB model: common peak rate; cap at the link so the source stays legal
  // even for a pathological trace.
  workload_peak_bps =
      std::min(workload_peak_bps, time_base.link_bandwidth_bps());

  // Pass 2: admit and instantiate.
  for (Planned& p : planned) {
    place_connection(
        workload, config, admission ? &*admission : nullptr, p.descriptor,
        [&](ConnectionId id) {
          return std::make_unique<VbrSource>(
              id, std::move(p.trace), spec.model, time_base,
              workload_peak_bps, p.phase, p.start_frame);
        });
  }
  workload.check_invariants();
}

Workload build_cbr_mix(const SimConfig& config, const CbrMixSpec& spec,
                       Rng& rng) {
  Workload workload(config.ports);
  add_cbr_mix(workload, config, spec, rng);
  return workload;
}

Workload build_vbr_mix(const SimConfig& config, const VbrMixSpec& spec,
                       Rng& rng) {
  Workload workload(config.ports);
  add_vbr_mix(workload, config, spec, rng);
  return workload;
}

void add_best_effort(Workload& workload, const SimConfig& config,
                     const BestEffortSpec& spec, Rng& rng) {
  MMR_ASSERT(spec.connections_per_link >= 1);
  const TimeBase time_base = config.time_base();
  const double per_connection_bps = spec.load *
                                    time_base.link_bandwidth_bps() /
                                    spec.connections_per_link;
  for (std::uint32_t link = 0; link < config.ports; ++link) {
    for (std::uint32_t i = 0; i < spec.connections_per_link; ++i) {
      if (workload.table.on_input_link(link).size() >= config.vcs_per_link) {
        log_warn("best-effort: input link ", link, " out of VCs");
        break;
      }
      ConnectionDescriptor descriptor;
      descriptor.traffic_class = TrafficClass::kBestEffort;
      descriptor.input_link = link;
      descriptor.output_link =
          static_cast<std::uint32_t>(rng.uniform(config.ports));
      descriptor.mean_bandwidth_bps = per_connection_bps;
      descriptor.peak_bandwidth_bps = time_base.link_bandwidth_bps();
      const ConnectionId id =
          workload.table.add(descriptor, config.vcs_per_link);
      workload.sources.push_back(std::make_unique<BestEffortSource>(
          id, per_connection_bps, spec.mean_message_flits, time_base,
          rng.fork(0xBE57 + id)));
    }
  }
  workload.check_invariants();
}

}  // namespace mmr
