// VBR source: plays an MPEG-2 trace through one of the paper's two
// injection models (Figure 7).
//
//  * Back-to-Back (BB): every frame's flits enter at a common peak rate
//    (chosen so the largest frame of the whole workload fits in one frame
//    period), starting at the frame boundary; the source then idles until
//    the next boundary.
//  * Smooth-Rate (SR): each frame's flits are spread evenly across the frame
//    period (per-frame IAT = period / flits_in_frame).
//
// Traces repeat cyclically; connections sharing a link are randomly aligned
// within a GOP time by the workload builder (phase offset).
#pragma once

#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"
#include "mmr/traffic/mpeg.hpp"

namespace mmr {

enum class InjectionModel : std::uint8_t { kBackToBack, kSmoothRate };

[[nodiscard]] const char* to_string(InjectionModel m);

class VbrSource final : public TrafficSource {
 public:
  /// `peak_bps` is only used by the BB model (the workload-wide peak rate);
  /// pass the trace's own peak when running a source stand-alone.
  /// Random GOP alignment = `start_frame` (the trace position the source
  /// begins at, wrapping) plus `phase_cycles` (sub-period boundary shift,
  /// < one frame period so every source is active from the start).
  VbrSource(ConnectionId connection, MpegTrace trace, InjectionModel model,
            TimeBase time_base, double peak_bps, double phase_cycles = 0.0,
            std::uint32_t start_frame = 0);

  [[nodiscard]] ConnectionId connection() const override { return connection_; }
  [[nodiscard]] Cycle next_emission() const override;
  void generate(Cycle now, std::vector<Flit>& out) override;
  [[nodiscard]] double mean_bps() const override { return mean_bps_; }
  void throttle(double factor) override;
  void snap(snapshot::Walker& w) override;

  [[nodiscard]] const MpegTrace& trace() const { return trace_; }
  [[nodiscard]] InjectionModel model() const { return model_; }
  /// Flits of absolute frame `index` (trace position (start_frame + index)
  /// mod frames()).
  [[nodiscard]] std::uint32_t frame_flits(std::uint32_t index) const;
  /// Frame boundary (cycle, fractional) of absolute frame `index`.
  [[nodiscard]] double frame_boundary(std::uint32_t index) const;

 private:
  void advance_frame();

  ConnectionId connection_;
  MpegTrace trace_;
  InjectionModel model_;
  std::uint32_t flit_bits_;
  double period_cycles_;    ///< frame period in flit cycles
  double peak_iat_cycles_;  ///< BB inter-arrival time
  double phase_cycles_;
  std::uint32_t start_frame_;
  double mean_bps_;

  std::uint32_t frame_index_ = 0;  ///< absolute frame counter
  std::uint32_t flit_in_frame_ = 0;
  std::uint32_t flits_this_frame_ = 0;
  double iat_this_frame_ = 0.0;
  double next_time_ = 0.0;
  double throttle_ = 1.0;  ///< ECN rate factor; 1.0 = nominal rate
  std::uint64_t seq_ = 0;
};

}  // namespace mmr
