#include "mmr/traffic/besteffort.hpp"

#include <cmath>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

BestEffortSource::BestEffortSource(ConnectionId connection, double mean_bps,
                                   double mean_message_flits,
                                   TimeBase time_base, Rng rng)
    : connection_(connection),
      mean_bps_(mean_bps),
      mean_message_flits_(mean_message_flits),
      rng_(rng) {
  MMR_ASSERT(mean_bps > 0.0);
  MMR_ASSERT(mean_message_flits >= 1.0);
  // Messages of L flits at `mean_bps` arrive every L * flit_bits / bps
  // seconds on average.
  const double flits_per_second = time_base.flits_per_second(mean_bps);
  const double messages_per_second = flits_per_second / mean_message_flits;
  mean_gap_cycles_ =
      time_base.seconds_to_cycles(1.0 / messages_per_second);
  next_time_ = rng_.exponential(mean_gap_cycles_);
}

Cycle BestEffortSource::next_emission() const {
  return static_cast<Cycle>(std::ceil(next_time_));
}

void BestEffortSource::generate(Cycle now, std::vector<Flit>& out) {
  while (next_emission() <= now) {
    // Geometric message length with the configured mean (support >= 1).
    std::uint32_t length = 1;
    const double continue_p = 1.0 - 1.0 / mean_message_flits_;
    while (rng_.chance(continue_p)) ++length;

    const Cycle arrival = next_emission();
    for (std::uint32_t i = 0; i < length; ++i) {
      Flit flit;
      flit.connection = connection_;
      flit.seq = seq_++;
      flit.frame = message_index_;
      flit.last_of_frame = (i + 1 == length);
      flit.generated_at = arrival;
      flit.frame_origin = arrival;
      out.push_back(flit);
    }
    ++message_index_;
    next_time_ += rng_.exponential(mean_gap_cycles_);
  }
}

void BestEffortSource::snap(snapshot::Walker& w) {
  rng_.snap(w);
  snapshot::value(w, next_time_);
  snapshot::value(w, seq_);
  snapshot::value(w, message_index_);
}

}  // namespace mmr
