#include "mmr/traffic/flit.hpp"

// Flit is a plain aggregate; this translation unit anchors the TrafficSource
// vtable so the library has a home for it.

namespace mmr {}  // namespace mmr
