#include "mmr/traffic/flit.hpp"

// Flit is a plain aggregate; this translation unit anchors the TrafficSource
// vtable so the library has a home for it.

#include "mmr/snapshot/walker.hpp"

namespace mmr {

void snap_flit(snapshot::Walker& w, Flit& flit) {
  snapshot::value(w, flit.connection);
  snapshot::value(w, flit.seq);
  snapshot::value(w, flit.frame);
  snapshot::value(w, flit.last_of_frame);
  snapshot::value(w, flit.generated_at);
  snapshot::value(w, flit.frame_origin);
  snapshot::value(w, flit.demoted);
}

}  // namespace mmr
