// Low-overhead performance probes: attribute wall time to simulation phases
// (traffic generation, link scheduling, switch arbitration, crossbar
// transfer, credit/link movement, metrics) and count hot-path buffer
// (re)allocations.
//
// Design rules:
//  * Zero cost when compiled out: configure with -DMMR_PERF=OFF and every
//    MMR_PERF_* macro expands to nothing.
//  * Near-zero cost when compiled in but not armed: probes are armed per
//    thread via ProbeScope; an unarmed thread pays one thread-local load and
//    a predictable branch per scope.
//  * Never touches simulation state or RNG streams: metrics are bit-identical
//    with probes on, off, or compiled out (tests/test_perf.cpp proves it).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mmr::perf {

/// True when the tree was configured with MMR_PERF=ON (the default).
#if defined(MMR_PERF_ENABLED)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// One simulation phase per hot section of MmrSimulation::step_one and
/// MmrRouter::step.  kOther is for callers instrumenting custom sections.
enum class Phase : std::uint8_t {
  kTraffic = 0,     ///< source generation + policer verdicts (step_one §2)
  kLinkSchedule,    ///< per-port candidate selection (router step)
  kArbitration,     ///< switch arbitration + matching verification
  kCrossbar,        ///< crossbar transit + departure assembly
  kCredits,         ///< NIC/link flit movement + credit returns
  kMetrics,         ///< delivery accounting, observers, watchdog/auditor
  kOther,
};
inline constexpr std::size_t kPhaseCount = 7;

[[nodiscard]] const char* to_string(Phase phase);

/// Hot-path allocation events.  Steady-state cycles should count zero of
/// these: every buffer is reused, so growth only happens on first use or
/// when the geometry changes.
enum class Counter : std::uint8_t {
  kMatchingAlloc = 0,    ///< Matching result buffers grew
  kCandidateRealloc,     ///< CandidateSet flat storage grew
  kScratchRealloc,       ///< arbiter scratch buffers grew
  kDepartureRealloc,     ///< simulation departure/arrival buffers grew
};
inline constexpr std::size_t kCounterCount = 4;

[[nodiscard]] const char* to_string(Counter counter);

/// Monotonic nanosecond timestamp (steady clock).
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulator for one measurement context (one thread / one run).  Plain
/// data, no synchronisation: arm one probe per thread and merge() afterwards.
class PerfProbe {
 public:
  void add_time(Phase phase, std::uint64_t ns) {
    phase_ns_[static_cast<std::size_t>(phase)] += ns;
    ++phase_calls_[static_cast<std::size_t>(phase)];
  }
  void add_count(Counter counter, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(counter)] += n;
  }
  /// Records a completed run: simulated cycles and the wall time they took.
  void add_run(std::uint64_t simulated_cycles, std::uint64_t wall_ns) {
    simulated_cycles_ += simulated_cycles;
    run_wall_ns_ += wall_ns;
  }

  [[nodiscard]] std::uint64_t phase_ns(Phase phase) const {
    return phase_ns_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t phase_calls(Phase phase) const {
    return phase_calls_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t count(Counter counter) const {
    return counters_[static_cast<std::size_t>(counter)];
  }
  [[nodiscard]] std::uint64_t simulated_cycles() const {
    return simulated_cycles_;
  }
  [[nodiscard]] std::uint64_t run_wall_ns() const { return run_wall_ns_; }

  /// Total nanoseconds attributed to any phase.
  [[nodiscard]] std::uint64_t attributed_ns() const;
  /// Simulated cycles per wall second (0 when nothing ran).
  [[nodiscard]] double cycles_per_second() const;
  /// Fraction of run_wall_ns spent in `phase` (0 when nothing ran).
  [[nodiscard]] double phase_share(Phase phase) const;

  void merge(const PerfProbe& other);
  void reset();

 private:
  std::uint64_t phase_ns_[kPhaseCount] = {};
  std::uint64_t phase_calls_[kPhaseCount] = {};
  std::uint64_t counters_[kCounterCount] = {};
  std::uint64_t simulated_cycles_ = 0;
  std::uint64_t run_wall_ns_ = 0;
};

/// The calling thread's armed probe, or nullptr (the default).
[[nodiscard]] PerfProbe* current();

/// RAII arming of `probe` on the calling thread; restores the previous
/// probe (nesting is allowed) on destruction.  Arm with nullptr to disarm.
class ProbeScope {
 public:
  explicit ProbeScope(PerfProbe* probe);
  ~ProbeScope();
  ProbeScope(const ProbeScope&) = delete;
  ProbeScope& operator=(const ProbeScope&) = delete;

 private:
  PerfProbe* prev_;
};

/// Scope timer: charges the enclosed block to `phase` on the thread's armed
/// probe; a single load + branch when no probe is armed.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase phase) : probe_(current()), phase_(phase) {
    if (probe_ != nullptr) start_ = now_ns();
  }
  ~ScopedTimer() {
    if (probe_ != nullptr) probe_->add_time(phase_, now_ns() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PerfProbe* probe_;
  Phase phase_;
  std::uint64_t start_ = 0;
};

}  // namespace mmr::perf

// Instrumentation macros.  Use these (not the classes) in hot paths so a
// -DMMR_PERF=OFF build compiles the probes out entirely.
#if defined(MMR_PERF_ENABLED)
#define MMR_PERF_CONCAT_IMPL(a, b) a##b
#define MMR_PERF_CONCAT(a, b) MMR_PERF_CONCAT_IMPL(a, b)
#define MMR_PERF_SCOPE(phase) \
  ::mmr::perf::ScopedTimer MMR_PERF_CONCAT(mmr_perf_scope_, __LINE__)(phase)
#define MMR_PERF_COUNT(counter, n)                              \
  do {                                                          \
    if (::mmr::perf::PerfProbe* mmr_perf_probe_ =               \
            ::mmr::perf::current())                             \
      mmr_perf_probe_->add_count((counter), (n));               \
  } while (false)
#else
#define MMR_PERF_SCOPE(phase) ((void)0)
#define MMR_PERF_COUNT(counter, n) ((void)0)
#endif
