// Machine-readable perf reporting: the BENCH_perf.json schema emitted by
// bench/perf_baseline and consumed by scripts/bench_compare.py.
//
// Schema "mmr-perf-v1": a top-level object with run metadata plus a flat
// `records` array.  Each record is one measured scenario, keyed by `label`
// (stable across baselines so two files can be diffed record-by-record):
//   { "label": "sim-cbr/coa/p4", "kind": "sim-cbr", "arbiter": "coa",
//     "ports": 4, "simulated_cycles": N, "wall_seconds": s,
//     "cycles_per_second": r, "counters": {...},
//     "phases": {"arbitration": {"seconds": s, "calls": n, "share": f}, ...} }
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mmr/perf/probe.hpp"

namespace mmr::perf {

/// One measured scenario of a perf baseline.
struct PerfRecord {
  std::string label;    ///< stable diff key, e.g. "sim-cbr/coa/p4"
  std::string kind;     ///< section: "sim-cbr", "arbitrate-micro", "sweep-cbr"
  std::string arbiter;  ///< arbiter name ("" when not arbiter-specific)
  std::uint32_t ports = 0;
  PerfProbe probe;
};

/// Top-level metadata for one baseline file.
struct PerfReportMeta {
  std::string mode = "quick";  ///< "quick" | "full" | "smoke"
  std::size_t threads = 0;     ///< sweep worker threads (0 = hardware)
};

/// Writes the full baseline as schema "mmr-perf-v1" JSON.
void write_perf_json(std::ostream& out, const PerfReportMeta& meta,
                     const std::vector<PerfRecord>& records);

/// Renders a human-readable per-phase summary table for one record.
[[nodiscard]] std::string render_phase_summary(const PerfRecord& record);

}  // namespace mmr::perf
