#include "mmr/perf/report.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mmr::perf {

namespace {

/// JSON string escaping for the label/kind/arbiter fields.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// JSON numbers must be finite; clamp the pathological cases to 0.
double finite(double x) { return std::isfinite(x) ? x : 0.0; }

void write_probe_fields(std::ostream& out, const PerfProbe& probe,
                        const char* indent) {
  out << indent << "\"simulated_cycles\": " << probe.simulated_cycles()
      << ",\n";
  out << indent << "\"wall_seconds\": "
      << finite(static_cast<double>(probe.run_wall_ns()) * 1e-9) << ",\n";
  out << indent << "\"cycles_per_second\": "
      << finite(probe.cycles_per_second()) << ",\n";

  out << indent << "\"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto counter = static_cast<Counter>(i);
    if (i != 0) out << ", ";
    out << '"' << to_string(counter) << "\": " << probe.count(counter);
  }
  out << "},\n";

  out << indent << "\"phases\": {";
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (!first) out << ", ";
    first = false;
    out << '"' << to_string(phase) << "\": {\"seconds\": "
        << finite(static_cast<double>(probe.phase_ns(phase)) * 1e-9)
        << ", \"calls\": " << probe.phase_calls(phase)
        << ", \"share\": " << finite(probe.phase_share(phase)) << '}';
  }
  out << "}\n";
}

}  // namespace

void write_perf_json(std::ostream& out, const PerfReportMeta& meta,
                     const std::vector<PerfRecord>& records) {
  const auto saved_flags = out.flags();
  const auto saved_precision = out.precision();
  out << std::setprecision(12);

  out << "{\n";
  out << "  \"schema\": \"mmr-perf-v1\",\n";
  out << "  \"mode\": \"" << escape(meta.mode) << "\",\n";
  out << "  \"threads\": " << meta.threads << ",\n";
  out << "  \"probes_compiled\": " << (kCompiledIn ? "true" : "false")
      << ",\n";
  out << "  \"records\": [\n";
  for (std::size_t r = 0; r < records.size(); ++r) {
    const PerfRecord& record = records[r];
    out << "    {\n";
    out << "      \"label\": \"" << escape(record.label) << "\",\n";
    out << "      \"kind\": \"" << escape(record.kind) << "\",\n";
    out << "      \"arbiter\": \"" << escape(record.arbiter) << "\",\n";
    out << "      \"ports\": " << record.ports << ",\n";
    write_probe_fields(out, record.probe, "      ");
    out << "    }" << (r + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";

  out.flags(saved_flags);
  out.precision(saved_precision);
}

std::string render_phase_summary(const PerfRecord& record) {
  std::ostringstream out;
  const PerfProbe& probe = record.probe;
  out << record.label << ": "
      << std::fixed << std::setprecision(0) << probe.cycles_per_second()
      << " cycles/s over " << probe.simulated_cycles() << " cycles ("
      << std::setprecision(3)
      << static_cast<double>(probe.run_wall_ns()) * 1e-9 << " s)\n";
  const std::uint64_t attributed = probe.attributed_ns();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (probe.phase_calls(phase) == 0) continue;
    out << "    " << std::left << std::setw(14) << to_string(phase)
        << std::right << std::fixed << std::setprecision(1) << std::setw(6)
        << probe.phase_share(phase) * 100.0 << "% of wall, " << std::setw(6)
        << (attributed == 0
                ? 0.0
                : 100.0 * static_cast<double>(probe.phase_ns(phase)) /
                      static_cast<double>(attributed))
        << "% of attributed (" << probe.phase_calls(phase) << " scopes)\n";
  }
  bool any_counter = false;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (probe.count(static_cast<Counter>(i)) == 0) continue;
    if (!any_counter) out << "    counters:";
    any_counter = true;
    out << ' ' << to_string(static_cast<Counter>(i)) << '='
        << probe.count(static_cast<Counter>(i));
  }
  if (any_counter) out << '\n';
  return out.str();
}

}  // namespace mmr::perf
