#include "mmr/perf/probe.hpp"

namespace mmr::perf {

namespace {

thread_local PerfProbe* tl_probe = nullptr;

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kTraffic: return "traffic";
    case Phase::kLinkSchedule: return "link_schedule";
    case Phase::kArbitration: return "arbitration";
    case Phase::kCrossbar: return "crossbar";
    case Phase::kCredits: return "credits";
    case Phase::kMetrics: return "metrics";
    case Phase::kOther: return "other";
  }
  return "?";
}

const char* to_string(Counter counter) {
  switch (counter) {
    case Counter::kMatchingAlloc: return "matching_alloc";
    case Counter::kCandidateRealloc: return "candidate_realloc";
    case Counter::kScratchRealloc: return "scratch_realloc";
    case Counter::kDepartureRealloc: return "departure_realloc";
  }
  return "?";
}

std::uint64_t PerfProbe::attributed_ns() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) total += phase_ns_[i];
  return total;
}

double PerfProbe::cycles_per_second() const {
  if (run_wall_ns_ == 0) return 0.0;
  return static_cast<double>(simulated_cycles_) * 1e9 /
         static_cast<double>(run_wall_ns_);
}

double PerfProbe::phase_share(Phase phase) const {
  if (run_wall_ns_ == 0) return 0.0;
  return static_cast<double>(phase_ns(phase)) /
         static_cast<double>(run_wall_ns_);
}

void PerfProbe::merge(const PerfProbe& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_ns_[i] += other.phase_ns_[i];
    phase_calls_[i] += other.phase_calls_[i];
  }
  for (std::size_t i = 0; i < kCounterCount; ++i)
    counters_[i] += other.counters_[i];
  simulated_cycles_ += other.simulated_cycles_;
  run_wall_ns_ += other.run_wall_ns_;
}

void PerfProbe::reset() { *this = PerfProbe{}; }

PerfProbe* current() { return tl_probe; }

ProbeScope::ProbeScope(PerfProbe* probe) : prev_(tl_probe) {
  tl_probe = probe;
}

ProbeScope::~ProbeScope() { tl_probe = prev_; }

}  // namespace mmr::perf
