#include "mmr/fault/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "mmr/sim/assert.hpp"

namespace mmr {

bool FaultPlan::empty() const {
  if (!down_windows.empty()) return false;
  if (default_rates.any()) return false;
  for (const auto& [channel, rates] : channel_rates) {
    (void)channel;
    if (rates.any()) return false;
  }
  return true;
}

ChannelFaultRates FaultPlan::rates_for(std::uint32_t channel) const {
  ChannelFaultRates rates = default_rates;
  for (const auto& [ch, override_rates] : channel_rates) {
    if (ch == channel) rates = override_rates;
  }
  return rates;
}

namespace {

void validate_rates(const ChannelFaultRates& rates) {
  auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  MMR_ASSERT_MSG(probability(rates.drop_probability),
                 "drop probability must be in [0, 1]");
  MMR_ASSERT_MSG(probability(rates.corrupt_probability),
                 "corrupt probability must be in [0, 1]");
  MMR_ASSERT_MSG(probability(rates.credit_loss_probability),
                 "credit-loss probability must be in [0, 1]");
}

}  // namespace

void FaultPlan::validate(std::uint32_t channels) const {
  validate_rates(default_rates);
  for (const auto& [channel, rates] : channel_rates) {
    MMR_ASSERT_MSG(channel < channels, "rate override on unknown channel");
    validate_rates(rates);
  }
  // Windows: in range, non-empty, non-overlapping per channel.
  std::map<std::uint32_t, std::vector<LinkDownWindow>> per_channel;
  for (const LinkDownWindow& w : down_windows) {
    MMR_ASSERT_MSG(w.channel < channels, "down window on unknown channel");
    MMR_ASSERT_MSG(w.down_at < w.up_at, "down window must have down_at < up_at");
    per_channel[w.channel].push_back(w);
  }
  for (auto& [channel, windows] : per_channel) {
    (void)channel;
    std::sort(windows.begin(), windows.end(),
              [](const LinkDownWindow& a, const LinkDownWindow& b) {
                return a.down_at < b.down_at;
              });
    for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
      MMR_ASSERT_MSG(windows[i].up_at <= windows[i + 1].down_at,
                     "down windows on one channel must not overlap");
    }
  }
  MMR_ASSERT_MSG(resync_period >= 1, "resync period must be >= 1 cycle");
  MMR_ASSERT_MSG(qos_deadline_cycles > 0.0, "QoS deadline must be positive");
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

double parse_probability(const std::string& value, const std::string& token) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault spec: bad probability in '" + token +
                                "'");
  }
  return p;
}

std::uint64_t parse_number(const std::string& value, const std::string& token) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("fault spec: bad number in '" + token + "'");
  }
  return n;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    const std::vector<std::string> parts = split(token, ':');
    const std::string& key = parts.front();
    const auto args = parts.size() - 1;
    if (key == "drop" && args == 1) {
      plan.default_rates.drop_probability = parse_probability(parts[1], token);
    } else if (key == "corrupt" && args == 1) {
      plan.default_rates.corrupt_probability =
          parse_probability(parts[1], token);
    } else if (key == "credit_loss" && args == 1) {
      plan.default_rates.credit_loss_probability =
          parse_probability(parts[1], token);
    } else if (key == "down" && args == 3) {
      LinkDownWindow window;
      window.channel = static_cast<std::uint32_t>(parse_number(parts[1], token));
      window.down_at = parse_number(parts[2], token);
      window.up_at = parse_number(parts[3], token);
      plan.down_windows.push_back(window);
    } else if (key == "resync_period" && args == 1) {
      plan.resync_period = parse_number(parts[1], token);
    } else if (key == "resync_timeout" && args == 1) {
      plan.resync_timeout = parse_number(parts[1], token);
    } else if (key == "deadline" && args == 1) {
      plan.qos_deadline_cycles =
          static_cast<double>(parse_number(parts[1], token));
    } else if (key == "seed" && args == 1) {
      plan.seed = parse_number(parts[1], token);
    } else {
      throw std::invalid_argument(
          "fault spec: unknown token '" + token +
          "'; expected drop:P, corrupt:P, credit_loss:P, down:CH:FROM:TO, "
          "resync_period:N, resync_timeout:N, deadline:N or seed:N");
    }
  }
  return plan;
}

FaultPlan FaultPlan::random_windows(std::uint32_t channels, std::uint32_t count,
                                    Cycle horizon_begin, Cycle horizon_end,
                                    Cycle min_len, Cycle max_len, Rng& rng) {
  MMR_ASSERT(channels > 0);
  MMR_ASSERT(min_len >= 1 && min_len <= max_len);
  MMR_ASSERT(horizon_begin + max_len < horizon_end);
  FaultPlan plan;
  // Per-channel cursor keeps windows on one channel disjoint by placing them
  // in increasing time order.
  std::vector<Cycle> cursor(channels, horizon_begin);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto channel = static_cast<std::uint32_t>(rng.uniform(channels));
    const Cycle len = min_len + rng.uniform(max_len - min_len + 1);
    if (cursor[channel] + len >= horizon_end) continue;  // channel is full
    const Cycle slack = horizon_end - cursor[channel] - len;
    const Cycle start = cursor[channel] + rng.uniform(slack);
    plan.down_windows.push_back({channel, start, start + len});
    cursor[channel] = start + len;
  }
  return plan;
}

}  // namespace mmr
