// Fault plans: a deterministic, configuration-driven schedule of the ways an
// inter-router channel can misbehave.  The network layer was built so that
// "flits are never dropped anywhere"; a FaultPlan describes how to break
// that on purpose — link-down windows, per-link flit drop / corruption
// probabilities, and credit-loss probabilities — so that the simulator can
// measure how gracefully the scheduling algorithms degrade and recover.
//
// An all-zero (empty()) plan is a strict no-op: the network simulation does
// not even instantiate the fault machinery, so results stay bit-identical
// to a fault-free build.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mmr/sim/rng.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {

/// One scheduled outage of a directed inter-router channel: the link is
/// unusable during [down_at, up_at).  Flits in flight when the link goes
/// down are lost (their credits leak until the resync watchdog heals them);
/// connections routed over the link are torn down and re-admitted elsewhere.
struct LinkDownWindow {
  std::uint32_t channel = 0;
  Cycle down_at = 0;
  Cycle up_at = 0;
};

/// Stochastic per-channel fault rates, drawn per event from the injector's
/// per-channel RNG stream (deterministic for a fixed plan seed).
struct ChannelFaultRates {
  double drop_probability = 0.0;     ///< flit vanishes on the wire
  double corrupt_probability = 0.0;  ///< flit fails CRC at the receiver
  double credit_loss_probability = 0.0;  ///< returning credit vanishes

  [[nodiscard]] bool any() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           credit_loss_probability > 0.0;
  }
};

struct FaultPlan {
  /// Scheduled outages (need not be sorted; windows on one channel must not
  /// overlap).
  std::vector<LinkDownWindow> down_windows;

  /// Rates applied to every channel unless overridden.
  ChannelFaultRates default_rates;
  /// Per-channel overrides (channel, rates); later entries win.
  std::vector<std::pair<std::uint32_t, ChannelFaultRates>> channel_rates;

  /// Seed of the injector's per-channel RNG streams (independent from the
  /// simulation seed so fault draws never perturb workload generation).
  std::uint64_t seed = 0xFA017u;

  // Recovery knobs -----------------------------------------------------------
  /// The credit-resync watchdog audits credit conservation on every channel
  /// once per `resync_period` cycles...
  Cycle resync_period = 1024;
  /// ...and restores counters once a deficit has persisted this long.
  Cycle resync_timeout = 4096;

  /// A delivered flit whose end-to-end delay exceeds this many flit cycles
  /// counts as a QoS violation (tallied separately inside and outside fault
  /// windows).
  double qos_deadline_cycles = kQosDeadlineCycles;

  /// True when the plan cannot produce any fault event — the network layer
  /// then skips the fault machinery entirely.
  [[nodiscard]] bool empty() const;

  /// Rates effective on `channel` after overrides.
  [[nodiscard]] ChannelFaultRates rates_for(std::uint32_t channel) const;

  /// Aborts with a readable message on nonsense (probabilities outside
  /// [0, 1], inverted or overlapping windows, channel out of range...).
  void validate(std::uint32_t channels) const;

  /// Parses a compact textual spec, e.g.
  ///   "drop:1e-3,corrupt:5e-4,credit_loss:1e-3,down:0:30000:45000,
  ///    resync_period:512,resync_timeout:2048,deadline:250,seed:7"
  /// Tokens are comma-separated; `down` may repeat.  Throws
  /// std::invalid_argument on unknown or malformed tokens.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// RNG-driven schedule: `count` non-overlapping outage windows of length
  /// [min_len, max_len] placed uniformly on random channels within
  /// [horizon_begin, horizon_end).
  [[nodiscard]] static FaultPlan random_windows(std::uint32_t channels,
                                                std::uint32_t count,
                                                Cycle horizon_begin,
                                                Cycle horizon_end,
                                                Cycle min_len, Cycle max_len,
                                                Rng& rng);
};

}  // namespace mmr
