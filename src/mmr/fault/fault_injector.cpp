#include "mmr/fault/fault_injector.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t channels)
    : plan_(std::move(plan)), down_(channels, false) {
  plan_.validate(channels);
  rates_.reserve(channels);
  rngs_.reserve(channels);
  const Rng base(plan_.seed, 0xFA17u);
  for (std::uint32_t channel = 0; channel < channels; ++channel) {
    rates_.push_back(plan_.rates_for(channel));
    rngs_.push_back(base.fork(channel));
  }
  events_.reserve(plan_.down_windows.size() * 2);
  for (const LinkDownWindow& window : plan_.down_windows) {
    events_.push_back({window.down_at, window.channel, true});
    events_.push_back({window.up_at, window.channel, false});
  }
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.channel != b.channel) return a.channel < b.channel;
    return !a.down && b.down;  // an up-edge precedes a same-cycle down-edge
  });
}

void FaultInjector::advance_to(Cycle now, std::vector<std::uint32_t>& went_down,
                               std::vector<std::uint32_t>& came_up) {
  MMR_ASSERT_MSG(last_advance_ == kNever || now > last_advance_,
                 "advance_to must be called with increasing time");
  last_advance_ = now;
  while (next_event_ < events_.size() && events_[next_event_].at <= now) {
    const Event& event = events_[next_event_++];
    if (event.down) {
      MMR_ASSERT_MSG(!down_[event.channel],
                     "overlapping down windows on one channel");
      down_[event.channel] = true;
      ++down_count_;
      went_down.push_back(event.channel);
      MMR_TRACE_EVENT(
          trace::fault_event(now, trace::FaultKind::kLinkDown, event.channel));
    } else {
      MMR_ASSERT(down_[event.channel]);
      down_[event.channel] = false;
      --down_count_;
      came_up.push_back(event.channel);
      MMR_TRACE_EVENT(
          trace::fault_event(now, trace::FaultKind::kLinkUp, event.channel));
    }
  }
}

bool FaultInjector::is_down(std::uint32_t channel) const {
  MMR_ASSERT(channel < down_.size());
  return down_[channel];
}

bool FaultInjector::drop_flit(std::uint32_t channel) {
  MMR_ASSERT(channel < rates_.size());
  const double p = rates_[channel].drop_probability;
  return p > 0.0 && rngs_[channel].chance(p);
}

bool FaultInjector::corrupt_flit(std::uint32_t channel) {
  MMR_ASSERT(channel < rates_.size());
  const double p = rates_[channel].corrupt_probability;
  return p > 0.0 && rngs_[channel].chance(p);
}

bool FaultInjector::lose_credit(std::uint32_t channel) {
  MMR_ASSERT(channel < rates_.size());
  const double p = rates_[channel].credit_loss_probability;
  return p > 0.0 && rngs_[channel].chance(p);
}

void FaultInjector::snap(snapshot::Walker& w) {
  // Rng is not default-constructible; the per-channel streams are walked in
  // place (the count is fixed at construction from the channel count).
  std::uint64_t streams = rngs_.size();
  snapshot::value(w, streams);
  if (w.loading())
    MMR_ASSERT_MSG(streams == rngs_.size(),
                   "fault snapshot channel count mismatch");
  for (Rng& rng : rngs_) rng.snap(w);
  std::uint64_t next = next_event_;
  snapshot::value(w, next);
  if (w.loading()) next_event_ = static_cast<std::size_t>(next);
  snapshot::walk_vector_bool(w, down_);
  snapshot::value(w, down_count_);
  snapshot::value(w, last_advance_);
}

}  // namespace mmr
