// Executes a FaultPlan against a set of directed channels.  The injector is
// purely a policy object: the network layer asks it, per cycle and per
// event, whether a fault fires, and applies the consequences itself (flit
// loss, credit leakage, teardown).  Each channel owns an independent RNG
// stream derived from the plan seed, so fault draws are reproducible and
// never perturb the workload's own random streams.
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/fault/fault_plan.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint32_t channels);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint32_t channels() const {
    return static_cast<std::uint32_t>(rates_.size());
  }

  /// Advances the outage schedule to `now` (call once per cycle with
  /// strictly increasing time).  Appends the channels whose windows begin
  /// (`went_down`) or end (`came_up`) at or before `now`.
  void advance_to(Cycle now, std::vector<std::uint32_t>& went_down,
                  std::vector<std::uint32_t>& came_up);

  /// Outage state as of the last advance_to().
  [[nodiscard]] bool is_down(std::uint32_t channel) const;
  [[nodiscard]] bool any_down() const { return down_count_ > 0; }
  [[nodiscard]] std::uint32_t down_count() const { return down_count_; }

  // Stochastic per-event draws; each advances only its channel's stream and
  // only when the corresponding probability is positive.
  [[nodiscard]] bool drop_flit(std::uint32_t channel);
  [[nodiscard]] bool corrupt_flit(std::uint32_t channel);
  [[nodiscard]] bool lose_credit(std::uint32_t channel);

  /// Checkpoint walk: per-channel RNG streams and the outage-schedule cursor
  /// (plan, rates and the event list are construction-time constants).
  void snap(snapshot::Walker& w);

 private:
  struct Event {
    Cycle at;
    std::uint32_t channel;
    bool down;  ///< true = window begins, false = window ends
  };

  FaultPlan plan_;
  std::vector<ChannelFaultRates> rates_;  ///< resolved per channel
  std::vector<Rng> rngs_;                 ///< one stream per channel
  std::vector<Event> events_;             ///< time-sorted outage transitions
  std::size_t next_event_ = 0;
  std::vector<bool> down_;
  std::uint32_t down_count_ = 0;
  Cycle last_advance_ = kNever;  ///< kNever = never advanced
};

}  // namespace mmr
